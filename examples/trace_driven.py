"""Scenario: a fully trace-driven advisor run.

The paper's architecture starts from a profiler trace ("a representative
workload for the system can be gathered using profiling tools … e.g.,
the SQL Server Profiler").  This example takes that literally: a trace
of executed statements with start/end timestamps is the ONLY workload
input.  The profiler module derives

* the weighted workload (execution counts become statement weights) and
* the overlap structure (which statements actually ran concurrently),

and the advisor produces a concurrency-aware layout from them.

Run:  python examples/trace_driven.py
"""

import tempfile
from pathlib import Path

from repro import LayoutAdvisor, winbench_farm
from repro.benchdb import tpch
from repro.workload.profiler import load_trace

#: A morning of activity: the lineitem report runs hourly and always
#: overlaps the partsupp report; the customer lookup runs alone.
TRACE = """\
start,end,sql
0,95,SELECT SUM(l.l_extendedprice) FROM lineitem l
5,90,SELECT AVG(ps.ps_supplycost) FROM partsupp ps
120,125,SELECT COUNT(*) FROM customer c WHERE c.c_custkey = 42
3600,3693,SELECT SUM(l.l_extendedprice) FROM lineitem l
3610,3700,SELECT AVG(ps.ps_supplycost) FROM partsupp ps
3720,3724,SELECT COUNT(*) FROM customer c WHERE c.c_custkey = 99042
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "profiler_trace.csv"
        trace_path.write_text(TRACE)
        workload, spec = load_trace(trace_path)

    print("derived workload:")
    for statement in workload:
        print(f"  weight {statement.weight:.0f}: "
              f"{statement.sql[:60]}")
    print(f"derived overlap groups: "
          f"{sorted(map(sorted, spec.groups))} "
          f"(overlap factor {spec.overlap_factor:.2f})")

    db = tpch.tpch_database()
    advisor = LayoutAdvisor(db, winbench_farm(8))
    rec = advisor.recommend_concurrent(workload, spec)
    lineitem = set(rec.layout.disks_of("lineitem"))
    partsupp = set(rec.layout.disks_of("partsupp"))
    print()
    print(f"recommendation ({rec.improvement_pct:.0f}% estimated "
          f"improvement under the observed concurrency):")
    print(f"  lineitem on disks {sorted(lineitem)}")
    print(f"  partsupp on disks {sorted(partsupp)}")
    print(f"  separated because the trace shows them co-executing: "
          f"{not (lineitem & partsupp)}")


if __name__ == "__main__":
    main()
