"""Quickstart: recommend a disk layout for a TPC-H decision-support
workload.

This is the paper's headline scenario end to end: analyze the 22 TPC-H
queries, build the co-access graph, run TS-GREEDY, and compare the
recommendation against the traditional full-striping practice — both by
the analytical cost model and by actually "running" the workload in the
I/O simulator.

Run:  python examples/quickstart.py
"""

from repro import LayoutAdvisor, full_striping, winbench_farm
from repro.benchdb import tpch
from repro.experiments.common import simulator

def main() -> None:
    # 1. The inputs of Figure 3: a database, a workload, a disk farm.
    db = tpch.tpch_database()
    farm = winbench_farm(8)            # 8 calibrated drives, 48 GB
    workload = tpch.tpch22_workload()  # the 22 benchmark queries

    # 2. Ask the advisor for a layout.
    advisor = LayoutAdvisor(db, farm)
    analyzed = advisor.analyze(workload)
    recommendation = advisor.recommend(analyzed)

    print("=== recommended layout ===")
    print(recommendation.layout.describe())
    print()
    print(f"estimated workload I/O time: "
          f"{recommendation.estimated_cost:.1f}s "
          f"(full striping: {recommendation.current_cost:.1f}s)")
    print(f"estimated improvement:       "
          f"{recommendation.improvement_pct:.0f}%")

    # 3. Check the estimate by simulating actual execution.
    sim = simulator()
    baseline = sim.run(analyzed, full_striping(db.object_sizes(), farm))
    improved = sim.run(analyzed, recommendation.layout)
    actual = 100 * (baseline.total_seconds - improved.total_seconds) \
        / baseline.total_seconds
    print(f"simulated ('actual') improvement: {actual:.0f}%")

    # 4. Where did the win come from?  The co-accessed big tables.
    print()
    print("=== separations the advisor chose ===")
    for left, right in (("lineitem", "orders"), ("partsupp", "part")):
        l_disks = set(recommendation.layout.disks_of(left))
        r_disks = set(recommendation.layout.disks_of(right))
        state = "disjoint" if not (l_disks & r_disks) else \
            f"overlap on {sorted(l_disks & r_disks)}"
        print(f"{left:10s} vs {right:10s}: {state}")


if __name__ == "__main__":
    main()
