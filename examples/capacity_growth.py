"""Scenario: planning a storage purchase ("how many disks do we need?").

The disk-drive file the advisor takes as input "need not be existing
disk drives" (Section 3) — so the DBA can ask what the workload's I/O
response time would be on hypothetical farms before buying hardware.
This example sweeps the farm from 2 to 16 drives for the SALES-45
workload and reports, per size, the estimated cost under full striping
and under the TS-GREEDY recommendation — showing where extra spindles
stop paying and layout starts mattering.

Run:  python examples/capacity_growth.py
"""

from repro import LayoutAdvisor, winbench_farm
from repro.benchdb import sales


def main() -> None:
    db = sales.sales_database()
    workload = sales.sales45_workload()
    print(f"{'disks':>5s} {'full striping (s)':>18s} "
          f"{'ts-greedy (s)':>14s} {'improvement':>12s}")
    previous = None
    for m in (2, 4, 8, 12, 16):
        farm = winbench_farm(m)
        advisor = LayoutAdvisor(db, farm)
        analyzed = advisor.analyze(workload)
        rec = advisor.recommend(analyzed)
        print(f"{m:5d} {rec.current_cost:18.1f} "
              f"{rec.estimated_cost:14.1f} "
              f"{rec.improvement_pct:11.0f}%")
        if previous is not None and previous > 0:
            gain = 100 * (previous - rec.estimated_cost) / previous
            print(f"      (+{m - previous_m} disks bought "
                  f"{gain:.0f}% over the previous farm)")
        previous, previous_m = rec.estimated_cost, m


if __name__ == "__main__":
    main()
