"""Scenario: layout under manageability and availability constraints.

A DBA runs the advisor on a sales-analysis database, but with real-world
requirements attached (Section 2.3 of the paper):

* the product catalog tables must live in the same filegroup (they are
  backed up together)        -> Co-Located(products, categories);
* the customers table is business-critical and must sit on mirrored
  (RAID 1) drives            -> Avail-Requirement(customers, Mirroring);
* and in a second, *incremental* run, at most 2 GB of data may move
  from the current layout    -> MaxDataMovement.

Run:  python examples/constrained_advisor.py
"""

from repro import (
    Availability,
    AvailabilityRequirement,
    CoLocated,
    ConstraintSet,
    DiskFarm,
    DiskSpec,
    LayoutAdvisor,
    MaxDataMovement,
)
from repro.benchdb import sales


def build_farm() -> DiskFarm:
    """Six plain drives plus two mirrored (RAID 1) drives."""
    disks = [DiskSpec(name=f"D{i + 1}", capacity_blocks=160_000,
                      avg_seek_s=0.006, read_mb_s=44.0, write_mb_s=40.0)
             for i in range(6)]
    disks += [DiskSpec(name=f"M{i + 1}", capacity_blocks=160_000,
                       avg_seek_s=0.006, read_mb_s=40.0,
                       write_mb_s=30.0,
                       availability=Availability.MIRRORING)
              for i in range(2)]
    return DiskFarm(disks)


def main() -> None:
    db = sales.sales_database()
    farm = build_farm()
    workload = sales.sales45_workload()

    constraints = ConstraintSet(
        co_located=[CoLocated("products", "categories")],
        availability=[AvailabilityRequirement("customers",
                                              Availability.MIRRORING)])
    advisor = LayoutAdvisor(db, farm, constraints=constraints)
    rec = advisor.recommend(workload)

    layout = rec.layout
    print("constrained recommendation "
          f"({rec.improvement_pct:.0f}% estimated improvement):")
    print(f"  order_header on {layout.disks_of('order_header')}")
    print(f"  order_detail on {layout.disks_of('order_detail')}")
    print(f"  products     on {layout.disks_of('products')} "
          f"(same filegroup as categories: "
          f"{layout.disks_of('categories')})")
    print(f"  customers    on "
          f"{[farm[j].name for j in layout.disks_of('customers')]} "
          f"(mirrored only)")

    # Incremental mode: the database currently lives on the first four
    # drives only (the other four were just purchased).  Refine the
    # current layout without moving more than 2 GB.
    sizes = db.object_sizes()
    from repro import Layout, stripe_fractions
    current = Layout(farm, sizes, {
        name: stripe_fractions(range(4), farm) for name in sizes})
    budget_blocks = 2 * 1024 * 1024 * 1024 // (64 * 1024)
    incremental = ConstraintSet(
        movement=MaxDataMovement(current, max_blocks=budget_blocks))
    advisor2 = LayoutAdvisor(db, farm, constraints=incremental)
    rec2 = advisor2.recommend(workload, current_layout=current)
    moved = current.data_movement_blocks(rec2.layout)
    print()
    print(f"incremental run (4 new empty drives, 2 GB budget): "
          f"{rec2.improvement_pct:.0f}% improvement while moving "
          f"{moved * 64 / 1024 / 1024:.2f} GB")


if __name__ == "__main__":
    main()
