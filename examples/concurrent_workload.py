"""Scenario: layout for *concurrently executing* statements.

The paper models the workload as a set of statements run one at a time
and names concurrency its main piece of future work: sequential analysis
"has the effect of underestimating the amount of co-access between
objects".  This example shows the implemented extension.

Two nightly report queries each scan a different large table.  Run
back-to-back they never co-access anything, so the advisor fully stripes
both tables.  But the scheduler actually runs them *simultaneously* —
declaring that via a ConcurrencySpec makes the advisor separate the two
tables onto disjoint drives, trading per-query parallelism for freedom
from cross-query interference.

Run:  python examples/concurrent_workload.py
"""

from repro import LayoutAdvisor, Workload, winbench_farm
from repro.benchdb import tpch
from repro.workload.concurrency import ConcurrencySpec


def main() -> None:
    db = tpch.tpch_database()
    farm = winbench_farm(8)
    workload = Workload(name="nightly-reports")
    workload.add("SELECT SUM(l.l_extendedprice) FROM lineitem l",
                 name="report_lineitem")
    workload.add("SELECT AVG(ps.ps_supplycost) FROM partsupp ps",
                 name="report_partsupp")

    advisor = LayoutAdvisor(db, farm)
    analyzed = advisor.analyze(workload)
    sizes = db.object_sizes()

    # Sequential analysis (the paper's model).
    sequential = advisor.recommend(analyzed)
    print("sequential model:")
    print(f"  lineitem on {len(sequential.layout.disks_of('lineitem'))}"
          f" disks, partsupp on "
          f"{len(sequential.layout.disks_of('partsupp'))} disks "
          f"(both fully striped — no co-access was seen)")

    # Concurrency-aware analysis: the two reports always overlap.
    spec = ConcurrencySpec.from_groups([[0, 1]], overlap_factor=1.0)
    rec = advisor.recommend_concurrent(analyzed, spec)

    lineitem = set(rec.layout.disks_of("lineitem"))
    partsupp = set(rec.layout.disks_of("partsupp"))
    print()
    print("concurrency-aware model:")
    print(f"  lineitem on disks {sorted(lineitem)}")
    print(f"  partsupp on disks {sorted(partsupp)}")
    print(f"  disjoint: {not (lineitem & partsupp)}")
    print(f"  expected concurrent I/O time: {rec.estimated_cost:.1f}s "
          f"vs {rec.current_cost:.1f}s fully striped "
          f"({rec.improvement_pct:.0f}% better)")

    # Validate with concurrent simulation (not just the model).
    from repro.simulator.concurrent import ConcurrentWorkloadSimulator
    sim = ConcurrentWorkloadSimulator()
    striped_s = sim.run_concurrent(analyzed, sequential.layout,
                                   spec).total_seconds
    aware_s = sim.run_concurrent(analyzed, rec.layout,
                                 spec).total_seconds
    print(f"  simulated concurrent execution: {aware_s:.1f}s vs "
          f"{striped_s:.1f}s "
          f"({100 * (striped_s - aware_s) / striped_s:.0f}% better)")


if __name__ == "__main__":
    main()
