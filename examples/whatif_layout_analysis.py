"""Scenario: "what-if" layout analysis for a DBA (no search involved).

The cost model is useful on its own: a DBA can compare candidate layouts
— full striping, hand-built separations, a proposed migration — without
materializing any of them, just as the paper's tool estimates improvement
percentages.  This example scores four candidate layouts for the
WK-CTRL1 workload, then verifies the ranking by simulated execution.

Run:  python examples/whatif_layout_analysis.py
"""

from repro import (
    CostModel,
    Layout,
    LayoutAdvisor,
    full_striping,
    stripe_fractions,
    winbench_farm,
)
from repro.benchdb import ctrl, tpch
from repro.experiments.common import simulator


def main() -> None:
    db = tpch.tpch_database()
    farm = winbench_farm(8)
    advisor = LayoutAdvisor(db, farm)
    analyzed = advisor.analyze(ctrl.wk_ctrl1())
    sizes = db.object_sizes()

    def striped_except(**overrides) -> Layout:
        fractions = {name: stripe_fractions(range(8), farm)
                     for name in sizes}
        for name, disks in overrides.items():
            fractions[name] = stripe_fractions(disks, farm)
        return Layout(farm, sizes, fractions)

    candidates = {
        "full striping": full_striping(sizes, farm),
        "separate lineitem/orders": striped_except(
            lineitem=range(5), orders=range(5, 8)),
        "separate both join pairs": striped_except(
            lineitem=range(5), orders=range(5, 8),
            partsupp=range(5), part=range(5, 8)),
        "everything on one disk": Layout(farm, sizes, {
            name: stripe_fractions([0], farm) for name in sizes}),
    }

    model = CostModel(farm)
    sim = simulator()
    print(f"{'layout':30s} {'estimated (s)':>14s} {'simulated (s)':>14s}")
    rows = []
    for name, layout in candidates.items():
        estimated = model.workload_cost(analyzed, layout)
        simulated = sim.run(analyzed, layout).total_seconds
        rows.append((estimated, simulated, name))
        print(f"{name:30s} {estimated:14.1f} {simulated:14.1f}")

    by_estimate = [name for _, _, name in sorted(rows)]
    by_simulation = [name for _, _, name
                     in sorted(rows, key=lambda r: r[1])]
    print()
    print("ranked by estimate:  ", " > ".join(by_estimate))
    print("ranked by simulation:", " > ".join(by_simulation))
    agreement = by_estimate == by_simulation
    print(f"rankings agree: {agreement} "
          "(the paper's Section-7 validation in miniature)")


if __name__ == "__main__":
    main()
