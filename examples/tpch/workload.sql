-- name: Q1
SELECT l.l_returnflag, l.l_linestatus, SUM(l.l_quantity) AS sum_qty,
       SUM(l.l_extendedprice) AS sum_base_price,
       SUM(l.l_extendedprice * (1 - l.l_discount)) AS sum_disc_price,
       AVG(l.l_quantity) AS avg_qty, COUNT(*) AS count_order
FROM lineitem l
WHERE l.l_shipdate <= DATE '1998-09-23'
GROUP BY l.l_returnflag, l.l_linestatus
ORDER BY l.l_returnflag, l.l_linestatus;

-- name: Q2
SELECT TOP 100 s.s_acctbal, s.s_name, n.n_name, p.p_partkey, p.p_mfgr,
       s.s_address, s.s_phone, s.s_comment
FROM part p, supplier s, partsupp ps, nation n,
     region r
WHERE p.p_partkey = ps.ps_partkey AND s.s_suppkey = ps.ps_suppkey
  AND p.p_size = 33 AND p.p_type LIKE '%BRASS'
  AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey
  AND r.r_name = 'MIDDLE EAST'
  AND ps.ps_supplycost = (
      SELECT MIN(ps2.ps_supplycost)
      FROM partsupp ps2, supplier s2, nation n2,
           region r2
      WHERE p.p_partkey = ps2.ps_partkey
        AND s2.s_suppkey = ps2.ps_suppkey
        AND s2.s_nationkey = n2.n_nationkey
        AND n2.n_regionkey = r2.r_regionkey AND r2.r_name = 'MIDDLE EAST')
ORDER BY s.s_acctbal DESC, n.n_name, s.s_name, p.p_partkey;

-- name: Q3
SELECT TOP 10 l.l_orderkey,
       SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue,
       o.o_orderdate, o.o_shippriority
FROM customer c, orders o, lineitem l
WHERE c.c_mktsegment = 'HOUSEHOLD' AND c.c_custkey = o.o_custkey
  AND l.l_orderkey = o.o_orderkey AND o.o_orderdate < DATE '1995-03-20'
  AND l.l_shipdate > DATE '1995-03-20'
GROUP BY l.l_orderkey, o.o_orderdate, o.o_shippriority
ORDER BY revenue DESC, o.o_orderdate;

-- name: Q4
SELECT o.o_orderpriority, COUNT(*) AS order_count
FROM orders o
WHERE o.o_orderdate >= DATE '1994-08-13'
  AND o.o_orderdate < DATE '1994-11-13'
  AND EXISTS (SELECT * FROM lineitem l
              WHERE l.l_orderkey = o.o_orderkey
                AND l.l_commitdate < l.l_receiptdate)
GROUP BY o.o_orderpriority
ORDER BY o.o_orderpriority;

-- name: Q5
SELECT n.n_name, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
FROM customer c, orders o, lineitem l, supplier s,
     nation n, region r
WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
  AND l.l_suppkey = s.s_suppkey AND c.c_nationkey = s.s_nationkey
  AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey
  AND r.r_name = 'AFRICA' AND o.o_orderdate >= DATE '1994-01-01'
  AND o.o_orderdate < DATE '1995-01-01'
GROUP BY n.n_name
ORDER BY revenue DESC;

-- name: Q6
SELECT SUM(l.l_extendedprice * l.l_discount) AS revenue
FROM lineitem l
WHERE l.l_shipdate >= DATE '1994-01-01' AND l.l_shipdate < DATE '1995-01-01'
  AND l.l_discount BETWEEN 0.08 AND 0.1
  AND l.l_quantity < 25;

-- name: Q7
SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation,
       SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
FROM supplier s, lineitem l, orders o, customer c,
     nation n1, nation n2
WHERE s.s_suppkey = l.l_suppkey AND o.o_orderkey = l.l_orderkey
  AND c.c_custkey = o.o_custkey AND s.s_nationkey = n1.n_nationkey
  AND c.c_nationkey = n2.n_nationkey
  AND ((n1.n_name = 'CANADA' AND n2.n_name = 'VIETNAM')
       OR (n1.n_name = 'VIETNAM' AND n2.n_name = 'CANADA'))
  AND l.l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
GROUP BY n1.n_name, n2.n_name
ORDER BY n1.n_name, n2.n_name;

-- name: Q8
SELECT o.o_orderdate,
       SUM(CASE WHEN n2.n_name = 'ALGERIA'
                THEN l.l_extendedprice * (1 - l.l_discount)
                ELSE 0 END) AS nation_volume,
       SUM(l.l_extendedprice * (1 - l.l_discount)) AS total_volume
FROM part p, supplier s, lineitem l, orders o,
     customer c, nation n1, nation n2, region r
WHERE p.p_partkey = l.l_partkey AND s.s_suppkey = l.l_suppkey
  AND l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey
  AND c.c_nationkey = n1.n_nationkey AND n1.n_regionkey = r.r_regionkey
  AND r.r_name = 'AFRICA' AND s.s_nationkey = n2.n_nationkey
  AND o.o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
  AND p.p_type = 'ECONOMY ANODIZED TIN'
GROUP BY o.o_orderdate
ORDER BY o.o_orderdate;

-- name: Q9
SELECT n.n_name, o.o_orderdate,
       SUM(l.l_extendedprice * (1 - l.l_discount)
           - ps.ps_supplycost * l.l_quantity) AS profit
FROM part p, supplier s, lineitem l, partsupp ps,
     orders o, nation n
WHERE s.s_suppkey = l.l_suppkey AND ps.ps_suppkey = l.l_suppkey
  AND ps.ps_partkey = l.l_partkey AND p.p_partkey = l.l_partkey
  AND o.o_orderkey = l.l_orderkey AND s.s_nationkey = n.n_nationkey
  AND p.p_name LIKE '%burnished%'
GROUP BY n.n_name, o.o_orderdate
ORDER BY n.n_name, o.o_orderdate DESC;

-- name: Q10
SELECT TOP 20 c.c_custkey, c.c_name,
       SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue,
       c.c_acctbal, n.n_name, c.c_address, c.c_phone, c.c_comment
FROM customer c, orders o, lineitem l, nation n
WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
  AND o.o_orderdate >= DATE '1995-01-15'
  AND o.o_orderdate < DATE '1995-04-17'
  AND l.l_returnflag = 'R' AND c.c_nationkey = n.n_nationkey
GROUP BY c.c_custkey, c.c_name, c.c_acctbal, c.c_phone, n.n_name,
         c.c_address, c.c_comment
ORDER BY revenue DESC;

-- name: Q11
SELECT ps.ps_partkey,
       SUM(ps.ps_supplycost * ps.ps_availqty) AS value
FROM partsupp ps, supplier s, nation n
WHERE ps.ps_suppkey = s.s_suppkey AND s.s_nationkey = n.n_nationkey
  AND n.n_name = 'INDONESIA'
GROUP BY ps.ps_partkey
HAVING SUM(ps.ps_supplycost * ps.ps_availqty) > (
    SELECT SUM(ps2.ps_supplycost * ps2.ps_availqty) * 0.0001
    FROM partsupp ps2, supplier s2, nation n2
    WHERE ps2.ps_suppkey = s2.s_suppkey
      AND s2.s_nationkey = n2.n_nationkey AND n2.n_name = 'INDONESIA')
ORDER BY value DESC;

-- name: Q12
SELECT l.l_shipmode,
       SUM(CASE WHEN o.o_orderpriority = '1-URGENT'
                 OR o.o_orderpriority = '2-HIGH'
                THEN 1 ELSE 0 END) AS high_line_count,
       SUM(CASE WHEN o.o_orderpriority <> '1-URGENT'
                 AND o.o_orderpriority <> '2-HIGH'
                THEN 1 ELSE 0 END) AS low_line_count
FROM orders o, lineitem l
WHERE o.o_orderkey = l.l_orderkey
  AND l.l_shipmode IN ('FOB', 'RAIL')
  AND l.l_commitdate < l.l_receiptdate
  AND l.l_shipdate < l.l_commitdate
  AND l.l_receiptdate >= DATE '1996-01-01'
  AND l.l_receiptdate < DATE '1997-01-01'
GROUP BY l.l_shipmode
ORDER BY l.l_shipmode;

-- name: Q13
SELECT c.c_custkey, COUNT(*) AS c_count
FROM customer c
LEFT JOIN orders o
  ON c.c_custkey = o.o_custkey
 AND o.o_comment NOT LIKE '%express%requests%'
GROUP BY c.c_custkey
ORDER BY c.c_custkey;

-- name: Q14
SELECT 100.0 * SUM(CASE WHEN p.p_type LIKE 'PROMO%'
                        THEN l.l_extendedprice * (1 - l.l_discount)
                        ELSE 0 END)
       / SUM(l.l_extendedprice * (1 - l.l_discount)) AS promo_revenue
FROM lineitem l, part p
WHERE l.l_partkey = p.p_partkey
  AND l.l_shipdate >= DATE '1994-10-14'
  AND l.l_shipdate < DATE '1994-11-13';

-- name: Q15
SELECT s.s_suppkey, s.s_name, s.s_address, s.s_phone,
       SUM(l.l_extendedprice * (1 - l.l_discount)) AS total_revenue
FROM supplier s, lineitem l
WHERE s.s_suppkey = l.l_suppkey
  AND l.l_shipdate >= DATE '1997-06-01'
  AND l.l_shipdate < DATE '1997-08-30'
GROUP BY s.s_suppkey, s.s_name, s.s_address, s.s_phone
HAVING SUM(l.l_extendedprice * (1 - l.l_discount)) > (
    SELECT MAX(l2.l_extendedprice) * 10
    FROM lineitem l2
    WHERE l2.l_shipdate >= DATE '1997-06-01'
      AND l2.l_shipdate < DATE '1997-08-30')
ORDER BY s.s_suppkey;

-- name: Q16
SELECT p.p_brand, p.p_type, p.p_size,
       COUNT(DISTINCT ps.ps_suppkey) AS supplier_cnt
FROM partsupp ps, part p
WHERE p.p_partkey = ps.ps_partkey AND p.p_brand <> 'Brand#22'
  AND p.p_type NOT LIKE 'STANDARD BRUSHED%'
  AND p.p_size IN (37, 44, 25, 42, 8, 18, 46, 45)
  AND ps.ps_suppkey NOT IN (
      SELECT s.s_suppkey FROM supplier s
      WHERE s.s_comment LIKE '%Customer%Complaints%')
GROUP BY p.p_brand, p.p_type, p.p_size
ORDER BY supplier_cnt DESC, p.p_brand, p.p_type, p.p_size;

-- name: Q17
SELECT SUM(l.l_extendedprice) / 7.0 AS avg_yearly
FROM lineitem l, part p
WHERE p.p_partkey = l.l_partkey AND p.p_brand = 'Brand#41'
  AND p.p_container = 'SM CASE'
  AND l.l_quantity < (SELECT 0.2 * AVG(l2.l_quantity)
                      FROM lineitem l2
                      WHERE l2.l_partkey = p.p_partkey);

-- name: Q18
SELECT TOP 100 c.c_name, c.c_custkey, o.o_orderkey, o.o_orderdate,
       o.o_totalprice, SUM(l.l_quantity) AS total_qty
FROM customer c, orders o, lineitem l
WHERE o.o_orderkey IN (SELECT l2.l_orderkey FROM lineitem l2
                       GROUP BY l2.l_orderkey
                       HAVING SUM(l2.l_quantity) > 313)
  AND c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey
GROUP BY c.c_name, c.c_custkey, o.o_orderkey, o.o_orderdate,
         o.o_totalprice
ORDER BY o.o_totalprice DESC, o.o_orderdate;

-- name: Q19
SELECT SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
FROM lineitem l, part p
WHERE p.p_partkey = l.l_partkey
  AND ((p.p_brand = 'Brand#13'
        AND p.p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
        AND l.l_quantity BETWEEN 8 AND 18
        AND p.p_size BETWEEN 1 AND 5
        AND l.l_shipmode IN ('AIR', 'REG AIR'))
       OR (p.p_brand = 'Brand#12'
        AND p.p_container IN ('MED BAG', 'MED BOX', 'MED PKG',
                              'MED PACK')
        AND l.l_quantity BETWEEN 19 AND 29
        AND p.p_size BETWEEN 1 AND 10
        AND l.l_shipmode IN ('AIR', 'REG AIR'))
       OR (p.p_brand = 'Brand#25'
        AND p.p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
        AND l.l_quantity BETWEEN 23 AND 33
        AND p.p_size BETWEEN 1 AND 15
        AND l.l_shipmode IN ('AIR', 'REG AIR')));

-- name: Q20
SELECT s.s_name, s.s_address
FROM supplier s, nation n
WHERE s.s_suppkey IN (
    SELECT ps.ps_suppkey FROM partsupp ps
    WHERE ps.ps_partkey IN (SELECT p.p_partkey FROM part p
                            WHERE p.p_name LIKE 'blanched%')
      AND ps.ps_availqty > (
          SELECT 0.5 * SUM(l.l_quantity) FROM lineitem l
          WHERE l.l_partkey = ps.ps_partkey
            AND l.l_suppkey = ps.ps_suppkey
            AND l.l_shipdate >= DATE '1997-01-01'
            AND l.l_shipdate < DATE '1998-01-01'))
  AND s.s_nationkey = n.n_nationkey AND n.n_name = 'CANADA'
ORDER BY s.s_name;

-- name: Q21
SELECT TOP 100 s.s_name, COUNT(*) AS numwait
FROM supplier s, lineitem l1, orders o, nation n
WHERE s.s_suppkey = l1.l_suppkey AND o.o_orderkey = l1.l_orderkey
  AND o.o_orderstatus = 'F' AND l1.l_receiptdate > l1.l_commitdate
  AND EXISTS (SELECT * FROM lineitem l2
              WHERE l2.l_orderkey = l1.l_orderkey
                AND l2.l_suppkey <> l1.l_suppkey)
  AND NOT EXISTS (SELECT * FROM lineitem l3
                  WHERE l3.l_orderkey = l1.l_orderkey
                    AND l3.l_suppkey <> l1.l_suppkey
                    AND l3.l_receiptdate > l3.l_commitdate)
  AND s.s_nationkey = n.n_nationkey AND n.n_name = 'MOZAMBIQUE'
GROUP BY s.s_name
ORDER BY numwait DESC, s.s_name;

-- name: Q22
SELECT c.c_nationkey, COUNT(*) AS numcust,
       SUM(c.c_acctbal) AS totacctbal
FROM customer c
WHERE c.c_nationkey IN (16, 22, 20, 13, 18, 14, 21)
  AND c.c_acctbal > (SELECT AVG(c2.c_acctbal) FROM customer c2
                     WHERE c2.c_acctbal > 0.0
                       AND c2.c_nationkey IN (16, 22, 20, 13, 18, 14, 21))
  AND NOT EXISTS (SELECT * FROM orders o
                  WHERE o.o_custkey = c.c_custkey)
GROUP BY c.c_nationkey
ORDER BY c.c_nationkey;
