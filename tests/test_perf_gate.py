"""Tests for the CI perf-regression gate (benchmarks/perf_gate.py)."""

import copy
import json
import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))

from bench_env import (  # noqa: E402
    resolve_full_scale,
    resolve_jobs,
    resolve_mode,
)
from perf_gate import (  # noqa: E402
    _attribute_phase,
    compare,
    compare_server,
    main,
    payload_kind,
)

from repro.core.costmodel import WorkloadCostEvaluator
from repro.core.greedy import TsGreedySearch
from repro.obs import MetricsRegistry, Tracer
from repro.obs.profile import phase_breakdown
from repro.workload.access import analyze_workload
from repro.workload.access_graph import build_access_graph


def payload(mode="ci"):
    """A well-formed BENCH_search payload that passes every invariant."""
    return {
        "mode": mode,
        "cores": 4,
        "jobs": 2,
        "trajectories": 6,
        "greedy_noprune": {
            "wall_s": 0.2, "evaluations": 7881, "cost": 54.7029},
        "greedy_prune": {
            "wall_s": 0.18, "evaluations": 1295,
            "pruned_candidates": 6586, "bound_evaluations": 9000,
            "cost": 54.7029},
        "portfolio_serial": {
            "wall_s": 1.2, "evaluations": 11448, "cost": 54.7029,
            "backend": "serial"},
        "portfolio_thread": {
            "wall_s": 0.9, "evaluations": 11448, "cost": 54.7029,
            "backend": "thread"},
        "portfolio_parallel": {
            "wall_s": 0.8, "evaluations": 11448, "cost": 54.7029,
            "backend": "process"},
        "eval_throughput_candidates_per_s": 400_000.0,
        "eval_throughput_speedup": 15.0,
        "prune_eval_reduction": 0.836,
        "prune_speedup": 1.11,
        "parallel_speedup": 1.5,
        "parallel_speedup_thread": 1.3,
        "prune_drift": 0.0,
        "prune_same_layout": True,
        "portfolio_drift": 0.0,
        "portfolio_drift_thread": 0.0,
    }


class TestCompare:
    def test_identical_payload_passes(self):
        assert compare(payload(), payload()) == []

    def test_small_wall_noise_tolerated(self):
        candidate = payload()
        for name in ("greedy_noprune", "portfolio_serial"):
            candidate[name]["wall_s"] *= 1.2  # under the 25% allowance
        assert compare(payload(), candidate) == []

    def test_tightened_baseline_fails_on_wall(self):
        # The demo CI documents: shrink the baseline's wall times and
        # the gate must flag the (unchanged) candidate as a regression.
        tightened = payload()
        for name in ("greedy_noprune", "greedy_prune",
                     "portfolio_serial", "portfolio_parallel"):
            tightened[name]["wall_s"] *= 0.5
        violations = compare(tightened, payload())
        assert violations
        assert all("wall" in v for v in violations)

    def test_skip_wall_ignores_wall_regressions(self):
        candidate = payload()
        candidate["portfolio_serial"]["wall_s"] *= 10
        assert compare(payload(), candidate, skip_wall=True) == []

    def test_eval_count_drift_fails_even_without_wall(self):
        candidate = payload()
        candidate["greedy_prune"]["evaluations"] += 100
        violations = compare(payload(), candidate, skip_wall=True)
        assert any("evaluation count drifted" in v for v in violations)

    def test_cost_drift_fails(self):
        candidate = payload()
        candidate["portfolio_serial"]["cost"] += 0.01
        violations = compare(payload(), candidate, skip_wall=True)
        assert any("cost drifted" in v for v in violations)

    def test_mode_mismatch_refuses_count_comparison(self):
        violations = compare(payload("small"), payload("ci"),
                             skip_wall=True)
        assert any("mode mismatch" in v for v in violations)

    def test_candidate_invariant_failure_reported(self):
        candidate = payload()
        candidate["prune_drift"] = 0.5
        violations = compare(payload(), candidate, skip_wall=True)
        assert any("candidate invariants" in v for v in violations)

    def test_eroded_prune_reduction_fails(self):
        candidate = payload()
        candidate["prune_eval_reduction"] = 0.6
        violations = compare(payload(), candidate, skip_wall=True)
        assert any("prune_eval_reduction eroded" in v
                   for v in violations)

    def test_all_violations_listed(self):
        candidate = payload()
        candidate["greedy_prune"]["evaluations"] += 1
        candidate["portfolio_serial"]["cost"] += 1.0
        violations = compare(payload(), candidate, skip_wall=True)
        assert len(violations) >= 2


def _phases(**walls):
    """A config-level phase breakdown in the bench payload shape."""
    return {"version": 1,
            "phases": {name: {"wall_s": wall, "cpu_s": wall, "count": 1}
                       for name, wall in walls.items()}}


class TestPhaseAttribution:
    def test_wall_violation_names_slowest_growing_phase(self):
        baseline = payload()
        candidate = payload()
        baseline["greedy_prune"]["phases"] = \
            _phases(expand=0.02, greedy=0.10, kl=0.03)
        candidate["greedy_prune"]["phases"] = \
            _phases(expand=0.02, greedy=0.43, kl=0.04)
        candidate["greedy_prune"]["wall_s"] *= 3
        violations = compare(baseline, candidate)
        [violation] = [v for v in violations if "greedy_prune" in v]
        assert "slowest-growing phase: greedy" in violation
        assert "+0.330s" in violation
        assert "0.100s -> 0.430s" in violation

    def test_attribution_silent_without_phase_data(self):
        # Payloads from before phases_version 1 still gate on wall;
        # the violation just goes unattributed.
        candidate = payload()
        candidate["portfolio_serial"]["wall_s"] *= 3
        violations = compare(payload(), candidate)
        [violation] = violations
        assert "portfolio_serial" in violation
        assert "phase" not in violation

    def test_attribution_silent_when_no_phase_grew(self):
        base_cfg = {"phases": _phases(greedy=0.2, kl=0.1)}
        cand_cfg = {"phases": _phases(greedy=0.1, kl=0.05)}
        assert _attribute_phase(base_cfg, cand_cfg) == ""

    def test_injected_delay_in_greedy_evaluation_is_attributed(
            self, mini_db, farm8, join_workload, monkeypatch):
        """The acceptance demo: slow down greedy cost evaluation only,
        and the gate must name the greedy phase in its violation."""
        analyzed = analyze_workload(join_workload, mini_db)
        sizes = mini_db.object_sizes()
        evaluator = WorkloadCostEvaluator(analyzed, farm8,
                                          sorted(sizes))
        graph = build_access_graph(analyzed, mini_db)

        def run_config():
            tracer, metrics = Tracer(), MetricsRegistry()
            start = time.perf_counter()
            result = TsGreedySearch(
                farm8, evaluator, sizes, prune=True, tracer=tracer,
                metrics=metrics).search(graph)
            return {
                "wall_s": time.perf_counter() - start,
                "evaluations": result.evaluations,
                "cost": result.cost,
                "phases": phase_breakdown(tracer, metrics),
            }

        fast = run_config()
        real_costs = WorkloadCostEvaluator.costs_for_rows

        def slow_costs(self, *args, **kwargs):
            time.sleep(0.003)  # the injected greedy-phase delay
            return real_costs(self, *args, **kwargs)

        monkeypatch.setattr(WorkloadCostEvaluator, "costs_for_rows",
                            slow_costs)
        slow = run_config()
        # The delay slows the search without changing it.
        assert slow["evaluations"] == fast["evaluations"]
        assert slow["cost"] == fast["cost"]
        assert slow["wall_s"] > fast["wall_s"] * 1.25

        baseline, candidate = payload("small"), payload("small")
        baseline["greedy_prune"] = \
            dict(baseline["greedy_prune"], **fast)
        candidate["greedy_prune"] = \
            dict(candidate["greedy_prune"], **slow)
        violations = compare(baseline, candidate)
        [violation] = [v for v in violations if "greedy_prune" in v]
        assert "wall" in violation
        assert "slowest-growing phase: greedy" in violation


class TestCli:
    def _write(self, tmp_path, name, data):
        path = tmp_path / name
        path.write_text(json.dumps(data))
        return str(path)

    def test_pass_exit_zero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", payload())
        cand = self._write(tmp_path, "cand.json", payload())
        assert main(["--baseline", base, "--candidate", cand]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_tightened_baseline_exit_one(self, tmp_path, capsys):
        tightened = payload()
        for name in ("greedy_noprune", "greedy_prune",
                     "portfolio_serial", "portfolio_parallel"):
            tightened[name]["wall_s"] *= 0.5
        base = self._write(tmp_path, "base.json", tightened)
        cand = self._write(tmp_path, "cand.json", payload())
        assert main(["--baseline", base, "--candidate", cand]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_missing_baseline_reported(self, tmp_path):
        cand = self._write(tmp_path, "cand.json", payload())
        with pytest.raises(SystemExit, match="not found"):
            main(["--baseline", str(tmp_path / "nope.json"),
                  "--candidate", cand])

    def test_invalid_json_reported(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{oops")
        cand = self._write(tmp_path, "cand.json", payload())
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["--baseline", str(bad), "--candidate", cand])

    def test_committed_baseline_is_gate_compatible(self):
        # The repo ships a ci-mode baseline for runs with no cached
        # artifact; it must parse and self-compare cleanly.
        committed = Path(__file__).parent.parent / "benchmarks" / \
            "results" / "baseline.json"
        data = json.loads(committed.read_text())
        assert data["mode"] == "ci"
        assert compare(data, copy.deepcopy(data)) == []


def test_real_small_bench_payload_passes_gate():
    """End-to-end: a real small-mode run gates cleanly against itself."""
    from bench_search_speed import run_bench
    candidate = run_bench(jobs=2, mode="small")
    baseline = copy.deepcopy(candidate)
    assert compare(baseline, candidate) == []
    # And a tightened copy of itself fails, as the CI demo documents.
    baseline["greedy_noprune"]["wall_s"] = 1e-6
    assert compare(baseline, candidate, skip_wall=False)


def server_payload(mode="ci"):
    """A well-formed BENCH_server payload that passes every invariant."""
    return {
        "bench": "server",
        "mode": mode,
        "clients": 8,
        "workers": 4,
        "distinct_workloads": 4,
        "requests": 240,
        "completed": 240,
        "errors": 0,
        "warm_errors": 0,
        "error_samples": [],
        "warm_s": 1.0,
        "measured_s": 1.3,
        "throughput_rps": 180.0,
        "latency_s": {"mean": 0.02, "p50": 0.014, "p95": 0.03,
                      "p99": 0.05, "max": 0.4},
        "cache_hit_ratio": 1.0,
        "server_stats": {"cache": {"entries": 4}},
        "prometheus_lines": 41,
    }


class TestPayloadKind:
    def test_server_marker(self):
        assert payload_kind(server_payload()) == "server"

    def test_search_by_default(self):
        assert payload_kind(payload()) == "search"
        assert payload_kind({}) == "search"


class TestCompareServer:
    def test_identical_payloads_pass(self):
        assert compare_server(server_payload(), server_payload()) == []

    def test_small_regression_within_allowance(self):
        candidate = server_payload()
        candidate["throughput_rps"] = 150.0  # -17% < 25% allowance
        assert compare_server(server_payload(), candidate) == []

    def test_throughput_floor(self):
        candidate = server_payload()
        candidate["throughput_rps"] = 90.0  # half the baseline
        violations = compare_server(server_payload(), candidate)
        assert any("throughput dropped" in v for v in violations)

    def test_p95_ceiling(self):
        candidate = server_payload()
        candidate["latency_s"] = dict(candidate["latency_s"], p95=0.2)
        violations = compare_server(server_payload(), candidate)
        assert any("p95 latency" in v for v in violations)

    def test_skip_wall_ignores_machine_speed(self):
        candidate = server_payload()
        candidate["throughput_rps"] = 55.0
        candidate["latency_s"] = dict(candidate["latency_s"], p95=0.9)
        assert compare_server(server_payload(), candidate,
                              skip_wall=True) == []

    def test_hit_ratio_erosion_survives_skip_wall(self):
        candidate = server_payload()
        candidate["cache_hit_ratio"] = 0.90  # beyond the 5% slack
        violations = compare_server(server_payload(), candidate,
                                    skip_wall=True)
        assert any("hit ratio eroded" in v for v in violations)

    def test_hit_ratio_slack_tolerated(self):
        candidate = server_payload()
        candidate["cache_hit_ratio"] = 0.97  # within the 5% slack
        assert compare_server(server_payload(), candidate) == []

    def test_mode_mismatch(self):
        violations = compare_server(server_payload("full"),
                                    server_payload("ci"))
        assert any("mode mismatch" in v for v in violations)

    def test_request_count_drift(self):
        candidate = server_payload()
        candidate["requests"] = 120
        candidate["completed"] = 120
        violations = compare_server(server_payload(), candidate)
        assert any("request count drifted" in v for v in violations)

    def test_candidate_invariant_failure(self):
        candidate = server_payload()
        candidate["errors"] = 3
        violations = compare_server(server_payload(), candidate,
                                    skip_wall=True)
        assert any("candidate invariants" in v for v in violations)

    def test_committed_server_baseline_is_gate_compatible(self):
        committed = Path(__file__).parent.parent / "benchmarks" / \
            "results" / "baseline_server.json"
        data = json.loads(committed.read_text())
        assert payload_kind(data) == "server"
        assert data["mode"] == "ci"
        assert compare_server(data, copy.deepcopy(data)) == []


class TestCliServer:
    def _write(self, tmp_path, name, data):
        path = tmp_path / name
        path.write_text(json.dumps(data))
        return str(path)

    def test_server_pass_exit_zero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", server_payload())
        cand = self._write(tmp_path, "cand.json", server_payload())
        assert main(["--baseline", base, "--candidate", cand]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "server" in out

    def test_server_regression_exit_one(self, tmp_path, capsys):
        slow = server_payload()
        slow["throughput_rps"] = 60.0
        base = self._write(tmp_path, "base.json", server_payload())
        cand = self._write(tmp_path, "cand.json", slow)
        assert main(["--baseline", base, "--candidate", cand]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_kind_mismatch_exit_one(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", payload())
        cand = self._write(tmp_path, "cand.json", server_payload())
        assert main(["--baseline", base, "--candidate", cand]) == 1
        assert "kind mismatch" in capsys.readouterr().out


class TestBenchEnv:
    """The shared REPRO_BENCH_* resolver every benchmark rides."""

    @pytest.fixture(autouse=True)
    def clean_env(self, monkeypatch):
        for key in ("REPRO_BENCH_MODE", "REPRO_BENCH_JOBS",
                    "REPRO_BENCH_FULL"):
            monkeypatch.delenv(key, raising=False)

    def test_mode_default(self):
        assert resolve_mode() == "small"
        assert resolve_mode(default="ci") == "ci"

    def test_mode_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_MODE", "full")
        assert resolve_mode("ci") == "ci"

    def test_mode_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_MODE", "ci")
        assert resolve_mode() == "ci"

    def test_full_switch_beats_mode_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_FULL", "1")
        monkeypatch.setenv("REPRO_BENCH_MODE", "ci")
        assert resolve_full_scale()
        assert resolve_mode() == "full"

    def test_invalid_env_mode_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_MODE", "enormous")
        with pytest.warns(RuntimeWarning, match="enormous"):
            assert resolve_mode() == "small"

    def test_invalid_explicit_mode_warns_too(self):
        with pytest.warns(RuntimeWarning, match="turbo"):
            assert resolve_mode("turbo", default="ci") == "ci"

    def test_jobs_default_and_env(self, monkeypatch):
        assert resolve_jobs() == 0
        monkeypatch.setenv("REPRO_BENCH_JOBS", "6")
        assert resolve_jobs() == 6

    def test_jobs_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_JOBS", "6")
        assert resolve_jobs(2) == 2

    def test_jobs_non_integer_warns(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_JOBS", "many")
        with pytest.warns(RuntimeWarning, match="not an integer"):
            assert resolve_jobs(default=4) == 4

    def test_jobs_negative_warns(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_JOBS", "-2")
        with pytest.warns(RuntimeWarning, match="negative"):
            assert resolve_jobs() == 0
