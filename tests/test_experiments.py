"""Smoke tests for the experiment harness (fast configurations).

The benchmarks run the full paper-scale experiments; these tests ensure
each harness stays runnable and structurally sane using reduced
configurations.
"""

import pytest

from repro.benchdb import ctrl
from repro.experiments import common
from repro.experiments.ablations import (
    run_greedy_vs_exhaustive,
    run_k_sweep,
)
from repro.experiments.example5 import run_example5
from repro.experiments.figure11 import run_figure11
from repro.experiments.figure12 import run_figure12
from repro.experiments.validation import (
    run_validation,
    validation_layouts,
    validation_workload_set,
)


class TestCommon:
    def test_paper_farm_shape(self):
        farm = common.paper_farm()
        assert len(farm) == 8

    def test_separated_layout_is_disjoint(self):
        from repro.benchdb import tpch
        db = tpch.tpch_database()
        farm = common.paper_farm()
        layout = common.separated_lineitem_orders(db, farm)
        lineitem = set(layout.disks_of("lineitem"))
        orders = set(layout.disks_of("orders"))
        assert not lineitem & orders
        assert len(lineitem) == 5 and len(orders) == 3

    @pytest.mark.parametrize("overlap", [0, 1, 2, 3])
    def test_controlled_overlap_layouts(self, overlap):
        from repro.benchdb import tpch
        db = tpch.tpch_database()
        farm = common.paper_farm()
        layout = common.controlled_overlap_layout(db, farm, overlap)
        lineitem = set(layout.disks_of("lineitem"))
        orders = set(layout.disks_of("orders"))
        assert len(lineitem & orders) == overlap

    def test_controlled_overlap_bounds(self):
        from repro.benchdb import tpch
        db = tpch.tpch_database()
        with pytest.raises(ValueError):
            common.controlled_overlap_layout(db, common.paper_farm(), 4)

    def test_format_table_aligns(self):
        text = common.format_table(["a", "bee"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2

    def test_improvement_pct(self):
        assert common.improvement_pct(100, 75) == pytest.approx(25.0)
        assert common.improvement_pct(0, 10) == 0.0


class TestHarnesses:
    def test_example5_defaults(self):
        result = run_example5()
        assert result.ordering_holds

    def test_validation_small(self):
        result = run_validation(workloads=[ctrl.wk_ctrl1()],
                                n_random_layouts=1)
        assert result.agreement_pct >= 60
        # 1 random + 4 overlap + separated + striping = 7 layouts
        agreed, total = result.per_workload["WK-CTRL1"]
        assert total == 21  # C(7, 2)

    def test_validation_layout_set_shape(self):
        from repro.benchdb import tpch
        db = tpch.tpch_database()
        layouts = validation_layouts(db, common.paper_farm())
        assert len(layouts) == 10
        names = [name for name, _ in layouts]
        assert "full-striping" in names

    def test_validation_workload_set_shape(self):
        workloads = validation_workload_set(n_synthetic=2,
                                            synthetic_queries=5)
        assert len(workloads) == 5  # ctrl1, ctrl2, tpch22 + 2 synth

    def test_figure11_tiny(self):
        from repro.benchdb import tpch
        cases = [(tpch.tpch_database(), ctrl.wk_ctrl1())]
        result = run_figure11(disk_counts=(2, 4), cases=cases)
        ratios = result.ratios("WK-CTRL1")
        assert ratios[0] == 1.0
        assert ratios[1] > 1.0

    def test_figure12_tiny(self):
        result = run_figure12(factors=(1, 2))
        assert len(result.seconds) == 2
        assert result.n_objects == [8, 16]

    def test_greedy_vs_exhaustive_optimality(self):
        result = run_greedy_vs_exhaustive(n_tables=3, m_disks=2)
        assert result.quality_ratio <= 1.05

    def test_k_sweep_rows(self):
        result = run_k_sweep(k_values=(1, 2), workload=ctrl.wk_ctrl1())
        assert [row[0] for row in result.rows] == [1, 2]

    def test_migration_study_smoke(self):
        from repro.experiments.migration import run_migration_study
        result = run_migration_study(throttles=(None,))
        assert result.plan_steps > 0
        assert result.moved_blocks > 0
        # The separated target must beat striping on this workload,
        # so the single unthrottled window pays back eventually.
        assert result.target_s < result.baseline_s
        row = result.rows[0]
        assert row.windows == 1
        assert row.peak_degradation > 1.0
        assert row.time_to_benefit_s is not None
