"""Tests for the temp-aware cost-model extension.

The paper's cost-model implementation ignored temp (tempdb) I/O and
paid for it in the validation experiment.  The extension charges each
subplan's temp streams to a dedicated temp drive that participates in
the last-disk-to-finish max.
"""

import pytest

from repro.core.costmodel import CostModel
from repro.core.layout import Layout, stripe_fractions
from repro.optimizer.operators import ObjectAccess
from repro.optimizer.planner import TEMPDB
from repro.storage.disk import DiskSpec, uniform_farm
from repro.workload.access import SubplanAccess


def _tempdb(read=10.0, seek_ms=10.0):
    return DiskSpec("tempdb", capacity_blocks=100_000,
                    avg_seek_s=seek_ms / 1000, read_mb_s=read,
                    write_mb_s=read)


class TestTempAwareCostModel:
    def setup_method(self):
        self.farm = uniform_farm(2, read_mb_s=10.0, seek_ms=10.0)
        self.T = self.farm[0].read_blocks_s
        self.layout = Layout(self.farm, {"A": 100}, {
            "A": stripe_fractions([0, 1], self.farm)})

    def test_default_model_ignores_temp(self):
        model = CostModel(self.farm)
        with_temp = SubplanAccess([
            ObjectAccess("A", 100),
            ObjectAccess(TEMPDB, 10_000, write=True)])
        without = SubplanAccess([ObjectAccess("A", 100)])
        assert model.subplan_cost(with_temp, self.layout) == \
            pytest.approx(model.subplan_cost(without, self.layout))

    def test_temp_transfer_charged(self):
        model = CostModel(self.farm, tempdb=_tempdb())
        subplan = SubplanAccess([ObjectAccess(TEMPDB, 320, write=True)])
        assert model.subplan_cost(subplan, self.layout) == \
            pytest.approx(320 / self.T)

    def test_temp_participates_in_the_max(self):
        """A huge spill dominates a small base-table read."""
        model = CostModel(self.farm, tempdb=_tempdb())
        subplan = SubplanAccess([
            ObjectAccess("A", 10),
            ObjectAccess(TEMPDB, 10_000, write=True)])
        assert model.subplan_cost(subplan, self.layout) == \
            pytest.approx(10_000 / self.T)

    def test_small_temp_hidden_behind_base_io(self):
        model = CostModel(self.farm, tempdb=_tempdb())
        subplan = SubplanAccess([
            ObjectAccess("A", 100),          # 50 blocks/disk
            ObjectAccess(TEMPDB, 10, write=True)])
        base_only = SubplanAccess([ObjectAccess("A", 100)])
        assert model.subplan_cost(subplan, self.layout) == \
            pytest.approx(model.subplan_cost(base_only, self.layout))

    def test_spill_passes_are_sequential(self):
        """A sort writes its run files fully before reading them back,
        so the write and read streams pay transfer only — no Fig.-7
        interleave seek term."""
        model = CostModel(self.farm, tempdb=_tempdb())
        subplan = SubplanAccess([
            ObjectAccess(TEMPDB, 300, write=True),
            ObjectAccess(TEMPDB, 150, write=False)])
        assert model.subplan_cost(subplan, self.layout) == \
            pytest.approx(450 / self.T)

    def test_temp_awareness_changes_layout_comparisons(self, mini_db,
                                                       farm8):
        """Temp-heavy statements dilute layout differences — the
        temp-aware model sees that, the paper's implementation doesn't."""
        from repro.core.fullstripe import full_striping
        from repro.optimizer.planner import Planner
        from repro.workload.access import analyze_workload
        from repro.workload.workload import Workload

        workload = Workload()
        workload.add("SELECT COUNT(*) FROM big b, mid m "
                     "WHERE b.k = m.k", name="join")
        workload.add("SELECT b.k, b.v, b.d FROM big b ORDER BY b.v",
                     name="bigsort")
        analyzed = analyze_workload(
            workload, mini_db, Planner(mini_db, memory_blocks=64))
        sizes = mini_db.object_sizes()
        striped = full_striping(sizes, farm8)
        fractions = {name: stripe_fractions(range(8), farm8)
                     for name in sizes}
        fractions["big"] = stripe_fractions(range(5), farm8)
        fractions["mid"] = stripe_fractions(range(5, 8), farm8)
        separated = Layout(farm8, sizes, fractions)

        blind = CostModel(farm8)
        aware = CostModel(farm8, tempdb=_tempdb(read=40.0, seek_ms=6.0))
        blind_gain = blind.workload_cost(analyzed, striped) \
            - blind.workload_cost(analyzed, separated)
        aware_gain = aware.workload_cost(analyzed, striped) \
            - aware.workload_cost(analyzed, separated)
        # The absolute gain is the same (temp cost is layout-independent
        # here), but the *relative* gain shrinks under the aware model.
        assert aware_gain == pytest.approx(blind_gain, rel=0.01)
        blind_rel = blind_gain / blind.workload_cost(analyzed, striped)
        aware_rel = aware_gain / aware.workload_cost(analyzed, striped)
        assert aware_rel < blind_rel
