"""Tests for column statistics and histograms."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.catalog.stats import ColumnStats, Histogram
from repro.errors import CatalogError


class TestHistogram:
    def test_uniform_factory(self):
        histogram = Histogram.uniform(0, 100, n_buckets=4)
        assert histogram.n_buckets == 4
        assert histogram.range_selectivity(0, 100) == pytest.approx(1.0)

    def test_partial_overlap_interpolates(self):
        histogram = Histogram.uniform(0, 100, n_buckets=4)
        assert histogram.range_selectivity(0, 50) == pytest.approx(0.5)
        assert histogram.range_selectivity(12.5, 37.5) == \
            pytest.approx(0.25)

    def test_skewed_buckets(self):
        histogram = Histogram(0, 100, (0.7, 0.1, 0.1, 0.1))
        assert histogram.range_selectivity(0, 25) == pytest.approx(0.7)
        assert histogram.range_selectivity(25, 100) == pytest.approx(0.3)

    def test_open_bounds(self):
        histogram = Histogram.uniform(0, 100)
        assert histogram.range_selectivity(None, None) == \
            pytest.approx(1.0)
        assert histogram.range_selectivity(50, None) == pytest.approx(0.5)

    def test_out_of_domain_clamps(self):
        histogram = Histogram.uniform(0, 100)
        assert histogram.range_selectivity(-50, -10) == 0.0
        assert histogram.range_selectivity(-50, 200) == pytest.approx(1.0)

    def test_degenerate_domain(self):
        histogram = Histogram(5, 5, (1.0,))
        assert histogram.range_selectivity(0, 10) == pytest.approx(1.0)

    @pytest.mark.parametrize("kwargs", [
        {"lo": 10, "hi": 0, "bucket_fractions": (1.0,)},
        {"lo": 0, "hi": 1, "bucket_fractions": ()},
        {"lo": 0, "hi": 1, "bucket_fractions": (0.5, 0.4)},
        {"lo": 0, "hi": 1, "bucket_fractions": (1.5, -0.5)},
    ])
    def test_invalid_histograms_rejected(self, kwargs):
        with pytest.raises(CatalogError):
            Histogram(**kwargs)

    @given(lo=st.floats(min_value=-1e6, max_value=1e6,
                        allow_nan=False),
           span=st.floats(min_value=0.001, max_value=1e6,
                          allow_nan=False),
           a=st.floats(min_value=0, max_value=1),
           b=st.floats(min_value=0, max_value=1))
    def test_property_selectivity_in_unit_interval(self, lo, span, a, b):
        histogram = Histogram.uniform(lo, lo + span, n_buckets=8)
        q_lo = lo + min(a, b) * span
        q_hi = lo + max(a, b) * span
        selectivity = histogram.range_selectivity(q_lo, q_hi)
        assert 0.0 <= selectivity <= 1.0
        # Widening the range can only increase selectivity.
        wider = histogram.range_selectivity(q_lo - span * 0.1,
                                            q_hi + span * 0.1)
        assert wider >= selectivity - 1e-9


class TestColumnStats:
    def test_equality_selectivity_is_one_over_ndv(self):
        stats = ColumnStats(ndv=100)
        assert stats.equality_selectivity() == pytest.approx(0.01)

    def test_null_fraction_discount(self):
        stats = ColumnStats(ndv=10, null_fraction=0.5)
        assert stats.equality_selectivity() == pytest.approx(0.05)

    def test_range_uniform_interpolation(self):
        stats = ColumnStats(ndv=100, lo=0, hi=100)
        assert stats.range_selectivity(0, 50) == pytest.approx(0.5)
        assert stats.range_selectivity(None, 25) == pytest.approx(0.25)
        assert stats.range_selectivity(25, None) == pytest.approx(0.75)

    def test_range_without_domain_uses_magic(self):
        stats = ColumnStats(ndv=100)
        assert stats.range_selectivity(0, 10) == pytest.approx(1 / 3)

    def test_range_uses_histogram_when_present(self):
        stats = ColumnStats(ndv=100, lo=0, hi=100,
                            histogram=Histogram(0, 100,
                                                (0.9, 0.1)))
        assert stats.range_selectivity(0, 50) == pytest.approx(0.9)

    def test_degenerate_domain(self):
        stats = ColumnStats(ndv=1, lo=7, hi=7)
        assert stats.range_selectivity(0, 10) == pytest.approx(1.0)
        assert stats.range_selectivity(8, 10) == 0.0

    def test_empty_range(self):
        stats = ColumnStats(ndv=100, lo=0, hi=100)
        assert stats.range_selectivity(60, 40) == 0.0

    @pytest.mark.parametrize("kwargs", [
        {"ndv": 0}, {"ndv": -1},
        {"ndv": 10, "null_fraction": 1.5},
        {"ndv": 10, "lo": 5.0},           # lo without hi
        {"ndv": 10, "lo": 5.0, "hi": 1.0},
    ])
    def test_invalid_stats_rejected(self, kwargs):
        with pytest.raises(CatalogError):
            ColumnStats(**kwargs)
