"""Tests for the simulated-annealing baseline searcher."""

import pytest

from repro.core.annealing import annealing_search
from repro.core.costmodel import WorkloadCostEvaluator
from repro.core.fullstripe import full_striping
from repro.core.greedy import TsGreedySearch
from repro.errors import LayoutError
from repro.workload.access import analyze_workload
from repro.workload.access_graph import build_access_graph


def _setup(mini_db, join_workload, farm8):
    analyzed = analyze_workload(join_workload, mini_db)
    sizes = mini_db.object_sizes()
    evaluator = WorkloadCostEvaluator(analyzed, farm8, sorted(sizes))
    return evaluator, sizes


class TestAnnealing:
    def test_deterministic_for_a_seed(self, mini_db, join_workload,
                                      farm8):
        evaluator, sizes = _setup(mini_db, join_workload, farm8)
        a = annealing_search(farm8, evaluator, sizes, seed=7,
                             iterations=300)
        b = annealing_search(farm8, evaluator, sizes, seed=7,
                             iterations=300)
        assert a.cost == b.cost
        for name in sizes:
            assert a.layout.fractions_of(name) == \
                b.layout.fractions_of(name)

    def test_never_worse_than_full_striping(self, mini_db,
                                            join_workload, farm8):
        evaluator, sizes = _setup(mini_db, join_workload, farm8)
        result = annealing_search(farm8, evaluator, sizes, seed=1,
                                  iterations=500)
        striping = evaluator.cost(full_striping(sizes, farm8))
        # Best-so-far tracking starts at full striping.
        assert result.cost <= striping + 1e-9

    def test_layout_is_valid(self, mini_db, join_workload, farm8):
        evaluator, sizes = _setup(mini_db, join_workload, farm8)
        result = annealing_search(farm8, evaluator, sizes, seed=2,
                                  iterations=300)
        for name in sizes:
            assert sum(result.layout.fractions_of(name)) == \
                pytest.approx(1.0)

    def test_positive_iterations_required(self, mini_db, join_workload,
                                          farm8):
        evaluator, sizes = _setup(mini_db, join_workload, farm8)
        with pytest.raises(LayoutError):
            annealing_search(farm8, evaluator, sizes, iterations=0)

    def test_greedy_dominates_annealing(self, mini_db, join_workload,
                                        farm8):
        """The paper's Section-6 claim, as an executable fact: the
        domain-aware heuristic beats the generic search at a comparable
        evaluation budget."""
        evaluator, sizes = _setup(mini_db, join_workload, farm8)
        analyzed = analyze_workload(join_workload, mini_db)
        graph = build_access_graph(analyzed, mini_db)
        greedy = TsGreedySearch(farm8, evaluator, sizes).search(graph)
        annealed = annealing_search(
            farm8, evaluator, sizes, seed=3,
            iterations=max(500, 2 * greedy.evaluations))
        assert greedy.cost <= annealed.cost + 1e-9
