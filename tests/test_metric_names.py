"""The metric-name registry: one catalog, no undeclared emissions."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.core.advisor import LayoutAdvisor
from repro.obs import METRIC_CATALOG, MetricsRegistry
from repro.obs.names import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    metric_help,
    metric_kind,
)

SRC = Path(__file__).parent.parent / "src" / "repro"

#: Literal metric emissions in library source: ``.inc("name"`` /
#: ``.set_gauge("name"`` / ``.observe("name"``.
_EMISSION = re.compile(
    r"\.(inc|set_gauge|observe)\(\s*[\"']([a-z0-9_.]+)[\"']")

_EXPECTED_KIND = {"inc": COUNTER, "set_gauge": GAUGE,
                  "observe": HISTOGRAM}


def _emissions():
    for path in sorted(SRC.rglob("*.py")):
        if path.name in ("metrics.py", "names.py"):
            continue  # the registry machinery itself
        for method, name in _EMISSION.findall(path.read_text()):
            yield path.relative_to(SRC), method, name


class TestCatalog:
    def test_catalog_entries_are_well_formed(self):
        for name, (kind, help_text) in METRIC_CATALOG.items():
            assert kind in (COUNTER, GAUGE, HISTOGRAM), name
            assert help_text, f"{name} has no help text"
            assert re.fullmatch(r"[a-z0-9_.]+", name), name

    def test_helpers_answer_for_every_entry(self):
        for name in METRIC_CATALOG:
            assert metric_kind(name)
            assert metric_help(name)

    def test_every_source_emission_is_declared(self):
        undeclared = [
            f"{path}: {method}({name!r})"
            for path, method, name in _emissions()
            if name not in METRIC_CATALOG]
        assert not undeclared, \
            "metric emissions missing from METRIC_CATALOG:\n  " \
            + "\n  ".join(undeclared)

    def test_every_source_emission_matches_declared_kind(self):
        mismatched = [
            f"{path}: {method}({name!r}) vs catalog "
            f"{METRIC_CATALOG[name][0]}"
            for path, method, name in _emissions()
            if name in METRIC_CATALOG
            and METRIC_CATALOG[name][0] != _EXPECTED_KIND[method]]
        assert not mismatched, \
            "metric emissions disagree with METRIC_CATALOG kind:\n  " \
            + "\n  ".join(mismatched)

    def test_source_scan_finds_emissions_at_all(self):
        # Guard the regex itself: if the emission idiom changes, this
        # scan must fail loudly rather than silently check nothing.
        assert sum(1 for _ in _emissions()) >= 20


class TestStrictRegistry:
    def test_undeclared_name_rejected(self):
        metrics = MetricsRegistry(strict=True)
        with pytest.raises(ValueError, match="not declared"):
            metrics.inc("made.up.counter")

    def test_kind_mismatch_rejected(self):
        metrics = MetricsRegistry(strict=True)
        with pytest.raises(ValueError, match="declared as"):
            metrics.set_gauge("greedy.evaluations", 1.0)

    def test_declared_names_accepted(self):
        metrics = MetricsRegistry(strict=True)
        metrics.inc("greedy.evaluations")
        metrics.set_gauge("drift.score", 0.5)
        metrics.observe("greedy.candidates_per_iteration", 3)

    def test_full_advisor_run_emits_only_declared_metrics(
            self, mini_db, farm8, join_workload):
        # The integration backstop: a real recommendation under a
        # strict registry — any undeclared emission raises.
        metrics = MetricsRegistry(strict=True)
        advisor = LayoutAdvisor(mini_db, farm8, metrics=metrics)
        recommendation = advisor.recommend(join_workload)
        assert recommendation.estimated_cost > 0
        snapshot = metrics.to_dict()
        emitted = (set(snapshot["counters"]) | set(snapshot["gauges"])
                   | set(snapshot["histograms"]))
        assert emitted <= set(METRIC_CATALOG)

    def test_portfolio_run_emits_only_declared_metrics(
            self, mini_db, farm8, join_workload):
        metrics = MetricsRegistry(strict=True)
        advisor = LayoutAdvisor(mini_db, farm8, metrics=metrics)
        advisor.recommend(join_workload, method="portfolio", jobs=2)
        snapshot = metrics.to_dict()
        emitted = (set(snapshot["counters"]) | set(snapshot["gauges"])
                   | set(snapshot["histograms"]))
        assert emitted <= set(METRIC_CATALOG)
