"""The telemetry contracts: one catalog, no undeclared emissions.

The source-wide scan is the AST contract checker (``RPC301``–``RPC304``
in :mod:`repro.analysis.code.telemetry`), which replaced the regex
scrape this file used to run: string literals in comments/docstrings no
longer count, multi-line calls resolve, the method must agree with the
declared kind, and the same pass covers ``EventRecorder.emit`` against
``EVENT_TYPES``.  The adversarial cases prove each rule still catches
a planted violation; the strict-registry tests remain the runtime
backstop for dynamic names the static pass cannot resolve.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis.code import analyze_paths
from repro.core.advisor import LayoutAdvisor
from repro.obs import METRIC_CATALOG, MetricsRegistry
from repro.obs.events import EVENT_TYPES
from repro.obs.names import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    metric_help,
    metric_kind,
)

SRC = Path(__file__).parent.parent / "src" / "repro"


def telemetry_findings(path: Path):
    return analyze_paths([path], select=["RPC30"]).report.diagnostics


class TestCatalog:
    def test_catalog_entries_are_well_formed(self):
        for name, (kind, help_text) in METRIC_CATALOG.items():
            assert kind in (COUNTER, GAUGE, HISTOGRAM), name
            assert help_text, f"{name} has no help text"
            assert re.fullmatch(r"[a-z0-9_.]+", name), name

    def test_event_types_are_well_formed(self):
        for name, description in EVENT_TYPES.items():
            assert description, f"{name} has no description"
            assert re.fullmatch(r"[a-z0-9-]+", name), name

    def test_helpers_answer_for_every_entry(self):
        for name in METRIC_CATALOG:
            assert metric_kind(name)
            assert metric_help(name)


class TestStaticContract:
    """The RPC3xx AST pass over the real tree plus planted violations."""

    def test_source_tree_has_no_telemetry_violations(self):
        findings = telemetry_findings(SRC)
        rendered = "\n".join(d.render() for d in findings)
        assert not findings, \
            f"telemetry contract violations in src/:\n{rendered}"

    def test_undeclared_metric_caught(self, tmp_path):
        planted = tmp_path / "planted.py"
        planted.write_text("def f(m):\n    m.inc('made.up.counter')\n")
        (finding,) = telemetry_findings(planted)
        assert finding.rule_id == "RPC301"

    def test_kind_mismatch_caught(self, tmp_path):
        planted = tmp_path / "planted.py"
        planted.write_text(
            "def f(m):\n"
            "    m.set_gauge('greedy.evaluations', 1.0)\n")
        (finding,) = telemetry_findings(planted)
        assert finding.rule_id == "RPC302"

    def test_undeclared_event_caught(self, tmp_path):
        planted = tmp_path / "planted.py"
        planted.write_text(
            "def f(r):\n    r.emit('made-up-event', n=1)\n")
        (finding,) = telemetry_findings(planted)
        assert finding.rule_id == "RPC303"

    def test_dynamic_name_reported(self, tmp_path):
        planted = tmp_path / "planted.py"
        planted.write_text("def f(m, name):\n    m.inc(name)\n")
        (finding,) = telemetry_findings(planted)
        assert finding.rule_id == "RPC304"

    def test_multiline_emission_resolves(self, tmp_path):
        # The old regex scrape missed these; the AST pass must not.
        planted = tmp_path / "planted.py"
        planted.write_text(
            "def f(m):\n"
            "    m.inc(\n"
            "        'made.up.counter',\n"
            "        2)\n")
        (finding,) = telemetry_findings(planted)
        assert finding.rule_id == "RPC301"

    def test_docstring_mention_is_not_an_emission(self, tmp_path):
        planted = tmp_path / "planted.py"
        planted.write_text(
            '"""Docs quoting m.inc("made.up.counter") literally."""\n'
            "# comment: m.observe('also.not.real')\n")
        assert not telemetry_findings(planted)


class TestStrictRegistry:
    def test_undeclared_name_rejected(self):
        metrics = MetricsRegistry(strict=True)
        with pytest.raises(ValueError, match="not declared"):
            metrics.inc("made.up.counter")

    def test_kind_mismatch_rejected(self):
        metrics = MetricsRegistry(strict=True)
        with pytest.raises(ValueError, match="declared as"):
            metrics.set_gauge("greedy.evaluations", 1.0)

    def test_declared_names_accepted(self):
        metrics = MetricsRegistry(strict=True)
        metrics.inc("greedy.evaluations")
        metrics.set_gauge("drift.score", 0.5)
        metrics.observe("greedy.candidates_per_iteration", 3)

    def test_full_advisor_run_emits_only_declared_metrics(
            self, mini_db, farm8, join_workload):
        # The integration backstop: a real recommendation under a
        # strict registry — any undeclared emission raises.
        metrics = MetricsRegistry(strict=True)
        advisor = LayoutAdvisor(mini_db, farm8, metrics=metrics)
        recommendation = advisor.recommend(join_workload)
        assert recommendation.estimated_cost > 0
        snapshot = metrics.to_dict()
        emitted = (set(snapshot["counters"]) | set(snapshot["gauges"])
                   | set(snapshot["histograms"]))
        assert emitted <= set(METRIC_CATALOG)

    def test_portfolio_run_emits_only_declared_metrics(
            self, mini_db, farm8, join_workload):
        metrics = MetricsRegistry(strict=True)
        advisor = LayoutAdvisor(mini_db, farm8, metrics=metrics)
        advisor.recommend(join_workload, method="portfolio", jobs=2)
        snapshot = metrics.to_dict()
        emitted = (set(snapshot["counters"]) | set(snapshot["gauges"])
                   | set(snapshot["histograms"]))
        assert emitted <= set(METRIC_CATALOG)
