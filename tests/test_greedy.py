"""Tests for the TS-GREEDY search (Figure 9)."""

import pytest

from repro.core.constraints import (
    AvailabilityRequirement,
    CoLocated,
    ConstraintSet,
    MaxDataMovement,
)
from repro.core.costmodel import WorkloadCostEvaluator
from repro.core.fullstripe import full_striping
from repro.core.greedy import TsGreedySearch
from repro.core.layout import Layout, stripe_fractions
from repro.errors import LayoutError
from repro.storage.disk import Availability, DiskFarm, DiskSpec
from repro.workload.access import analyze_workload
from repro.workload.access_graph import build_access_graph
from repro.workload.workload import Workload


def _search_parts(mini_db, workload, farm, constraints=None, k=1):
    analyzed = analyze_workload(workload, mini_db)
    sizes = mini_db.object_sizes()
    evaluator = WorkloadCostEvaluator(analyzed, farm, sorted(sizes))
    graph = build_access_graph(analyzed, mini_db)
    search = TsGreedySearch(farm, evaluator, sizes,
                            constraints=constraints, k=k)
    return search, graph, evaluator, sizes


class TestTsGreedy:
    def test_separates_co_accessed_objects(self, mini_db,
                                           join_workload, farm8):
        search, graph, evaluator, sizes = _search_parts(
            mini_db, join_workload, farm8)
        result = search.search(graph)
        big = set(result.layout.disks_of("big"))
        mid = set(result.layout.disks_of("mid"))
        assert not big & mid

    def test_beats_full_striping_on_join_workload(self, mini_db,
                                                  join_workload, farm8):
        search, graph, evaluator, sizes = _search_parts(
            mini_db, join_workload, farm8)
        result = search.search(graph)
        assert result.cost < evaluator.cost(full_striping(sizes, farm8))

    def test_greedy_never_worse_than_initial(self, mini_db,
                                             join_workload, farm8):
        search, graph, _, _ = _search_parts(mini_db, join_workload,
                                            farm8)
        result = search.search(graph)
        assert result.cost <= result.initial_cost + 1e-9

    def test_scan_only_workload_converges_to_wide_striping(self,
                                                           mini_db,
                                                           farm8):
        workload = Workload()
        workload.add("SELECT COUNT(*) FROM big b", name="scan")
        search, graph, evaluator, sizes = _search_parts(
            mini_db, workload, farm8)
        result = search.search(graph)
        # No co-access anywhere: the scanned object ends up striped over
        # every disk, like FULL STRIPING (the paper's APB observation).
        assert len(result.layout.disks_of("big")) == len(farm8)
        assert result.cost == pytest.approx(
            evaluator.cost(full_striping(sizes, farm8)), rel=1e-6)

    def test_telemetry_populated(self, mini_db, join_workload, farm8):
        search, graph, _, _ = _search_parts(mini_db, join_workload,
                                            farm8)
        result = search.search(graph)
        assert result.iterations >= 1
        assert result.evaluations > 0
        assert result.elapsed_s >= 0.0

    def test_k_must_be_positive(self, mini_db, join_workload, farm8):
        with pytest.raises(LayoutError):
            _search_parts(mini_db, join_workload, farm8, k=0)

    def test_k2_explores_more(self, mini_db, join_workload, farm8):
        search1, graph, _, _ = _search_parts(mini_db, join_workload,
                                             farm8, k=1)
        search2, _, _, _ = _search_parts(mini_db, join_workload,
                                         farm8, k=2)
        r1 = search1.search(graph)
        r2 = search2.search(graph)
        assert r2.evaluations > r1.evaluations

    def test_initial_layout_never_regresses(self, mini_db,
                                            join_workload, farm8):
        search, graph, evaluator, sizes = _search_parts(
            mini_db, join_workload, farm8)
        start = full_striping(sizes, farm8)
        result = search.search(graph, initial_layout=start)
        assert result.cost <= evaluator.cost(start) + 1e-9

    def test_incremental_mode_narrows_partial_overlap(self, mini_db,
                                                      join_workload,
                                                      farm8):
        """A single-disk overlap between co-accessed objects sits on the
        steep side of the paper's 0-vs-1-disk valley; a narrowing move
        fixes it, which only incremental mode can do."""
        search, graph, evaluator, sizes = _search_parts(
            mini_db, join_workload, farm8)
        fractions = {name: stripe_fractions(range(8), farm8)
                     for name in sizes}
        fractions["big"] = stripe_fractions(range(0, 5), farm8)
        fractions["mid"] = stripe_fractions(range(4, 8), farm8)
        start = Layout(farm8, sizes, fractions)
        result = search.search(graph, initial_layout=start)
        assert result.cost < evaluator.cost(start)
        assert not set(result.layout.disks_of("big")) \
            & set(result.layout.disks_of("mid"))

    def test_result_layout_is_valid(self, mini_db, join_workload,
                                    farm8):
        search, graph, _, sizes = _search_parts(mini_db, join_workload,
                                                farm8)
        layout = search.search(graph).layout
        for name in sizes:
            assert sum(layout.fractions_of(name)) == pytest.approx(1.0)


class TestConstrainedSearch:
    def test_co_location_respected(self, mini_db, join_workload, farm8):
        constraints = ConstraintSet(co_located=[CoLocated("big", "mid")])
        search, graph, _, _ = _search_parts(
            mini_db, join_workload, farm8, constraints=constraints)
        layout = search.search(graph).layout
        assert layout.disks_of("big") == layout.disks_of("mid")

    def test_availability_respected(self, mini_db, join_workload):
        def disk(name, avail):
            return DiskSpec(name=name, capacity_blocks=200_000,
                            avg_seek_s=0.006, read_mb_s=40.0,
                            write_mb_s=36.0, availability=avail)
        farm = DiskFarm([disk("M1", Availability.MIRRORING),
                         disk("M2", Availability.MIRRORING),
                         disk("N1", Availability.NONE),
                         disk("N2", Availability.NONE)])
        constraints = ConstraintSet(availability=[
            AvailabilityRequirement("big", Availability.MIRRORING)])
        search, graph, _, _ = _search_parts(
            mini_db, join_workload, farm, constraints=constraints)
        layout = search.search(graph).layout
        assert set(layout.disks_of("big")) <= {0, 1}

    def test_movement_constraint_limits_changes(self, mini_db,
                                                join_workload, farm8):
        sizes = mini_db.object_sizes()
        # Start from a narrow layout; the bound blocks most widenings.
        narrow = Layout(farm8, sizes, {
            name: stripe_fractions([i % 8], farm8)
            for i, name in enumerate(sorted(sizes))})
        constraints = ConstraintSet(
            movement=MaxDataMovement(narrow, max_blocks=500))
        search, graph, _, _ = _search_parts(
            mini_db, join_workload, farm8, constraints=constraints)
        result = search.search(graph, initial_layout=narrow)
        moved = narrow.data_movement_blocks(result.layout)
        assert moved <= 500 + 1e-6

    def test_raid_write_penalty_raises_write_heavy_costs(self, mini_db):
        """The RAID write penalty flows through search results: the same
        write-heavy workload costs more on a parity farm than on plain
        drives of identical raw speed."""
        from repro.workload.workload import Workload

        def best_cost(availability):
            farm = DiskFarm([
                DiskSpec(f"D{i}", 200_000, 0.006, 40.0, 36.0,
                         availability=availability)
                for i in range(4)])
            workload = Workload()
            workload.add("INSERT INTO mid SELECT b.dim_id, b.v "
                         "FROM big b", name="bulk_load")
            search, graph, _, _ = _search_parts(mini_db, workload, farm)
            return search.search(graph).cost

        plain = best_cost(Availability.NONE)
        parity = best_cost(Availability.PARITY)
        # Writes dominate this workload; RAID 5's 4x write penalty must
        # show up even in the best layout each search can find.
        assert parity > 2.0 * plain

    def test_missing_sizes_rejected(self, mini_db, join_workload,
                                    farm8):
        analyzed = analyze_workload(join_workload, mini_db)
        evaluator = WorkloadCostEvaluator(
            analyzed, farm8, sorted(mini_db.object_sizes()))
        with pytest.raises(LayoutError, match="no sizes"):
            TsGreedySearch(farm8, evaluator, {"big": 100})
