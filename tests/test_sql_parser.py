"""Tests for the SQL parser."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import ast, parse_script, parse_statement


class TestSelectBasics:
    def test_star(self):
        stmt = parse_statement("SELECT * FROM t")
        assert stmt.select_star and stmt.items == ()
        assert stmt.from_tables == (ast.TableRef("t"),)

    def test_items_and_aliases(self):
        stmt = parse_statement("SELECT a, b AS bee, c cee FROM t")
        assert [i.alias for i in stmt.items] == [None, "bee", "cee"]

    def test_table_aliases(self):
        stmt = parse_statement("SELECT * FROM orders AS o, lineitem l")
        assert stmt.from_tables[0].binding == "o"
        assert stmt.from_tables[1].binding == "l"

    def test_distinct_and_top(self):
        stmt = parse_statement("SELECT DISTINCT TOP 5 a FROM t")
        assert stmt.distinct and stmt.top == 5

    def test_limit_sets_top(self):
        stmt = parse_statement("SELECT a FROM t LIMIT 7")
        assert stmt.top == 7

    def test_group_by_having_order_by(self):
        stmt = parse_statement(
            "SELECT a, COUNT(*) FROM t GROUP BY a "
            "HAVING COUNT(*) > 5 ORDER BY a DESC")
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].descending

    def test_order_by_asc_default(self):
        stmt = parse_statement("SELECT a FROM t ORDER BY a ASC, b")
        assert [o.descending for o in stmt.order_by] == [False, False]

    def test_trailing_semicolon_ok(self):
        parse_statement("SELECT a FROM t;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT a FROM t SELECT")

    def test_missing_from_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT a WHERE x = 1")


class TestJoins:
    def test_explicit_inner_join(self):
        stmt = parse_statement(
            "SELECT * FROM a JOIN b ON a.x = b.y")
        assert stmt.joins[0].kind == "INNER"

    def test_left_outer_join(self):
        stmt = parse_statement(
            "SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y")
        assert stmt.joins[0].kind == "LEFT"

    def test_mixed_implicit_and_explicit(self):
        stmt = parse_statement(
            "SELECT * FROM a, b INNER JOIN c ON b.x = c.y")
        assert len(stmt.from_tables) == 2
        assert len(stmt.joins) == 1

    def test_join_requires_on(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT * FROM a JOIN b")


class TestExpressions:
    def where(self, cond):
        return parse_statement(f"SELECT * FROM t WHERE {cond}").where

    def test_precedence_or_and(self):
        expr = self.where("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "OR"
        assert isinstance(expr.right, ast.BinaryOp)
        assert expr.right.op == "AND"

    def test_arithmetic_precedence(self):
        expr = self.where("a = 1 + 2 * 3")
        plus = expr.right
        assert isinstance(plus, ast.BinaryOp) and plus.op == "+"
        assert isinstance(plus.right, ast.BinaryOp)
        assert plus.right.op == "*"

    def test_parenthesized(self):
        expr = self.where("(a = 1 OR b = 2) AND c = 3")
        assert expr.op == "AND"
        assert expr.left.op == "OR"

    def test_between(self):
        expr = self.where("a BETWEEN 1 AND 10")
        assert isinstance(expr, ast.BetweenExpr) and not expr.negated

    def test_not_between(self):
        expr = self.where("a NOT BETWEEN 1 AND 10")
        assert isinstance(expr, ast.BetweenExpr) and expr.negated

    def test_in_list(self):
        expr = self.where("a IN (1, 2, 3)")
        assert isinstance(expr, ast.InList)
        assert [v.value for v in expr.values] == [1, 2, 3]

    def test_not_in_list(self):
        expr = self.where("a NOT IN ('x', 'y')")
        assert isinstance(expr, ast.InList) and expr.negated

    def test_like_and_not_like(self):
        assert isinstance(self.where("a LIKE 'x%'"), ast.LikeExpr)
        expr = self.where("a NOT LIKE '%y'")
        assert expr.negated

    def test_like_requires_string(self):
        with pytest.raises(SqlSyntaxError):
            self.where("a LIKE 5")

    def test_is_null_and_is_not_null(self):
        assert not self.where("a IS NULL").negated
        assert self.where("a IS NOT NULL").negated

    def test_unary_not_and_minus(self):
        expr = self.where("NOT a = -1")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "NOT"
        inner = expr.operand
        assert isinstance(inner.right, ast.UnaryOp)

    def test_date_literal(self):
        expr = self.where("a < DATE '1995-03-15'")
        assert expr.right == ast.Literal("1995-03-15")

    def test_null_literal(self):
        expr = self.where("a = NULL")
        assert expr.right == ast.Literal(None)

    def test_comparison_normalizes_bang_equals(self):
        assert self.where("a != 1").op == "<>"

    def test_case_expression(self):
        stmt = parse_statement(
            "SELECT SUM(CASE WHEN a = 1 THEN b ELSE 0 END) FROM t")
        agg = stmt.items[0].expr
        case = agg.args[0]
        assert isinstance(case, ast.CaseExpr)
        assert case.else_ == ast.Literal(0)

    def test_case_requires_when(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT CASE END FROM t")

    def test_aggregates(self):
        stmt = parse_statement(
            "SELECT COUNT(*), SUM(a), COUNT(DISTINCT b) FROM t")
        count, total, distinct = [i.expr for i in stmt.items]
        assert count.star
        assert total.name == "SUM"
        assert distinct.distinct

    def test_generic_function_call(self):
        stmt = parse_statement("SELECT myfunc(a, 1) FROM t")
        func = stmt.items[0].expr
        assert isinstance(func, ast.FuncCall)
        assert func.name == "MYFUNC" and len(func.args) == 2

    def test_string_concat(self):
        expr = self.where("a || 'x' = 'yx'")
        assert expr.left.op == "||"


class TestSubqueries:
    def test_in_subquery(self):
        stmt = parse_statement(
            "SELECT * FROM t WHERE a IN (SELECT b FROM u)")
        assert isinstance(stmt.where, ast.InSubquery)

    def test_exists(self):
        stmt = parse_statement(
            "SELECT * FROM t WHERE EXISTS (SELECT * FROM u WHERE "
            "u.x = t.y)")
        assert isinstance(stmt.where, ast.ExistsExpr)

    def test_not_exists_wrapped_in_not(self):
        stmt = parse_statement(
            "SELECT * FROM t WHERE NOT EXISTS (SELECT * FROM u)")
        assert isinstance(stmt.where, ast.UnaryOp)
        assert isinstance(stmt.where.operand, ast.ExistsExpr)

    def test_scalar_subquery_comparison(self):
        stmt = parse_statement(
            "SELECT * FROM t WHERE a > (SELECT AVG(b) FROM u)")
        assert isinstance(stmt.where.right, ast.ScalarSubquery)

    def test_nested_subqueries(self):
        stmt = parse_statement(
            "SELECT * FROM t WHERE a IN (SELECT b FROM u WHERE b IN "
            "(SELECT c FROM v))")
        inner = stmt.where.subquery.where
        assert isinstance(inner, ast.InSubquery)


class TestDml:
    def test_insert_values(self):
        stmt = parse_statement(
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, ast.Insert)
        assert stmt.columns == ("a", "b")
        assert len(stmt.values) == 2

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t SELECT a FROM u")
        assert stmt.source is not None and not stmt.values

    def test_update(self):
        stmt = parse_statement(
            "UPDATE t SET a = a + 1, b = 'x' WHERE c < 5")
        assert isinstance(stmt, ast.Update)
        assert [c for c, _ in stmt.assignments] == ["a", "b"]
        assert stmt.where is not None

    def test_update_requires_assignment(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("UPDATE t SET WHERE a = 1")

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, ast.Delete)

    def test_delete_without_where(self):
        assert parse_statement("DELETE FROM t").where is None


class TestScripts:
    def test_parse_script_multiple_statements(self):
        statements = parse_script(
            "SELECT a FROM t; DELETE FROM t; UPDATE t SET a = 1;")
        assert [type(s).__name__ for s in statements] == \
            ["Select", "Delete", "Update"]

    def test_unknown_statement_kind(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("CREATE TABLE t (a int)")


class TestColumnRefs:
    def test_column_refs_walks_everything(self):
        stmt = parse_statement(
            "SELECT a + b FROM t WHERE c BETWEEN d AND 5 "
            "AND e IN (1) AND f IS NULL")
        names = {r.name for r in ast.column_refs(stmt.items[0].expr)}
        assert names == {"a", "b"}
        where_names = {r.name for r in ast.column_refs(stmt.where)}
        assert where_names == {"c", "d", "e", "f"}

    def test_column_refs_skips_subquery_scope(self):
        stmt = parse_statement(
            "SELECT * FROM t WHERE a IN (SELECT b FROM u)")
        names = {r.name for r in ast.column_refs(stmt.where)}
        assert names == {"a"}
