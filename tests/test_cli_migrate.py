"""End-to-end CLI tests for ``repro-advisor migrate`` and journal
inspection: the crash → exit 3 → resume → exit 0 cycle the chaos CI
job drives, plus rollback and the online impact report."""

from __future__ import annotations

import json

import pytest

from repro.catalog.io import save_database, save_farm, save_layout
from repro.cli import main
from repro.core.fullstripe import full_striping
from repro.core.layout import Layout, stripe_fractions
from repro.storage.disk import winbench_farm


@pytest.fixture
def files(tmp_path, mini_db):
    farm = winbench_farm(8)
    sizes = mini_db.object_sizes()
    source = full_striping(sizes, farm)
    fractions = {name: stripe_fractions(range(len(farm)), farm)
                 for name in sizes}
    fractions["big"] = stripe_fractions([0, 1, 2, 3], farm)
    fractions["mid"] = stripe_fractions([4, 5, 6], farm)
    target = Layout(farm, sizes, fractions)
    save_database(mini_db, tmp_path / "db.json")
    save_farm(farm, tmp_path / "disks.json")
    save_layout(source, tmp_path / "current.json")
    save_layout(target, tmp_path / "target.json")
    (tmp_path / "w.sql").write_text(
        "-- name: S1\nSELECT COUNT(*) FROM big b;\n")
    return tmp_path


def _migrate(files, *extra):
    return ["migrate",
            "--disks", str(files / "disks.json"),
            "--current", str(files / "current.json"),
            "--target", str(files / "target.json"),
            "--journal", str(files / "journal.jsonl"), *extra]


class TestMigrateCycle:
    def test_execute_completes(self, files, capsys):
        rc = main(_migrate(files, "--execute"))
        assert rc == 0
        out = capsys.readouterr().out
        assert "migration execution" in out
        assert "complete" in out

    def test_crash_resume_inspect_cycle(self, files, capsys):
        rc = main(_migrate(files, "--execute",
                           "--faults", "crash_after_intent=1"))
        assert rc == 3  # interrupted, journal is a resumable prefix
        err = capsys.readouterr().err
        assert "--resume" in err
        assert (files / "journal.jsonl").exists()

        rc = main(_migrate(files, "--resume"))
        assert rc == 0
        out = capsys.readouterr().out
        assert "complete" in out
        assert "skipped" in out

        rc = main(["inspect", str(files / "journal.jsonl")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "migration journal" in out
        assert "status: complete" in out

    def test_crash_then_rollback(self, files, capsys):
        rc = main(_migrate(files, "--execute",
                           "--faults", "crash_before_done=1"))
        assert rc == 3
        capsys.readouterr()
        rc = main(_migrate(files, "--rollback"))
        assert rc == 0
        assert "rolled-back" in capsys.readouterr().out

    def test_permanent_failure_exits_two(self, files, capsys):
        rc = main(_migrate(files, "--execute",
                           "--faults", "fail_step=0:9999"))
        assert rc == 2
        assert "failed permanently" in capsys.readouterr().err

    def test_retries_recover_transient_failures(self, files, capsys):
        rc = main(_migrate(files, "--execute", "--retries", "2",
                           "--faults", "fail_step=1:2"))
        assert rc == 0
        assert "retried" in capsys.readouterr().out

    def test_online_impact_report(self, files, capsys):
        rc = main(_migrate(files, "--execute",
                           "--database", str(files / "db.json"),
                           "--workload", str(files / "w.sql")))
        assert rc == 0
        out = capsys.readouterr().out
        assert "online migration impact" in out
        assert "window" in out

    def test_inspect_json_summary(self, files, capsys):
        main(_migrate(files, "--execute"))
        capsys.readouterr()
        rc = main(["inspect", str(files / "journal.jsonl"),
                   "--format", "json"])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["status"] == "complete"
        assert summary["kinds"]["open"] == 1
        assert not summary["problems"]

    def test_inspect_flags_tampered_journal(self, files, capsys):
        main(_migrate(files, "--execute"))
        capsys.readouterr()
        journal = files / "journal.jsonl"
        records = [json.loads(line) for line
                   in journal.read_text().splitlines()]
        records[-1]["state"] = "0" * 16  # forge the close digest
        journal.write_text("".join(json.dumps(r) + "\n"
                                   for r in records))
        rc = main(["inspect", str(journal)])
        assert rc == 2
        assert "invalid" in capsys.readouterr().err
