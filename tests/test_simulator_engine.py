"""Direct tests of the simulation engine's stream machinery."""

import pytest

from repro.core.layout import Layout, stripe_fractions
from repro.errors import SimulationError
from repro.optimizer.operators import ObjectAccess
from repro.simulator.buffer import BufferPool
from repro.simulator.engine import DiskState, SubplanRun
from repro.storage.disk import DiskSpec, uniform_farm


def _placements(farm, sizes, fractions):
    layout = Layout(farm, sizes, fractions)
    materialized = layout.materialize()
    return {name: list(materialized.logical_blocks(name))
            for name in materialized.object_names}


def _runner(farm, tempdb=None, readahead=2):
    disks = [DiskState(spec) for spec in farm]
    temp = DiskState(tempdb) if tempdb else None
    return SubplanRun(disks=disks, tempdb=temp,
                      readahead_blocks=readahead), disks


class TestSubplanRun:
    def setup_method(self):
        self.farm = uniform_farm(2, read_mb_s=10.0, seek_ms=10.0)
        self.sizes = {"a": 100, "b": 50}
        self.placements = _placements(self.farm, self.sizes, {
            "a": stripe_fractions([0], self.farm),
            "b": stripe_fractions([1], self.farm)})

    def test_empty_subplan_takes_no_time(self):
        runner, _ = _runner(self.farm)
        elapsed = runner.run([], self.placements, BufferPool(0), [0],
                             "tempdb")
        assert elapsed == 0.0

    def test_zero_block_access_skipped(self):
        runner, _ = _runner(self.farm)
        elapsed = runner.run([ObjectAccess("a", 0.2)], self.placements,
                             BufferPool(0), [0], "tempdb")
        assert elapsed == 0.0

    def test_disjoint_streams_overlap(self):
        """Elapsed = the busiest disk, not the sum of both."""
        runner, _ = _runner(self.farm)
        elapsed = runner.run(
            [ObjectAccess("a", 100), ObjectAccess("b", 50)],
            self.placements, BufferPool(0), [0], "tempdb")
        rate = self.farm[0].read_blocks_s
        # Disk 0 serves a's 100 sequential blocks (plus the first
        # positioning), disk 1 only b's 50.
        assert elapsed == pytest.approx(100 / rate, rel=0.05)

    def test_sequential_scan_dominated_by_transfer(self):
        runner, _ = _runner(self.farm)
        elapsed = runner.run([ObjectAccess("a", 100)], self.placements,
                             BufferPool(0), [0], "tempdb")
        rate = self.farm[0].read_blocks_s
        assert elapsed == pytest.approx(100 / rate, rel=0.05)

    def test_co_located_streams_pay_switch_seeks(self):
        placements = _placements(self.farm, self.sizes, {
            "a": stripe_fractions([0], self.farm),
            "b": stripe_fractions([0], self.farm)})
        runner, _ = _runner(self.farm)
        together = runner.run(
            [ObjectAccess("a", 100), ObjectAccess("b", 50)],
            placements, BufferPool(0), [0], "tempdb")
        rate = self.farm[0].read_blocks_s
        # Pure transfer would be 150/rate; the interleave adds ~50
        # switch seeks between the two adjacent regions.
        assert together > 150 / rate * 1.2  # real thrash, not epsilon

    def test_larger_readahead_reduces_seek_cost(self):
        placements = _placements(self.farm, self.sizes, {
            "a": stripe_fractions([0], self.farm),
            "b": stripe_fractions([0], self.farm)})
        accesses = [ObjectAccess("a", 100), ObjectAccess("b", 50)]
        runner2, _ = _runner(self.farm, readahead=2)
        runner8, _ = _runner(self.farm, readahead=8)
        time2 = runner2.run(accesses, placements, BufferPool(0), [0],
                            "tempdb")
        time8 = runner8.run(accesses, placements, BufferPool(0), [0],
                            "tempdb")
        assert time8 < time2

    def test_buffer_hits_cost_nothing(self):
        runner, _ = _runner(self.farm)
        pool = BufferPool(1_000)
        first = runner.run([ObjectAccess("a", 100)], self.placements,
                           pool, [0], "tempdb")
        second = runner.run([ObjectAccess("a", 100)], self.placements,
                            pool, [0], "tempdb")
        assert second == 0.0
        assert first > 0.0

    def test_writes_populate_the_pool(self):
        runner, _ = _runner(self.farm)
        pool = BufferPool(1_000)
        runner.run([ObjectAccess("a", 10, write=True)],
                   self.placements, pool, [0], "tempdb")
        read_time = runner.run([ObjectAccess("a", 10)],
                               self.placements, pool, [0], "tempdb")
        assert read_time == 0.0

    def test_unmaterialized_object_rejected(self):
        runner, _ = _runner(self.farm)
        with pytest.raises(SimulationError, match="not materialized"):
            runner.run([ObjectAccess("ghost", 10)], self.placements,
                       BufferPool(0), [0], "tempdb")

    def test_temp_streams_skipped_without_temp_disk(self):
        runner, _ = _runner(self.farm, tempdb=None)
        elapsed = runner.run(
            [ObjectAccess("tempdb", 100, write=True)],
            self.placements, BufferPool(0), [0], "tempdb")
        assert elapsed == 0.0

    def test_temp_cursor_advances_on_writes(self):
        tempdb = DiskSpec("tempdb", 10_000, 0.008, 10.0, 10.0)
        runner, _ = _runner(self.farm, tempdb=tempdb)
        cursor = [0]
        runner.run([ObjectAccess("tempdb", 64, write=True)],
                   self.placements, BufferPool(0), cursor, "tempdb")
        assert cursor[0] == 64
        # A later read does not advance the cursor.
        runner.run([ObjectAccess("tempdb", 64, write=False)],
                   self.placements, BufferPool(0), cursor, "tempdb")
        assert cursor[0] == 64

    def test_rescan_wraps_around_object(self):
        """Accesses larger than the object loop over its blocks
        (repeated scans of a small inner)."""
        runner, _ = _runner(self.farm)
        pool = BufferPool(0)
        elapsed = runner.run([ObjectAccess("b", 150)], self.placements,
                             pool, [0], "tempdb")
        assert pool.misses == 150
        assert elapsed > 0

    def test_head_position_persists_across_runs(self):
        runner, disks = _runner(self.farm)
        runner.run([ObjectAccess("a", 100)], self.placements,
                   BufferPool(0), [0], "tempdb")
        assert disks[0].head_lba == 100
