"""Tests for the Layout matrix (Definitions 1 and 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.layout import Layout, stripe_fractions
from repro.errors import LayoutError
from repro.storage.disk import uniform_farm, winbench_farm


def _layout(farm, sizes=None, **fractions):
    sizes = sizes or {name: 100 for name in fractions}
    return Layout(farm, sizes, fractions)


class TestStripeFractions:
    def test_even_striping(self, farm4):
        row = stripe_fractions([0, 1], farm4, rate_proportional=False)
        assert row == (0.5, 0.5, 0.0, 0.0)

    def test_rate_proportional(self):
        farm = winbench_farm(4)
        row = stripe_fractions(range(4), farm)
        rates = [d.read_mb_s for d in farm]
        expected = tuple(r / sum(rates) for r in rates)
        assert row == pytest.approx(expected)

    def test_empty_disk_set_rejected(self, farm4):
        with pytest.raises(LayoutError):
            stripe_fractions([], farm4)

    def test_out_of_range_disk_rejected(self, farm4):
        with pytest.raises(LayoutError):
            stripe_fractions([4], farm4)

    def test_duplicates_collapse(self, farm4):
        row = stripe_fractions([1, 1, 2], farm4,
                               rate_proportional=False)
        assert row == (0.0, 0.5, 0.5, 0.0)

    @given(st.sets(st.integers(min_value=0, max_value=3), min_size=1))
    def test_property_rows_sum_to_one(self, disks):
        farm = winbench_farm(4)
        row = stripe_fractions(disks, farm)
        assert sum(row) == pytest.approx(1.0)
        assert all(f >= 0 for f in row)
        assert {j for j, f in enumerate(row) if f > 0} == disks


class TestValidity:
    def test_valid_layout(self, farm4):
        layout = _layout(farm4, a=(0.5, 0.5, 0.0, 0.0))
        assert layout.disks_of("a") == (0, 1)
        assert layout.fraction("a", 0) == 0.5

    def test_fractions_must_sum_to_one(self, farm4):
        with pytest.raises(LayoutError, match="sum"):
            _layout(farm4, a=(0.5, 0.4, 0.0, 0.0))

    def test_negative_fraction_rejected(self, farm4):
        with pytest.raises(LayoutError, match="negative"):
            _layout(farm4, a=(1.5, -0.5, 0.0, 0.0))

    def test_wrong_row_length_rejected(self, farm4):
        with pytest.raises(LayoutError, match="row length"):
            _layout(farm4, a=(1.0,))

    def test_missing_object_row_rejected(self, farm4):
        with pytest.raises(LayoutError, match="no fraction row"):
            Layout(farm4, {"a": 10}, {})

    def test_extra_row_rejected(self, farm4):
        with pytest.raises(LayoutError, match="unknown objects"):
            Layout(farm4, {"a": 10},
                   {"a": (1, 0, 0, 0), "ghost": (1, 0, 0, 0)})

    def test_capacity_enforced(self):
        farm = uniform_farm(2, capacity_gb=0.001)  # 16 blocks
        with pytest.raises(LayoutError, match="over capacity"):
            Layout(farm, {"a": 100}, {"a": (1.0, 0.0)})

    def test_capacity_check_can_be_disabled(self):
        farm = uniform_farm(2, capacity_gb=0.001)
        layout = Layout(farm, {"a": 100}, {"a": (1.0, 0.0)},
                        check_capacity=False)
        assert layout.disk_used_blocks(0) == 100


class TestDerivedLayouts:
    def test_with_fractions_replaces_one_row(self, farm4):
        layout = _layout(farm4, a=(1.0, 0.0, 0.0, 0.0),
                         b=(0.0, 1.0, 0.0, 0.0))
        updated = layout.with_fractions("a", (0.0, 0.0, 1.0, 0.0))
        assert updated.disks_of("a") == (2,)
        assert layout.disks_of("a") == (0,)  # original unchanged
        assert updated.disks_of("b") == (1,)

    def test_with_fractions_unknown_object(self, farm4):
        layout = _layout(farm4, a=(1.0, 0.0, 0.0, 0.0))
        with pytest.raises(LayoutError):
            layout.with_fractions("zzz", (1.0, 0.0, 0.0, 0.0))

    def test_data_movement_zero_for_identical(self, farm4):
        layout = _layout(farm4, a=(0.5, 0.5, 0.0, 0.0))
        assert layout.data_movement_blocks(layout) == 0.0

    def test_data_movement_counts_moved_blocks_once(self, farm4):
        source = _layout(farm4, a=(1.0, 0.0, 0.0, 0.0))
        target = _layout(farm4, a=(0.0, 1.0, 0.0, 0.0))
        # All 100 blocks move, counted once.
        assert source.data_movement_blocks(target) == 100.0

    def test_data_movement_partial(self, farm4):
        source = _layout(farm4, a=(1.0, 0.0, 0.0, 0.0))
        target = _layout(farm4, a=(0.5, 0.5, 0.0, 0.0))
        assert source.data_movement_blocks(target) == 50.0

    def test_data_movement_requires_same_objects(self, farm4):
        source = _layout(farm4, a=(1.0, 0.0, 0.0, 0.0))
        target = _layout(farm4, b=(1.0, 0.0, 0.0, 0.0))
        with pytest.raises(LayoutError):
            source.data_movement_blocks(target)


class TestExports:
    def test_filegroups_group_by_disk_set(self, farm4):
        layout = _layout(farm4,
                         a=(0.5, 0.5, 0.0, 0.0),
                         b=(0.6, 0.4, 0.0, 0.0),
                         c=(0.0, 0.0, 1.0, 0.0))
        groups = layout.filegroups()
        assert sorted(groups[(0, 1)]) == ["a", "b"]
        assert groups[(2,)] == ["c"]

    def test_materialize_round_trip(self, farm4):
        layout = _layout(farm4, a=(0.25, 0.75, 0.0, 0.0))
        materialized = layout.materialize()
        assert sum(materialized.block_counts("a")) == 100

    def test_describe_mentions_objects_and_disks(self, farm4):
        layout = _layout(farm4, a=(1.0, 0.0, 0.0, 0.0))
        text = layout.describe()
        assert "a" in text and "D1" in text

    def test_from_database(self, mini_db, farm8):
        row = stripe_fractions(range(8), farm8)
        layout = Layout.from_database(
            mini_db, farm8,
            {name: row for name in mini_db.object_sizes()})
        assert set(layout.object_names) == \
            set(mini_db.object_sizes())


class TestLayoutProperties:
    @given(data=st.data())
    def test_property_disk_usage_conserves_object_sizes(self, data):
        farm = winbench_farm(4)
        n_objects = data.draw(st.integers(min_value=1, max_value=4))
        sizes = {}
        fractions = {}
        for index in range(n_objects):
            sizes[f"o{index}"] = data.draw(
                st.integers(min_value=1, max_value=500))
            disks = data.draw(st.sets(
                st.integers(min_value=0, max_value=3), min_size=1))
            fractions[f"o{index}"] = stripe_fractions(disks, farm)
        layout = Layout(farm, sizes, fractions)
        total_used = sum(layout.disk_used_blocks(j) for j in range(4))
        assert total_used == pytest.approx(sum(sizes.values()))
