"""Tests for exhaustive enumeration, random layouts and full striping."""

import itertools

import pytest

from repro.core.constraints import CoLocated, ConstraintSet
from repro.core.costmodel import WorkloadCostEvaluator
from repro.core.exhaustive import exhaustive_search
from repro.core.fullstripe import full_striping
from repro.core.layout import Layout, stripe_fractions
from repro.core.random_layout import random_layout
from repro.errors import LayoutError
from repro.storage.disk import uniform_farm, winbench_farm
from repro.workload.access import analyze_workload
from repro.workload.workload import Workload


def _evaluator(mini_db, workload, farm):
    analyzed = analyze_workload(workload, mini_db)
    return WorkloadCostEvaluator(analyzed, farm,
                                 sorted(mini_db.object_sizes()))


class TestFullStriping:
    def test_every_object_on_every_disk(self, mini_db, farm8):
        layout = full_striping(mini_db.object_sizes(), farm8)
        for name in mini_db.object_sizes():
            assert layout.disks_of(name) == tuple(range(8))

    def test_rate_proportional_by_default(self, mini_db):
        farm = winbench_farm(4)
        layout = full_striping(mini_db.object_sizes(), farm)
        fractions = layout.fractions_of("big")
        rates = [d.read_mb_s for d in farm]
        expected = [r / sum(rates) for r in rates]
        assert list(fractions) == pytest.approx(expected)

    def test_even_striping_option(self, mini_db, farm4):
        layout = full_striping(mini_db.object_sizes(), farm4,
                               rate_proportional=False)
        assert set(layout.fractions_of("big")) == {0.25}

    def test_accepts_database_directly(self, mini_db, farm8):
        layout = full_striping(mini_db, farm8)
        assert set(layout.object_names) == set(mini_db.object_sizes())


class TestRandomLayout:
    def test_valid_and_deterministic(self, mini_db, farm8):
        sizes = mini_db.object_sizes()
        a = random_layout(sizes, farm8, seed=7)
        b = random_layout(sizes, farm8, seed=7)
        for name in sizes:
            assert a.fractions_of(name) == b.fractions_of(name)
            assert sum(a.fractions_of(name)) == pytest.approx(1.0)

    def test_different_seeds_differ(self, mini_db, farm8):
        sizes = mini_db.object_sizes()
        a = random_layout(sizes, farm8, seed=1)
        b = random_layout(sizes, farm8, seed=2)
        assert any(a.fractions_of(n) != b.fractions_of(n)
                   for n in sizes)

    def test_impossible_capacity_raises(self):
        farm = uniform_farm(2, capacity_gb=0.001)  # 16 blocks/disk
        with pytest.raises(LayoutError):
            random_layout({"huge": 10_000}, farm, seed=1,
                          max_attempts=3)


class TestExhaustive:
    def _setup(self, mini_db, farm):
        workload = Workload()
        workload.add("SELECT COUNT(*) FROM mid m, small s "
                     "WHERE m.k = s.dim_id")
        evaluator = _evaluator(mini_db, workload, farm)
        return evaluator

    def test_finds_global_optimum(self, mini_db):
        farm = uniform_farm(2, capacity_gb=4.0)
        evaluator = self._setup(mini_db, farm)
        sizes = mini_db.object_sizes()
        result = exhaustive_search(farm, evaluator, sizes)
        # Verify against a direct enumeration of the same space.
        names = evaluator.object_names
        subsets = [(0,), (1,), (0, 1)]
        best = min(
            evaluator.cost(Layout(farm, sizes, {
                name: stripe_fractions(subset, farm)
                for name, subset in zip(names, assignment)},
                check_capacity=False))
            for assignment in itertools.product(subsets,
                                                repeat=len(names)))
        assert result.cost == pytest.approx(best)

    def test_respects_space_cap(self, mini_db, farm8):
        evaluator = self._setup(mini_db, farm8)
        with pytest.raises(LayoutError, match="exceeds"):
            exhaustive_search(farm8, evaluator, mini_db.object_sizes(),
                              max_layouts=10)

    def test_co_location_groups_enumerated_as_units(self, mini_db):
        farm = uniform_farm(2, capacity_gb=4.0)
        evaluator = self._setup(mini_db, farm)
        constraints = ConstraintSet(co_located=[CoLocated("big", "mid")])
        result = exhaustive_search(farm, evaluator,
                                   mini_db.object_sizes(),
                                   constraints=constraints)
        assert result.layout.disks_of("big") == \
            result.layout.disks_of("mid")
