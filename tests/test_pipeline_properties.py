"""Property-based tests over the whole analyze pipeline.

The synthetic query generator doubles as a structured fuzzer: every
generated statement must tokenize, parse, plan, and decompose into
subplans whose block counts are sane — and the resulting access graphs
and costs must satisfy the model's global invariants.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.benchdb import tpch
from repro.benchdb.synth import synthetic_query
from repro.core.costmodel import CostModel
from repro.core.fullstripe import full_striping
from repro.optimizer.planner import Planner
from repro.sql import parse_statement
from repro.storage.disk import winbench_farm
from repro.workload.access import (
    AnalyzedStatement,
    AnalyzedWorkload,
    decompose,
)
from repro.workload.access_graph import build_access_graph
from repro.workload.workload import Statement

_DB = tpch.tpch_database()
_PLANNER = Planner(_DB)
_FARM = winbench_farm(8)
_SIZES = _DB.object_sizes()


def _plan(seed):
    import random
    sql = synthetic_query(random.Random(seed), max_tables=4)
    return sql, _PLANNER.plan(parse_statement(sql))


class TestPipelineFuzz:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_every_synthetic_query_plans_and_decomposes(self, seed):
        sql, plan = _plan(seed)
        subplans = decompose(plan)
        assert subplans, sql
        for subplan in subplans:
            for access in subplan.accesses:
                assert access.blocks >= 0
                size = _SIZES.get(access.object_name)
                if size is not None:
                    assert access.blocks <= size * 1.001

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_graph_weights_are_consistent(self, seed):
        sql, plan = _plan(seed)
        analyzed = AnalyzedWorkload([AnalyzedStatement(
            statement=Statement(sql), plan=plan,
            subplans=decompose(plan))])
        graph = build_access_graph(analyzed)
        # Edge weight (u, v) can never exceed the combined node weights
        # (each subplan contributes B_u + B_v to both sides).
        for (u, v), weight in graph.edges.items():
            assert weight <= graph.node_weight(u) \
                + graph.node_weight(v) + 1e-6

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_costs_are_finite_and_positive(self, seed):
        sql, plan = _plan(seed)
        analyzed = AnalyzedStatement(statement=Statement(sql),
                                     plan=plan,
                                     subplans=decompose(plan))
        layout = full_striping(_SIZES, _FARM)
        cost = CostModel(_FARM).statement_cost(analyzed, layout)
        assert cost >= 0.0
        assert cost == cost            # not NaN
        assert cost < float("inf")

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_narrow_layout_never_beats_striping_for_one_query(self,
                                                              seed):
        """With everything crammed onto one disk, no query can be
        cheaper than under full striping (no co-access downside can
        outweigh an 8x parallelism loss *plus* co-location)."""
        from repro.core.layout import Layout, stripe_fractions
        sql, plan = _plan(seed)
        analyzed = AnalyzedStatement(statement=Statement(sql),
                                     plan=plan,
                                     subplans=decompose(plan))
        model = CostModel(_FARM)
        striped = full_striping(_SIZES, _FARM)
        crammed = Layout(_FARM, _SIZES, {
            name: stripe_fractions([0], _FARM) for name in _SIZES},
            check_capacity=False)
        assert model.statement_cost(analyzed, striped) <= \
            model.statement_cost(analyzed, crammed) + 1e-9
