"""Tests for the I/O simulator: geometry, buffer pool, engine, measure."""

import pytest

from repro.core.fullstripe import full_striping
from repro.core.layout import Layout, stripe_fractions
from repro.errors import SimulationError
from repro.simulator.buffer import BufferPool
from repro.simulator.engine import (
    DiskState,
    _scatter_indices,
)
from repro.simulator.geometry import SeekModel
from repro.simulator.measure import WorkloadSimulator
from repro.storage.disk import DiskSpec
from repro.workload.access import analyze_workload
from repro.workload.workload import Workload


def _spec(seek_ms=8.0, read=20.0):
    return DiskSpec("D", capacity_blocks=100_000,
                    avg_seek_s=seek_ms / 1000, read_mb_s=read,
                    write_mb_s=0.9 * read)


class TestSeekModel:
    def test_zero_distance_is_free(self):
        model = SeekModel.for_disk(_spec())
        assert model.seek_seconds(100, 100) == 0.0

    def test_longer_seeks_cost_more(self):
        model = SeekModel.for_disk(_spec())
        assert model.seek_seconds(0, 10) < model.seek_seconds(0, 10_000)

    def test_symmetric(self):
        model = SeekModel.for_disk(_spec())
        assert model.seek_seconds(10, 500) == model.seek_seconds(500, 10)

    def test_calibrated_to_average_seek(self):
        """E[seek] over uniform random from/to equals the rated average."""
        import random
        disk = _spec(seek_ms=8.0)
        model = SeekModel.for_disk(disk)
        rng = random.Random(5)
        samples = [model.seek_seconds(rng.randrange(100_000),
                                      rng.randrange(100_000))
                   for _ in range(20_000)]
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(disk.avg_seek_s, rel=0.02)

    def test_distance_capped_at_capacity(self):
        model = SeekModel.for_disk(_spec())
        full = model.seek_seconds(0, 100_000)
        beyond = model.seek_seconds(0, 10_000_000)
        assert beyond == full


class TestBufferPool:
    def test_miss_then_hit(self):
        pool = BufferPool(4)
        assert not pool.access("a", 1)
        assert pool.access("a", 1)
        assert pool.hits == 1 and pool.misses == 1

    def test_lru_eviction_order(self):
        pool = BufferPool(2)
        pool.access("a", 1)
        pool.access("a", 2)
        pool.access("a", 1)   # touch 1, so 2 is now LRU
        pool.access("a", 3)   # evicts 2
        assert pool.access("a", 1)
        assert not pool.access("a", 2)

    def test_distinct_objects_do_not_collide(self):
        pool = BufferPool(4)
        pool.access("a", 1)
        assert not pool.access("b", 1)

    def test_zero_capacity_never_hits(self):
        pool = BufferPool(0)
        pool.access("a", 1)
        assert not pool.access("a", 1)

    def test_clear_keeps_counters(self):
        pool = BufferPool(4)
        pool.access("a", 1)
        pool.access("a", 1)
        pool.clear()
        assert not pool.access("a", 1)
        assert pool.misses == 2 and pool.hits == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(SimulationError):
            BufferPool(-1)


class TestScatterIndices:
    def test_deterministic(self):
        assert _scatter_indices("obj", 100, 10) == \
            _scatter_indices("obj", 100, 10)

    def test_covers_requested_count_without_duplicates(self):
        indices = _scatter_indices("obj", 1000, 50)
        assert len(indices) == 50
        assert len(set(indices)) == 50
        assert all(0 <= i < 1000 for i in indices)

    def test_count_capped_at_size(self):
        assert len(_scatter_indices("obj", 5, 50)) == 5

    def test_spread_over_object(self):
        indices = _scatter_indices("obj", 1000, 10)
        assert min(indices) < 200 and max(indices) > 800


class TestDiskState:
    def test_sequential_requests_pay_transfer_only(self):
        state = DiskState(_spec())
        first = state.service_seconds(5_000, write=False)  # positioning
        second = state.service_seconds(5_001, write=False)
        third = state.service_seconds(5_002, write=False)
        transfer = 1.0 / state.spec.read_blocks_s
        assert second == pytest.approx(transfer)
        assert third == pytest.approx(transfer)
        assert first > second  # initial positioning seek

    def test_random_requests_pay_seeks(self):
        state = DiskState(_spec())
        state.service_seconds(0, write=False)
        far = state.service_seconds(50_000, write=False)
        assert far > 1.0 / state.spec.read_blocks_s


class TestWorkloadSimulator:
    def _analyzed(self, mini_db, sql="SELECT COUNT(*) FROM big b, mid m "
                                      "WHERE b.k = m.k"):
        workload = Workload()
        workload.add(sql, name="q")
        return analyze_workload(workload, mini_db)

    def test_separated_beats_striped_for_merge_join(self, mini_db,
                                                    farm8):
        analyzed = self._analyzed(mini_db)
        sizes = mini_db.object_sizes()
        striped = full_striping(sizes, farm8)
        fractions = {name: stripe_fractions(range(8), farm8)
                     for name in sizes}
        fractions["big"] = stripe_fractions(range(5), farm8)
        fractions["mid"] = stripe_fractions(range(5, 8), farm8)
        separated = Layout(farm8, sizes, fractions)
        sim = WorkloadSimulator()
        assert sim.run(analyzed, separated).total_seconds < \
            sim.run(analyzed, striped).total_seconds

    def test_wider_striping_speeds_up_scans(self, mini_db, farm8):
        analyzed = self._analyzed(mini_db,
                                  "SELECT COUNT(*) FROM big b")
        sizes = mini_db.object_sizes()
        narrow = Layout(farm8, sizes, {
            name: stripe_fractions([0], farm8) for name in sizes})
        wide = full_striping(sizes, farm8)
        sim = WorkloadSimulator()
        assert sim.run(analyzed, wide).total_seconds < \
            sim.run(analyzed, narrow).total_seconds

    def test_deterministic(self, mini_db, farm8):
        analyzed = self._analyzed(mini_db)
        layout = full_striping(mini_db.object_sizes(), farm8)
        sim = WorkloadSimulator()
        assert sim.run(analyzed, layout).total_seconds == \
            sim.run(analyzed, layout).total_seconds

    def test_repeated_access_hits_buffer(self, mini_db, farm8):
        # small fits in the pool; scanning it twice in one statement
        # (self join) produces hits.
        analyzed = self._analyzed(
            mini_db, "SELECT COUNT(*) FROM small a, small b "
                     "WHERE a.dim_id = b.dim_id AND a.label < b.label")
        layout = full_striping(mini_db.object_sizes(), farm8)
        report = WorkloadSimulator().run(analyzed, layout)
        assert report.buffer_hits > 0

    def test_cold_runs_reset_pool_between_statements(self, mini_db,
                                                     farm8):
        workload = Workload()
        workload.add("SELECT COUNT(*) FROM small s", name="a")
        workload.add("SELECT COUNT(*) FROM small s", name="b")
        analyzed = analyze_workload(workload, mini_db)
        layout = full_striping(mini_db.object_sizes(), farm8)
        cold = WorkloadSimulator(cold_runs=True).run(analyzed, layout)
        warm = WorkloadSimulator(cold_runs=False).run(analyzed, layout)
        assert cold.seconds_of("b") == pytest.approx(
            cold.seconds_of("a"), rel=0.05)
        assert warm.seconds_of("b") < 0.5 * warm.seconds_of("a")

    def test_temp_io_charged_to_tempdb_disk(self, mini_db, farm8):
        # Plan with tight work memory so the sort spills to tempdb.
        from repro.optimizer.planner import Planner
        workload = Workload()
        workload.add("SELECT b.k, b.v, b.d FROM big b ORDER BY b.v",
                     name="q")
        analyzed = analyze_workload(
            workload, mini_db, Planner(mini_db, memory_blocks=64))
        layout = full_striping(mini_db.object_sizes(), farm8)
        with_temp = WorkloadSimulator(
            tempdb=_spec()).run(analyzed, layout)
        without = WorkloadSimulator(tempdb=None).run(analyzed, layout)
        assert with_temp.total_seconds > without.total_seconds

    def test_statement_weights_scale_total(self, mini_db, farm8):
        workload = Workload()
        workload.add("SELECT COUNT(*) FROM big b", weight=3.0, name="q")
        analyzed = analyze_workload(workload, mini_db)
        layout = full_striping(mini_db.object_sizes(), farm8)
        report = WorkloadSimulator().run(analyzed, layout)
        assert report.total_seconds == pytest.approx(
            3.0 * report.seconds_of("q"))

    def test_missing_statement_lookup_raises(self, mini_db, farm8):
        analyzed = self._analyzed(mini_db)
        layout = full_striping(mini_db.object_sizes(), farm8)
        report = WorkloadSimulator().run(analyzed, layout)
        with pytest.raises(SimulationError):
            report.seconds_of("nope")

    def test_run_statement_matches_cold_run(self, mini_db, farm8):
        analyzed = self._analyzed(mini_db)
        layout = full_striping(mini_db.object_sizes(), farm8)
        sim = WorkloadSimulator()
        single = sim.run_statement(analyzed.statements[0], layout)
        whole = sim.run(analyzed, layout)
        assert single == pytest.approx(whole.seconds_of("q"))

    def test_disk_utilization_reported(self, mini_db, farm8):
        analyzed = self._analyzed(mini_db)
        layout = full_striping(mini_db.object_sizes(), farm8)
        report = WorkloadSimulator().run(analyzed, layout)
        assert len(report.disk_busy_seconds) == 8
        assert all(b > 0 for b in report.disk_busy_seconds)
        utilization = report.utilization()
        assert all(0.0 < u <= 1.0 + 1e-9 for u in utilization)

    def test_skewed_layout_shows_skewed_utilization(self, mini_db,
                                                    farm8):
        analyzed = self._analyzed(mini_db,
                                  "SELECT COUNT(*) FROM big b")
        sizes = mini_db.object_sizes()
        skewed = Layout(farm8, sizes, {
            name: stripe_fractions([0], farm8) for name in sizes})
        report = WorkloadSimulator().run(analyzed, skewed)
        utilization = report.utilization()
        assert utilization[0] > 0.9
        assert all(u == 0.0 for u in utilization[1:])

    def test_invalid_readahead_rejected(self, mini_db, farm8):
        analyzed = self._analyzed(mini_db)
        layout = full_striping(mini_db.object_sizes(), farm8)
        sim = WorkloadSimulator(readahead_blocks=0)
        with pytest.raises(SimulationError):
            sim.run(analyzed, layout)
