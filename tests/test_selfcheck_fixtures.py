"""Every registered ``RPC0xx`` rule fires on its adversarial fixture.

This is the regression gate for the contract linter itself: a refactor
that silently breaks a checker (pattern drift, scoping mistake, a rule
accidentally unregistered) fails here instead of letting real
violations through the CI selfcheck unnoticed.
"""

from pathlib import Path

import pytest

from repro.analysis.code import analyze_paths, code_rules

FIXTURES = Path(__file__).parent / "fixtures" / "rpc"

#: rule ID -> the fixture (relative to ``tests/fixtures/rpc``) that
#: must make exactly that rule fire.  ``parallel/`` placement matters:
#: RPC105/RPC202/RPC203 are path-scoped to parallel sources.
FIXTURE_FOR = {
    "RPC001": "rpc001_syntax_error.py",
    "RPC002": "rpc002_malformed_pragma.py",
    "RPC003": "rpc003_stale_suppression.py",
    "RPC101": "rpc101_wall_clock.py",
    "RPC102": "rpc102_global_random.py",
    "RPC103": "rpc103_builtin_hash.py",
    "RPC104": "rpc104_set_iteration.py",
    "RPC105": "parallel/rpc105_raw_clock.py",
    "RPC201": "rpc201_unledgered_shm.py",
    "RPC202": "parallel/rpc202_swallowed_exception.py",
    "RPC203": "parallel/rpc203_mutable_global.py",
    "RPC301": "rpc301_undeclared_metric.py",
    "RPC302": "rpc302_kind_mismatch.py",
    "RPC303": "rpc303_undeclared_event.py",
    "RPC304": "rpc304_dynamic_name.py",
    "RPC401": "rpc401_epsilon_literal.py",
}


def test_every_registered_rule_has_a_fixture():
    registered = {rule.rule_id for rule in code_rules()}
    assert registered == set(FIXTURE_FOR), (
        "fixture map out of date: add a fixture (and an entry here) "
        "for every newly registered RPC rule")


@pytest.mark.parametrize("rule_id", sorted(FIXTURE_FOR))
def test_rule_fires_on_its_fixture(rule_id):
    fixture = FIXTURES / FIXTURE_FOR[rule_id]
    assert fixture.is_file(), f"missing fixture {fixture}"
    result = analyze_paths([fixture])
    fired = {d.rule_id for d in result.report.diagnostics} \
        | {d.rule_id for d in result.suppressed}
    assert rule_id in fired, (
        f"{rule_id} no longer fires on {fixture.name}; fired: "
        f"{sorted(fired)}")


def test_fixture_findings_carry_locations():
    result = analyze_paths([FIXTURES])
    assert result.files == len(FIXTURE_FOR)
    for diagnostic in result.report.diagnostics:
        path, _, line = diagnostic.location.rpartition(":")
        assert path.endswith(".py")
        assert line.isdigit() and int(line) >= 0
