"""Tests for plan decomposition into non-blocking subplans."""

from repro.optimizer import operators as ops
from repro.workload.access import analyze_workload, decompose
from repro.workload.workload import Workload


def scan(name, blocks, rows=100.0):
    return ops.TableScanOp(name, name, blocks=blocks, rows_out=rows)


class TestDecompose:
    def test_single_scan_one_subplan(self):
        subplans = decompose(scan("a", 10))
        assert len(subplans) == 1
        assert subplans[0].objects() == {"a"}

    def test_merge_join_one_subplan(self):
        plan = ops.MergeJoinOp(scan("a", 10), scan("b", 20),
                               rows_out=50)
        subplans = decompose(plan)
        assert len(subplans) == 1
        assert subplans[0].objects() == {"a", "b"}

    def test_hash_join_cuts_build_side(self):
        plan = ops.HashJoinOp(scan("a", 10), scan("b", 20), rows_out=50)
        subplans = decompose(plan)
        assert sorted(s.objects() for s in subplans) == \
            [{"a"}, {"b"}] or \
            sorted((sorted(s.objects()) for s in subplans)) == \
            [["a"], ["b"]]

    def test_sort_cuts_input(self):
        plan = ops.SortOp(ops.MergeJoinOp(scan("a", 10), scan("b", 20),
                                          rows_out=50),
                          rows_out=50, order=(("a", "x"),))
        subplans = decompose(plan)
        assert len(subplans) == 1
        assert subplans[0].objects() == {"a", "b"}

    def test_paper_example3_shape(self):
        """A blocking sort between two join pipelines separates them."""
        lower = ops.MergeJoinOp(scan("nation", 1), scan("orders", 100),
                                rows_out=100)
        sorted_lower = ops.SortOp(lower, rows_out=100,
                                  order=(("orders", "k"),))
        upper = ops.MergeJoinOp(
            sorted_lower,
            ops.MergeJoinOp(scan("lineitem", 400),
                            scan("supplier", 10), rows_out=400),
            rows_out=400)
        groups = [s.objects() for s in decompose(upper)]
        assert {"nation", "orders"} in groups
        assert {"lineitem", "supplier"} in groups
        assert not any("orders" in g and "lineitem" in g for g in groups)

    def test_accesses_above_blocking_edge_join_parent_group(self):
        # Probe side of a hash join pipelines into the parent.
        probe = scan("probe", 100)
        build = scan("build", 10)
        join = ops.HashJoinOp(build, probe, rows_out=100)
        parent = ops.MergeJoinOp(join, scan("other", 50), rows_out=100)
        groups = [s.objects() for s in decompose(parent)]
        assert {"probe", "other"} in groups
        assert {"build"} in groups

    def test_empty_subplans_dropped(self):
        agg = ops.HashAggregateOp(scan("a", 10), rows_out=5)
        top = ops.TopOp(agg, rows_out=3)  # no accesses above the cut
        subplans = decompose(top)
        assert len(subplans) == 1

    def test_same_object_twice_in_one_subplan_merges(self):
        plan = ops.MergeJoinOp(scan("a", 10), scan("a", 5), rows_out=10)
        subplan = decompose(plan)[0]
        blocks = subplan.blocks_by_object()
        assert blocks[("a", False)] == 15.0

    def test_reads_and_writes_tracked_separately(self):
        dml = ops.DmlOp("UPDATE", scan("t", 10),
                        [ops.ObjectAccess("t", 4.0, write=True)],
                        rows_affected=100)
        blocks = decompose(dml)[0].blocks_by_object()
        assert blocks[("t", False)] == 10.0
        assert blocks[("t", True)] == 4.0

    def test_temp_excluded_unless_requested(self):
        sort = ops.SortOp(scan("a", 10), rows_out=100,
                          order=(("a", "x"),),
                          spill_accesses=[
                              ops.ObjectAccess("tempdb", 5.0,
                                               write=True)])
        subplans = decompose(sort)
        combined = {}
        for s in subplans:
            combined.update(s.blocks_by_object(include_temp=True))
        assert ("tempdb", True) in combined
        without = {}
        for s in subplans:
            without.update(s.blocks_by_object())
        assert ("tempdb", True) not in without


class TestAnalyzeWorkload:
    def test_analyze_caches_plans_and_subplans(self, mini_db,
                                               join_workload):
        analyzed = analyze_workload(join_workload, mini_db)
        assert len(analyzed) == 2
        assert analyzed.statements[0].plan is not None
        assert analyzed.statements[0].subplans

    def test_referenced_objects(self, mini_db, join_workload):
        analyzed = analyze_workload(join_workload, mini_db)
        assert analyzed.referenced_objects() >= {"big", "mid"}

    def test_weights_carried(self, mini_db):
        workload = Workload()
        workload.add("SELECT COUNT(*) FROM big b", weight=5.0)
        analyzed = analyze_workload(workload, mini_db)
        assert analyzed.statements[0].weight == 5.0
