"""Tests for TS-GREEDY's step-1 packing edge cases (Figure 9, steps
2–4): capacity-driven disk-set sizing and partition merging."""

import pytest

from repro.core.costmodel import WorkloadCostEvaluator
from repro.core.greedy import TsGreedySearch
from repro.errors import LayoutError
from repro.storage.disk import DiskFarm, DiskSpec
from repro.workload.access import (
    AnalyzedStatement,
    AnalyzedWorkload,
    SubplanAccess,
)
from repro.workload.access_graph import AccessGraph
from repro.workload.workload import Statement
from repro.optimizer.operators import ObjectAccess, PlanOp


def _farm(m, capacity_blocks):
    return DiskFarm([
        DiskSpec(f"D{j}", capacity_blocks=capacity_blocks,
                 avg_seek_s=0.006, read_mb_s=40.0, write_mb_s=36.0)
        for j in range(m)])


def _workload(object_blocks):
    """One scan statement per object (no co-access)."""
    statements = []
    for name, blocks in object_blocks.items():
        subplan = SubplanAccess([ObjectAccess(name, float(blocks))])
        statements.append(AnalyzedStatement(
            statement=Statement(f"SELECT 1 FROM {name}", name=name),
            plan=PlanOp(), subplans=[subplan]))
    return AnalyzedWorkload(statements)


def _graph(object_blocks, edges=()):
    graph = AccessGraph(object_blocks)
    for name, blocks in object_blocks.items():
        graph.add_node_weight(name, blocks)
    for u, v, w in edges:
        graph.add_edge_weight(u, v, w)
    return graph


def _search(farm, object_blocks, edges=()):
    sizes = {name: int(blocks) for name, blocks in object_blocks.items()}
    analyzed = _workload(object_blocks)
    evaluator = WorkloadCostEvaluator(analyzed, farm, sorted(sizes))
    return TsGreedySearch(farm, evaluator, sizes), \
        _graph(object_blocks, edges)


class TestStep1Packing:
    def test_large_object_gets_multiple_disks(self):
        """An object bigger than one disk needs a multi-disk set."""
        farm = _farm(4, capacity_blocks=100)
        search, graph = _search(farm, {"huge": 150, "tiny": 10})
        result = search.search(graph)
        assert len(result.layout.disks_of("huge")) >= 2

    def test_capacity_merge_keeps_layout_valid(self):
        """With more partitions than free capacity, later partitions
        merge onto earlier disk sets instead of failing."""
        farm = _farm(2, capacity_blocks=100)
        search, graph = _search(
            farm, {"a": 60, "b": 60, "c": 30, "d": 20})
        result = search.search(graph)
        for name in ("a", "b", "c", "d"):
            assert sum(result.layout.fractions_of(name)) == \
                pytest.approx(1.0)
        # Every disk within capacity.
        for j in range(2):
            assert result.layout.disk_used_blocks(j) <= 100 + 1e-6

    def test_merge_prefers_least_co_accessed_partition(self):
        """The merged partition lands with the neighbour it shares the
        least co-access with (Figure 9 step 3's tie-break)."""
        farm = _farm(2, capacity_blocks=200)
        # a and b are heavily co-accessed; c is light and must merge
        # somewhere — it co-accesses a a lot, b not at all.
        search, graph = _search(
            farm, {"a": 150, "b": 150, "c": 50},
            edges=[("a", "b", 1000), ("a", "c", 500)])
        initial = search._initial_layout(graph)
        c_disks = set(initial.disks_of("c"))
        b_disks = set(initial.disks_of("b"))
        a_disks = set(initial.disks_of("a"))
        assert c_disks == b_disks
        assert c_disks != a_disks

    def test_impossible_capacity_raises(self):
        farm = _farm(2, capacity_blocks=50)
        search, graph = _search(farm, {"a": 80, "b": 80})
        with pytest.raises(LayoutError):
            search.search(graph)

    def test_fastest_disks_assigned_first(self):
        """The heaviest partition gets the fastest drives (Figure 9
        step 3 orders candidate disks by decreasing transfer rate)."""
        disks = [
            DiskSpec("slow1", 1000, 0.006, 20.0, 18.0),
            DiskSpec("fast", 1000, 0.006, 60.0, 54.0),
            DiskSpec("slow2", 1000, 0.006, 20.0, 18.0),
        ]
        farm = DiskFarm(disks)
        search, graph = _search(farm, {"hot": 100, "cold": 10})
        initial = search._initial_layout(graph)
        assert initial.disks_of("hot") == (1,)  # the fast drive


class TestAccessGraphDot:
    def test_dot_output_contains_nodes_and_edges(self):
        graph = _graph({"a": 100, "b": 50}, edges=[("a", "b", 150)])
        dot = graph.to_dot()
        assert '"a" -- "b" [label="150"]' in dot
        assert dot.startswith("graph access_graph {")
        assert dot.endswith("}")

    def test_isolated_zero_weight_nodes_hidden_by_default(self):
        graph = AccessGraph(["ghost"])
        graph.add_node_weight("real", 10)
        dot = graph.to_dot()
        assert "ghost" not in dot
        assert "real" in dot
        assert "ghost" in graph.to_dot(include_isolated=True)
