"""Shared test fixtures: a small catalog, workloads and farms."""

from __future__ import annotations

import pytest

from repro.catalog.schema import Column, Database, Index, Table
from repro.catalog.stats import ColumnStats
from repro.storage.disk import uniform_farm, winbench_farm
from repro.workload.workload import Workload


def column(name: str, width: int = 8, ndv: int = 1000,
           lo: float | None = None, hi: float | None = None) -> Column:
    """A column with simple uniform statistics."""
    return Column(name, width, ColumnStats(ndv=ndv, lo=lo, hi=hi))


@pytest.fixture
def mini_db() -> Database:
    """A two-big-plus-one-small-table catalog with indexes.

    ``big`` (1M rows) and ``mid`` (250K rows) share the clustered key
    ``k`` so their join merge-joins without sorts; ``small`` is a
    dimension joined on ``dim_id``.
    """
    big = Table("big", 1_000_000, [
        column("k", ndv=1_000_000, lo=1, hi=1_000_000),
        column("dim_id", ndv=1_000, lo=1, hi=1_000),
        column("v", ndv=10_000, lo=0, hi=10_000),
        column("d", ndv=2_000, lo=0, hi=2_000),
    ], clustered_on=["k"])
    mid = Table("mid", 250_000, [
        column("k", ndv=250_000, lo=1, hi=1_000_000),
        column("w", ndv=5_000, lo=0, hi=5_000),
    ], clustered_on=["k"])
    small = Table("small", 1_000, [
        column("dim_id", ndv=1_000, lo=1, hi=1_000),
        column("label", width=20, ndv=1_000),
    ], clustered_on=["dim_id"])
    indexes = [
        Index("idx_big_d", "big", ["d"]),
        Index("idx_big_dim", "big", ["dim_id"], included_columns=["v"]),
    ]
    return Database("mini", [big, mid, small], indexes=indexes)


@pytest.fixture
def join_workload() -> Workload:
    """A workload whose dominant cost is a big-mid merge join."""
    workload = Workload(name="join")
    workload.add("SELECT COUNT(*) FROM big b, mid m WHERE b.k = m.k",
                 name="J1")
    workload.add("SELECT SUM(b.v) FROM big b", name="S1")
    return workload


@pytest.fixture
def farm8():
    """The standard heterogeneous 8-disk farm."""
    return winbench_farm(8)


@pytest.fixture
def farm4():
    """A small uniform farm for exhaustive-friendly tests."""
    return uniform_farm(4, capacity_gb=2.0)
