"""Tests for block apportioning and layout materialization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import LayoutError
from repro.storage.allocation import (
    MaterializedLayout,
    apportion_blocks,
    proportional_deal,
)
from repro.storage.disk import uniform_farm


class TestApportionBlocks:
    def test_exact_split(self):
        assert apportion_blocks(100, [0.5, 0.5]) == [50, 50]

    def test_rounding_preserves_total(self):
        counts = apportion_blocks(100, [1 / 3, 1 / 3, 1 / 3])
        assert sum(counts) == 100

    def test_zero_fraction_gets_zero_blocks(self):
        counts = apportion_blocks(10, [1.0, 0.0])
        assert counts == [10, 0]

    def test_zero_size_object(self):
        assert apportion_blocks(0, [0.5, 0.5]) == [0, 0]

    def test_negative_fraction_rejected(self):
        with pytest.raises(LayoutError):
            apportion_blocks(10, [1.5, -0.5])

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(LayoutError):
            apportion_blocks(10, [0.4, 0.4])

    def test_negative_size_rejected(self):
        with pytest.raises(LayoutError):
            apportion_blocks(-1, [1.0])

    @given(total=st.integers(min_value=0, max_value=5000),
           weights=st.lists(st.integers(min_value=0, max_value=100),
                            min_size=1, max_size=8).filter(
                                lambda w: sum(w) > 0))
    def test_property_total_and_proportionality(self, total, weights):
        fractions = [w / sum(weights) for w in weights]
        counts = apportion_blocks(total, fractions)
        assert sum(counts) == total
        assert all(c >= 0 for c in counts)
        # Largest-remainder rounding is within one block of exact.
        for count, fraction in zip(counts, fractions):
            assert abs(count - fraction * total) <= 1.0 + 1e-9


class TestProportionalDeal:
    def test_exhausts_counts_exactly(self):
        order = list(proportional_deal([3, 6]))
        assert order.count(0) == 3
        assert order.count(1) == 6

    def test_interleaves_evenly(self):
        order = list(proportional_deal([2, 4]))
        # The double-rate stream never waits more than its share.
        first_half = order[: len(order) // 2]
        assert first_half.count(1) == 2

    def test_empty(self):
        assert list(proportional_deal([0, 0])) == []

    def test_single_stream(self):
        assert list(proportional_deal([4])) == [0, 0, 0, 0]

    @given(counts=st.lists(st.integers(min_value=0, max_value=60),
                           min_size=1, max_size=5))
    def test_property_deal_is_a_permutation_of_counts(self, counts):
        order = list(proportional_deal(counts))
        assert len(order) == sum(counts)
        for index, count in enumerate(counts):
            assert order.count(index) == count


class TestMaterializedLayout:
    def _materialize(self, farm, sizes, fractions):
        return MaterializedLayout(farm, sizes, fractions)

    def test_extents_are_contiguous_per_disk(self, farm4):
        mat = self._materialize(
            farm4, {"a": 100, "b": 60},
            {"a": (0.5, 0.5, 0.0, 0.0), "b": (0.5, 0.0, 0.5, 0.0)})
        a_extents = mat.extents("a")
        assert [e.disk for e in a_extents] == [0, 1]
        assert a_extents[0].n_blocks == 50
        # b starts on disk 0 after a's 50 blocks.
        b0 = mat.extents("b")[0]
        assert b0.disk == 0 and b0.start_lba == 50

    def test_block_counts_match_fractions(self, farm4):
        mat = self._materialize(farm4, {"a": 99},
                                {"a": (1 / 3, 1 / 3, 1 / 3, 0.0)})
        assert sum(mat.block_counts("a")) == 99

    def test_logical_blocks_cover_object_once(self, farm4):
        mat = self._materialize(farm4, {"a": 40},
                                {"a": (0.25, 0.75, 0.0, 0.0)})
        blocks = list(mat.logical_blocks("a"))
        assert len(blocks) == 40
        # Per disk, LBAs are strictly increasing and contiguous.
        per_disk = {}
        for disk, lba in blocks:
            per_disk.setdefault(disk, []).append(lba)
        for lbas in per_disk.values():
            assert lbas == list(range(lbas[0], lbas[0] + len(lbas)))

    def test_striping_interleaves_logical_order(self, farm4):
        mat = self._materialize(farm4, {"a": 8},
                                {"a": (0.5, 0.5, 0.0, 0.0)})
        disks = [d for d, _ in mat.logical_blocks("a")]
        # 50/50 striping alternates disks.
        assert disks.count(0) == 4 and disks.count(1) == 4
        assert disks[:2] in ([0, 1], [1, 0])

    def test_capacity_violation_raises(self):
        farm = uniform_farm(2, capacity_gb=0.001)  # 16 blocks/disk
        with pytest.raises(LayoutError, match="over capacity"):
            self._materialize(farm, {"a": 100}, {"a": (1.0, 0.0)})

    def test_missing_fractions_rejected(self, farm4):
        with pytest.raises(LayoutError):
            self._materialize(farm4, {"a": 10}, {})

    def test_wrong_row_length_rejected(self, farm4):
        with pytest.raises(LayoutError):
            self._materialize(farm4, {"a": 10}, {"a": (1.0,)})

    def test_unknown_object_queries_raise(self, farm4):
        mat = self._materialize(farm4, {"a": 10},
                                {"a": (1.0, 0.0, 0.0, 0.0)})
        with pytest.raises(LayoutError):
            mat.extents("zzz")

    def test_disk_fill_accounts_all_objects(self, farm4):
        mat = self._materialize(
            farm4, {"a": 10, "b": 6},
            {"a": (1.0, 0.0, 0.0, 0.0), "b": (0.5, 0.5, 0.0, 0.0)})
        assert mat.disk_fill(0) == 13
        assert mat.disk_fill(1) == 3
