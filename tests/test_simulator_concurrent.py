"""Tests for concurrent-execution simulation."""

import pytest

from repro.core.fullstripe import full_striping
from repro.core.layout import Layout, stripe_fractions
from repro.simulator.concurrent import ConcurrentWorkloadSimulator
from repro.errors import SimulationError
from repro.workload.access import analyze_workload
from repro.workload.concurrency import ConcurrencySpec
from repro.workload.workload import Workload


@pytest.fixture
def scan_pair(mini_db):
    workload = Workload()
    workload.add("SELECT COUNT(*) FROM big b", name="scan_big")
    workload.add("SELECT COUNT(*) FROM mid m", name="scan_mid")
    return analyze_workload(workload, mini_db)


class TestConcurrentSimulation:
    def test_sequential_spec_matches_plain_run(self, mini_db,
                                               scan_pair, farm8):
        layout = full_striping(mini_db.object_sizes(), farm8)
        sim = ConcurrentWorkloadSimulator()
        spec = ConcurrencySpec.from_groups([])
        concurrent = sim.run_concurrent(scan_pair, layout, spec)
        plain = sim.run(scan_pair, layout)
        assert concurrent.total_seconds == \
            pytest.approx(plain.total_seconds)
        assert not concurrent.group_seconds
        assert len(concurrent.solo_statements) == 2

    def test_concurrent_group_reported_as_one_elapsed(self, mini_db,
                                                      scan_pair,
                                                      farm8):
        layout = full_striping(mini_db.object_sizes(), farm8)
        sim = ConcurrentWorkloadSimulator()
        spec = ConcurrencySpec.from_groups([[0, 1]])
        report = sim.run_concurrent(scan_pair, layout, spec)
        assert len(report.group_seconds) == 1
        assert not report.solo_statements

    def test_concurrent_scans_contend_when_co_located(self, mini_db,
                                                      scan_pair,
                                                      farm8):
        """Running the two scans together on a shared striped layout
        pays real interference: slower than the slowest scan alone —
        and on *fully shared* spindles, the per-chunk head switches can
        even make it slower than running them back to back (scan
        thrashing, the very effect the advisor separates tables to
        avoid)."""
        layout = full_striping(mini_db.object_sizes(), farm8)
        sim = ConcurrentWorkloadSimulator()
        sequential = sim.run(scan_pair, layout)
        spec = ConcurrencySpec.from_groups([[0, 1]])
        concurrent = sim.run_concurrent(scan_pair, layout, spec)
        slowest = max(t.seconds for t in sequential.statements)
        back_to_back = sequential.total_seconds
        assert concurrent.group_seconds[0] > slowest
        # Sanity bound: thrashing hurts, but not unboundedly.
        assert concurrent.group_seconds[0] < back_to_back * 4.0

    def test_separated_layout_wins_under_concurrency(self, mini_db,
                                                     scan_pair, farm8):
        """The concurrency-aware advisor's prediction holds under
        concurrent simulation: disjoint placement beats full striping
        for overlapping scans."""
        sizes = mini_db.object_sizes()
        striped = full_striping(sizes, farm8)
        fractions = {name: stripe_fractions(range(8), farm8)
                     for name in sizes}
        fractions["big"] = stripe_fractions(range(6), farm8)
        fractions["mid"] = stripe_fractions(range(6, 8), farm8)
        separated = Layout(farm8, sizes, fractions)
        sim = ConcurrentWorkloadSimulator()
        spec = ConcurrencySpec.from_groups([[0, 1]])
        striped_time = sim.run_concurrent(scan_pair, striped,
                                          spec).total_seconds
        separated_time = sim.run_concurrent(scan_pair, separated,
                                            spec).total_seconds
        assert separated_time < striped_time

    def test_sequential_prefers_the_opposite(self, mini_db, scan_pair,
                                             farm8):
        """...while sequential execution prefers full striping — the
        whole reason the concurrency extension changes layouts."""
        sizes = mini_db.object_sizes()
        striped = full_striping(sizes, farm8)
        fractions = {name: stripe_fractions(range(8), farm8)
                     for name in sizes}
        fractions["big"] = stripe_fractions(range(6), farm8)
        fractions["mid"] = stripe_fractions(range(6, 8), farm8)
        separated = Layout(farm8, sizes, fractions)
        sim = ConcurrentWorkloadSimulator()
        assert sim.run(scan_pair, striped).total_seconds < \
            sim.run(scan_pair, separated).total_seconds

    def test_mixed_solo_and_grouped(self, mini_db, farm8):
        workload = Workload()
        workload.add("SELECT COUNT(*) FROM big b", name="a")
        workload.add("SELECT COUNT(*) FROM mid m", name="b")
        workload.add("SELECT COUNT(*) FROM small s", name="c")
        analyzed = analyze_workload(workload, mini_db)
        layout = full_striping(mini_db.object_sizes(), farm8)
        sim = ConcurrentWorkloadSimulator()
        spec = ConcurrencySpec.from_groups([[0, 1]])
        report = sim.run_concurrent(analyzed, layout, spec)
        assert len(report.group_seconds) == 1
        assert [t.name for t in report.solo_statements] == ["c"]

    def test_missing_statement_rejected(self, mini_db, scan_pair,
                                        farm8):
        layout = full_striping(mini_db.object_sizes(), farm8)
        sim = ConcurrentWorkloadSimulator()
        spec = ConcurrencySpec.from_groups([[0, 7]])
        with pytest.raises(SimulationError):
            sim.run_concurrent(scan_pair, layout, spec)

    def test_deterministic(self, mini_db, scan_pair, farm8):
        layout = full_striping(mini_db.object_sizes(), farm8)
        sim = ConcurrentWorkloadSimulator()
        spec = ConcurrencySpec.from_groups([[0, 1]])
        a = sim.run_concurrent(scan_pair, layout, spec).total_seconds
        b = sim.run_concurrent(scan_pair, layout, spec).total_seconds
        assert a == b
