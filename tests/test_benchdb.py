"""Tests for the benchmark databases and workload generators."""

import random

import pytest

from repro.benchdb import apb, ctrl, sales, scale, synth, tpch
from repro.errors import WorkloadError
from repro.optimizer.planner import Planner
from repro.sql import parse_statement
from repro.workload.access import analyze_workload


class TestTpchCatalog:
    def test_spec_cardinalities(self):
        db = tpch.tpch_database()
        assert db.table("lineitem").row_count == 6_001_215
        assert db.table("orders").row_count == 1_500_000
        assert db.table("region").row_count == 5
        assert len(db.tables) == 8

    def test_sizes_near_one_gigabyte(self):
        db = tpch.tpch_database()
        total_mb = sum(t.size_blocks for t in db.tables) * 64 / 1024
        assert 800 <= total_mb <= 1400
        assert db.table("lineitem").size_blocks > \
            db.table("orders").size_blocks

    def test_clustering_keys(self):
        db = tpch.tpch_database()
        assert db.table("lineitem").clustered_on == \
            ("l_orderkey", "l_linenumber")
        assert db.table("orders").clustered_on == ("o_orderkey",)

    def test_without_indexes(self):
        db = tpch.tpch_database(with_indexes=False)
        assert not db.indexes

    def test_suffix_applies_everywhere(self):
        db = tpch.tpch_database(suffix="_2")
        assert db.has_table("lineitem_2")
        assert db.indexes_on("lineitem_2")


class TestTpchQueries:
    @pytest.mark.parametrize("number", range(1, 23))
    def test_all_queries_parse_and_plan(self, number):
        db = tpch.tpch_database()
        sql = tpch.tpch_query(number)
        plan = Planner(db).plan(parse_statement(sql))
        assert plan is not None

    def test_unknown_query_number(self):
        with pytest.raises(WorkloadError):
            tpch.tpch_query(23)

    def test_qgen_substitution_is_seeded(self):
        a = tpch.tpch_query(3, rng=random.Random(1))
        b = tpch.tpch_query(3, rng=random.Random(1))
        c = tpch.tpch_query(3, rng=random.Random(2))
        assert a == b
        assert a != c

    def test_explicit_params_override(self):
        sql = tpch.tpch_query(3, params={"segment": "MACHINERY"})
        assert "MACHINERY" in sql

    def test_q3_merge_joins_lineitem_orders(self):
        db = tpch.tpch_database()
        workload = tpch.tpch22_workload()
        analyzed = analyze_workload(workload, db)
        q3 = next(a for a in analyzed if a.statement.name == "Q3")
        co_accessed = [s.objects() for s in q3.subplans]
        assert any({"lineitem", "orders"} <= group
                   for group in co_accessed)

    def test_q21_reads_lineitem_multiple_times(self):
        db = tpch.tpch_database()
        analyzed = analyze_workload(tpch.tpch22_workload(), db)
        q21 = next(a for a in analyzed if a.statement.name == "Q21")
        lineitem_accesses = sum(
            1 for s in q21.subplans
            for a in s.accesses if a.object_name == "lineitem")
        assert lineitem_accesses >= 3

    def test_tpch22_workload_names(self):
        workload = tpch.tpch22_workload()
        assert len(workload) == 22
        assert workload[0].name == "Q1"


class TestReplication:
    def test_replicated_database_object_counts(self):
        db = tpch.replicated_database(3, with_indexes=False)
        assert len(db.tables) == 24
        assert db.has_table("lineitem") and db.has_table("lineitem_3")

    def test_replication_requires_positive(self):
        with pytest.raises(WorkloadError):
            tpch.replicated_database(0)

    def test_tpch88_workload_plans_on_replicas(self):
        db = tpch.replicated_database(2)
        workload = tpch.tpch88_workload(2)
        assert len(workload) == 88
        analyzed = analyze_workload(workload, db)
        touched = analyzed.referenced_objects()
        assert any(name.endswith("_2") for name in touched)

    def test_tpch88_deterministic(self):
        a = tpch.tpch88_workload(3, seed=9)
        b = tpch.tpch88_workload(3, seed=9)
        assert [s.sql for s in a] == [s.sql for s in b]


class TestCtrlWorkloads:
    def test_wk_ctrl1_co_accesses_the_table_pairs(self):
        db = tpch.tpch_database()
        analyzed = analyze_workload(ctrl.wk_ctrl1(), db)
        pairs = set()
        for stmt in analyzed:
            for subplan in stmt.subplans:
                objects = subplan.objects()
                if {"lineitem", "orders"} <= objects:
                    pairs.add("lo")
                if {"partsupp", "part"} <= objects:
                    pairs.add("pp")
        assert pairs == {"lo", "pp"}

    def test_wk_ctrl2_sizes(self):
        assert len(ctrl.wk_ctrl1()) == 5
        assert len(ctrl.wk_ctrl2()) == 10

    def test_ctrl_workloads_plan(self):
        db = tpch.tpch_database()
        analyze_workload(ctrl.wk_ctrl2(), db)


class TestSynthetic:
    def test_seeded_and_distinct(self):
        a = synth.synthetic_workload(10, seed=1)
        b = synth.synthetic_workload(10, seed=1)
        c = synth.synthetic_workload(10, seed=2)
        assert [s.sql for s in a] == [s.sql for s in b]
        assert [s.sql for s in a] != [s.sql for s in c]

    def test_all_queries_plan(self):
        db = tpch.tpch_database()
        analyze_workload(synth.synthetic_workload(40, seed=3), db)

    def test_big_sort_probability_zero_avoids_bare_order_by(self):
        workload = synth.synthetic_workload(30, seed=4,
                                            big_sort_probability=0.0)
        for stmt in workload:
            assert "SUM(" in stmt.sql or "COUNT(" in stmt.sql

    def test_validation_workloads_shape(self):
        workloads = synth.validation_workloads()
        assert len(workloads) == 5
        assert all(len(w) == 25 for w in workloads)

    def test_wk_scale_sizes(self):
        assert len(scale.wk_scale(100)) == 100
        with pytest.raises(WorkloadError):
            scale.wk_scale(0)

    def test_wk_scale_series(self):
        series = scale.wk_scale_series(sizes=(100, 200))
        assert [len(w) for w in series] == [100, 200]
        # Nested prefixes: same seed, same leading queries.
        assert series[0][0].sql == series[1][0].sql


class TestApb:
    def test_forty_tables(self):
        db = apb.apb_database()
        assert len(db.tables) == 40

    def test_two_large_tables(self):
        db = apb.apb_database()
        sizes = sorted(((t.size_blocks, t.name) for t in db.tables),
                       reverse=True)
        assert {sizes[0][1], sizes[1][1]} == {"actvars", "histvars"}
        # Everything else is at least 10x smaller.
        assert sizes[2][0] * 10 < sizes[1][0]

    def test_size_near_250mb(self):
        db = apb.apb_database()
        total_mb = db.total_size_blocks * 64 / 1024
        assert 150 <= total_mb <= 400

    def test_no_query_co_accesses_both_facts(self):
        for stmt in apb.apb800_workload(n_queries=200):
            assert not ("actvars" in stmt.sql and "histvars" in stmt.sql)

    def test_apb800_plans(self):
        db = apb.apb_database()
        analyze_workload(apb.apb800_workload(n_queries=60), db)


class TestSales:
    def test_fifty_tables(self):
        db = sales.sales_database()
        assert len(db.tables) == 50

    def test_size_in_gigabytes(self):
        db = sales.sales_database()
        total_gb = db.total_size_blocks * 64 / 1024 / 1024
        assert 3.0 <= total_gb <= 6.0

    def test_two_dominant_tables_joined_in_most_queries(self):
        workload = sales.sales45_workload()
        joined = sum(1 for s in workload
                     if "order_header" in s.sql
                     and "order_detail" in s.sql)
        assert joined >= 0.6 * len(workload)

    def test_sales45_plans_with_co_access(self):
        db = sales.sales_database()
        analyzed = analyze_workload(sales.sales45_workload(), db)
        assert any({"order_header", "order_detail"} <= s.objects()
                   for stmt in analyzed for s in stmt.subplans)
