"""Tests for the end-to-end LayoutAdvisor facade."""

import json

import pytest

from repro.core.advisor import LayoutAdvisor
from repro.obs import MetricsRegistry, Tracer
from repro.core.constraints import (
    CoLocated,
    ConstraintSet,
    MaxDataMovement,
)
from repro.core.fullstripe import full_striping
from repro.core.layout import Layout, stripe_fractions
from repro.errors import LayoutError


class TestRecommend:
    def test_default_compares_to_full_striping(self, mini_db,
                                               join_workload, farm8):
        advisor = LayoutAdvisor(mini_db, farm8)
        rec = advisor.recommend(join_workload)
        assert rec.improvement_pct > 0
        assert rec.estimated_cost < rec.current_cost

    def test_accepts_pre_analyzed_workload(self, mini_db, join_workload,
                                           farm8):
        advisor = LayoutAdvisor(mini_db, farm8)
        analyzed = advisor.analyze(join_workload)
        rec_a = advisor.recommend(analyzed)
        rec_b = advisor.recommend(join_workload)
        assert rec_a.estimated_cost == pytest.approx(rec_b.estimated_cost)

    def test_per_statement_breakdown(self, mini_db, join_workload,
                                     farm8):
        advisor = LayoutAdvisor(mini_db, farm8)
        rec = advisor.recommend(join_workload)
        names = [name for name, _, _ in rec.per_statement]
        assert names == ["J1", "S1"]
        j1_current, j1_new = rec.per_statement[0][1:]
        assert j1_new < j1_current  # the join is what improves

    def test_full_striping_method_is_identity(self, mini_db,
                                              join_workload, farm8):
        advisor = LayoutAdvisor(mini_db, farm8)
        rec = advisor.recommend(join_workload, method="full-striping")
        assert rec.improvement_pct == pytest.approx(0.0)

    def test_explicit_current_layout(self, mini_db, join_workload,
                                     farm8):
        sizes = mini_db.object_sizes()
        # A terrible current layout: everything on disk 0.
        current = Layout(farm8, sizes, {
            name: stripe_fractions([0], farm8) for name in sizes})
        advisor = LayoutAdvisor(mini_db, farm8)
        rec = advisor.recommend(join_workload, current_layout=current)
        assert rec.improvement_pct > 50

    def test_unknown_method_rejected(self, mini_db, join_workload,
                                     farm8):
        advisor = LayoutAdvisor(mini_db, farm8)
        with pytest.raises(LayoutError, match="unknown search method"):
            advisor.recommend(join_workload, method="quantum")

    def test_exhaustive_method_on_small_farm(self, mini_db,
                                             join_workload):
        from repro.storage.disk import uniform_farm
        farm = uniform_farm(2, capacity_gb=4.0)
        advisor = LayoutAdvisor(mini_db, farm)
        rec_exhaustive = advisor.recommend(join_workload,
                                           method="exhaustive")
        rec_greedy = advisor.recommend(join_workload)
        assert rec_exhaustive.estimated_cost <= \
            rec_greedy.estimated_cost + 1e-9

    def test_data_movement_reported(self, mini_db, join_workload,
                                    farm8):
        advisor = LayoutAdvisor(mini_db, farm8)
        rec = advisor.recommend(join_workload)
        # The recommendation differs from full striping, so blocks move.
        assert rec.data_movement_blocks is not None
        assert rec.data_movement_blocks > 0
        from repro.core.report import render_report
        assert "moves" in render_report(rec)

    def test_search_telemetry_exposed(self, mini_db, join_workload,
                                      farm8):
        advisor = LayoutAdvisor(mini_db, farm8)
        rec = advisor.recommend(join_workload)
        assert rec.search is not None
        assert rec.search.evaluations > 0

    def test_improvement_pct_zero_when_current_free(self, mini_db,
                                                    farm8):
        from repro.core.advisor import Recommendation
        rec = Recommendation(
            layout=full_striping(mini_db.object_sizes(), farm8),
            estimated_cost=0.0, current_cost=0.0)
        assert rec.improvement_pct == 0.0


class TestConcurrentAdvisor:
    def test_recommend_concurrent_separates_overlapping_scans(
            self, mini_db, farm8):
        from repro.workload.concurrency import ConcurrencySpec
        from repro.workload.workload import Workload
        workload = Workload()
        workload.add("SELECT COUNT(*) FROM big b", name="a")
        workload.add("SELECT COUNT(*) FROM mid m", name="b")
        advisor = LayoutAdvisor(mini_db, farm8)
        spec = ConcurrencySpec.from_groups([[0, 1]],
                                           overlap_factor=1.0)
        rec = advisor.recommend_concurrent(workload, spec)
        big = set(rec.layout.disks_of("big"))
        mid = set(rec.layout.disks_of("mid"))
        assert not big & mid
        assert rec.improvement_pct > 0

    def test_recommend_concurrent_empty_spec_matches_sequential(
            self, mini_db, join_workload, farm8):
        from repro.workload.concurrency import ConcurrencySpec
        advisor = LayoutAdvisor(mini_db, farm8)
        sequential = advisor.recommend(join_workload)
        concurrent = advisor.recommend_concurrent(
            join_workload, ConcurrencySpec.from_groups([]))
        assert concurrent.estimated_cost == \
            pytest.approx(sequential.estimated_cost)


class TestConstrainedAdvisor:
    def test_co_location_flows_through(self, mini_db, join_workload,
                                       farm8):
        constraints = ConstraintSet(co_located=[CoLocated("big", "mid")])
        advisor = LayoutAdvisor(mini_db, farm8, constraints=constraints)
        rec = advisor.recommend(join_workload)
        assert rec.layout.disks_of("big") == rec.layout.disks_of("mid")

    def test_movement_constraint_switches_to_incremental(self, mini_db,
                                                         join_workload,
                                                         farm8):
        sizes = mini_db.object_sizes()
        current = full_striping(sizes, farm8)
        constraints = ConstraintSet(
            movement=MaxDataMovement(current, max_blocks=1.0))
        advisor = LayoutAdvisor(mini_db, farm8, constraints=constraints)
        rec = advisor.recommend(join_workload, current_layout=current)
        # Nothing may move, so the recommendation is the current layout.
        assert current.data_movement_blocks(rec.layout) <= 1.0


class TestObservedAdvisor:
    def test_traced_recommend_emits_the_pipeline_phases(
            self, mini_db, join_workload, farm8):
        tracer = Tracer()
        metrics = MetricsRegistry()
        advisor = LayoutAdvisor(mini_db, farm8, tracer=tracer,
                                metrics=metrics)
        rec = advisor.recommend(join_workload)
        root = tracer.find("recommend")
        assert root is not None
        phases = [child.name for child in root.children]
        for expected in ["analyze-workload", "baseline-layout",
                         "build-evaluator", "build-access-graph",
                         "ts-greedy"]:
            assert expected in phases
        greedy = root.find("ts-greedy")
        assert greedy.find("ts-greedy/step1") is not None
        assert greedy.find("ts-greedy/step2") is not None
        # Leaf spans must cover (nearly) all of the root's wall time.
        leaf_time = sum(s.duration_s for s in root.leaves())
        assert leaf_time >= 0.9 * root.duration_s
        # Search telemetry: the cost model ran, KL partitioning ran.
        assert rec.search.evaluations > 0
        assert rec.search.kl_passes >= 1
        assert metrics.value("costmodel.full_evaluations") > 0

    def test_tracing_does_not_change_the_recommendation(
            self, mini_db, join_workload, farm8):
        plain = LayoutAdvisor(mini_db, farm8).recommend(join_workload)
        traced = LayoutAdvisor(
            mini_db, farm8, tracer=Tracer(),
            metrics=MetricsRegistry()).recommend(join_workload)
        assert traced.estimated_cost == plain.estimated_cost
        assert traced.current_cost == plain.current_cost
        for name in plain.layout.object_names:
            assert traced.layout.fractions_of(name) == \
                plain.layout.fractions_of(name)

    def test_untraced_search_still_carries_telemetry(
            self, mini_db, join_workload, farm8):
        rec = LayoutAdvisor(mini_db, farm8).recommend(join_workload)
        assert rec.search.kl_passes >= 1
        assert rec.search.evaluations > 0
        assert any(step.accepted for step in rec.search.steps)
        payload = rec.search.telemetry_dict()
        json.dumps(payload)  # must be JSON-clean end to end
        assert payload["kl_passes"] == rec.search.kl_passes
