"""Tests for the Prometheus and OTLP exporters (repro.obs.export)."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    parse_prometheus,
    to_otlp,
    to_prometheus,
    write_otlp,
    write_prometheus,
)
from repro.obs.export import main as export_main, self_test


def _registry():
    metrics = MetricsRegistry(strict=True)
    metrics.inc("greedy.evaluations", 7)
    metrics.set_gauge("drift.score", 0.25)
    for value in (2, 4, 6, 8, 10):
        metrics.observe("greedy.candidates_per_iteration", value)
    return metrics


class TestPrometheus:
    def test_counter_gets_total_suffix_and_help(self):
        text = to_prometheus(_registry())
        assert "# TYPE repro_greedy_evaluations_total counter" in text
        assert "# HELP repro_greedy_evaluations_total" in text
        assert "repro_greedy_evaluations_total 7" in text

    def test_histogram_exports_three_quantiles(self):
        series = parse_prometheus(to_prometheus(_registry()))
        samples = series["repro_greedy_candidates_per_iteration"]
        quantiles = {labels["quantile"] for labels, _ in samples}
        assert quantiles == {"0.5", "0.95", "0.99"}
        [(_, count)] = \
            series["repro_greedy_candidates_per_iteration_count"]
        [(_, total)] = \
            series["repro_greedy_candidates_per_iteration_sum"]
        assert (count, total) == (5.0, 30.0)

    def test_round_trip_preserves_values(self):
        series = parse_prometheus(to_prometheus(_registry()))
        [(_, value)] = series["repro_greedy_evaluations_total"]
        assert value == 7.0
        [(_, score)] = series["repro_drift_score"]
        assert score == 0.25

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""
        assert parse_prometheus("") == {}

    def test_write_prometheus_is_parseable(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_prometheus(_registry(), path)
        assert parse_prometheus(path.read_text())

    @pytest.mark.parametrize("bad, message", [
        ("not a metric line at all!", "unparsable sample"),
        ("metric{label=unquoted} 1", "malformed label"),
        ("metric notanumber", "non-numeric value"),
        ("# TYPE valid_name sometype", "unknown metric type"),
        ("# HELP 0bad help text", "invalid metric name"),
    ])
    def test_malformed_lines_rejected_with_line_number(self, bad,
                                                       message):
        text = "repro_ok_total 1\n" + bad + "\n"
        with pytest.raises(ValueError, match=message) as error:
            parse_prometheus(text)
        assert "line 2" in str(error.value)

    def test_self_test_round_trips(self):
        assert "self-test ok" in self_test()

    def test_module_main_self_test(self, capsys):
        assert export_main(["--self-test"]) == 0
        assert "self-test ok" in capsys.readouterr().out

    def test_module_main_check_file(self, tmp_path, capsys):
        good = tmp_path / "good.prom"
        write_prometheus(_registry(), good)
        assert export_main(["--check", str(good)]) == 0
        assert "valid:" in capsys.readouterr().out
        bad = tmp_path / "bad.prom"
        bad.write_text("this is { not } exposition format\n")
        assert export_main(["--check", str(bad)]) == 1
        assert "invalid:" in capsys.readouterr().err


class TestOtlp:
    def _tracer(self):
        clock_value = [0.0]

        def clock():
            clock_value[0] += 0.5
            return clock_value[0]

        tracer = Tracer(clock=clock, cpu_clock=clock)
        with tracer.span("recommend", statements=2):
            with tracer.span("ts-greedy", accepted=True):
                pass
        return tracer

    def test_structure_and_parenting(self):
        doc = to_otlp(self._tracer(), run_id="abc123")
        spans = doc["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert [s["name"] for s in spans] == ["recommend", "ts-greedy"]
        root, child = spans
        assert "parentSpanId" not in root
        assert child["parentSpanId"] == root["spanId"]
        assert all(s["traceId"] == root["traceId"] for s in spans)

    def test_export_is_deterministic(self):
        first = to_otlp(self._tracer(), run_id="abc123")
        second = to_otlp(self._tracer(), run_id="abc123")
        assert json.dumps(first, sort_keys=True) \
            == json.dumps(second, sort_keys=True)

    def test_span_ids_are_sequential_preorder(self):
        doc = to_otlp(self._tracer(), run_id="x")
        spans = doc["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert [s["spanId"] for s in spans] == \
            [f"{n:016x}" for n in (1, 2)]

    def test_attributes_carry_span_attrs_and_cpu(self):
        doc = to_otlp(self._tracer(), run_id="x")
        root = doc["resourceSpans"][0]["scopeSpans"][0]["spans"][0]
        keys = {a["key"] for a in root["attributes"]}
        assert {"statements", "cpu_s"} <= keys

    def test_run_id_lands_in_resource_attributes(self):
        doc = to_otlp(self._tracer(), run_id="run-42")
        resource = doc["resourceSpans"][0]["resource"]["attributes"]
        values = {a["key"]: a["value"] for a in resource}
        assert values["run.id"] == {"stringValue": "run-42"}

    def test_write_otlp_is_valid_json(self, tmp_path):
        path = tmp_path / "spans.json"
        write_otlp(self._tracer(), path, run_id="abc")
        assert "resourceSpans" in json.loads(path.read_text())
