"""End-to-end integration tests across the whole pipeline.

These exercise the full chain — SQL text -> plan -> access graph ->
search -> layout -> (model cost, simulated time) — on small but real
configurations, asserting the paper's qualitative claims rather than
exact numbers.
"""

import pytest

from repro.benchdb import ctrl, tpch
from repro.core.advisor import LayoutAdvisor
from repro.core.costmodel import CostModel
from repro.core.fullstripe import full_striping
from repro.experiments import common
from repro.experiments.example5 import run_example5
from repro.simulator.measure import WorkloadSimulator
from repro.workload.access import analyze_workload


class TestPaperInvariants:
    def test_example5_matches_closed_forms_exactly(self):
        result = run_example5()
        assert result.ordering_holds
        assert result.l1_cost_s == pytest.approx(result.l1_expected_s)
        assert result.l2_cost_s == pytest.approx(result.l2_expected_s)
        assert result.l3_cost_s == pytest.approx(result.l3_expected_s)

    def test_advisor_separates_lineitem_and_orders_on_ctrl1(self):
        db = tpch.tpch_database()
        farm = common.paper_farm()
        advisor = LayoutAdvisor(db, farm)
        rec = advisor.recommend(ctrl.wk_ctrl1())
        lineitem = set(rec.layout.disks_of("lineitem"))
        orders = set(rec.layout.disks_of("orders"))
        partsupp = set(rec.layout.disks_of("partsupp"))
        part = set(rec.layout.disks_of("part"))
        assert not lineitem & orders
        assert not partsupp & part
        assert rec.improvement_pct > 25

    def test_estimated_improvement_realized_in_simulation(self):
        """The advisor's layout must also win under the simulator."""
        db = tpch.tpch_database()
        farm = common.paper_farm()
        advisor = LayoutAdvisor(db, farm)
        analyzed = advisor.analyze(ctrl.wk_ctrl1())
        rec = advisor.recommend(analyzed)
        sim = common.simulator()
        full = sim.run(analyzed, full_striping(db.object_sizes(), farm))
        recommended = sim.run(analyzed, rec.layout)
        assert recommended.total_seconds < full.total_seconds

    def test_model_and_simulator_agree_on_gross_ordering(self, mini_db,
                                                         join_workload,
                                                         farm8):
        """For clearly-different layouts, estimate and simulation rank
        identically (the Section-7 validation claim in miniature)."""
        analyzed = analyze_workload(join_workload, mini_db)
        sizes = mini_db.object_sizes()
        model = CostModel(farm8)
        sim = WorkloadSimulator()
        from repro.core.layout import Layout, stripe_fractions
        everything_on_one = Layout(farm8, sizes, {
            name: stripe_fractions([0], farm8) for name in sizes})
        striped = full_striping(sizes, farm8)
        est = (model.workload_cost(analyzed, everything_on_one),
               model.workload_cost(analyzed, striped))
        act = (sim.run(analyzed, everything_on_one).total_seconds,
               sim.run(analyzed, striped).total_seconds)
        assert (est[0] > est[1]) == (act[0] > act[1])

    def test_apb_like_workload_recommends_full_striping(self, mini_db,
                                                        farm8):
        """No co-access => TS-GREEDY converges to full striping."""
        from repro.workload.workload import Workload
        workload = Workload()
        workload.add("SELECT COUNT(*) FROM big b", name="s1")
        workload.add("SELECT COUNT(*) FROM mid m", name="s2")
        advisor = LayoutAdvisor(mini_db, farm8)
        rec = advisor.recommend(workload)
        assert abs(rec.improvement_pct) < 1e-6
        assert len(rec.layout.disks_of("big")) == 8
        assert len(rec.layout.disks_of("mid")) == 8

    def test_workload_weights_steer_the_recommendation(self, mini_db,
                                                       farm8):
        """Upweighting the scan pushes the layout toward striping."""
        from repro.workload.workload import Workload

        def recommend(scan_weight):
            workload = Workload()
            workload.add("SELECT COUNT(*) FROM big b, mid m "
                         "WHERE b.k = m.k", name="join")
            workload.add("SELECT COUNT(*) FROM big b",
                         weight=scan_weight, name="scan")
            advisor = LayoutAdvisor(mini_db, farm8)
            return advisor.recommend(workload)

        join_heavy = recommend(scan_weight=0.001)
        scan_heavy = recommend(scan_weight=1000.0)
        assert len(scan_heavy.layout.disks_of("big")) >= \
            len(join_heavy.layout.disks_of("big"))

    def test_recommendation_is_deterministic(self, mini_db,
                                             join_workload, farm8):
        advisor = LayoutAdvisor(mini_db, farm8)
        a = advisor.recommend(join_workload)
        b = advisor.recommend(join_workload)
        for name in mini_db.object_sizes():
            assert a.layout.fractions_of(name) == \
                b.layout.fractions_of(name)


class TestWorkloadFileRoundTrip:
    def test_file_based_end_to_end(self, tmp_path, mini_db, farm8):
        """The paper's tool interface: workload arrives as a file."""
        from repro.workload.workload import Workload
        path = tmp_path / "workload.sql"
        path.write_text(
            "-- name: J1\n-- weight: 3\n"
            "SELECT COUNT(*) FROM big b, mid m WHERE b.k = m.k;\n"
            "SELECT SUM(b.v) FROM big b;\n")
        workload = Workload.load(path)
        advisor = LayoutAdvisor(mini_db, farm8)
        rec = advisor.recommend(workload)
        assert rec.improvement_pct > 0
        assert rec.per_statement[0][0] == "J1"
