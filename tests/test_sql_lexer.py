"""Tests for the SQL tokenizer."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.lexer import TokenKind, tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)[:-1]]


class TestTokenize:
    def test_keywords_uppercased(self):
        assert kinds("select FROM") == [(TokenKind.KEYWORD, "SELECT"),
                                        (TokenKind.KEYWORD, "FROM")]

    def test_identifiers_lowercased(self):
        assert kinds("LineItem") == [(TokenKind.IDENT, "lineitem")]

    def test_numbers(self):
        assert kinds("42 3.14 .5") == [
            (TokenKind.NUMBER, "42"), (TokenKind.NUMBER, "3.14"),
            (TokenKind.NUMBER, ".5")]

    def test_qualifier_dot_not_a_decimal(self):
        tokens = kinds("t1.c2")
        assert tokens == [(TokenKind.IDENT, "t1"),
                          (TokenKind.PUNCT, "."),
                          (TokenKind.IDENT, "c2")]

    def test_number_then_qualifier(self):
        # "1.x" lexes 1, '.', x — decimal point needs a digit after it.
        assert kinds("1.x")[0] == (TokenKind.NUMBER, "1")

    def test_strings_keep_case_and_strip_quotes(self):
        assert kinds("'BuIlDiNg'") == [(TokenKind.STRING, "BuIlDiNg")]

    def test_escaped_quote_in_string(self):
        assert kinds("'it''s'") == [(TokenKind.STRING, "it's")]

    def test_unterminated_string_raises_with_location(self):
        with pytest.raises(SqlSyntaxError) as exc:
            tokenize("SELECT 'oops")
        assert exc.value.line == 1

    def test_operators_including_two_char(self):
        assert [v for _, v in kinds("a <= b <> c != d || e")] == [
            "a", "<=", "b", "<>", "c", "!=", "d", "||", "e"]

    def test_comments_skipped(self):
        tokens = kinds("SELECT -- a comment\n1")
        assert tokens == [(TokenKind.KEYWORD, "SELECT"),
                          (TokenKind.NUMBER, "1")]

    def test_comment_at_eof(self):
        assert kinds("-- only comment") == []

    def test_line_and_column_tracking(self):
        tokens = tokenize("SELECT\n  x")
        assert tokens[0].line == 1
        assert tokens[1].line == 2 and tokens[1].column == 3

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError, match="unexpected character"):
            tokenize("SELECT @x")

    def test_eof_token_terminates(self):
        tokens = tokenize("x")
        assert tokens[-1].kind is TokenKind.EOF

    def test_is_keyword_helper(self):
        token = tokenize("SELECT")[0]
        assert token.is_keyword("SELECT", "FROM")
        assert not token.is_keyword("FROM")
        ident = tokenize("foo")[0]
        assert not ident.is_keyword("SELECT")

    def test_punctuation(self):
        assert [v for _, v in kinds("(a, b);")] == [
            "(", "a", ",", "b", ")", ";"]
