"""The RPC contract linter: engine, pragmas, CLI, SARIF, and the gate.

Covers the suppression lifecycle (unsuppressed fails, justified
suppression passes, stale suppression is itself reported), the
``selfcheck`` CLI's formats and exit codes, SARIF round-tripping
through the shape validator, and the acceptance scenario: injecting an
unseeded ``random.random()`` into a copy of ``core/greedy.py`` must
turn the selfcheck red.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import to_sarif, validate_sarif
from repro.analysis.code import (
    analyze_paths,
    code_rules,
    count_telemetry_sites,
    load_source,
    parse_suppressions,
)
from repro.cli import main

SRC = Path(__file__).resolve().parent.parent / "src"


def run(tmp_path, text, name="sample.py", select=None):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return analyze_paths([path], select=select)


class TestEngine:
    def test_clean_file_reports_nothing(self, tmp_path):
        result = run(tmp_path, "def f(x):\n    return x + 1\n")
        assert result.files == 1
        assert not result.report.diagnostics
        assert not result.suppressed
        assert result.report.exit_code == 0

    def test_violation_reports_rule_and_location(self, tmp_path):
        result = run(tmp_path, "value = hash('a')\n")
        (diagnostic,) = result.report.diagnostics
        assert diagnostic.rule_id == "RPC103"
        assert diagnostic.location.endswith("sample.py:1")
        assert result.report.exit_code == 2

    def test_syntax_error_becomes_rpc001(self, tmp_path):
        result = run(tmp_path, "def broken(:\n")
        (diagnostic,) = result.report.diagnostics
        assert diagnostic.rule_id == "RPC001"
        assert result.report.exit_code == 2

    def test_select_filters_by_prefix(self, tmp_path):
        text = "import random\nv = random.random()\nh = hash(v)\n"
        all_rules = run(tmp_path, text)
        only_hash = run(tmp_path, text, select=["RPC103"])
        assert {d.rule_id for d in all_rules.report.diagnostics} == {
            "RPC102", "RPC103"}
        assert {d.rule_id for d in only_hash.report.diagnostics} == {
            "RPC103"}

    def test_duplicate_findings_deduplicated(self, tmp_path):
        result = run(tmp_path, "a = hash('x'); b = hash('y')\n")
        assert len(result.report.diagnostics) == 1

    def test_directory_scan_is_sorted_and_skips_caches(self, tmp_path):
        (tmp_path / "b.py").write_text("x = hash('b')\n")
        (tmp_path / "a.py").write_text("x = hash('a')\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "c.py").write_text("x = hash('c')\n")
        result = analyze_paths([tmp_path])
        assert result.files == 2
        locations = [d.location for d in result.report.diagnostics]
        assert locations == sorted(locations)


class TestSuppression:
    def test_justified_pragma_suppresses(self, tmp_path):
        result = run(
            tmp_path,
            "v = hash('a')  # repro: noqa RPC103 -- test fixture\n")
        assert not result.report.diagnostics
        assert [d.rule_id for d in result.suppressed] == ["RPC103"]
        assert result.report.exit_code == 0

    def test_pragma_without_justification_is_rpc002(self, tmp_path):
        result = run(tmp_path, "v = hash('a')  # repro: noqa RPC103\n")
        assert {d.rule_id for d in result.report.diagnostics} == {
            "RPC002"}
        assert result.report.exit_code == 2

    def test_blanket_pragma_is_rpc002(self, tmp_path):
        result = run(tmp_path, "v = 1  # repro: noqa\n")
        assert {d.rule_id for d in result.report.diagnostics} == {
            "RPC002"}

    def test_stale_pragma_is_rpc003(self, tmp_path):
        result = run(
            tmp_path, "v = 1  # repro: noqa RPC103 -- nothing here\n")
        assert {d.rule_id for d in result.report.diagnostics} == {
            "RPC003"}
        assert result.report.exit_code == 1

    def test_unknown_rule_id_is_rpc003(self, tmp_path):
        result = run(
            tmp_path, "v = 1  # repro: noqa RPC999 -- no such rule\n")
        assert {d.rule_id for d in result.report.diagnostics} == {
            "RPC003"}

    def test_out_of_scope_rule_is_not_stale(self, tmp_path):
        # RPC105 only runs under parallel/; suppressing it elsewhere
        # cannot be judged stale because the checker never ran.
        result = run(
            tmp_path,
            "import time\n"
            "t = time.monotonic()  # repro: noqa RPC105 -- scoped\n")
        assert not result.report.diagnostics

    def test_pragma_inside_string_is_not_a_suppression(self, tmp_path):
        result = run(
            tmp_path,
            "doc = '# repro: noqa RPC103 -- example text'\n"
            "v = hash('a')\n")
        assert {d.rule_id for d in result.report.diagnostics} == {
            "RPC103"}
        assert not result.suppressed

    def test_parse_suppressions_reads_comments_only(self):
        suppressions = parse_suppressions((
            "x = 1  # repro: noqa RPC101, RPC202 -- two rules",
            "y = '# repro: noqa RPC103 -- not a comment'",
        ))
        (pragma,) = suppressions
        assert pragma.line == 1
        assert pragma.rule_ids == ("RPC101", "RPC202")
        assert pragma.justification == "two rules"


class TestSourceTreeGate:
    def test_src_tree_has_zero_unsuppressed_findings(self):
        result = analyze_paths([SRC])
        rendered = "\n".join(
            d.render() for d in result.report.diagnostics)
        assert result.report.exit_code == 0, (
            f"selfcheck found violations in src/:\n{rendered}")

    def test_src_suppressions_all_carry_justifications(self):
        for path in sorted(SRC.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            for pragma in parse_suppressions(
                    load_source(path).lines):
                assert pragma.rule_ids, f"{path}:{pragma.line}"
                assert pragma.justification, f"{path}:{pragma.line}"

    def test_injected_global_random_turns_greedy_red(self, tmp_path):
        # Acceptance check from the issue: copy core/greedy.py, add an
        # unseeded random.random() call, and the selfcheck must fail.
        greedy = SRC / "repro" / "core" / "greedy.py"
        clean = run(tmp_path, greedy.read_text(), name="greedy.py")
        assert clean.report.exit_code == 0
        sabotaged = greedy.read_text() + (
            "\n\nimport random\n\n"
            "def _jitter() -> float:\n"
            "    return random.random()\n")
        result = run(tmp_path, sabotaged, name="greedy_sabotaged.py")
        assert {d.rule_id for d in result.report.diagnostics} == {
            "RPC102"}
        assert result.report.exit_code == 2

    def test_telemetry_emission_idiom_still_scanned(self):
        # Self-guard: if the emission idiom changes shape, the RPC3xx
        # checks would silently check nothing; the site count collapses
        # first and fails loudly here.
        assert count_telemetry_sites([SRC]) >= 30


class TestCli:
    def test_selfcheck_clean_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "ok.py"
        path.write_text("x = 1\n")
        assert main(["selfcheck", str(path)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert "checked 1 file(s)" in out

    def test_selfcheck_error_exit_two(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text("import time\nt = time.time()\n")
        assert main(["selfcheck", str(path)]) == 2
        assert "RPC101" in capsys.readouterr().out

    def test_selfcheck_json_payload(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text(
            "v = hash('a')  # repro: noqa RPC103 -- fixture\n"
            "w = hash(('b',))\n")
        assert main(["selfcheck", str(path), "--format", "json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["files"] == 1
        assert [d["rule"] for d in payload["suppressed"]] == ["RPC103"]
        assert payload["summary"]["error"] == 1

    def test_selfcheck_select(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text("import random\nv = random.random()\n"
                        "h = hash(v)\n")
        assert main(["selfcheck", str(path), "--select", "RPC102",
                     "--format", "json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert [d["rule"] for d in payload["diagnostics"]] == ["RPC102"]

    def test_selfcheck_rules_lists_every_code_rule(self, capsys):
        assert main(["selfcheck", "--rules", "--format", "json"]) == 0
        listed = {entry["rule"]
                  for entry in json.loads(capsys.readouterr().out)}
        assert listed == {rule.rule_id for rule in code_rules()}

    def test_selfcheck_over_src_is_the_ci_gate(self, capsys):
        assert main(["selfcheck", str(SRC)]) == 0


class TestSarif:
    def make_report(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text("import time\n"
                        "t = time.time()\n"
                        "v = hash('a')\n"
                        "ok = abs(t) < 1e-9\n")
        return analyze_paths([path]).report

    def test_round_trip_validates(self, tmp_path):
        document = json.loads(json.dumps(
            to_sarif(self.make_report(tmp_path))))
        assert validate_sarif(document) == []

    def test_results_map_rules_and_locations(self, tmp_path):
        report = self.make_report(tmp_path)
        document = to_sarif(report)
        (run_obj,) = document["runs"]
        rules = run_obj["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == sorted(
            {d.rule_id for d in report.diagnostics})
        for result in run_obj["results"]:
            index = result["ruleIndex"]
            assert rules[index]["id"] == result["ruleId"]
            physical = result["locations"][0]["physicalLocation"]
            assert physical["artifactLocation"]["uri"].endswith(
                "bad.py")
            assert physical["region"]["startLine"] >= 1

    def test_logical_locations_for_data_lint(self):
        from repro.analysis.diagnostics import REGISTRY, AnalysisReport
        rule = next(iter(REGISTRY.values()))
        report = AnalysisReport()
        report.extend([rule.diagnostic(
            "synthetic", location="constraint:CoLocated(a, b)")])
        document = to_sarif(report)
        (result,) = document["runs"][0]["results"]
        (logical,) = result["locations"][0]["logicalLocations"]
        assert logical["fullyQualifiedName"] == \
            "constraint:CoLocated(a, b)"
        assert validate_sarif(document) == []

    def test_validator_rejects_broken_documents(self, tmp_path):
        document = to_sarif(self.make_report(tmp_path))
        assert validate_sarif({"version": "1.0"})
        mangled = json.loads(json.dumps(document))
        mangled["runs"][0]["results"][0]["level"] = "catastrophic"
        assert any("level" in problem
                   for problem in validate_sarif(mangled))
        reindexed = json.loads(json.dumps(document))
        reindexed["runs"][0]["results"][0]["ruleIndex"] = 99
        assert any("ruleIndex" in problem
                   for problem in validate_sarif(reindexed))

    def test_lint_sarif_format(self, tmp_path, capsys, mini_db):
        # The data-level linter shares the SARIF path end to end.
        from repro.catalog.io import save_database
        db = tmp_path / "db.json"
        save_database(mini_db, db)
        code = main(["lint", "--database", str(db),
                     "--format", "sarif"])
        document = json.loads(capsys.readouterr().out)
        assert validate_sarif(document) == []
        assert code in (0, 1, 2)


@pytest.mark.parametrize("rule", code_rules(),
                         ids=lambda rule: rule.rule_id)
def test_code_rules_are_well_formed(rule):
    assert rule.category == "code"
    assert rule.title
    assert rule.rule_id.startswith("RPC")
