"""Tests for repro.parallel: shared memory, trajectories, portfolio."""

from __future__ import annotations

import os
import time
import warnings
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.advisor import LayoutAdvisor
from repro.core.costmodel import WorkloadCostEvaluator
from repro.core.fullstripe import full_striping
from repro.core.greedy import TsGreedySearch
from repro.core.random_layout import random_layout
from repro.errors import (
    DegradedResult,
    LayoutError,
    SearchTimeout,
    WorkerCrash,
)
from repro.obs import MetricsRegistry, Tracer
from repro.parallel import (
    PortfolioSearch,
    TrajectorySpec,
    attach_evaluator,
    available_workers,
    default_portfolio,
    reap_orphans,
    share_evaluator,
)
from repro.parallel.portfolio import MAX_WORKERS_ENV
from repro.parallel.worker import TrajectoryContext, run_trajectory
from repro.resilience import Budget, FaultPlan, RetryPolicy
from repro.workload.access import analyze_workload
from repro.workload.access_graph import build_access_graph


@pytest.fixture
def case(mini_db, join_workload, farm8):
    analyzed = analyze_workload(join_workload, mini_db)
    sizes = mini_db.object_sizes()
    evaluator = WorkloadCostEvaluator(analyzed, farm8, sorted(sizes))
    graph = build_access_graph(analyzed, mini_db)
    return evaluator, graph, sizes, farm8


def _fractions(layout):
    return {name: layout.fractions_of(name)
            for name in layout.object_names}


class TestSharedEvaluator:
    def test_round_trip_is_bit_identical(self, case):
        evaluator, _, sizes, farm = case
        layouts = [full_striping(sizes, farm)] + \
            [random_layout(sizes, farm, seed) for seed in range(5)]
        with share_evaluator(evaluator) as state:
            attached = attach_evaluator(state.spec)
            for layout in layouts:
                assert attached.cost(layout) == evaluator.cost(layout)
            del attached  # release the views before unlink

    def test_attached_arrays_are_read_only_views(self, case):
        evaluator, _, _, _ = case
        with share_evaluator(evaluator) as state:
            attached = attach_evaluator(state.spec)
            assert not attached._blocks.flags.writeable
            np.testing.assert_array_equal(attached._blocks,
                                          evaluator._blocks)
            with pytest.raises(ValueError):
                attached._blocks[0, 0] = 1.0
            del attached

    def test_close_unlinks_the_segment(self, case):
        evaluator, _, _, _ = case
        state = share_evaluator(evaluator)
        name = state.spec.shm_name
        state.close()
        with pytest.raises(LayoutError, match="gone"):
            attach_evaluator(state.spec)
        # And raw reattachment by name fails too: truly unlinked.
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_close_is_idempotent(self, case):
        evaluator, _, _, _ = case
        state = share_evaluator(evaluator)
        state.close()
        state.close()  # second close must not raise

    def test_no_resource_tracker_warnings(self, case):
        evaluator, graph, sizes, farm = case
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            engine = PortfolioSearch(farm, evaluator, sizes,
                                     specs=default_portfolio(2),
                                     jobs=2)
            engine.search(graph)

    def test_segment_cleaned_up_when_worker_raises(self, case):
        evaluator, graph, sizes, farm = case
        bad = [TrajectorySpec(method="no-such-method")]
        engine = PortfolioSearch(farm, evaluator, sizes, specs=bad,
                                 jobs=2)
        with pytest.raises(LayoutError):
            engine.search(graph)
        # The finally-path unlink ran: a fresh share uses a new name
        # and nothing of the failed run lingers to collide with it.
        with share_evaluator(evaluator) as state:
            assert state.spec.shm_name


class TestTrajectories:
    def test_unknown_method_raises(self, case):
        evaluator, graph, sizes, farm = case
        from repro.core.constraints import ConstraintSet
        context = TrajectoryContext(
            evaluator=evaluator, farm=farm, sizes=sizes,
            constraints=ConstraintSet(), graph=graph,
            initial_layout=None,
            specs=(TrajectorySpec(method="quantum"),))
        with pytest.raises(LayoutError, match="quantum"):
            run_trajectory(context, 0)

    def test_payload_rebuilds_the_result(self, case):
        evaluator, graph, sizes, farm = case
        from repro.core.constraints import ConstraintSet
        from repro.parallel import rebuild_result
        context = TrajectoryContext(
            evaluator=evaluator, farm=farm, sizes=sizes,
            constraints=ConstraintSet(), graph=graph,
            initial_layout=None, specs=(TrajectorySpec(),))
        payload = run_trajectory(context, 0)
        rebuilt = rebuild_result(payload, farm, sizes)
        direct = TsGreedySearch(farm, evaluator, sizes).search(graph)
        assert rebuilt.cost == direct.cost
        assert _fractions(rebuilt.layout) == _fractions(direct.layout)
        assert rebuilt.evaluations == direct.evaluations
        assert len(rebuilt.steps) == len(direct.steps)

    def test_default_portfolio_shape(self):
        specs = default_portfolio(6)
        assert len(specs) == 6
        assert specs[0].partition_seed is None  # canonical run first
        methods = [s.method for s in specs]
        assert "annealing" in methods
        assert default_portfolio(1)[0].method == "ts-greedy"
        no_anneal = default_portfolio(6, include_annealing=False)
        assert all(s.method == "ts-greedy" for s in no_anneal)
        with pytest.raises(LayoutError):
            default_portfolio(0)


class TestPortfolioSearch:
    def test_parallel_matches_serial_bit_identically(self, case):
        evaluator, graph, sizes, farm = case
        specs = default_portfolio(4)
        serial = PortfolioSearch(farm, evaluator, sizes, specs=specs,
                                 jobs=1).search(graph)
        pooled = PortfolioSearch(farm, evaluator, sizes, specs=specs,
                                 jobs=4).search(graph)
        assert pooled.cost == serial.cost
        assert _fractions(pooled.layout) == _fractions(serial.layout)
        assert pooled.evaluations == serial.evaluations
        assert pooled.extras["best_trajectory"] \
            == serial.extras["best_trajectory"]

    def test_winner_equals_best_individual_trajectory(self, case):
        evaluator, graph, sizes, farm = case
        specs = default_portfolio(4)
        result = PortfolioSearch(farm, evaluator, sizes, specs=specs,
                                 jobs=1).search(graph)
        individual = []
        for spec in specs:
            if spec.method == "ts-greedy":
                individual.append(TsGreedySearch(
                    farm, evaluator, sizes, k=spec.k,
                    partition_seed=spec.partition_seed,
                    prune=spec.prune).search(graph).cost)
            else:
                from repro.core.annealing import annealing_search
                individual.append(annealing_search(
                    farm, evaluator, sizes, seed=spec.seed,
                    iterations=spec.iterations).cost)
        assert result.cost == min(individual)
        assert int(result.extras["best_trajectory"]) \
            == individual.index(min(individual))

    def test_never_worse_than_canonical_greedy(self, case):
        evaluator, graph, sizes, farm = case
        canonical = TsGreedySearch(farm, evaluator, sizes).search(graph)
        result = PortfolioSearch(farm, evaluator, sizes,
                                 specs=default_portfolio(3),
                                 jobs=1).search(graph)
        assert result.cost <= canonical.cost

    def test_merged_telemetry_and_metrics(self, case):
        evaluator, graph, sizes, farm = case
        tracer, metrics = Tracer(), MetricsRegistry()
        specs = default_portfolio(3)
        result = PortfolioSearch(farm, evaluator, sizes, specs=specs,
                                 jobs=2, tracer=tracer,
                                 metrics=metrics).search(graph)
        assert result.extras["trajectories"] == 3.0
        assert result.extras["workers"] == 2.0
        root = tracer.find("portfolio")
        assert root is not None
        names = [child.name for child in root.children]
        assert names == [f"portfolio/trajectory-{i}" for i in range(3)]
        assert metrics.value("portfolio.trajectories") == 3.0
        assert metrics.value("portfolio.workers") == 2.0
        # Worker-side counters really crossed the process boundary.
        assert metrics.value("greedy.iterations") > 0
        assert metrics.value("costmodel.bound_evaluations") > 0

    def test_rejects_bad_arguments(self, case):
        evaluator, _, sizes, farm = case
        with pytest.raises(LayoutError):
            PortfolioSearch(farm, evaluator, sizes, jobs=-1)
        with pytest.raises(LayoutError):
            PortfolioSearch(farm, evaluator, sizes, specs=[])


class TestAvailableWorkers:
    def test_empty_affinity_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv(MAX_WORKERS_ENV, raising=False)
        monkeypatch.setattr(os, "sched_getaffinity",
                            lambda pid: set(), raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 6)
        assert available_workers() == 6

    def test_missing_affinity_api_falls_back(self, monkeypatch):
        monkeypatch.delenv(MAX_WORKERS_ENV, raising=False)
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 5)
        assert available_workers() == 5

    def test_never_returns_less_than_one(self, monkeypatch):
        monkeypatch.delenv(MAX_WORKERS_ENV, raising=False)
        monkeypatch.setattr(os, "sched_getaffinity",
                            lambda pid: set(), raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert available_workers() == 1

    def test_env_override_caps_the_count(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity",
                            lambda pid: {0, 1, 2, 3}, raising=False)
        monkeypatch.setenv(MAX_WORKERS_ENV, "2")
        assert available_workers() == 2
        # A cap above the machine's cores is clamped to the cores.
        monkeypatch.setenv(MAX_WORKERS_ENV, "64")
        assert available_workers() == 4

    def test_env_override_invalid_values_ignored(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity",
                            lambda pid: {0, 1, 2, 3}, raising=False)
        for bad in ("banana", "0", "-2", ""):
            monkeypatch.setenv(MAX_WORKERS_ENV, bad)
            assert available_workers() == 4


class TestFaultTolerance:
    """Deterministic fault injection against the full engine."""

    def test_killed_worker_degrades_to_survivor_best(self, case):
        evaluator, graph, sizes, farm = case
        specs = default_portfolio(4)
        engine = PortfolioSearch(farm, evaluator, sizes, specs=specs,
                                 jobs=4,
                                 faults=FaultPlan(kill_worker=1))
        result = engine.search(graph)
        assert result.degraded
        assert [f.index for f in result.failures] == [1]
        failure = result.failures[0]
        assert failure.cause == "crash"
        assert failure.attempts >= 2  # pool try + serial retries
        assert failure.label == specs[1].label
        assert result.extras["trajectories"] == 4.0
        assert result.extras["failed_trajectories"] == 1.0
        # The layout is the exact serial best over the survivors.
        survivors = [spec for i, spec in enumerate(specs) if i != 1]
        baseline = PortfolioSearch(farm, evaluator, sizes,
                                   specs=survivors, jobs=1).search(graph)
        assert result.cost == baseline.cost
        assert _fractions(result.layout) == _fractions(baseline.layout)
        assert reap_orphans() == []  # no shm segment left behind

    def test_resilience_params_cause_zero_drift(self, case):
        evaluator, graph, sizes, farm = case
        specs = default_portfolio(3)
        plain = PortfolioSearch(farm, evaluator, sizes, specs=specs,
                                jobs=1).search(graph)
        guarded = PortfolioSearch(
            farm, evaluator, sizes, specs=specs, jobs=2,
            deadline=Budget(seconds=300.0), retry=RetryPolicy(),
            trajectory_timeout_s=120.0).search(graph)
        assert not guarded.degraded
        assert guarded.failures == []
        assert guarded.cost == plain.cost
        assert _fractions(guarded.layout) == _fractions(plain.layout)
        assert guarded.evaluations == plain.evaluations

    def test_eval_fault_recovers_via_retry(self, case):
        evaluator, graph, sizes, farm = case
        specs = default_portfolio(2)
        baseline = PortfolioSearch(farm, evaluator, sizes, specs=specs,
                                   jobs=1).search(graph)
        metrics = MetricsRegistry()
        engine = PortfolioSearch(
            farm, evaluator, sizes, specs=specs, jobs=1,
            metrics=metrics,
            retry=RetryPolicy(attempts=2, base_delay_s=0.0),
            faults=FaultPlan(fail_eval=0, fail_eval_times=1))
        result = engine.search(graph)
        assert not result.degraded
        assert result.cost == baseline.cost
        assert metrics.value("resilience.retries") == 1.0

    def test_eval_fault_exhausts_retries_and_degrades(self, case):
        evaluator, graph, sizes, farm = case
        engine = PortfolioSearch(
            farm, evaluator, sizes, specs=default_portfolio(2),
            jobs=1, retry=RetryPolicy(attempts=2, base_delay_s=0.0),
            faults=FaultPlan(fail_eval=0))  # fails every attempt
        result = engine.search(graph)
        assert result.degraded
        assert [f.index for f in result.failures] == [0]
        assert result.failures[0].cause == "crash"
        assert result.failures[0].attempts == 2

    def test_shm_attach_fault_falls_back_serially(self, case):
        evaluator, graph, sizes, farm = case
        specs = default_portfolio(3)
        baseline = PortfolioSearch(farm, evaluator, sizes, specs=specs,
                                   jobs=1).search(graph)
        metrics = MetricsRegistry()
        engine = PortfolioSearch(
            farm, evaluator, sizes, specs=specs, jobs=2,
            backend="process", metrics=metrics,
            faults=FaultPlan(fail_shm_attach=True))
        result = engine.search(graph)
        # Every worker died attaching; the serial fallback recovered
        # every trajectory, so the run is NOT degraded and the result
        # is bit-identical to the healthy serial run.
        assert not result.degraded
        assert result.cost == baseline.cost
        assert _fractions(result.layout) == _fractions(baseline.layout)
        assert metrics.value("resilience.serial_fallbacks") == 3.0
        assert reap_orphans() == []

    def test_slow_trajectory_times_out(self, case):
        evaluator, graph, sizes, farm = case
        engine = PortfolioSearch(
            farm, evaluator, sizes, specs=default_portfolio(2),
            jobs=2, trajectory_timeout_s=0.5,
            faults=FaultPlan(delay_trajectory=1, delay_s=3.0))
        result = engine.search(graph)
        assert result.degraded
        assert [f.index for f in result.failures] == [1]
        assert result.failures[0].cause == "timeout"
        assert reap_orphans() == []

    def test_deadline_skips_remaining_trajectories(self, case):
        evaluator, graph, sizes, farm = case
        specs = default_portfolio(3)
        engine = PortfolioSearch(farm, evaluator, sizes, specs=specs,
                                 jobs=1, deadline=0.0)
        result = engine.search(graph)
        # Trajectory 0 always runs (a result beats an empty timeout);
        # the rest are recorded as timeouts without being started.
        assert result.degraded
        assert [f.index for f in result.failures] == [1, 2]
        assert all(f.cause == "timeout" for f in result.failures)
        only_first = PortfolioSearch(farm, evaluator, sizes,
                                     specs=specs[:1],
                                     jobs=1).search(graph)
        assert result.cost == only_first.cost

    def test_nothing_completes_raises_search_timeout(
            self, case, monkeypatch):
        evaluator, graph, sizes, farm = case

        def stuck(context, index):
            time.sleep(2.0)
            raise AssertionError("should have been abandoned")

        # fork workers inherit the patched module state.
        monkeypatch.setattr("repro.parallel.worker.run_trajectory",
                            stuck)
        engine = PortfolioSearch(farm, evaluator, sizes,
                                 specs=default_portfolio(2), jobs=2,
                                 trajectory_timeout_s=0.2)
        with pytest.raises(SearchTimeout):
            engine.search(graph)
        assert reap_orphans() == []

    def test_all_crash_raises_worker_crash(self, case):
        evaluator, graph, sizes, farm = case
        engine = PortfolioSearch(
            farm, evaluator, sizes, specs=[TrajectorySpec()], jobs=1,
            retry=RetryPolicy(attempts=2, base_delay_s=0.0),
            faults=FaultPlan(kill_worker=0))
        with pytest.raises(WorkerCrash):
            engine.search(graph)

    def test_keyboard_interrupt_unlinks_segment(self, case,
                                                monkeypatch):
        evaluator, graph, sizes, farm = case
        captured = {}
        original = share_evaluator

        def capturing(ev):
            state = original(ev)
            captured["name"] = state.spec.shm_name
            return state

        monkeypatch.setattr("repro.parallel.portfolio.share_evaluator",
                            capturing)
        engine = PortfolioSearch(farm, evaluator, sizes,
                                 specs=default_portfolio(2), jobs=2,
                                 backend="process")

        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(engine, "_drain", interrupted)
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            with pytest.raises(KeyboardInterrupt):
                engine.search(graph)
        # The finally-owned close ran: the segment is really unlinked
        # and the orphan ledger has nothing left to sweep.
        assert "name" in captured
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=captured["name"])
        assert reap_orphans() == []

    def test_faults_spec_string_round_trips_from_env(self, case,
                                                     monkeypatch):
        evaluator, graph, sizes, farm = case
        monkeypatch.setenv("REPRO_FAULTS", "kill_worker=1")
        engine = PortfolioSearch(farm, evaluator, sizes,
                                 specs=default_portfolio(2), jobs=2)
        result = engine.search(graph)
        assert result.degraded
        assert [f.index for f in result.failures] == [1]


class TestAdvisorPortfolio:
    def test_method_portfolio_matches_jobs_invariance(
            self, mini_db, join_workload, farm8):
        advisor = LayoutAdvisor(mini_db, farm8)
        serial = advisor.recommend(join_workload, method="portfolio",
                                   portfolio=3, jobs=1)
        pooled = advisor.recommend(join_workload, method="portfolio",
                                   portfolio=3, jobs=2)
        assert pooled.estimated_cost == serial.estimated_cost
        assert _fractions(pooled.layout) == _fractions(serial.layout)

    def test_portfolio_never_worse_than_ts_greedy(
            self, mini_db, join_workload, farm8):
        advisor = LayoutAdvisor(mini_db, farm8)
        greedy = advisor.recommend(join_workload, method="ts-greedy")
        portfolio = advisor.recommend(join_workload,
                                      method="portfolio", portfolio=3)
        assert portfolio.estimated_cost <= greedy.estimated_cost

    def test_constrained_portfolio_drops_annealing(
            self, mini_db, join_workload, farm8):
        from repro.core.constraints import CoLocated, ConstraintSet
        constraints = ConstraintSet(
            co_located=[CoLocated("big", "idx_big_d")])
        advisor = LayoutAdvisor(mini_db, farm8,
                                constraints=constraints)
        rec = advisor.recommend(join_workload, method="portfolio",
                                portfolio=4, jobs=2)
        assert rec.search.extras["trajectories"] == 4.0
        constraints.check(rec.layout)

    def test_degraded_run_warns_and_matches_survivors(
            self, mini_db, join_workload, farm8):
        advisor = LayoutAdvisor(mini_db, farm8)
        with pytest.warns(DegradedResult,
                          match=r"1/4 trajectories failed"):
            rec = advisor.recommend(join_workload, method="portfolio",
                                    portfolio=4, jobs=4,
                                    faults=FaultPlan(kill_worker=1))
        assert rec.search.degraded
        assert [f.index for f in rec.search.failures] == [1]
        assert rec.search.failures[0].cause == "crash"
        # The recommendation equals a healthy run over the survivors.
        specs = default_portfolio(4)
        survivors = [spec for i, spec in enumerate(specs) if i != 1]
        baseline = advisor.recommend(join_workload, method="portfolio",
                                     portfolio=survivors, jobs=1)
        assert rec.estimated_cost == baseline.estimated_cost
        assert _fractions(rec.layout) == _fractions(baseline.layout)
        assert reap_orphans() == []

    def test_deadline_parameter_reaches_the_engine(
            self, mini_db, join_workload, farm8):
        advisor = LayoutAdvisor(mini_db, farm8)
        with pytest.warns(DegradedResult):
            rec = advisor.recommend(join_workload, method="portfolio",
                                    portfolio=3, jobs=1, deadline=0.0)
        assert rec.search.degraded
        # One trajectory still ran, so the layout is real and valid.
        assert rec.layout.object_names
        causes = {f.cause for f in rec.search.failures}
        assert causes == {"timeout"}

    def test_report_shows_degradation(self, mini_db, join_workload,
                                      farm8):
        from repro.core.report import render_report
        advisor = LayoutAdvisor(mini_db, farm8)
        with pytest.warns(DegradedResult):
            rec = advisor.recommend(join_workload, method="portfolio",
                                    portfolio=4, jobs=4,
                                    faults=FaultPlan(kill_worker=1))
        text = render_report(rec)
        assert "degraded: 1/4 trajectories failed (crash)" in text
