"""Tests for repro.parallel: shared memory, trajectories, portfolio."""

from __future__ import annotations

import warnings
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.advisor import LayoutAdvisor
from repro.core.costmodel import WorkloadCostEvaluator
from repro.core.fullstripe import full_striping
from repro.core.greedy import TsGreedySearch
from repro.core.random_layout import random_layout
from repro.errors import LayoutError
from repro.obs import MetricsRegistry, Tracer
from repro.parallel import (
    PortfolioSearch,
    TrajectorySpec,
    attach_evaluator,
    default_portfolio,
    share_evaluator,
)
from repro.parallel.worker import TrajectoryContext, run_trajectory
from repro.workload.access import analyze_workload
from repro.workload.access_graph import build_access_graph


@pytest.fixture
def case(mini_db, join_workload, farm8):
    analyzed = analyze_workload(join_workload, mini_db)
    sizes = mini_db.object_sizes()
    evaluator = WorkloadCostEvaluator(analyzed, farm8, sorted(sizes))
    graph = build_access_graph(analyzed, mini_db)
    return evaluator, graph, sizes, farm8


def _fractions(layout):
    return {name: layout.fractions_of(name)
            for name in layout.object_names}


class TestSharedEvaluator:
    def test_round_trip_is_bit_identical(self, case):
        evaluator, _, sizes, farm = case
        layouts = [full_striping(sizes, farm)] + \
            [random_layout(sizes, farm, seed) for seed in range(5)]
        with share_evaluator(evaluator) as state:
            attached = attach_evaluator(state.spec)
            for layout in layouts:
                assert attached.cost(layout) == evaluator.cost(layout)
            del attached  # release the views before unlink

    def test_attached_arrays_are_read_only_views(self, case):
        evaluator, _, _, _ = case
        with share_evaluator(evaluator) as state:
            attached = attach_evaluator(state.spec)
            assert not attached._blocks.flags.writeable
            np.testing.assert_array_equal(attached._blocks,
                                          evaluator._blocks)
            with pytest.raises(ValueError):
                attached._blocks[0, 0] = 1.0
            del attached

    def test_close_unlinks_the_segment(self, case):
        evaluator, _, _, _ = case
        state = share_evaluator(evaluator)
        name = state.spec.shm_name
        state.close()
        with pytest.raises(LayoutError, match="gone"):
            attach_evaluator(state.spec)
        # And raw reattachment by name fails too: truly unlinked.
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_close_is_idempotent(self, case):
        evaluator, _, _, _ = case
        state = share_evaluator(evaluator)
        state.close()
        state.close()  # second close must not raise

    def test_no_resource_tracker_warnings(self, case):
        evaluator, graph, sizes, farm = case
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            engine = PortfolioSearch(farm, evaluator, sizes,
                                     specs=default_portfolio(2),
                                     jobs=2)
            engine.search(graph)

    def test_segment_cleaned_up_when_worker_raises(self, case):
        evaluator, graph, sizes, farm = case
        bad = [TrajectorySpec(method="no-such-method")]
        engine = PortfolioSearch(farm, evaluator, sizes, specs=bad,
                                 jobs=2)
        with pytest.raises(LayoutError):
            engine.search(graph)
        # The finally-path unlink ran: a fresh share uses a new name
        # and nothing of the failed run lingers to collide with it.
        with share_evaluator(evaluator) as state:
            assert state.spec.shm_name


class TestTrajectories:
    def test_unknown_method_raises(self, case):
        evaluator, graph, sizes, farm = case
        from repro.core.constraints import ConstraintSet
        context = TrajectoryContext(
            evaluator=evaluator, farm=farm, sizes=sizes,
            constraints=ConstraintSet(), graph=graph,
            initial_layout=None,
            specs=(TrajectorySpec(method="quantum"),))
        with pytest.raises(LayoutError, match="quantum"):
            run_trajectory(context, 0)

    def test_payload_rebuilds_the_result(self, case):
        evaluator, graph, sizes, farm = case
        from repro.core.constraints import ConstraintSet
        from repro.parallel import rebuild_result
        context = TrajectoryContext(
            evaluator=evaluator, farm=farm, sizes=sizes,
            constraints=ConstraintSet(), graph=graph,
            initial_layout=None, specs=(TrajectorySpec(),))
        payload = run_trajectory(context, 0)
        rebuilt = rebuild_result(payload, farm, sizes)
        direct = TsGreedySearch(farm, evaluator, sizes).search(graph)
        assert rebuilt.cost == direct.cost
        assert _fractions(rebuilt.layout) == _fractions(direct.layout)
        assert rebuilt.evaluations == direct.evaluations
        assert len(rebuilt.steps) == len(direct.steps)

    def test_default_portfolio_shape(self):
        specs = default_portfolio(6)
        assert len(specs) == 6
        assert specs[0].partition_seed is None  # canonical run first
        methods = [s.method for s in specs]
        assert "annealing" in methods
        assert default_portfolio(1)[0].method == "ts-greedy"
        no_anneal = default_portfolio(6, include_annealing=False)
        assert all(s.method == "ts-greedy" for s in no_anneal)
        with pytest.raises(LayoutError):
            default_portfolio(0)


class TestPortfolioSearch:
    def test_parallel_matches_serial_bit_identically(self, case):
        evaluator, graph, sizes, farm = case
        specs = default_portfolio(4)
        serial = PortfolioSearch(farm, evaluator, sizes, specs=specs,
                                 jobs=1).search(graph)
        pooled = PortfolioSearch(farm, evaluator, sizes, specs=specs,
                                 jobs=4).search(graph)
        assert pooled.cost == serial.cost
        assert _fractions(pooled.layout) == _fractions(serial.layout)
        assert pooled.evaluations == serial.evaluations
        assert pooled.extras["best_trajectory"] \
            == serial.extras["best_trajectory"]

    def test_winner_equals_best_individual_trajectory(self, case):
        evaluator, graph, sizes, farm = case
        specs = default_portfolio(4)
        result = PortfolioSearch(farm, evaluator, sizes, specs=specs,
                                 jobs=1).search(graph)
        individual = []
        for spec in specs:
            if spec.method == "ts-greedy":
                individual.append(TsGreedySearch(
                    farm, evaluator, sizes, k=spec.k,
                    partition_seed=spec.partition_seed,
                    prune=spec.prune).search(graph).cost)
            else:
                from repro.core.annealing import annealing_search
                individual.append(annealing_search(
                    farm, evaluator, sizes, seed=spec.seed,
                    iterations=spec.iterations).cost)
        assert result.cost == min(individual)
        assert int(result.extras["best_trajectory"]) \
            == individual.index(min(individual))

    def test_never_worse_than_canonical_greedy(self, case):
        evaluator, graph, sizes, farm = case
        canonical = TsGreedySearch(farm, evaluator, sizes).search(graph)
        result = PortfolioSearch(farm, evaluator, sizes,
                                 specs=default_portfolio(3),
                                 jobs=1).search(graph)
        assert result.cost <= canonical.cost

    def test_merged_telemetry_and_metrics(self, case):
        evaluator, graph, sizes, farm = case
        tracer, metrics = Tracer(), MetricsRegistry()
        specs = default_portfolio(3)
        result = PortfolioSearch(farm, evaluator, sizes, specs=specs,
                                 jobs=2, tracer=tracer,
                                 metrics=metrics).search(graph)
        assert result.extras["trajectories"] == 3.0
        assert result.extras["workers"] == 2.0
        root = tracer.find("portfolio")
        assert root is not None
        names = [child.name for child in root.children]
        assert names == [f"portfolio/trajectory-{i}" for i in range(3)]
        assert metrics.value("portfolio.trajectories") == 3.0
        assert metrics.value("portfolio.workers") == 2.0
        # Worker-side counters really crossed the process boundary.
        assert metrics.value("greedy.iterations") > 0
        assert metrics.value("costmodel.bound_evaluations") > 0

    def test_rejects_bad_arguments(self, case):
        evaluator, _, sizes, farm = case
        with pytest.raises(LayoutError):
            PortfolioSearch(farm, evaluator, sizes, jobs=-1)
        with pytest.raises(LayoutError):
            PortfolioSearch(farm, evaluator, sizes, specs=[])


class TestAdvisorPortfolio:
    def test_method_portfolio_matches_jobs_invariance(
            self, mini_db, join_workload, farm8):
        advisor = LayoutAdvisor(mini_db, farm8)
        serial = advisor.recommend(join_workload, method="portfolio",
                                   portfolio=3, jobs=1)
        pooled = advisor.recommend(join_workload, method="portfolio",
                                   portfolio=3, jobs=2)
        assert pooled.estimated_cost == serial.estimated_cost
        assert _fractions(pooled.layout) == _fractions(serial.layout)

    def test_portfolio_never_worse_than_ts_greedy(
            self, mini_db, join_workload, farm8):
        advisor = LayoutAdvisor(mini_db, farm8)
        greedy = advisor.recommend(join_workload, method="ts-greedy")
        portfolio = advisor.recommend(join_workload,
                                      method="portfolio", portfolio=3)
        assert portfolio.estimated_cost <= greedy.estimated_cost

    def test_constrained_portfolio_drops_annealing(
            self, mini_db, join_workload, farm8):
        from repro.core.constraints import CoLocated, ConstraintSet
        constraints = ConstraintSet(
            co_located=[CoLocated("big", "idx_big_d")])
        advisor = LayoutAdvisor(mini_db, farm8,
                                constraints=constraints)
        rec = advisor.recommend(join_workload, method="portfolio",
                                portfolio=4, jobs=2)
        assert rec.search.extras["trajectories"] == 4.0
        constraints.check(rec.layout)
