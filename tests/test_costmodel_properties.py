"""Property-based tests of cost-model invariants (hypothesis).

These encode the qualitative facts the paper's Section 5 argues from:
parallelism helps single streams, co-location costs seeks, the
bottleneck disk bounds the subplan, and cost scales linearly in block
counts for fixed structure.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.costmodel import CostModel
from repro.core.layout import Layout, stripe_fractions
from repro.optimizer.operators import ObjectAccess
from repro.storage.disk import uniform_farm, winbench_farm
from repro.workload.access import SubplanAccess

_FARM = uniform_farm(6, read_mb_s=20.0, seek_ms=8.0)
_MODEL = CostModel(_FARM)


def _layout(**disk_sets):
    sizes = {name: 10_000 for name in disk_sets}
    return Layout(_FARM, sizes, {
        name: stripe_fractions(disks, _FARM)
        for name, disks in disk_sets.items()})


def _sub(**blocks):
    return SubplanAccess([ObjectAccess(name, float(b))
                          for name, b in blocks.items()])


class TestSingleStreamProperties:
    @given(blocks=st.floats(min_value=1, max_value=1e6),
           narrow=st.sets(st.integers(0, 5), min_size=1, max_size=5))
    def test_wider_striping_never_hurts_a_single_stream(self, blocks,
                                                        narrow):
        """On a uniform farm, a lone stream only gains from more disks."""
        sub = _sub(a=blocks)
        narrow_cost = _MODEL.subplan_cost(sub, _layout(a=narrow))
        wide_cost = _MODEL.subplan_cost(sub, _layout(a=range(6)))
        assert wide_cost <= narrow_cost + 1e-9

    @given(blocks=st.floats(min_value=1, max_value=1e6))
    def test_full_stripe_single_stream_closed_form(self, blocks):
        sub = _sub(a=blocks)
        cost = _MODEL.subplan_cost(sub, _layout(a=range(6)))
        expected = blocks / 6 / _FARM[0].read_blocks_s
        assert cost == pytest.approx(expected)

    @given(factor=st.floats(min_value=0.1, max_value=100),
           blocks=st.floats(min_value=1, max_value=1e5))
    def test_cost_is_linear_in_blocks(self, factor, blocks):
        layout = _layout(a=[0, 1], b=[1, 2])
        base = _MODEL.subplan_cost(_sub(a=blocks, b=blocks / 2), layout)
        scaled = _MODEL.subplan_cost(
            _sub(a=blocks * factor, b=blocks * factor / 2), layout)
        assert scaled == pytest.approx(base * factor, rel=1e-9)


class TestCoAccessProperties:
    @given(a=st.floats(min_value=100, max_value=1e5),
           b=st.floats(min_value=100, max_value=1e5))
    def test_disjoint_never_pays_seeks(self, a, b):
        """Disjoint placement = pure transfer on the bottleneck side."""
        sub = _sub(a=a, b=b)
        cost = _MODEL.subplan_cost(sub, _layout(a=[0, 1, 2],
                                                b=[3, 4, 5]))
        rate = _FARM[0].read_blocks_s
        assert cost == pytest.approx(max(a, b) / 3 / rate)

    @given(a=st.floats(min_value=100, max_value=1e5),
           b=st.floats(min_value=100, max_value=1e5))
    def test_co_location_costs_at_least_the_transfer(self, a, b):
        sub = _sub(a=a, b=b)
        shared = _MODEL.subplan_cost(sub, _layout(a=range(6),
                                                  b=range(6)))
        rate = _FARM[0].read_blocks_s
        transfer_only = (a + b) / 6 / rate
        assert shared >= transfer_only - 1e-9
        # And the excess is exactly the Fig.-7 seek term.
        seek = 2 * _FARM[0].avg_seek_s * min(a, b) / 6
        assert shared == pytest.approx(transfer_only + seek)

    @given(st.data())
    def test_subplan_cost_is_max_over_disks(self, data):
        """Removing any disk's streams can only lower or keep cost."""
        a_disks = data.draw(st.sets(st.integers(0, 5), min_size=1,
                                    max_size=6))
        b_disks = data.draw(st.sets(st.integers(0, 5), min_size=1,
                                    max_size=6))
        a = data.draw(st.floats(min_value=10, max_value=1e5))
        b = data.draw(st.floats(min_value=10, max_value=1e5))
        layout = _layout(a=a_disks, b=b_disks)
        sub = _sub(a=a, b=b)
        whole = _MODEL.subplan_cost(sub, layout)
        each_alone = max(
            _MODEL.subplan_cost(_sub(a=a), layout),
            _MODEL.subplan_cost(_sub(b=b), layout))
        assert whole >= each_alone - 1e-9


class TestHeterogeneousFarmProperties:
    @given(seed=st.integers(0, 1000),
           blocks=st.floats(min_value=100, max_value=1e5))
    @settings(suppress_health_check=[
        HealthCheck.function_scoped_fixture])
    def test_rate_proportional_beats_even_striping(self, seed, blocks):
        """Footnote 1's convention: on a heterogeneous farm, striping
        proportionally to transfer rates is never worse than evenly."""
        farm = winbench_farm(4, seed=seed)
        model = CostModel(farm)
        sizes = {"a": 10_000}
        proportional = Layout(farm, sizes, {
            "a": stripe_fractions(range(4), farm,
                                  rate_proportional=True)})
        even = Layout(farm, sizes, {
            "a": stripe_fractions(range(4), farm,
                                  rate_proportional=False)})
        sub = _sub(a=blocks)
        assert model.subplan_cost(sub, proportional) <= \
            model.subplan_cost(sub, even) + 1e-9
