"""Public-API surface tests: everything advertised must resolve."""

import importlib
import inspect

import pytest

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("module", [
        "repro.catalog", "repro.storage", "repro.sql",
        "repro.optimizer", "repro.workload", "repro.core",
        "repro.simulator", "repro.benchdb", "repro.experiments",
        "repro.cli",
    ])
    def test_subpackages_import_cleanly(self, module):
        imported = importlib.import_module(module)
        assert imported.__doc__, f"{module} has no module docstring"

    def test_subpackage_alls_resolve(self):
        for module_name in ("repro.catalog", "repro.storage",
                            "repro.workload", "repro.core",
                            "repro.simulator", "repro.optimizer",
                            "repro.experiments"):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", ()):
                assert hasattr(module, name), \
                    f"{module_name}.{name} missing"

    def test_exceptions_share_base(self):
        from repro import errors
        for name in errors.__dict__:
            obj = getattr(errors, name)
            if inspect.isclass(obj) and issubclass(obj, Exception) \
                    and obj is not errors.ReproError:
                assert issubclass(obj, errors.ReproError)

    def test_quickstart_docstring_example_runs(self):
        """The module docstring's quickstart must stay truthful."""
        from repro import LayoutAdvisor, winbench_farm
        from repro.benchdb import tpch

        db = tpch.tpch_database()
        advisor = LayoutAdvisor(db, winbench_farm(8))
        rec = advisor.recommend(tpch.tpch22_workload())
        assert rec.improvement_pct > 10
        lineitem = set(rec.layout.disks_of("lineitem"))
        orders = set(rec.layout.disks_of("orders"))
        assert not lineitem & orders
