"""Tests for JSON serialization of catalogs, farms and constraints."""

import json

import pytest

from repro.catalog.io import (
    constraints_from_dict,
    constraints_to_dict,
    database_from_dict,
    database_to_dict,
    farm_from_dict,
    load_database,
    load_farm,
    load_layout,
    save_database,
    save_farm,
    save_layout,
)
from repro.catalog.schema import MaterializedView
from repro.catalog.stats import Histogram
from repro.core.constraints import (
    AvailabilityRequirement,
    CoLocated,
    ConstraintSet,
    MaxDataMovement,
)
from repro.core.fullstripe import full_striping
from repro.errors import CatalogError
from repro.storage.disk import Availability, winbench_farm


class TestDatabaseRoundTrip:
    def test_round_trip_preserves_everything(self, mini_db):
        rebuilt = database_from_dict(database_to_dict(mini_db))
        assert rebuilt.name == mini_db.name
        assert rebuilt.object_sizes() == mini_db.object_sizes()
        big = rebuilt.table("big")
        assert big.clustered_on == ("k",)
        assert big.column("k").stats.ndv == 1_000_000
        assert {ix.name for ix in rebuilt.indexes} == \
            {"idx_big_d", "idx_big_dim"}
        assert rebuilt.index("idx_big_dim").included_columns == ("v",)

    def test_views_round_trip(self, mini_db):
        from repro.catalog.schema import Database
        db = Database("withview", list(mini_db.tables),
                      views=[MaterializedView("mv", 100, 50, "SELECT")])
        rebuilt = database_from_dict(database_to_dict(db))
        assert rebuilt.views[0].name == "mv"
        assert rebuilt.views[0].definition == "SELECT"

    def test_histogram_round_trip(self):
        from repro.catalog.schema import Column, Database, Table
        from repro.catalog.stats import ColumnStats
        stats = ColumnStats(ndv=10, lo=0, hi=100,
                            histogram=Histogram(0, 100, (0.25, 0.75)))
        db = Database("h", [Table("t", 10, [Column("c", 8, stats)])])
        rebuilt = database_from_dict(database_to_dict(db))
        histogram = rebuilt.table("t").column("c").stats.histogram
        assert histogram.bucket_fractions == (0.25, 0.75)

    def test_file_round_trip(self, mini_db, tmp_path):
        path = tmp_path / "db.json"
        save_database(mini_db, path)
        assert load_database(path).object_sizes() == \
            mini_db.object_sizes()

    def test_missing_fields_reported(self):
        with pytest.raises(CatalogError, match="missing required"):
            database_from_dict({"tables": [{"name": "t"}]})

    def test_tpch_catalog_round_trips(self):
        from repro.benchdb import tpch
        db = tpch.tpch_database()
        rebuilt = database_from_dict(database_to_dict(db))
        assert rebuilt.object_sizes() == db.object_sizes()


class TestFarmRoundTrip:
    def test_round_trip(self, tmp_path):
        farm = winbench_farm(8)
        path = tmp_path / "disks.json"
        save_farm(farm, path)
        rebuilt = load_farm(path)
        assert len(rebuilt) == 8
        for original, loaded in zip(farm, rebuilt):
            assert loaded.name == original.name
            assert loaded.read_mb_s == pytest.approx(original.read_mb_s)
            assert loaded.avg_seek_s == pytest.approx(
                original.avg_seek_s)
            assert loaded.availability is original.availability

    def test_availability_levels(self):
        data = [{"name": "M", "capacity_blocks": 100,
                 "avg_seek_ms": 8.0, "read_mb_s": 20.0,
                 "write_mb_s": 18.0, "availability": "mirroring"}]
        farm = farm_from_dict(data)
        assert farm[0].availability is Availability.MIRRORING

    def test_missing_fields_reported(self):
        with pytest.raises(CatalogError, match="missing required"):
            farm_from_dict([{"name": "D1"}])

    def test_bad_availability_reported_as_catalog_error(self):
        data = [{"name": "D1", "capacity_blocks": 100,
                 "avg_seek_ms": 8.0, "read_mb_s": 20.0,
                 "write_mb_s": 18.0, "availability": "raid99"}]
        with pytest.raises(CatalogError, match="invalid value"):
            farm_from_dict(data)


class TestConstraintsRoundTrip:
    def test_co_location_and_availability(self, farm8):
        constraints = ConstraintSet(
            co_located=[CoLocated("a", "b")],
            availability=[AvailabilityRequirement(
                "c", Availability.PARITY)])
        data = json.loads(json.dumps(constraints_to_dict(constraints)))
        rebuilt = constraints_from_dict(data)
        assert rebuilt.co_located == [CoLocated("a", "b")]
        assert rebuilt.availability[0].level is Availability.PARITY

    def test_movement_round_trip(self, mini_db, farm8):
        baseline = full_striping(mini_db.object_sizes(), farm8)
        constraints = ConstraintSet(
            movement=MaxDataMovement(baseline, max_blocks=500))
        data = constraints_to_dict(constraints)
        rebuilt = constraints_from_dict(
            data, farm=farm8, object_sizes=mini_db.object_sizes())
        assert rebuilt.movement.max_blocks == 500
        assert rebuilt.movement.baseline.data_movement_blocks(
            baseline) == 0.0

    def test_movement_requires_context(self, mini_db, farm8):
        baseline = full_striping(mini_db.object_sizes(), farm8)
        data = constraints_to_dict(ConstraintSet(
            movement=MaxDataMovement(baseline, max_blocks=1)))
        with pytest.raises(CatalogError, match="movement constraint"):
            constraints_from_dict(data)


class TestLayoutRoundTrip:
    def test_round_trip(self, mini_db, farm8, tmp_path):
        layout = full_striping(mini_db.object_sizes(), farm8)
        path = tmp_path / "layout.json"
        save_layout(layout, path)
        rebuilt = load_layout(path, farm8)
        for name in layout.object_names:
            assert rebuilt.fractions_of(name) == pytest.approx(
                layout.fractions_of(name))


@pytest.fixture
def incremental_rec(mini_db, farm8, join_workload):
    """A full incremental recommendation (diagnostics + plan)."""
    from repro.core.advisor import LayoutAdvisor
    current = full_striping(mini_db.object_sizes(), farm8)
    advisor = LayoutAdvisor(mini_db, farm8)
    return advisor.recommend(join_workload, current_layout=current,
                             method="incremental",
                             movement_budget=0.5)


class TestRecommendationRoundTrip:
    def test_incremental_fields_round_trip(self, incremental_rec,
                                           farm8, tmp_path):
        from repro.catalog.io import (
            load_recommendation,
            save_recommendation,
        )
        path = tmp_path / "rec.json"
        save_recommendation(incremental_rec, path)
        rebuilt = load_recommendation(path, farm8)
        assert rebuilt.movement_budget == 0.5
        assert rebuilt.migration.to_dict() == \
            incremental_rec.migration.to_dict()
        assert rebuilt.moved_fraction == pytest.approx(
            incremental_rec.moved_fraction)
        assert rebuilt.estimated_cost == pytest.approx(
            incremental_rec.estimated_cost)

    def test_diagnostics_round_trip(self, incremental_rec, farm8,
                                    tmp_path):
        from repro.catalog.io import (
            load_recommendation,
            save_recommendation,
        )
        path = tmp_path / "rec.json"
        save_recommendation(incremental_rec, path)
        rebuilt = load_recommendation(path, farm8)
        assert [(d.rule_id, d.severity, d.message)
                for d in rebuilt.diagnostics] == \
            [(d.rule_id, d.severity, d.message)
             for d in incremental_rec.diagnostics]

    def test_plain_recommendation_stays_plain(self, mini_db, farm8,
                                              join_workload,
                                              tmp_path):
        from repro.catalog.io import (
            load_recommendation,
            recommendation_to_dict,
            save_recommendation,
        )
        from repro.core.advisor import LayoutAdvisor
        rec = LayoutAdvisor(mini_db, farm8).recommend(join_workload)
        assert "migration" not in recommendation_to_dict(rec)
        path = tmp_path / "rec.json"
        save_recommendation(rec, path)
        rebuilt = load_recommendation(path, farm8)
        assert rebuilt.migration is None
        assert rebuilt.movement_budget is None


class TestMigrationPlanIo:
    def test_file_round_trip(self, incremental_rec, tmp_path):
        from repro.catalog.io import (
            load_migration_plan,
            save_migration_plan,
        )
        path = tmp_path / "plan.json"
        save_migration_plan(incremental_rec.migration, path)
        rebuilt = load_migration_plan(path)
        assert rebuilt.to_dict() == incremental_rec.migration.to_dict()

    def test_not_json_reported(self, tmp_path):
        from repro.catalog.io import load_migration_plan
        from repro.errors import RecommendationFormatError
        path = tmp_path / "plan.json"
        path.write_text("{not json")
        with pytest.raises(RecommendationFormatError,
                           match="not valid JSON"):
            load_migration_plan(path)

    def test_wrong_shape_reported(self, tmp_path):
        from repro.catalog.io import load_migration_plan
        from repro.errors import RecommendationFormatError
        path = tmp_path / "plan.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(RecommendationFormatError,
                           match="must be an object"):
            load_migration_plan(path)

    def test_missing_key_names_the_key(self, tmp_path):
        from repro.catalog.io import load_migration_plan
        from repro.errors import RecommendationFormatError
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(
            {"steps": [{"obj": "t", "src": 0, "dst": 1}]}))
        with pytest.raises(RecommendationFormatError,
                           match="blocks"):
            load_migration_plan(path)

    def test_uncoercible_value_reported(self, tmp_path):
        from repro.catalog.io import load_migration_plan
        from repro.errors import RecommendationFormatError
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(
            {"steps": [], "moved_blocks": "lots",
             "est_seconds": 0.0}))
        with pytest.raises(RecommendationFormatError,
                           match="malformed"):
            load_migration_plan(path)


class TestDriftReportIo:
    def test_file_round_trip(self, tmp_path):
        from repro.catalog.io import (
            load_drift_report,
            save_drift_report,
        )
        from repro.workload.access_graph import AccessGraph
        from repro.workload.drift import detect_drift
        before, after = AccessGraph(["a"]), AccessGraph(["b"])
        before.add_node_weight("a", 100.0)
        after.add_node_weight("b", 80.0)
        report = detect_drift(before, after)
        path = tmp_path / "drift.json"
        save_drift_report(report, path)
        rebuilt = load_drift_report(path)
        assert rebuilt.to_dict() == report.to_dict()

    def test_malformed_file_reported(self, tmp_path):
        from repro.catalog.io import load_drift_report
        from repro.errors import RecommendationFormatError
        path = tmp_path / "drift.json"
        path.write_text(json.dumps({"score": 0.5}))
        with pytest.raises(RecommendationFormatError,
                           match="node_drift"):
            load_drift_report(path)


class TestRunIdProvenance:
    """Saved plans and drift reports carry the producing run's id."""

    def test_migration_plan_run_id_round_trips(self, incremental_rec,
                                               tmp_path):
        from repro.catalog.io import (
            load_migration_plan,
            save_migration_plan,
        )
        path = tmp_path / "plan.json"
        save_migration_plan(incremental_rec.migration, path,
                            run_id="run-1234abcd")
        assert json.loads(path.read_text())["run_id"] == "run-1234abcd"
        rebuilt = load_migration_plan(path)
        assert rebuilt.run_id == "run-1234abcd"
        # Provenance is metadata: the plan content is untouched.
        stripped = rebuilt.to_dict()
        stripped.pop("run_id")
        assert stripped == incremental_rec.migration.to_dict()

    def test_drift_report_run_id_round_trips(self, tmp_path):
        from repro.catalog.io import (
            load_drift_report,
            save_drift_report,
        )
        from repro.workload.access_graph import AccessGraph
        from repro.workload.drift import detect_drift
        before, after = AccessGraph(["a"]), AccessGraph(["a"])
        before.add_node_weight("a", 100.0)
        after.add_node_weight("a", 80.0)
        report = detect_drift(before, after)
        path = tmp_path / "drift.json"
        save_drift_report(report, path, run_id="run-feedbeef")
        rebuilt = load_drift_report(path)
        assert rebuilt.run_id == "run-feedbeef"

    def test_unstamped_files_load_with_no_run_id(self, incremental_rec,
                                                 tmp_path):
        from repro.catalog.io import (
            load_migration_plan,
            save_migration_plan,
        )
        path = tmp_path / "plan.json"
        save_migration_plan(incremental_rec.migration, path)
        assert "run_id" not in json.loads(path.read_text())
        assert load_migration_plan(path).run_id is None


class TestMigrationPlanProperties:
    """Property test: staged plans round-trip through disk exactly."""

    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    steps = st.lists(
        st.builds(
            dict,
            obj=st.sampled_from(["lineitem", "orders", "partsupp"]),
            src=st.integers(min_value=0, max_value=7),
            dst=st.integers(min_value=0, max_value=7),
            blocks=st.floats(min_value=0.0, max_value=1e7,
                             allow_nan=False, allow_infinity=False),
            est_seconds=st.floats(min_value=0.0, max_value=1e5,
                                  allow_nan=False,
                                  allow_infinity=False),
            staged=st.booleans()),
        max_size=12)

    # tmp_path is only used as a scratch file that each example fully
    # overwrites, so reusing it across examples is safe.
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(raw=steps)
    def test_staged_plan_round_trips_exactly(self, raw, tmp_path):
        from repro.catalog.io import (
            load_migration_plan,
            save_migration_plan,
        )
        from repro.storage.migration import MigrationPlan, MigrationStep
        steps = [MigrationStep(**fields) for fields in raw]
        plan = MigrationPlan(
            steps=steps,
            moved_blocks=sum(s.blocks for s in steps
                             if not s.staged),
            staged_blocks=sum(s.blocks for s in steps if s.staged),
            est_seconds=sum(s.est_seconds for s in steps))
        path = tmp_path / "plan.json"
        save_migration_plan(plan, path)
        rebuilt = load_migration_plan(path)
        # Exact: JSON round-trips Python floats bit-for-bit.
        assert [s.to_dict() for s in rebuilt.steps] == \
            [s.to_dict() for s in plan.steps]
        assert [s.staged for s in rebuilt.steps] == \
            [s.staged for s in plan.steps]
        assert rebuilt.est_seconds == plan.est_seconds
        assert rebuilt.moved_blocks == plan.moved_blocks
        assert rebuilt.staged_blocks == plan.staged_blocks
