"""Tests for profiler-trace ingestion."""

import pytest

from repro.errors import WorkloadError
from repro.workload.profiler import (
    TraceRecord,
    concurrency_from_trace,
    load_trace,
    read_trace,
    workload_from_trace,
)


def _rec(start, end, sql):
    return TraceRecord(start=start, end=end, sql=sql)


class TestTraceRecord:
    def test_overlap(self):
        a = _rec(0, 10, "a")
        b = _rec(5, 15, "b")
        assert a.overlap_with(b) == 5
        assert b.overlap_with(a) == 5

    def test_no_overlap(self):
        assert _rec(0, 5, "a").overlap_with(_rec(5, 10, "b")) == 0

    def test_invalid_interval(self):
        with pytest.raises(WorkloadError):
            _rec(10, 5, "a")

    def test_empty_sql(self):
        with pytest.raises(WorkloadError):
            _rec(0, 1, "   ")


class TestReadTrace:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "start,end,sql\n"
            "0.0,4.0,SELECT COUNT(*) FROM big b\n"
            '1.0,5.0,"SELECT SUM(m.w) FROM mid m"\n')
        records = read_trace(path)
        assert len(records) == 2
        assert records[1].sql == "SELECT SUM(m.w) FROM mid m"

    def test_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("when,what\n1,SELECT\n")
        with pytest.raises(WorkloadError, match="needs columns"):
            read_trace(path)

    def test_bad_timestamp(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("start,end,sql\nsoon,later,SELECT 1 FROM t\n")
        with pytest.raises(WorkloadError, match="trace line 2"):
            read_trace(path)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("start,end,sql\n")
        with pytest.raises(WorkloadError, match="no records"):
            read_trace(path)


class TestWorkloadFromTrace:
    def test_multiplicity_becomes_weight(self):
        records = [_rec(0, 1, "SELECT a FROM t"),
                   _rec(2, 3, "SELECT a FROM t"),
                   _rec(4, 5, "SELECT b FROM u")]
        workload = workload_from_trace(records)
        assert len(workload) == 2
        assert workload[0].weight == 2.0
        assert workload[1].weight == 1.0

    def test_first_seen_order_preserved(self):
        records = [_rec(0, 1, "SELECT b FROM u"),
                   _rec(1, 2, "SELECT a FROM t"),
                   _rec(2, 3, "SELECT b FROM u")]
        workload = workload_from_trace(records)
        assert workload[0].sql == "SELECT b FROM u"


class TestConcurrencyFromTrace:
    def test_overlapping_executions_grouped(self):
        records = [_rec(0, 10, "SELECT a FROM t"),
                   _rec(5, 15, "SELECT b FROM u")]
        spec = concurrency_from_trace(records)
        assert spec.concurrent_pairs() == {(0, 1)}
        # Overlap 5s of the shorter 10s run -> factor 0.5.
        assert spec.overlap_factor == pytest.approx(0.5)

    def test_sequential_executions_not_grouped(self):
        records = [_rec(0, 10, "SELECT a FROM t"),
                   _rec(10, 20, "SELECT b FROM u")]
        spec = concurrency_from_trace(records)
        assert spec.concurrent_pairs() == set()

    def test_tiny_overlaps_filtered(self):
        records = [_rec(0, 100, "SELECT a FROM t"),
                   _rec(99.9, 200, "SELECT b FROM u")]
        spec = concurrency_from_trace(records,
                                      min_overlap_fraction=0.05)
        assert spec.concurrent_pairs() == set()

    def test_self_overlap_ignored(self):
        # The same statement running twice concurrently with itself is
        # not a cross-statement pair.
        records = [_rec(0, 10, "SELECT a FROM t"),
                   _rec(5, 15, "SELECT a FROM t")]
        assert concurrency_from_trace(records).concurrent_pairs() \
            == set()

    def test_indices_match_workload_order(self):
        records = [_rec(0, 1, "SELECT a FROM t"),        # index 0
                   _rec(10, 20, "SELECT b FROM u"),      # index 1
                   _rec(15, 25, "SELECT c FROM v")]      # index 2
        spec = concurrency_from_trace(records)
        assert spec.concurrent_pairs() == {(1, 2)}


class TestEndToEnd:
    def test_trace_to_recommendation(self, tmp_path, mini_db, farm8):
        """A trace of two overlapping scans yields a concurrency-aware
        recommendation that separates the scanned tables."""
        from repro.core.advisor import LayoutAdvisor
        path = tmp_path / "trace.csv"
        path.write_text(
            "start,end,sql\n"
            "0.0,10.0,SELECT COUNT(*) FROM big b\n"
            "0.5,9.5,SELECT COUNT(*) FROM mid m\n"
            "20.0,21.0,SELECT COUNT(*) FROM small s\n")
        workload, spec = load_trace(path)
        assert len(workload) == 3
        assert spec.concurrent_pairs() == {(0, 1)}
        advisor = LayoutAdvisor(mini_db, farm8)
        rec = advisor.recommend_concurrent(workload, spec)
        big = set(rec.layout.disks_of("big"))
        mid = set(rec.layout.disks_of("mid"))
        assert not big & mid
