"""Tests for the plan pretty-printer."""

from repro.optimizer import explain
from repro.optimizer import operators as ops
from repro.optimizer.planner import plan_statement


def scan(name, blocks=10.0):
    return ops.TableScanOp(name, name, blocks=blocks, rows_out=blocks)


class TestExplain:
    def test_blocking_edges_marked(self):
        plan = ops.SortOp(scan("a"), rows_out=10, order=(("a", "x"),))
        text = explain(plan)
        lines = text.splitlines()
        assert lines[0].startswith("Sort")
        assert "||" in lines[1]  # the blocking cut marker

    def test_pipelined_edges_unmarked(self):
        plan = ops.MergeJoinOp(scan("a"), scan("b"), rows_out=5)
        text = explain(plan)
        assert "||" not in text

    def test_access_annotations(self):
        node = ops.TableScanOp("t", "t", blocks=42.0, rows_out=7.0)
        node.accesses.append(ops.ObjectAccess("idx", 5.0, write=True,
                                              sequential=False))
        text = explain(node)
        assert "[t: 42 blk]" in text
        assert "[idx: 5 blk, write, random]" in text

    def test_rows_rendered(self):
        text = explain(scan("a", blocks=123.0))
        assert "rows=123" in text

    def test_indentation_reflects_depth(self):
        plan = ops.TopOp(ops.FilterOp(scan("a"), rows_out=5),
                         rows_out=3)
        lines = explain(plan).splitlines()
        assert lines[0].startswith("Top")
        assert lines[1].startswith("  Filter")
        assert lines[2].startswith("    Table Scan")

    def test_real_plan_round_trip(self, mini_db):
        plan = plan_statement(
            "SELECT b.d, COUNT(*) FROM big b, mid m "
            "WHERE b.k = m.k GROUP BY b.d ORDER BY b.d", mini_db)
        text = explain(plan)
        assert "Merge Join" in text
        assert "big" in text and "mid" in text
        # Aggregate/sort structure shows up somewhere in the tree.
        assert "Aggregate" in text or "Sort" in text

    def test_labels_for_every_operator_kind(self, mini_db):
        semi = ops.SemiJoinOp(scan("a"), scan("b"), rows_out=5,
                              anti=True, merge=True)
        assert "Merge Anti Semi Join" in semi.label()
        hash_semi = ops.SemiJoinOp(scan("a"), scan("b"), rows_out=5)
        assert "Hash Semi Join" in hash_semi.label()
        dml = ops.DmlOp("UPDATE", None, [], rows_affected=1)
        assert dml.label() == "Update"
        seek = ops.IndexSeekOp("i", "t", "t", blocks=1.0, rows_out=1.0,
                               covering=True)
        assert "covering" in seek.label()
