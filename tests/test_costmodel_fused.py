"""Tests for the evaluator's fast path: the fused prune+evaluate
kernel, O(Δ) base commits, chunk auto-sizing, clones, and the
thread-backed portfolio.

Every optimization here claims bit-identical results to the code it
replaced; these tests hold it to that — ``==`` and
``np.array_equal``, not ``pytest.approx``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.costmodel import (
    _CHUNK_MAX,
    _CHUNK_MIN,
    PACKED_ARRAYS,
    WorkloadCostEvaluator,
)
from repro.core.fullstripe import full_striping
from repro.core.greedy import TsGreedySearch
from repro.core.layout import stripe_fractions
from repro.core.tolerance import EPS_COST
from repro.errors import LayoutError
from repro.obs import MetricsRegistry
from repro.parallel import PortfolioSearch, default_portfolio
from repro.parallel.portfolio import AUTO_THREAD_MAX_BYTES, BACKEND_CODES
from repro.resilience import FaultPlan
from repro.workload.access import analyze_workload
from repro.workload.access_graph import build_access_graph

# The conftest fixtures are read-only; sharing them across hypothesis
# examples is safe (same suppression the costmodel tests use).
_PROPERTY = settings(
    deadline=None, max_examples=20,
    suppress_health_check=[HealthCheck.function_scoped_fixture])


@pytest.fixture
def case(mini_db, join_workload, farm8):
    analyzed = analyze_workload(join_workload, mini_db)
    sizes = mini_db.object_sizes()
    evaluator = WorkloadCostEvaluator(analyzed, farm8, sorted(sizes))
    graph = build_access_graph(analyzed, mini_db)
    return evaluator, graph, sizes, farm8


def _fractions(layout):
    return {name: layout.fractions_of(name)
            for name in layout.object_names}


def _random_row(rng, farm) -> np.ndarray:
    """A stripe row over a random non-empty disk subset."""
    n_disks = rng.integers(1, len(farm) + 1)
    subset = rng.choice(len(farm), size=n_disks, replace=False)
    return np.array(stripe_fractions([int(j) for j in subset], farm))


def _random_rows(rng, farm, count) -> np.ndarray:
    return np.array([_random_row(rng, farm) for _ in range(count)])


class TestCommitRows:
    """commit_rows must be indistinguishable from a fresh set_base."""

    @_PROPERTY
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_commit_sequence_matches_fresh_set_base(
            self, mini_db, join_workload, farm8, seed):
        analyzed = analyze_workload(join_workload, mini_db)
        sizes = mini_db.object_sizes()
        incremental = WorkloadCostEvaluator(analyzed, farm8,
                                            sorted(sizes))
        fresh = WorkloadCostEvaluator(analyzed, farm8, sorted(sizes))
        rng = np.random.default_rng(seed)
        base = full_striping(sizes, farm8)
        matrix = incremental.matrix_of(base)
        incremental.set_base(matrix.copy())
        names = incremental.object_names
        for _ in range(6):
            # Commit one to three objects at once (multi-row commits
            # are the co-location path).
            count = int(rng.integers(1, 4))
            picked = rng.choice(len(names), size=count, replace=False)
            rows = {names[int(i)]: _random_row(rng, farm8)
                    for i in picked}
            committed_total = incremental.commit_rows(rows)
            for name, row in rows.items():
                matrix[names.index(name)] = row
            fresh_total = fresh.set_base(matrix.copy())
            # Bit-identical, not approximately equal: the O(Δ) commit
            # recomputes exactly the touched subplans and re-derives
            # the total with the same full dot product.
            assert committed_total == fresh_total
            assert np.array_equal(incremental._base_costs,
                                  fresh._base_costs)
            assert np.array_equal(incremental._base_matrix,
                                  fresh._base_matrix)
            # And the caches the commit preserved/invalidated serve
            # the same answers a cold evaluator computes.
            probe_name = names[int(rng.integers(0, len(names)))]
            probe = _random_row(rng, farm8)
            assert incremental.cost_with_row(probe_name, probe) \
                == fresh.cost_with_row(probe_name, probe)

    @_PROPERTY
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_interleaved_set_base_and_commits(
            self, mini_db, join_workload, farm8, seed):
        """Epoch bookkeeping survives set_base between commits.

        Regression guard: a commit must never re-validate cache
        entries left over from *before* an intervening set_base —
        they describe a dead base.
        """
        analyzed = analyze_workload(join_workload, mini_db)
        sizes = mini_db.object_sizes()
        evaluator = WorkloadCostEvaluator(analyzed, farm8,
                                          sorted(sizes))
        rng = np.random.default_rng(seed)
        names = evaluator.object_names
        matrix = evaluator.matrix_of(full_striping(sizes, farm8))
        evaluator.set_base(matrix.copy())
        for _ in range(8):
            action = rng.integers(0, 3)
            if action == 0:
                # Warm the per-object caches at the current epoch.
                name = names[int(rng.integers(0, len(names)))]
                evaluator.costs_for_rows(name,
                                         _random_rows(rng, farm8, 3))
            elif action == 1:
                i = int(rng.integers(0, len(names)))
                matrix[i] = _random_row(rng, farm8)
                evaluator.set_base(matrix.copy())
            else:
                i = int(rng.integers(0, len(names)))
                row = _random_row(rng, farm8)
                matrix[i] = row
                evaluator.commit_rows({names[i]: row})
        # After any interleaving, every object's delta costs must
        # match a cold evaluator given the same final base.
        cold = WorkloadCostEvaluator(analyzed, farm8, sorted(sizes))
        cold.set_base(matrix.copy())
        for name in names:
            probes = _random_rows(rng, farm8, 4)
            assert np.array_equal(
                evaluator.costs_for_rows(name, probes),
                cold.costs_for_rows(name, probes))

    def test_commit_before_set_base_raises(self, case):
        evaluator, _, _, farm = case
        with pytest.raises(LayoutError, match="set_base"):
            evaluator.commit_rows(
                {"big": np.array(stripe_fractions([0], farm))})

    def test_empty_commit_keeps_total_and_caches(self, case):
        evaluator, _, sizes, farm = case
        base_cost = evaluator.set_base(
            evaluator.matrix_of(full_striping(sizes, farm)))
        probe = np.array(stripe_fractions([0, 1], farm))
        before = evaluator.cost_with_row("big", probe)
        assert evaluator.commit_rows({}) == base_cost
        assert evaluator.cost_with_row("big", probe) == before

    def test_commit_counts_metric(self, case):
        evaluator, _, sizes, farm = case
        metrics = MetricsRegistry()
        evaluator.bind_metrics(metrics)
        evaluator.set_base(
            evaluator.matrix_of(full_striping(sizes, farm)))
        evaluator.commit_rows(
            {"big": np.array(stripe_fractions([0], farm))})
        assert metrics.value("costmodel.commit_evaluations") == 1.0


class TestBestForRows:
    """The fused kernel vs the composition it replaced."""

    def _naive(self, evaluator, name, rows, incumbent, prune=True):
        """bounds -> prune -> costs -> sequential epsilon acceptance,
        exactly as the pre-fusion greedy loop composed them."""
        if prune:
            bounds = evaluator.bounds_for_rows(name, rows)
            keep = np.nonzero(bounds < incumbent - EPS_COST)[0]
            pruned = len(rows) - int(keep.size)
        else:
            keep = np.arange(len(rows))
            pruned = 0
        best_cost, best_index = float(incumbent), -1
        if keep.size:
            costs = evaluator.costs_for_rows(name, rows[keep])
            for position, cost in enumerate(costs):
                if cost < best_cost - EPS_COST:
                    best_cost = float(cost)
                    best_index = int(keep[position])
        return best_cost, best_index, pruned

    @_PROPERTY
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_fused_matches_naive_composition(
            self, mini_db, join_workload, farm8, seed):
        analyzed = analyze_workload(join_workload, mini_db)
        sizes = mini_db.object_sizes()
        evaluator = WorkloadCostEvaluator(analyzed, farm8,
                                          sorted(sizes))
        rng = np.random.default_rng(seed)
        base_cost = evaluator.set_base(
            evaluator.matrix_of(full_striping(sizes, farm8)))
        names = evaluator.object_names
        name = names[int(rng.integers(0, len(names)))]
        rows = _random_rows(rng, farm8, int(rng.integers(1, 40)))
        # Sweep the incumbent from hopeless to generous so the
        # all-pruned, some-pruned and none-pruned regimes all occur.
        incumbent = float(base_cost * rng.uniform(0.2, 1.5))
        for prune in (True, False):
            assert evaluator.best_for_rows(name, rows, incumbent,
                                           prune=prune) \
                == self._naive(evaluator, name, rows, incumbent,
                               prune=prune)

    def test_all_pruned_returns_incumbent_unchanged(self, case):
        evaluator, _, sizes, farm = case
        evaluator.set_base(
            evaluator.matrix_of(full_striping(sizes, farm)))
        rows = np.array([stripe_fractions([j], farm)
                         for j in range(len(farm))])
        # An impossible incumbent: every bound exceeds it, every
        # candidate is pruned, and the incumbent comes back intact.
        best_cost, best_index, pruned = \
            evaluator.best_for_rows("big", rows, 0.0)
        assert (best_cost, best_index) == (0.0, -1)
        assert pruned == len(rows)

    def test_empty_rows_is_a_noop(self, case):
        evaluator, _, sizes, farm = case
        evaluator.set_base(
            evaluator.matrix_of(full_striping(sizes, farm)))
        assert evaluator.best_for_rows(
            "big", np.empty((0, len(farm))), 42.0) == (42.0, -1, 0)

    def test_prune_flag_changes_counts_not_results(self, case):
        evaluator, _, sizes, farm = case
        incumbent = evaluator.set_base(
            evaluator.matrix_of(full_striping(sizes, farm)))
        rows = np.array([stripe_fractions(subset, farm)
                         for subset in ([0], [1], [0, 1], [0, 1, 2],
                                        list(range(len(farm))))])
        pruned_run = evaluator.best_for_rows("big", rows, incumbent,
                                             prune=True)
        full_run = evaluator.best_for_rows("big", rows, incumbent,
                                           prune=False)
        assert pruned_run[:2] == full_run[:2]
        assert full_run[2] == 0

    def test_fused_counts_metric(self, case):
        evaluator, _, sizes, farm = case
        metrics = MetricsRegistry()
        evaluator.bind_metrics(metrics)
        incumbent = evaluator.set_base(
            evaluator.matrix_of(full_striping(sizes, farm)))
        rows = np.array([stripe_fractions([0], farm)])
        evaluator.best_for_rows("big", rows, incumbent)
        assert metrics.value("costmodel.fused_evaluations") == 1.0


class TestChunkAutoSizing:
    def test_chunk_size_never_changes_results(self, case):
        evaluator, _, sizes, farm = case
        evaluator.set_base(
            evaluator.matrix_of(full_striping(sizes, farm)))
        rng = np.random.default_rng(7)
        rows = _random_rows(rng, farm, 100)
        auto = evaluator.costs_for_rows("big", rows)
        for chunk in (1, 16, 33, 1024):
            assert np.array_equal(
                auto, evaluator.costs_for_rows("big", rows,
                                               chunk=chunk))

    def test_auto_chunk_is_clamped_and_shape_only(self, case):
        evaluator, _, _, _ = case
        for n_affected in (0, 1, 3, 100, 10_000):
            chunk = evaluator._auto_chunk(n_affected)
            assert _CHUNK_MIN <= chunk <= _CHUNK_MAX
        # More affected subplans -> same or smaller chunks (a fixed
        # byte budget for the candidate tensor).
        assert evaluator._auto_chunk(1) >= evaluator._auto_chunk(100)


class TestClone:
    def test_clone_shares_packed_arrays(self, case):
        evaluator, _, _, _ = case
        twin = evaluator.clone()
        for attr in PACKED_ARRAYS:
            assert getattr(twin, attr) is getattr(evaluator, attr)
        assert twin._touching is evaluator._touching

    def test_clone_costs_agree(self, case):
        evaluator, _, sizes, farm = case
        twin = evaluator.clone()
        layout = full_striping(sizes, farm)
        assert twin.cost(layout) == evaluator.cost(layout)

    def test_clone_base_state_is_isolated(self, case):
        evaluator, _, sizes, farm = case
        base = evaluator.matrix_of(full_striping(sizes, farm))
        base_cost = evaluator.set_base(base)
        twin = evaluator.clone()
        # The clone starts without a base of its own...
        with pytest.raises(LayoutError, match="set_base"):
            twin.cost_with_row("big",
                               np.array(stripe_fractions([0], farm)))
        # ...and committing into it never leaks into the parent.
        twin.set_base(base.copy())
        twin.commit_rows(
            {"big": np.array(stripe_fractions([0], farm))})
        probe = np.array(stripe_fractions([0, 1], farm))
        assert evaluator.commit_rows({}) == base_cost
        fresh = evaluator.clone()
        fresh.set_base(base.copy())
        assert evaluator.cost_with_row("big", probe) \
            == fresh.cost_with_row("big", probe)


class TestThreadBackend:
    def test_thread_serial_process_bit_identical(self, case):
        evaluator, graph, sizes, farm = case
        specs = default_portfolio(3)
        runs = {
            "serial": PortfolioSearch(farm, evaluator, sizes,
                                      specs=specs, jobs=1),
            "thread": PortfolioSearch(farm, evaluator, sizes,
                                      specs=specs, jobs=2,
                                      backend="thread"),
            "process": PortfolioSearch(farm, evaluator, sizes,
                                       specs=specs, jobs=2,
                                       backend="process"),
        }
        results = {name: engine.search(graph)
                   for name, engine in runs.items()}
        serial = results["serial"]
        for name in ("thread", "process"):
            assert results[name].cost == serial.cost
            assert _fractions(results[name].layout) \
                == _fractions(serial.layout)
            assert results[name].evaluations == serial.evaluations
            assert results[name].extras["best_trajectory"] \
                == serial.extras["best_trajectory"]

    def test_backend_reported_in_extras_and_gauge(self, case):
        evaluator, graph, sizes, farm = case
        # jobs=1 always resolves to the serial backend; explicit
        # thread/process are honored for parallel runs.
        for backend, jobs, expected in (("auto", 1, "serial"),
                                        ("thread", 2, "thread")):
            metrics = MetricsRegistry()
            result = PortfolioSearch(
                farm, evaluator, sizes, specs=default_portfolio(2),
                jobs=jobs, backend=backend,
                metrics=metrics).search(graph)
            assert result.extras["backend"] \
                == float(BACKEND_CODES[expected])
            assert metrics.value("portfolio.backend") \
                == float(BACKEND_CODES[expected])

    def test_auto_picks_thread_for_small_packings(self, case):
        evaluator, graph, sizes, farm = case
        assert evaluator.packed_nbytes <= AUTO_THREAD_MAX_BYTES
        result = PortfolioSearch(farm, evaluator, sizes,
                                 specs=default_portfolio(2),
                                 jobs=2).search(graph)
        assert result.extras["backend"] \
            == float(BACKEND_CODES["thread"])

    def test_unknown_backend_rejected(self, case):
        evaluator, _, sizes, farm = case
        with pytest.raises(LayoutError, match="backend"):
            PortfolioSearch(farm, evaluator, sizes, backend="gpu")

    def test_thread_kill_fault_degrades_to_survivor_best(self, case):
        evaluator, graph, sizes, farm = case
        specs = default_portfolio(4)
        result = PortfolioSearch(
            farm, evaluator, sizes, specs=specs, jobs=4,
            backend="thread",
            faults=FaultPlan(kill_worker=1)).search(graph)
        assert result.degraded
        assert [f.index for f in result.failures] == [1]
        assert result.failures[0].cause == "crash"
        survivors = [spec for i, spec in enumerate(specs) if i != 1]
        baseline = PortfolioSearch(farm, evaluator, sizes,
                                   specs=survivors,
                                   jobs=1).search(graph)
        assert result.cost == baseline.cost
        assert _fractions(result.layout) == _fractions(baseline.layout)

    def test_thread_delay_fault_times_out(self, case):
        evaluator, graph, sizes, farm = case
        result = PortfolioSearch(
            farm, evaluator, sizes, specs=default_portfolio(2),
            jobs=2, backend="thread", trajectory_timeout_s=0.5,
            faults=FaultPlan(delay_trajectory=1,
                             delay_s=3.0)).search(graph)
        assert result.degraded
        assert [f.index for f in result.failures] == [1]
        assert result.failures[0].cause == "timeout"


class TestGreedyUsesFastPath:
    def test_greedy_search_emits_commit_and_fused_counters(self, case):
        evaluator, graph, sizes, farm = case
        metrics = MetricsRegistry()
        evaluator.bind_metrics(metrics)
        result = TsGreedySearch(farm, evaluator, sizes, prune=True,
                                metrics=metrics).search(graph)
        assert result.cost > 0
        assert metrics.value("costmodel.fused_evaluations") > 0
        assert metrics.value("costmodel.commit_evaluations") > 0
