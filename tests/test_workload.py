"""Tests for workload representation and file round-trip."""

import pytest

from repro.errors import WorkloadError
from repro.workload.workload import Statement, Workload


class TestStatement:
    def test_defaults(self):
        stmt = Statement("SELECT 1 FROM t")
        assert stmt.weight == 1.0 and stmt.name is None

    def test_empty_sql_rejected(self):
        with pytest.raises(WorkloadError):
            Statement("   ")

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(WorkloadError):
            Statement("SELECT 1 FROM t", weight=0)


class TestWorkload:
    def test_add_and_iterate(self):
        workload = Workload(name="w")
        workload.add("SELECT a FROM t", weight=2.0, name="q1")
        workload.add("SELECT b FROM t")
        assert len(workload) == 2
        assert workload[0].name == "q1"
        assert workload.total_weight == 3.0

    def test_scaled(self):
        workload = Workload([Statement("SELECT 1 FROM t", weight=2.0)])
        scaled = workload.scaled(3.0)
        assert scaled[0].weight == 6.0
        assert workload[0].weight == 2.0  # original untouched

    def test_round_trip(self, tmp_path):
        workload = Workload(name="rt")
        workload.add("SELECT a FROM t WHERE x = 1", weight=4.0,
                     name="q1")
        workload.add("SELECT b\nFROM u", name="q2")
        path = tmp_path / "w.sql"
        workload.save(path)
        loaded = Workload.load(path)
        assert len(loaded) == 2
        assert loaded[0].weight == 4.0
        assert loaded[0].name == "q1"
        assert "SELECT a FROM t" in loaded[0].sql
        assert loaded[1].weight == 1.0

    def test_load_plain_sql_file(self, tmp_path):
        path = tmp_path / "plain.sql"
        path.write_text("SELECT 1 FROM t;\n-- a comment\n"
                        "SELECT 2 FROM u;\n")
        loaded = Workload.load(path)
        assert len(loaded) == 2
        assert loaded.name == "plain"

    def test_load_statement_without_trailing_semicolon(self, tmp_path):
        path = tmp_path / "w.sql"
        path.write_text("SELECT 1 FROM t")
        assert len(Workload.load(path)) == 1

    def test_load_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.sql"
        path.write_text("-- nothing here\n")
        with pytest.raises(WorkloadError):
            Workload.load(path)


class TestWorkloadLoads:
    """`Workload.loads` — the path-free twin of `load` used by the
    advisor service's text workload uploads."""

    def test_parses_annotated_text(self):
        workload = Workload.loads(
            "-- name: q1\n-- weight: 4\nSELECT a FROM t WHERE x = 1;\n"
            "SELECT b\nFROM u;\n", name="upload")
        assert workload.name == "upload"
        assert len(workload) == 2
        assert workload[0].name == "q1"
        assert workload[0].weight == 4.0
        assert workload[1].weight == 1.0
        assert "FROM u" in workload[1].sql

    def test_default_name(self):
        assert Workload.loads("SELECT 1 FROM t;").name == "workload"

    def test_empty_text_rejected(self):
        with pytest.raises(WorkloadError, match="no statements"):
            Workload.loads("-- just a comment\n", name="empty")

    def test_load_error_carries_file_path(self, tmp_path):
        path = tmp_path / "empty.sql"
        path.write_text("-- nothing\n")
        with pytest.raises(WorkloadError, match=r"empty\.sql"):
            Workload.load(path)

    def test_loads_matches_load(self, tmp_path):
        text = "-- weight: 2\nSELECT a FROM t;\nSELECT b FROM u;\n"
        path = tmp_path / "w.sql"
        path.write_text(text)
        from_text = Workload.loads(text, name="w")
        from_file = Workload.load(path)
        assert [(s.sql, s.weight, s.name) for s in from_text] \
            == [(s.sql, s.weight, s.name) for s in from_file]
