"""Chaos tests for the crash-safe migration executor.

The acceptance contract: kill the executor at *every* journaled step
boundary (after the intent record, and after the transfer but before
the done record), then show that ``resume()`` converges to a final
state bit-identical to an uninterrupted run, and that ``rollback()``
from every interruption point restores the exact source layout without
a capacity overflow (ALR035).
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import audit_journal
from repro.core.layout import Layout, stripe_fractions
from repro.errors import (
    JournalFormatError,
    MigrationExecutionError,
    MigrationInterrupted,
)
from repro.resilience import Deadline, FaultPlan, RetryPolicy
from repro.storage.disk import uniform_farm
from repro.storage.executor import (
    FarmState,
    MigrationExecutor,
    plan_digest,
    read_journal,
    render_journal,
    replay_journal,
    validate_journal,
)
from repro.storage.migration import plan_migration


def _case():
    """A 4-disk migration with several steps to crash in between."""
    farm = uniform_farm(4, capacity_gb=2.0)
    cap = farm[0].capacity_blocks
    sizes = {"a": int(cap * 0.8), "b": int(cap * 0.6),
             "c": int(cap * 0.5)}
    source = Layout(farm, sizes, {
        "a": stripe_fractions([0], farm),
        "b": stripe_fractions([1], farm),
        "c": stripe_fractions([2], farm),
    })
    target = Layout(farm, sizes, {
        "a": stripe_fractions([2, 3], farm),
        "b": stripe_fractions([0, 3], farm),
        "c": stripe_fractions([0, 1], farm),
    })
    return source, target, plan_migration(source, target)


SOURCE, TARGET, PLAN = _case()
N_STEPS = len(PLAN.steps)
TARGET_DIGEST = FarmState.from_layout(TARGET).digest()
SOURCE_DIGEST = FarmState.from_layout(SOURCE).digest()

CRASH_KINDS = ("crash_after_intent", "crash_before_done")


def _executor(path, **kw):
    kw.setdefault("target", TARGET)
    return MigrationExecutor(PLAN, SOURCE, journal_path=str(path), **kw)


class TestExecute:
    def test_plan_is_interesting(self):
        """The fixture plan must have enough steps to crash inside."""
        assert N_STEPS >= 3

    def test_uninterrupted_run_reaches_target(self, tmp_path):
        result = _executor(tmp_path / "j.jsonl").execute()
        assert result.status == "complete"
        assert result.executed_steps == N_STEPS
        assert result.state_digest == TARGET_DIGEST
        assert result.layout is TARGET
        records = read_journal(result.journal_path)
        assert not validate_journal(records, plan=PLAN, source=SOURCE)
        assert records[-1] == {"seq": len(records) - 1,
                               "kind": "close", "status": "complete",
                               "state": TARGET_DIGEST}

    def test_without_target_builds_equivalent_layout(self, tmp_path):
        result = MigrationExecutor(
            PLAN, SOURCE, journal_path=str(tmp_path / "j.jsonl")
        ).execute()
        assert result.state_digest == TARGET_DIGEST
        built = FarmState.from_layout(result.layout)
        assert built.matches(FarmState.from_layout(TARGET))

    def test_execute_refuses_nonempty_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _executor(path).execute()
        with pytest.raises(MigrationExecutionError,
                           match="already has records"):
            _executor(path).execute()

    def test_resume_and_rollback_need_a_journal(self, tmp_path):
        with pytest.raises(MigrationExecutionError, match="no journal"):
            _executor(tmp_path / "missing.jsonl").resume()
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(MigrationExecutionError, match="empty"):
            _executor(empty).rollback()


class TestChaosMatrix:
    """Kill at every step boundary; resume must converge bit-identical."""

    @pytest.mark.parametrize("kind", CRASH_KINDS)
    @pytest.mark.parametrize("step", range(N_STEPS))
    def test_resume_converges_bit_identical(self, tmp_path, kind, step):
        path = tmp_path / "j.jsonl"
        faults = FaultPlan.from_spec(f"{kind}={step}")
        with pytest.raises(MigrationInterrupted):
            _executor(path, faults=faults).execute()
        records = read_journal(path)
        # The crash left a valid resumable prefix ending in an intent.
        assert not validate_journal(records, plan=PLAN, source=SOURCE)
        assert records[-1]["kind"] == "intent"
        assert records[-1]["step"] == step

        result = _executor(path).resume()
        assert result.status == "complete"
        assert result.state_digest == TARGET_DIGEST  # bit-identical
        assert result.skipped_steps == step
        assert result.executed_steps == N_STEPS - step
        final = read_journal(path)
        assert not validate_journal(final, plan=PLAN, source=SOURCE)

    @pytest.mark.parametrize("kind", CRASH_KINDS)
    @pytest.mark.parametrize("step", range(N_STEPS))
    def test_rollback_restores_exact_source(self, tmp_path, kind, step):
        path = tmp_path / "j.jsonl"
        faults = FaultPlan.from_spec(f"{kind}={step}")
        with pytest.raises(MigrationInterrupted):
            _executor(path, faults=faults).execute()

        result = _executor(path).rollback()
        assert result.status == "rolled-back"
        assert result.state_digest == SOURCE_DIGEST  # exact source
        assert result.layout is SOURCE
        records = read_journal(path)
        assert not validate_journal(records, plan=PLAN, source=SOURCE)
        assert records[-1] == {"seq": len(records) - 1,
                               "kind": "close",
                               "status": "rolled-back",
                               "state": SOURCE_DIGEST}
        # ALR034/ALR035: journal consistent, rollback capacity-safe.
        report = audit_journal(records, plan=PLAN, source=SOURCE)
        assert not report.errors

    @pytest.mark.parametrize("step", range(N_STEPS))
    def test_rollback_is_capacity_safe_from_every_prefix(
            self, tmp_path, step):
        """ALR035 on the *interrupted* journal: a capacity-safe
        reverse path must exist from every intermediate state."""
        path = tmp_path / "j.jsonl"
        faults = FaultPlan.from_spec(f"crash_after_intent={step}")
        with pytest.raises(MigrationInterrupted):
            _executor(path, faults=faults).execute()
        records = read_journal(path)
        report = audit_journal(records, plan=PLAN, source=SOURCE)
        assert not report.errors

    def test_crashed_rollback_is_resumable(self, tmp_path):
        """A rollback can itself crash; resume() finishes it."""
        path = tmp_path / "j.jsonl"
        faults = FaultPlan.from_spec(f"crash_after_intent={N_STEPS - 1}")
        with pytest.raises(MigrationInterrupted):
            _executor(path, faults=faults).execute()
        crash_rollback = FaultPlan.from_spec("crash_before_done=0")
        with pytest.raises(MigrationInterrupted):
            _executor(path, faults=crash_rollback).rollback()

        result = _executor(path).resume()  # continues the rollback
        assert result.status == "rolled-back"
        assert result.state_digest == SOURCE_DIGEST
        records = read_journal(path)
        assert not validate_journal(records, plan=PLAN, source=SOURCE)


class TestRetriesAndDeadlines:
    def test_fail_step_recovers_under_retry_policy(self, tmp_path):
        faults = FaultPlan.from_spec("fail_step=1:2")
        result = _executor(
            tmp_path / "j.jsonl", faults=faults,
            retry=RetryPolicy(attempts=3, base_delay_s=0.0),
            sleep=lambda _s: None).execute()
        assert result.status == "complete"
        assert result.retried_steps == 1
        assert result.state_digest == TARGET_DIGEST
        done = [r for r in read_journal(result.journal_path)
                if r["kind"] == "done" and r["step"] == 1]
        assert done[0]["attempts"] == 3

    def test_fail_step_without_retries_then_resume(self, tmp_path):
        path = tmp_path / "j.jsonl"
        faults = FaultPlan.from_spec("fail_step=2:1")
        with pytest.raises(MigrationExecutionError,
                           match="failed permanently"):
            _executor(path, faults=faults).execute()
        assert read_journal(path)[-1]["kind"] == "intent"
        result = _executor(path).resume()
        assert result.status == "complete"
        assert result.state_digest == TARGET_DIGEST

    def test_stalled_step_hits_deadline_and_resumes(self, tmp_path):
        path = tmp_path / "j.jsonl"
        clock = [0.0]

        def advance(seconds):
            clock[0] += seconds

        deadline = Deadline(5.0, clock=lambda: clock[0])
        faults = FaultPlan.from_spec("stall_step=1:10")
        with pytest.raises(MigrationInterrupted, match="deadline"):
            _executor(path, faults=faults, deadline=deadline,
                      sleep=advance).execute()
        result = _executor(path).resume()
        assert result.status == "complete"
        assert result.state_digest == TARGET_DIGEST


class TestResumeIdempotence:
    def test_resume_of_complete_journal_is_a_no_op(self, tmp_path):
        path = tmp_path / "j.jsonl"
        first = _executor(path).execute()
        again = _executor(path).resume()
        assert again.status == "complete"
        assert again.executed_steps == 0
        assert again.skipped_steps == N_STEPS
        assert again.state_digest == first.state_digest
        assert read_journal(path) == read_journal(first.journal_path)

    def test_rollback_of_rolled_back_journal_is_a_no_op(self, tmp_path):
        path = tmp_path / "j.jsonl"
        faults = FaultPlan.from_spec("crash_after_intent=1")
        with pytest.raises(MigrationInterrupted):
            _executor(path, faults=faults).execute()
        _executor(path).rollback()
        before = read_journal(path)
        again = _executor(path).rollback()
        assert again.status == "rolled-back"
        assert read_journal(path) == before
        # resume() honors the rollback too instead of re-executing.
        resumed = _executor(path).resume()
        assert resumed.status == "rolled-back"

    def test_rollback_after_completion_is_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _executor(path).execute()
        with pytest.raises(MigrationExecutionError,
                           match="fresh migration"):
            _executor(path).rollback()


class TestJournalIntegrity:
    def test_corrupt_middle_line_raises_format_error(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _executor(path).execute()
        lines = path.read_text().splitlines()
        lines[2] = "{not json"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalFormatError, match="line 3"):
            read_journal(str(path))

    def test_torn_final_line_is_tolerated(self, tmp_path):
        """A crash mid-append leaves a partial last line; the reader
        must treat everything before it as durable truth."""
        path = tmp_path / "j.jsonl"
        faults = FaultPlan.from_spec("crash_after_intent=2")
        with pytest.raises(MigrationInterrupted):
            _executor(path, faults=faults).execute()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"seq": 99, "kind": "don')  # torn write
        result = _executor(path).resume()
        assert result.status == "complete"
        assert result.state_digest == TARGET_DIGEST

    def test_tampered_done_digest_is_caught_on_resume(self, tmp_path):
        path = tmp_path / "j.jsonl"
        faults = FaultPlan.from_spec("crash_after_intent=2")
        with pytest.raises(MigrationInterrupted):
            _executor(path, faults=faults).execute()
        records = [json.loads(line) for line
                   in path.read_text().splitlines()]
        for record in records:
            if record["kind"] == "done":
                record["state"] = "0" * 16
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        with pytest.raises(MigrationExecutionError, match="state"):
            _executor(path).resume()

    def test_wrong_plan_is_rejected_and_audited(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _executor(path).execute()
        other = plan_migration(TARGET, SOURCE)
        records = read_journal(path)
        problems = validate_journal(records, plan=other, source=TARGET)
        assert problems
        executor = MigrationExecutor(other, SOURCE,
                                     journal_path=str(path))
        with pytest.raises(MigrationExecutionError):
            executor.resume()
        report = audit_journal(records, plan=other, source=TARGET)
        assert report.errors
        assert any(d.rule_id == "ALR034" for d in report)

    def test_render_journal_smoke(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _executor(path).execute()
        records = read_journal(path)
        text = render_journal(records)
        assert "migration journal" in text
        assert f"records: {len(records)}" in text

    def test_plan_digest_ignores_run_id(self):
        stamped = plan_migration(SOURCE, TARGET)
        stamped.run_id = "r-123"
        assert plan_digest(stamped) == plan_digest(PLAN)

    def test_replay_reports_dangling_intent(self, tmp_path):
        path = tmp_path / "j.jsonl"
        faults = FaultPlan.from_spec("crash_after_intent=1")
        with pytest.raises(MigrationInterrupted):
            _executor(path, faults=faults).execute()
        replay = replay_journal(read_journal(path), plan=PLAN,
                                source=SOURCE)
        assert replay.dangling_intent == 1
        assert len(replay.done_steps) == 1
        assert replay.closed is None
