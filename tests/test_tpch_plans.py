"""Plan-shape tests for all 22 TPC-H queries.

The reproduction's fidelity hinges on the plans having the same
co-access structure the paper's SQL Server plans had; these tests pin
the load-bearing shapes so optimizer changes cannot silently drift.
"""

import pytest

from repro.benchdb import tpch
from repro.optimizer import operators as ops
from repro.workload.access import analyze_workload

_DB = tpch.tpch_database()
_ANALYZED = {a.statement.name: a
             for a in analyze_workload(tpch.tpch22_workload(), _DB)}


def _subplan_objects(name):
    return [s.objects() for s in _ANALYZED[name].subplans]


def _all_objects(name):
    out = set()
    for group in _subplan_objects(name):
        out |= group
    return out


def _nodes(name, kind):
    return [n for n in ops.walk(_ANALYZED[name].plan)
            if isinstance(n, kind)]


class TestCoAccessShapes:
    """The structures the layout experiments depend on."""

    @pytest.mark.parametrize("query", ["Q3", "Q4", "Q5", "Q7", "Q10",
                                       "Q12", "Q18", "Q21"])
    def test_lineitem_orders_co_accessed(self, query):
        assert any({"lineitem", "orders"} <= group
                   for group in _subplan_objects(query)), \
            f"{query} lost its lineitem/orders co-access"

    @pytest.mark.parametrize("query", ["Q2", "Q16", "Q20"])
    def test_part_partsupp_co_accessed(self, query):
        assert any({"part", "partsupp"} <= group
                   for group in _subplan_objects(query))

    def test_q1_touches_only_lineitem(self):
        assert _all_objects("Q1") == {"lineitem"}

    def test_q6_touches_only_lineitem(self):
        assert _all_objects("Q6") <= {"lineitem",
                                      "idx_lineitem_shipdate"}

    def test_q13_never_co_accesses_customer_orders(self):
        # LEFT JOIN with an unsortable residual: hash join separates.
        for group in _subplan_objects("Q13"):
            assert not {"customer", "orders"} <= group

    def test_q21_has_three_lineitem_reads(self):
        reads = sum(1 for s in _ANALYZED["Q21"].subplans
                    for a in s.accesses if a.object_name == "lineitem")
        assert reads >= 3

    def test_q22_customer_read_twice(self):
        reads = sum(1 for s in _ANALYZED["Q22"].subplans
                    for a in s.accesses if a.object_name == "customer")
        assert reads >= 2


class TestOperatorShapes:
    def test_q3_uses_a_merge_join(self):
        assert _nodes("Q3", ops.MergeJoinOp)

    def test_q4_semi_join_is_merge_on_orderkey(self):
        semis = _nodes("Q4", ops.SemiJoinOp)
        assert semis and semis[0].merge

    def test_q18_in_subquery_becomes_semi_join(self):
        assert _nodes("Q18", ops.SemiJoinOp)

    def test_q21_has_anti_semi_join(self):
        semis = _nodes("Q21", ops.SemiJoinOp)
        assert any(s.anti for s in semis)
        assert any(not s.anti for s in semis)

    def test_q2_correlated_scalar_subquery_sequenced(self):
        assert _nodes("Q2", ops.SequenceOp)

    def test_q15_having_subquery_reads_lineitem_again(self):
        reads = sum(1 for s in _ANALYZED["Q15"].subplans
                    for a in s.accesses if a.object_name == "lineitem")
        assert reads >= 2

    def test_q1_aggregates(self):
        assert _nodes("Q1", (ops.StreamAggregateOp,
                             ops.HashAggregateOp))

    @pytest.mark.parametrize("query", [f"Q{n}" for n in range(1, 23)])
    def test_every_query_reads_something(self, query):
        assert _all_objects(query), f"{query} accesses no objects"

    @pytest.mark.parametrize("query", [f"Q{n}" for n in range(1, 23)])
    def test_row_estimates_are_finite_and_nonnegative(self, query):
        for node in ops.walk(_ANALYZED[query].plan):
            assert node.rows_out >= 0
            assert node.rows_out == node.rows_out  # not NaN
            for access in node.accesses:
                assert access.blocks >= 0


class TestBlockEstimates:
    def test_q1_scans_most_of_lineitem(self):
        blocks = sum(a.blocks for s in _ANALYZED["Q1"].subplans
                     for a in s.accesses
                     if a.object_name == "lineitem")
        assert blocks >= 0.9 * _DB.table("lineitem").size_blocks

    def test_q6_scans_rather_than_lookups(self):
        # idx_lineitem_shipdate does not cover the price columns and a
        # year of shipdates matches ~14% of rows — RID lookups would
        # touch every table block anyway, so the planner (like SQL
        # Server at SF 1) sticks with the sequential scan.
        blocks = sum(a.blocks for s in _ANALYZED["Q6"].subplans
                     for a in s.accesses)
        assert blocks == pytest.approx(
            _DB.table("lineitem").size_blocks)
        accesses = [a for s in _ANALYZED["Q6"].subplans
                    for a in s.accesses]
        assert all(a.sequential for a in accesses)

    def test_no_access_exceeds_object_size(self):
        sizes = _DB.object_sizes()
        for name, analyzed in _ANALYZED.items():
            for subplan in analyzed.subplans:
                for access in subplan.accesses:
                    size = sizes.get(access.object_name)
                    if size is None:  # tempdb
                        continue
                    assert access.blocks <= size * 1.001, \
                        f"{name}: {access.object_name} over-read"
