"""RPC103: builtin hash() is salted per process (PYTHONHASHSEED)."""


def bucket(name: str, buckets: int) -> int:
    return hash(name) % buckets
