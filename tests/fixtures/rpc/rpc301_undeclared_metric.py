"""RPC301: metric emission with no METRIC_CATALOG declaration."""


def record(metrics) -> None:
    metrics.inc("made.up.counter")
