"""RPC304: computed telemetry names defeat the static contract check."""


def record(metrics, name: str) -> None:
    metrics.inc(name)
