"""RPC401: ad-hoc epsilons drift apart; tolerance.py is their home."""

EPS_LOCAL = 1e-9


def close(a: float, b: float) -> bool:
    return abs(a - b) < 1e-9
