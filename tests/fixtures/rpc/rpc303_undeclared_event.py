"""RPC303: event emission with no EVENT_TYPES declaration."""


def record(recorder) -> None:
    recorder.emit("made-up-event", detail=1)
