"""RPC201: shared memory created outside the crash-recovery ledger."""

from multiprocessing import shared_memory


def publish(size: int) -> str:
    shm = shared_memory.SharedMemory(create=True, size=size)
    return shm.name
