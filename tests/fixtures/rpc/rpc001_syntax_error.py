# RPC001: an unparseable file cannot be contract-checked.
def broken(:
    return None
