"""RPC102: module-level random consumes shared, unseeded RNG state."""

import random


def jitter(base: float) -> float:
    return base * random.random() + random.uniform(0.0, 1.0)
