"""RPC302: emission method disagreeing with the declared kind.

``greedy.evaluations`` is declared a counter; setting it as a gauge
compiles and even passes strict-mode runtime checks on name alone.
"""


def record(metrics) -> None:
    metrics.set_gauge("greedy.evaluations", 1.0)
