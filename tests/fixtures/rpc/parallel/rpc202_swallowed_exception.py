"""RPC202: silently swallowed errors on a worker/drain path."""


def drain(queue) -> None:
    while True:
        try:
            queue.get_nowait()
        except Exception:
            pass
