"""RPC105: raw time calls in the parallel engine dodge fake clocks."""

import time


def timed_step():
    start = time.perf_counter()
    time.sleep(0.01)
    return time.perf_counter() - start
