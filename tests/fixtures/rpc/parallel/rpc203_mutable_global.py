"""RPC203: fork-hostile mutable module global in the parallel engine."""

pending: list[str] = []
results = {}
