"""RPC101: wall-clock reads break run-to-run reproducibility."""

import time
from datetime import datetime


def stamp() -> tuple[float, datetime]:
    return time.time(), datetime.now()
