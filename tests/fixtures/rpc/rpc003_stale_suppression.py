"""RPC003: a suppression whose rule does not fire here is stale."""

plain = 1  # repro: noqa RPC103 -- nothing on this line calls hash()
