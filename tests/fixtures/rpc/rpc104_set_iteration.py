"""RPC104: set iteration order escaping into ordered consumers."""


def leaks_order(names):
    unique = [n for n in set(names)]
    listed = list({"b", "a", "c"})
    for name in {"x", "y"}:
        listed.append(name)
    return unique, listed
