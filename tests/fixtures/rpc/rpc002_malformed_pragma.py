"""RPC002: pragmas must name rule IDs and carry a justification."""

blanket = 1  # repro: noqa
salted = hash("key")  # repro: noqa RPC103
