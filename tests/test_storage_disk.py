"""Tests for repro.storage.disk."""

import pytest

from repro.errors import CatalogError
from repro.storage.disk import (
    BLOCK_BYTES,
    Availability,
    DiskFarm,
    DiskSpec,
    uniform_farm,
    winbench_farm,
)


def spec(name="D1", capacity=1000, seek=0.008, read=20.0, write=18.0,
         avail=Availability.NONE) -> DiskSpec:
    return DiskSpec(name=name, capacity_blocks=capacity, avg_seek_s=seek,
                    read_mb_s=read, write_mb_s=write, availability=avail)


class TestDiskSpec:
    def test_block_size_is_a_sql_server_extent(self):
        assert BLOCK_BYTES == 8 * 8 * 1024

    def test_capacity_bytes(self):
        assert spec(capacity=16).capacity_bytes == 16 * BLOCK_BYTES

    def test_read_rate_in_blocks(self):
        disk = spec(read=20.0)
        assert disk.read_blocks_s == pytest.approx(
            20.0 * 1024 * 1024 / BLOCK_BYTES)

    def test_write_rate_differs_from_read(self):
        disk = spec(read=20.0, write=10.0)
        assert disk.transfer_blocks_s(write=True) == \
            pytest.approx(disk.write_blocks_s)
        assert disk.write_blocks_s < disk.read_blocks_s

    def test_transfer_seconds_inverse_of_rate(self):
        disk = spec(read=20.0)
        assert disk.transfer_seconds(disk.read_blocks_s) == \
            pytest.approx(1.0)

    @pytest.mark.parametrize("kwargs", [
        {"capacity": 0}, {"capacity": -5}, {"seek": 0.0},
        {"read": 0.0}, {"write": -1.0},
    ])
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(CatalogError):
            spec(**kwargs)

    def test_availability_values(self):
        assert spec(avail=Availability.MIRRORING).availability \
            is Availability.MIRRORING

    def test_raid_write_penalties(self):
        plain = spec(avail=Availability.NONE)
        mirrored = spec(avail=Availability.MIRRORING)
        parity = spec(avail=Availability.PARITY)
        assert mirrored.write_blocks_s == \
            pytest.approx(plain.write_blocks_s / 2)
        assert parity.write_blocks_s == \
            pytest.approx(plain.write_blocks_s / 4)
        # Reads are unaffected by redundancy.
        assert mirrored.read_blocks_s == plain.read_blocks_s

    def test_write_penalty_reaches_the_cost_model(self):
        """An UPDATE-heavy access costs more on a mirrored drive."""
        from repro.core.costmodel import CostModel
        from repro.core.layout import Layout
        from repro.optimizer.operators import ObjectAccess
        from repro.workload.access import SubplanAccess
        subplan = SubplanAccess([ObjectAccess("t", 100.0, write=True)])
        for avail, slower in ((Availability.MIRRORING, 2.0),
                              (Availability.PARITY, 4.0)):
            plain_farm = DiskFarm([spec("P", avail=Availability.NONE)])
            raid_farm = DiskFarm([spec("R", avail=avail)])
            plain_cost = CostModel(plain_farm).subplan_cost(
                subplan, Layout(plain_farm, {"t": 100},
                                {"t": (1.0,)}))
            raid_cost = CostModel(raid_farm).subplan_cost(
                subplan, Layout(raid_farm, {"t": 100}, {"t": (1.0,)}))
            assert raid_cost == pytest.approx(plain_cost * slower)


class TestDiskFarm:
    def test_empty_farm_rejected(self):
        with pytest.raises(CatalogError):
            DiskFarm([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(CatalogError):
            DiskFarm([spec("A"), spec("A")])

    def test_indexing_and_iteration(self):
        farm = DiskFarm([spec("A"), spec("B")])
        assert len(farm) == 2
        assert farm[1].name == "B"
        assert [d.name for d in farm] == ["A", "B"]

    def test_index_of(self):
        farm = DiskFarm([spec("A"), spec("B")])
        assert farm.index_of("B") == 1
        with pytest.raises(CatalogError):
            farm.index_of("missing")

    def test_total_capacity(self):
        farm = DiskFarm([spec("A", capacity=10), spec("B", capacity=20)])
        assert farm.total_capacity_blocks == 30

    def test_indices_by_read_rate_descending_with_stable_ties(self):
        farm = DiskFarm([spec("A", read=10), spec("B", read=30),
                         spec("C", read=10)])
        assert farm.indices_by_read_rate() == [1, 0, 2]

    def test_subset(self):
        farm = DiskFarm([spec("A"), spec("B"), spec("C")])
        sub = farm.subset([2, 0])
        assert [d.name for d in sub] == ["A", "C"]


class TestFactories:
    def test_uniform_farm_is_uniform(self):
        farm = uniform_farm(4, read_mb_s=25.0, seek_ms=7.0)
        assert len(farm) == 4
        assert len({d.read_mb_s for d in farm}) == 1
        assert farm[0].avg_seek_s == pytest.approx(0.007)
        assert farm[0].write_mb_s == pytest.approx(0.9 * 25.0)

    def test_winbench_spread_is_exact(self):
        farm = winbench_farm(8, base_read_mb_s=20.0, spread=0.30)
        rates = [d.read_mb_s for d in farm]
        assert max(rates) / min(rates) == pytest.approx(1.30)
        seeks = [d.avg_seek_s for d in farm]
        assert max(seeks) / min(seeks) == pytest.approx(1.30)

    def test_winbench_fast_transfer_has_fast_seek(self):
        farm = winbench_farm(8)
        fastest = max(farm, key=lambda d: d.read_mb_s)
        slowest = min(farm, key=lambda d: d.read_mb_s)
        assert fastest.avg_seek_s < slowest.avg_seek_s

    def test_winbench_deterministic(self):
        a = winbench_farm(8, seed=5)
        b = winbench_farm(8, seed=5)
        assert [d.read_mb_s for d in a] == [d.read_mb_s for d in b]

    def test_winbench_aggregate_capacity_matches_paper(self):
        farm = winbench_farm(8, capacity_gb=6.0)
        total_gb = farm.total_capacity_blocks * BLOCK_BYTES / 1024 ** 3
        assert total_gb == pytest.approx(48.0, rel=0.01)
