"""Tests for the observability layer: tracer, metrics and no-ops."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    NULL_METRICS,
    NULL_TRACER,
    Span,
    Tracer,
)


class FakeClock:
    """A deterministic clock that advances only on demand."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestSpanNesting:
    def test_spans_nest_under_the_open_span(self, clock):
        tracer = Tracer(clock=clock)
        with tracer.span("outer"):
            with tracer.span("inner-a"):
                clock.advance(1.0)
            with tracer.span("inner-b"):
                clock.advance(2.0)
        [root] = tracer.roots
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner-a", "inner-b"]
        assert root.children[0].children == []

    def test_sibling_roots_form_a_forest(self, clock):
        tracer = Tracer(clock=clock)
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.roots] == ["first", "second"]

    def test_current_tracks_the_innermost_open_span(self, clock):
        tracer = Tracer(clock=clock)
        assert tracer.current is None
        with tracer.span("outer"):
            assert tracer.current.name == "outer"
            with tracer.span("inner"):
                assert tracer.current.name == "inner"
            assert tracer.current.name == "outer"
        assert tracer.current is None

    def test_span_closes_even_when_the_body_raises(self, clock):
        tracer = Tracer(clock=clock)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                clock.advance(0.5)
                raise RuntimeError("boom")
        [root] = tracer.roots
        assert root.duration_s == pytest.approx(0.5)
        assert tracer.current is None


class TestSpanTiming:
    def test_durations_are_epoch_relative(self, clock):
        clock.now = 500.0  # arbitrary absolute origin
        tracer = Tracer(clock=clock)
        clock.advance(2.0)
        with tracer.span("work"):
            clock.advance(3.0)
        [root] = tracer.roots
        assert root.start_s == pytest.approx(2.0)
        assert root.duration_s == pytest.approx(3.0)

    def test_open_span_reports_zero_duration(self, clock):
        span = Span(name="open", start_s=1.0)
        assert span.duration_s == 0.0

    def test_child_time_is_contained_in_parent_time(self, clock):
        tracer = Tracer(clock=clock)
        with tracer.span("parent"):
            clock.advance(1.0)
            with tracer.span("child"):
                clock.advance(2.0)
            clock.advance(1.0)
        [parent] = tracer.roots
        [child] = parent.children
        assert child.start_s >= parent.start_s
        assert child.duration_s <= parent.duration_s
        assert parent.duration_s == pytest.approx(4.0)


class TestSpanQueries:
    def test_find_is_preorder_within_a_tree(self, clock):
        tracer = Tracer(clock=clock)
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("target"):
                    pass
        assert tracer.find("target").name == "target"
        assert tracer.find("missing") is None

    def test_find_prefers_the_most_recent_root(self, clock):
        tracer = Tracer(clock=clock)
        with tracer.span("run") as first:
            first.set("generation", 1)
        with tracer.span("run") as second:
            second.set("generation", 2)
        assert tracer.find("run").attrs["generation"] == 2

    def test_leaves_yields_only_leaf_spans(self, clock):
        tracer = Tracer(clock=clock)
        with tracer.span("root"):
            with tracer.span("mid"):
                with tracer.span("leaf-1"):
                    pass
            with tracer.span("leaf-2"):
                pass
        [root] = tracer.roots
        assert [s.name for s in root.leaves()] == ["leaf-1", "leaf-2"]


class TestTraceSerialization:
    def test_json_round_trip_preserves_the_tree(self, clock):
        tracer = Tracer(clock=clock)
        with tracer.span("root", method="ts-greedy"):
            clock.advance(1.5)
            with tracer.span("child"):
                clock.advance(0.25)
        data = json.loads(tracer.to_json())
        rebuilt = Tracer.from_dict(data)
        [root] = rebuilt.roots
        assert root.name == "root"
        assert root.attrs == {"method": "ts-greedy"}
        assert root.duration_s == pytest.approx(1.75)
        [child] = root.children
        assert child.name == "child"
        assert child.duration_s == pytest.approx(0.25)

    def test_write_json_produces_a_valid_file(self, clock, tmp_path):
        tracer = Tracer(clock=clock)
        with tracer.span("root"):
            clock.advance(1.0)
        path = tmp_path / "trace.json"
        tracer.write_json(path)
        data = json.loads(path.read_text())
        assert data["spans"][0]["name"] == "root"

    def test_render_tree_shows_names_durations_and_attrs(self, clock):
        tracer = Tracer(clock=clock)
        with tracer.span("root", k=1):
            clock.advance(2.0)
            with tracer.span("half"):
                clock.advance(2.0)
        text = tracer.render_tree()
        assert "root" in text and "half" in text
        assert "[k=1]" in text
        assert "50.0%" in text  # the child's share of the root


class TestCounters:
    def test_counter_accumulates(self):
        metrics = MetricsRegistry()
        metrics.inc("evals")
        metrics.inc("evals", 4)
        assert metrics.value("evals") == 5.0

    def test_gauge_is_last_write_wins(self):
        metrics = MetricsRegistry()
        metrics.set_gauge("nodes", 10)
        metrics.set_gauge("nodes", 3)
        assert metrics.value("nodes") == 3.0

    def test_unwritten_metric_reads_zero(self):
        assert MetricsRegistry().value("never") == 0.0

    def test_kind_clash_raises(self):
        metrics = MetricsRegistry()
        metrics.inc("thing")
        with pytest.raises(ValueError, match="another kind"):
            metrics.gauge("thing")


class TestHistograms:
    def test_summary_statistics(self):
        metrics = MetricsRegistry()
        for value in [1, 2, 3, 4, 100]:
            metrics.observe("dist", value)
        hist = metrics.histogram("dist")
        assert hist.count == 5
        assert hist.min == 1.0 and hist.max == 100.0
        assert hist.mean == pytest.approx(22.0)
        assert hist.percentile(50) == 3.0

    def test_sample_cap_keeps_aggregates_exact(self):
        hist = MetricsRegistry().histogram("capped")
        hist.max_samples = 4
        for value in range(10):
            hist.observe(value)
        assert len(hist.samples) == 4
        assert hist.count == 10
        assert hist.max == 9.0
        assert hist.mean == pytest.approx(4.5)

    def test_to_dict_is_json_serializable(self):
        metrics = MetricsRegistry()
        metrics.inc("c", 2)
        metrics.set_gauge("g", 7)
        metrics.observe("h", 1.5)
        data = json.loads(metrics.to_json())
        assert data["counters"]["c"] == 2.0
        assert data["gauges"]["g"] == 7.0
        assert data["histograms"]["h"]["count"] == 1

    def test_render_lists_every_instrument(self):
        metrics = MetricsRegistry()
        metrics.inc("alpha")
        metrics.observe("beta", 3)
        text = metrics.render()
        assert "=== metrics ===" in text
        assert "alpha" in text and "beta" in text


class TestNullObjects:
    def test_null_tracer_matches_the_tracer_api(self):
        with NULL_TRACER.span("anything", attr=1) as span:
            span.set("key", "value")
            assert span.find("x") is None
            assert list(span.leaves()) == []
        assert NULL_TRACER.roots == []
        assert NULL_TRACER.current is None
        assert NULL_TRACER.find("anything") is None
        assert json.loads(NULL_TRACER.to_json()) == {"spans": []}
        assert NULL_TRACER.render_tree() == ""

    def test_null_tracer_hands_out_one_shared_context(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")

    def test_null_metrics_matches_the_registry_api(self):
        NULL_METRICS.inc("c")
        NULL_METRICS.set_gauge("g", 5)
        NULL_METRICS.observe("h", 5)
        assert NULL_METRICS.value("c") == 0.0
        assert list(NULL_METRICS.names()) == []
        assert NULL_METRICS.counter("c").value == 0.0
        assert NULL_METRICS.histogram("h").percentile(95) == 0.0
        assert json.loads(NULL_METRICS.to_json()) == {
            "counters": {}, "gauges": {}, "histograms": {}}
        assert NULL_METRICS.render() == ""

    def test_null_objects_swallow_exceptions_properly(self):
        # __exit__ must return falsy so exceptions still propagate.
        with pytest.raises(RuntimeError):
            with NULL_TRACER.span("doomed"):
                raise RuntimeError("boom")


class TestTracerAttach:
    def test_attach_as_root_when_nothing_open(self, clock):
        tracer = Tracer(clock=clock)
        imported = Span(name="worker-run", start_s=0.0, end_s=1.5)
        tracer.attach(imported)
        assert tracer.roots == [imported]

    def test_attach_nests_under_the_open_span(self, clock):
        tracer = Tracer(clock=clock)
        imported = Span(name="portfolio/trajectory-0", start_s=0.0,
                        end_s=0.25,
                        children=[Span("ts-greedy", 0.0, 0.2)])
        with tracer.span("portfolio") as parent:
            tracer.attach(imported)
        assert parent.children == [imported]
        assert tracer.find("ts-greedy") is imported.children[0]

    def test_attached_tree_survives_serialization(self, clock):
        tracer = Tracer(clock=clock)
        with tracer.span("portfolio"):
            tracer.attach(Span("portfolio/trajectory-1", 0.0, 0.5,
                               attrs={"label": "anneal-104"}))
        data = tracer.to_dict()
        rebuilt = Tracer.from_dict(data)
        found = rebuilt.find("portfolio/trajectory-1")
        assert found is not None
        assert found.attrs["label"] == "anneal-104"

    def test_null_tracer_attach_is_a_noop(self):
        NULL_TRACER.attach(Span("x", 0.0, 1.0))
        assert NULL_TRACER.roots == []


class TestMetricsMerge:
    def test_counters_add_and_gauges_overwrite(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 3)
        a.set_gauge("g", 1)
        b.inc("c", 4)
        b.set_gauge("g", 9)
        a.merge(b.to_dict())
        assert a.value("c") == 7.0
        assert a.value("g") == 9.0

    def test_histogram_aggregates_merge_exactly(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in (1, 2, 3):
            a.observe("h", v)
        for v in (10, 20):
            b.observe("h", v)
        a.merge(b.to_dict())
        hist = a.histogram("h")
        assert hist.count == 5
        assert hist.total == 36.0
        assert hist.min == 1.0
        assert hist.max == 20.0

    def test_merge_into_empty_registry(self):
        src = MetricsRegistry()
        src.inc("greedy.evaluations", 42)
        src.observe("candidates", 7)
        dst = MetricsRegistry().merge(src.to_dict())
        assert dst.value("greedy.evaluations") == 42.0
        assert dst.histogram("candidates").count == 1

    def test_merge_skips_empty_histograms(self):
        src = MetricsRegistry()
        src.histogram("empty")  # created, never observed
        dst = MetricsRegistry()
        dst.merge(src.to_dict())
        assert dst.histogram("empty").count == 0
        assert dst.histogram("empty").samples == []

    def test_merge_is_associative_over_snapshots(self):
        parts = []
        for base in (0, 10, 20):
            reg = MetricsRegistry()
            reg.inc("n", base + 1)
            parts.append(reg.to_dict())
        one_shot = MetricsRegistry()
        for part in parts:
            one_shot.merge(part)
        assert one_shot.value("n") == 33.0

    def test_null_metrics_merge_is_a_noop(self):
        src = MetricsRegistry()
        src.inc("c", 5)
        assert NULL_METRICS.merge(src.to_dict()) is NULL_METRICS
        assert NULL_METRICS.value("c") == 0.0
