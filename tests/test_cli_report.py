"""Tests for the CLI and the recommendation report renderer."""

import json

import pytest

from repro.catalog.io import save_database, save_farm, save_layout
from repro.cli import main
from repro.core.advisor import LayoutAdvisor
from repro.core.fullstripe import full_striping
from repro.core.report import render_filegroup_script, render_report
from repro.storage.disk import winbench_farm


@pytest.fixture
def tool_files(tmp_path, mini_db):
    """Database, disks and workload files for the CLI."""
    save_database(mini_db, tmp_path / "db.json")
    save_farm(winbench_farm(8), tmp_path / "disks.json")
    (tmp_path / "w.sql").write_text(
        "-- name: J1\n"
        "SELECT COUNT(*) FROM big b, mid m WHERE b.k = m.k;\n"
        "-- name: S1\nSELECT SUM(b.v) FROM big b;\n")
    return tmp_path


def _args(tool_files, *extra):
    return ["--database", str(tool_files / "db.json"),
            "--disks", str(tool_files / "disks.json"),
            "--workload", str(tool_files / "w.sql"), *extra]


class TestReport:
    def test_render_report_mentions_key_numbers(self, mini_db, farm8,
                                                join_workload):
        advisor = LayoutAdvisor(mini_db, farm8)
        rec = advisor.recommend(join_workload)
        text = render_report(rec)
        assert "estimated improvement" in text
        assert "J1" in text
        assert "layouts costed" in text

    def test_filegroup_script_covers_every_object(self, mini_db, farm8):
        layout = full_striping(mini_db.object_sizes(), farm8)
        script = render_filegroup_script(layout, "mydb")
        for name in mini_db.object_sizes():
            assert name in script
        assert "ADD FILEGROUP" in script
        # Full striping = one filegroup over all disks = 8 files.
        assert script.count("ADD FILE (") == 8


class TestCli:
    def test_recommend_writes_layout(self, tool_files, capsys):
        out_path = tool_files / "layout.json"
        rc = main(["recommend", *_args(tool_files),
                   "--save-layout", str(out_path)])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "estimated improvement" in captured
        data = json.loads(out_path.read_text())
        assert "fractions" in data

    def test_recommend_with_script(self, tool_files, capsys):
        rc = main(["recommend", *_args(tool_files), "--script"])
        assert rc == 0
        assert "ADD FILEGROUP" in capsys.readouterr().out

    def test_recommend_full_striping_method(self, tool_files, capsys):
        rc = main(["recommend", *_args(tool_files),
                   "--method", "full-striping"])
        assert rc == 0

    def test_recommend_with_constraints_file(self, tool_files, capsys):
        constraints = {"co_located": [["big", "mid"]]}
        path = tool_files / "c.json"
        path.write_text(json.dumps(constraints))
        rc = main(["recommend", *_args(tool_files),
                   "--constraints", str(path)])
        assert rc == 0
        assert "big" in capsys.readouterr().out

    def test_recommend_with_concurrency_spec(self, tool_files, capsys,
                                             mini_db):
        # Two statements that only co-access each other when marked
        # concurrent; the spec makes the CLI separate their tables.
        (tool_files / "scan.sql").write_text(
            "-- name: A\nSELECT COUNT(*) FROM big b;\n"
            "-- name: B\nSELECT COUNT(*) FROM mid m;\n")
        (tool_files / "conc.json").write_text(
            json.dumps({"groups": [[0, 1]], "overlap_factor": 1.0}))
        out_path = tool_files / "conc_layout.json"
        rc = main(["recommend",
                   "--database", str(tool_files / "db.json"),
                   "--disks", str(tool_files / "disks.json"),
                   "--workload", str(tool_files / "scan.sql"),
                   "--concurrency", str(tool_files / "conc.json"),
                   "--save-layout", str(out_path)])
        assert rc == 0
        data = json.loads(out_path.read_text())
        big = {j for j, f in enumerate(data["fractions"]["big"])
               if f > 0}
        mid = {j for j, f in enumerate(data["fractions"]["mid"])
               if f > 0}
        assert not big & mid

    def test_recommend_from_profile_trace(self, tool_files, capsys):
        (tool_files / "trace.csv").write_text(
            "start,end,sql\n"
            "0.0,10.0,SELECT COUNT(*) FROM big b\n"
            "0.5,9.5,SELECT COUNT(*) FROM mid m\n")
        out_path = tool_files / "trace_layout.json"
        rc = main(["recommend",
                   "--database", str(tool_files / "db.json"),
                   "--disks", str(tool_files / "disks.json"),
                   "--profile-trace", str(tool_files / "trace.csv"),
                   "--save-layout", str(out_path)])
        assert rc == 0
        data = json.loads(out_path.read_text())
        big = {j for j, f in enumerate(data["fractions"]["big"])
               if f > 0}
        mid = {j for j, f in enumerate(data["fractions"]["mid"])
               if f > 0}
        assert not big & mid

    def test_recommend_requires_workload_or_trace(self, tool_files,
                                                  capsys):
        rc = main(["recommend",
                   "--database", str(tool_files / "db.json"),
                   "--disks", str(tool_files / "disks.json")])
        assert rc == 2
        assert "provide --workload or --workload-trace" in \
            capsys.readouterr().err

    def test_recommend_trace_writes_span_json(self, tool_files, capsys):
        trace_path = tool_files / "trace.json"
        rc = main(["recommend", *_args(tool_files),
                   "--trace", str(trace_path)])
        assert rc == 0
        data = json.loads(trace_path.read_text())
        root = data["spans"][0]
        assert root["name"] == "recommend"
        children = [c["name"] for c in root["children"]]
        assert "analyze-workload" in children
        assert "ts-greedy" in children
        assert root["duration_s"] > 0

    def test_recommend_metrics_and_verbose(self, tool_files, capsys):
        rc = main(["recommend", *_args(tool_files), "--metrics", "-v"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "=== metrics ===" in out
        assert "greedy.evaluations" in out
        assert "=== trace ===" in out
        assert "recommend" in out

    def test_recommend_saves_recommendation_json(self, tool_files,
                                                 capsys):
        out_path = tool_files / "rec.json"
        rc = main(["recommend", *_args(tool_files),
                   "--save-recommendation", str(out_path)])
        assert rc == 0
        data = json.loads(out_path.read_text())
        assert isinstance(data["improvement_pct"], float)
        assert data["search"]["evaluations"] > 0
        assert data["search"]["kl_passes"] >= 1
        assert "layout" in data and "fractions" in data["layout"]

    def test_analyze_prints_graph_and_plans(self, tool_files, capsys):
        rc = main(["analyze",
                   "--database", str(tool_files / "db.json"),
                   "--workload", str(tool_files / "w.sql"),
                   "--plans"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "access graph" in out
        assert "big -- mid" in out
        assert "Merge Join" in out

    def test_estimate_compares_layouts(self, tool_files, capsys,
                                       mini_db):
        farm = winbench_farm(8)
        layout = full_striping(mini_db.object_sizes(), farm)
        save_layout(layout, tool_files / "cand.json")
        rc = main(["estimate", *_args(tool_files),
                   "--layout", str(tool_files / "cand.json")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "full-striping" in out and "cand" in out

    def test_simulate_prints_per_statement(self, tool_files, capsys):
        rc = main(["simulate", *_args(tool_files)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "J1" in out and "TOTAL" in out

    def test_missing_file_is_a_clean_error(self, tool_files, capsys):
        rc = main(["recommend",
                   "--database", str(tool_files / "nope.json"),
                   "--disks", str(tool_files / "disks.json"),
                   "--workload", str(tool_files / "w.sql")])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_bad_workload_is_a_clean_error(self, tool_files, capsys):
        (tool_files / "bad.sql").write_text("SELEKT nonsense;")
        rc = main(["recommend",
                   "--database", str(tool_files / "db.json"),
                   "--disks", str(tool_files / "disks.json"),
                   "--workload", str(tool_files / "bad.sql")])
        assert rc == 2


class TestResilienceCli:
    def test_faults_flag_degrades_cleanly(self, tool_files, capsys):
        rc = main(["recommend", *_args(tool_files),
                   "--method", "portfolio", "--portfolio", "4",
                   "--jobs", "4", "--faults", "kill_worker=1"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "degraded: 1/4 trajectories failed" in captured.out
        assert "degraded" in captured.err
        assert "estimated improvement" in captured.out

    def test_deadline_flag_degrades_cleanly(self, tool_files, capsys):
        rc = main(["recommend", *_args(tool_files),
                   "--method", "portfolio", "--portfolio", "3",
                   "--deadline", "0.0"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "degraded" in captured.err
        assert "timeout" in captured.out

    def test_retries_and_timeout_flags_accepted(self, tool_files,
                                                capsys):
        rc = main(["recommend", *_args(tool_files),
                   "--method", "portfolio", "--portfolio", "2",
                   "--retries", "3", "--trajectory-timeout", "60"])
        assert rc == 0
        assert "degraded" not in capsys.readouterr().out

    def test_malformed_faults_spec_is_a_clean_error(self, tool_files,
                                                    capsys):
        rc = main(["recommend", *_args(tool_files),
                   "--method", "portfolio",
                   "--faults", "explode=now"])
        assert rc == 2
        assert "unknown fault" in capsys.readouterr().err
