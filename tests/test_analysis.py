"""Tests for repro.analysis: rules, engine, advisor wiring."""

import pytest

from repro.analysis import (
    REGISTRY,
    AnalysisReport,
    Severity,
    analyze_inputs,
    audit_recommendation,
    check_constraints,
    check_layout,
    check_recommendation,
    check_workload,
    constraint_construction_diagnostic,
    preflight,
    rules_by_category,
)
from repro.core.advisor import LayoutAdvisor
from repro.core.constraints import (
    AvailabilityRequirement,
    CoLocated,
    ConstraintSet,
    MaxDataMovement,
)
from repro.core.fullstripe import full_striping
from repro.core.layout import Layout
from repro.errors import AnalysisError, ConstraintError
from repro.obs import MetricsRegistry, Tracer
from repro.optimizer import operators as ops
from repro.storage.disk import Availability, DiskFarm, DiskSpec
from repro.workload.access import (
    AnalyzedStatement,
    AnalyzedWorkload,
    SubplanAccess,
    analyze_workload,
)
from repro.workload.access_graph import AccessGraph, build_access_graph
from repro.workload.workload import Statement


def rule_ids(diagnostics):
    return [d.rule_id for d in diagnostics]


def mixed_farm() -> DiskFarm:
    """Three disks, one per availability level."""
    def disk(name, availability):
        return DiskSpec(name=name, capacity_blocks=100_000,
                        avg_seek_s=0.009, read_mb_s=20.0,
                        write_mb_s=20.0, availability=availability)
    return DiskFarm([disk("P1", Availability.NONE),
                     disk("M1", Availability.MIRRORING),
                     disk("R1", Availability.PARITY)])


class TestRegistry:
    def test_ids_are_stable_and_unique(self):
        expected = {
            "ALR000",
            "ALR001", "ALR002", "ALR003", "ALR004", "ALR005", "ALR006",
            "ALR010", "ALR011", "ALR012", "ALR013", "ALR014", "ALR015",
            "ALR020", "ALR021", "ALR022", "ALR023", "ALR024",
            "ALR030", "ALR031", "ALR032", "ALR033", "ALR034",
            "ALR035",
            # The RPC0xx code-contract rules (docs/static-analysis.md).
            "RPC001", "RPC002", "RPC003",
            "RPC101", "RPC102", "RPC103", "RPC104", "RPC105",
            "RPC201", "RPC202", "RPC203",
            "RPC301", "RPC302", "RPC303", "RPC304",
            "RPC401",
        }
        assert set(REGISTRY) == expected

    def test_categories(self):
        assert {r.category for r in REGISTRY.values()} == {
            "engine", "layout", "constraints", "workload", "audit",
            "code"}
        assert all(r.category == "layout"
                   for r in rules_by_category("layout"))

    def test_severity_ordering(self):
        assert Severity.INFO.rank < Severity.WARNING.rank \
            < Severity.ERROR.rank


class TestReport:
    def test_exit_codes(self):
        rule = REGISTRY["ALR001"]
        clean = AnalysisReport()
        assert clean.exit_code == 0 and not clean
        info = AnalysisReport([rule.diagnostic(
            "x", severity=Severity.INFO)])
        assert info.exit_code == 0
        warn = AnalysisReport([rule.diagnostic(
            "x", severity=Severity.WARNING)])
        assert warn.exit_code == 1
        err = AnalysisReport([rule.diagnostic("x")])
        assert err.exit_code == 2
        assert err.max_severity is Severity.ERROR

    def test_render_and_dict(self):
        report = AnalysisReport([REGISTRY["ALR004"].diagnostic(
            "disk D8 holds no data", location="disk:D8",
            suggestion="remove it")])
        text = report.render_text()
        assert "ALR004" in text and "[disk:D8]" in text
        assert "fix: remove it" in text
        assert "1 diagnostic(s)" in text
        payload = report.to_dict()
        assert payload["diagnostics"][0]["rule"] == "ALR004"
        assert payload["summary"]["max_severity"] == "warning"


class TestLayoutRules:
    def test_clean_full_striping(self, mini_db, farm8):
        layout = full_striping(mini_db.object_sizes(), farm8)
        found = list(check_layout(
            farm8, layout.object_sizes,
            {n: layout.fractions_of(n) for n in layout.object_names}))
        assert found == []

    def test_alr001_bad_sum(self, farm8):
        found = list(check_layout(
            farm8, {"t": 100}, {"t": [0.5, 0.4, 0, 0, 0, 0, 0, 0]}))
        assert rule_ids(found) == ["ALR001"]
        assert "t" in found[0].message

    def test_alr002_negative_fraction(self, farm8):
        found = list(check_layout(
            farm8, {"t": 100}, {"t": [1.5, -0.5, 0, 0, 0, 0, 0, 0]}))
        assert rule_ids(found) == ["ALR002"]

    def test_alr003_over_capacity(self):
        farm = DiskFarm([DiskSpec(name="D1", capacity_blocks=50,
                                  avg_seek_s=0.009, read_mb_s=20.0,
                                  write_mb_s=20.0)])
        found = list(check_layout(farm, {"t": 100}, {"t": [1.0]}))
        assert rule_ids(found) == ["ALR003"]

    def test_alr004_idle_disk(self, farm8):
        fractions = {"t": [1.0] + [0.0] * 7}
        found = list(check_layout(farm8, {"t": 100}, fractions))
        assert rule_ids(found).count("ALR004") == 7
        assert all(d.severity is Severity.WARNING for d in found)

    def test_alr005_mixed_availability(self):
        farm = mixed_farm()
        found = list(check_layout(
            farm, {"t": 100}, {"t": [0.5, 0.5, 0.0]}))
        assert "ALR005" in rule_ids(found)
        mixed = [d for d in found if d.rule_id == "ALR005"][0]
        assert "mirroring" in mixed.message and "none" in mixed.message

    def test_alr006_catalog_mismatch(self, farm8):
        found = list(check_layout(
            farm8, {"extra": 10},
            {"extra": [1.0] + [0.0] * 7},
            catalog_objects=["missing"]))
        ids = rule_ids(found)
        assert ids.count("ALR006") == 2  # one missing row, one extra


class TestConstraintRules:
    def test_alr010_unknown_object(self, farm8):
        constraints = ConstraintSet(
            co_located=[CoLocated("big", "order_archive")])
        found = list(check_constraints(constraints, farm8,
                                       ["big", "mid"]))
        assert rule_ids(found) == ["ALR010"]
        assert "order_archive" in found[0].message

    def test_alr011_contradictory_colocation_pair(self):
        farm = mixed_farm()
        constraints = ConstraintSet(
            co_located=[CoLocated("a", "b")],
            availability=[
                AvailabilityRequirement("a", Availability.MIRRORING),
                AvailabilityRequirement("b", Availability.PARITY)])
        found = list(check_constraints(constraints, farm, ["a", "b"]))
        assert rule_ids(found) == ["ALR011"]
        assert "a requires mirroring" in found[0].message

    def test_alr011_via_transitive_chain(self):
        """a~b and b~c puts a and c in one group; their disjoint
        availability requirements contradict through the closure."""
        farm = mixed_farm()
        constraints = ConstraintSet(
            co_located=[CoLocated("a", "b"), CoLocated("b", "c")],
            availability=[
                AvailabilityRequirement("a", Availability.MIRRORING),
                AvailabilityRequirement("c", Availability.PARITY)])
        found = list(check_constraints(constraints, farm,
                                       ["a", "b", "c"]))
        assert rule_ids(found) == ["ALR011"]
        assert "{a, b, c}" in found[0].location

    def test_alr012_unsatisfiable_level(self, farm8):
        # winbench disks are all Availability.NONE.
        constraints = ConstraintSet(availability=[
            AvailabilityRequirement("big", Availability.MIRRORING)])
        found = list(check_constraints(constraints, farm8, ["big"]))
        assert rule_ids(found) == ["ALR012"]
        assert "mirroring" in found[0].message

    def test_alr013_redundant_pair(self, farm8):
        constraints = ConstraintSet(co_located=[
            CoLocated("a", "b"), CoLocated("b", "c"),
            CoLocated("a", "c")])
        found = list(check_constraints(constraints, farm8,
                                       ["a", "b", "c"]))
        assert rule_ids(found) == ["ALR013"]
        assert "CoLocated(a, c)" in found[0].location

    def test_alr014_negative_budget(self, mini_db, farm8):
        sizes = mini_db.object_sizes()
        baseline = full_striping(sizes, farm8)
        constraints = ConstraintSet(
            movement=MaxDataMovement(baseline, max_blocks=-1))
        found = list(check_constraints(constraints, farm8, sizes))
        assert "ALR014" in rule_ids(found)
        assert "negative" in found[-1].message

    def test_alr014_zero_budget_is_a_warning(self, mini_db, farm8):
        sizes = mini_db.object_sizes()
        baseline = full_striping(sizes, farm8)
        constraints = ConstraintSet(
            movement=MaxDataMovement(baseline, max_blocks=0))
        found = [d for d in check_constraints(constraints, farm8, sizes)
                 if d.rule_id == "ALR014"]
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING

    def test_alr014_zero_budget_vs_colocation_is_an_error(
            self, mini_db, farm8):
        """Budget 0 pins the baseline, but the baseline (one object per
        disk) violates the co-location pair: nothing is feasible."""
        from repro.core.layout import stripe_fractions
        sizes = mini_db.object_sizes()
        names = sorted(sizes)
        baseline = Layout(farm8, sizes, {
            name: stripe_fractions([i % 8], farm8)
            for i, name in enumerate(names)})
        constraints = ConstraintSet(
            co_located=[CoLocated(names[0], names[1])],
            movement=MaxDataMovement(baseline, max_blocks=0))
        found = [d for d in check_constraints(constraints, farm8, sizes)
                 if d.rule_id == "ALR014"]
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR
        assert "Co-Located" in found[0].message

    def test_alr014_availability_forces_movement(self, mini_db):
        """The mirrored-disk requirement strands the baseline's blocks
        on disallowed plain disks; the budget cannot cover the move."""
        farm = mixed_farm()
        sizes = mini_db.object_sizes()
        baseline = full_striping(sizes, farm)
        constraints = ConstraintSet(
            availability=[AvailabilityRequirement(
                "big", Availability.MIRRORING)],
            movement=MaxDataMovement(baseline, max_blocks=1))
        found = [d for d in check_constraints(constraints, farm, sizes)
                 if d.rule_id == "ALR014"]
        assert len(found) == 1
        assert "force moving at least" in found[0].message

    def test_alr015_unbuildable_constraint_set(self):
        with pytest.raises(ConstraintError) as excinfo:
            ConstraintSet(availability=[
                AvailabilityRequirement("a", Availability.MIRRORING),
                AvailabilityRequirement("a", Availability.PARITY)])
        report = constraint_construction_diagnostic(
            excinfo.value, source="c.json")
        assert rule_ids(report) == ["ALR015"]
        assert report.exit_code == 2
        assert "c.json" in report.diagnostics[0].location


def synthetic_statement(name, objects, weight_override=None):
    subplan = SubplanAccess([ops.ObjectAccess(obj, 10.0)
                             for obj in objects])
    plan = ops.PlanOp(accesses=list(subplan.accesses), rows_out=1.0)
    return AnalyzedStatement(
        statement=Statement("SELECT 1", name=name),
        plan=plan, subplans=[subplan],
        weight_override=weight_override)


class TestWorkloadRules:
    def test_clean_analyzed_workload(self, mini_db, join_workload):
        analyzed = analyze_workload(join_workload, mini_db)
        found = [d for d in check_workload(analyzed)
                 if d.rule_id != "ALR023"]
        assert found == []

    def test_alr020_cyclic_plan(self, mini_db, join_workload):
        analyzed = analyze_workload(join_workload, mini_db)
        plan = analyzed.statements[0].plan
        # Introduce a back-edge from a leaf to the root.
        leaf = plan
        while leaf.children:
            leaf = leaf.children[0]
        leaf.children = (plan,)
        found = list(check_workload(analyzed))
        assert "ALR020" in rule_ids(found)
        cycle = [d for d in found if d.rule_id == "ALR020"][0]
        assert cycle.severity is Severity.ERROR
        assert "cycle" in cycle.message

    def test_alr020_shared_subtree_is_a_warning(self):
        scan = ops.TableScanOp("t", "t", blocks=10.0, rows_out=10.0)
        shared = ops.PlanOp(children=[scan, scan], rows_out=1.0)
        item = AnalyzedStatement(
            statement=Statement("SELECT 1", name="S"),
            plan=shared,
            subplans=[SubplanAccess([ops.ObjectAccess("t", 10.0)])])
        found = list(check_workload(AnalyzedWorkload([item])))
        shared_diags = [d for d in found if d.rule_id == "ALR020"]
        assert len(shared_diags) == 1
        assert shared_diags[0].severity is Severity.WARNING

    def test_alr022_non_positive_weight(self):
        analyzed = AnalyzedWorkload([
            synthetic_statement("neg", ["t"], weight_override=-2.0)])
        found = list(check_workload(analyzed))
        assert rule_ids(found) == ["ALR022"]
        assert "-2" in found[0].message

    def test_alr024_no_stored_objects(self):
        item = AnalyzedStatement(
            statement=Statement("SELECT 1", name="empty"),
            plan=ops.PlanOp(rows_out=1.0), subplans=[])
        found = list(check_workload(AnalyzedWorkload([item])))
        assert rule_ids(found) == ["ALR024"]

    def test_alr021_unwitnessed_edge(self, mini_db, join_workload):
        analyzed = analyze_workload(join_workload, mini_db)
        graph = build_access_graph(analyzed, mini_db)
        graph.add_edge_weight("big", "small", 123.0)  # stale edge
        found = [d for d in check_workload(analyzed, graph=graph)
                 if d.rule_id == "ALR021"]
        assert len(found) == 1
        assert "big -- small" in found[0].message

    def test_alr023_never_accessed_object(self, mini_db,
                                          join_workload):
        analyzed = analyze_workload(join_workload, mini_db)
        found = [d for d in check_workload(analyzed, db=mini_db)
                 if d.rule_id == "ALR023"]
        # join_workload never touches `small` or the secondary indexes.
        assert {d.location for d in found} >= {"object:small"}
        assert all(d.severity is Severity.INFO for d in found)


class TestAuditRules:
    def _packed_layout(self, mini_db):
        """Everything on disk A; disk B idle."""
        sizes = mini_db.object_sizes()
        total = sum(sizes.values())
        farm = DiskFarm([
            DiskSpec(name="A", capacity_blocks=total + 100,
                     avg_seek_s=0.009, read_mb_s=20.0, write_mb_s=20.0),
            DiskSpec(name="B", capacity_blocks=total + 100,
                     avg_seek_s=0.009, read_mb_s=20.0,
                     write_mb_s=20.0)])
        layout = Layout(farm, sizes,
                        {name: [1.0, 0.0] for name in sizes})
        return farm, layout

    def test_alr030_seek_blowup(self, mini_db, join_workload):
        farm, layout = self._packed_layout(mini_db)
        analyzed = analyze_workload(join_workload, mini_db)
        graph = build_access_graph(analyzed, mini_db)
        found = list(check_recommendation(layout, graph))
        blowups = [d for d in found if d.rule_id == "ALR030"]
        assert len(blowups) == 1
        assert "big" in blowups[0].message
        assert "mid" in blowups[0].message

    def test_spread_layout_is_clean(self, mini_db, join_workload,
                                    farm8):
        layout = full_striping(mini_db.object_sizes(), farm8)
        analyzed = analyze_workload(join_workload, mini_db)
        graph = build_access_graph(analyzed, mini_db)
        assert list(check_recommendation(layout, graph)) == []


class TestEngine:
    def test_analyze_inputs_accepts_raw_invalid_layout(self, mini_db,
                                                       farm8):
        report = analyze_inputs(
            db=mini_db, farm=farm8,
            layout={"object_sizes": {"t": 100},
                    "fractions": {"t": [0.5] + [0.0] * 7}})
        ids = rule_ids(report)
        assert "ALR001" in ids
        assert all(d == "ALR001" or d == "ALR006" for d in ids)

    def test_analyze_inputs_unplannable_workload(self, mini_db, farm8):
        from repro.workload.workload import Workload
        bad = Workload(name="bad")
        bad.add("SELECT * FROM no_such_table", name="B1")
        report = analyze_inputs(db=mini_db, farm=farm8, workload=bad)
        assert rule_ids(report) == ["ALR000"]
        assert report.exit_code == 2

    def test_preflight_raises_with_rule_id(self, mini_db, farm8):
        constraints = ConstraintSet(
            co_located=[CoLocated("big", "order_archive")])
        with pytest.raises(AnalysisError) as excinfo:
            preflight(mini_db, farm8, constraints=constraints)
        assert "ALR010" in str(excinfo.value)
        assert rule_ids(excinfo.value.diagnostics) == ["ALR010"]

    def test_preflight_records_metrics(self, mini_db, farm8,
                                       join_workload):
        tracer, metrics = Tracer(), MetricsRegistry()
        analyzed = analyze_workload(join_workload, mini_db)
        report = preflight(mini_db, farm8, analyzed=analyzed,
                           tracer=tracer, metrics=metrics)
        assert report.exit_code == 0
        summary = metrics.render()
        assert "analysis.info" in summary
        assert "preflight" in tracer.render_tree()

    def test_audit_recommendation_counts_findings(self, mini_db,
                                                  join_workload):
        farm, layout = TestAuditRules()._packed_layout(mini_db)
        analyzed = analyze_workload(join_workload, mini_db)
        graph = build_access_graph(analyzed, mini_db)
        metrics = MetricsRegistry()
        report = audit_recommendation(layout, graph, metrics=metrics)
        assert "ALR030" in rule_ids(report)
        assert "ALR004" in rule_ids(report)
        assert "analysis.audit_findings" in metrics.render()


class TestAdvisorWiring:
    def test_recommend_fails_preflight_on_bad_constraints(
            self, mini_db, farm8, join_workload):
        advisor = LayoutAdvisor(mini_db, farm8, constraints=ConstraintSet(
            co_located=[CoLocated("big", "order_archive")]))
        with pytest.raises(AnalysisError, match="ALR010"):
            advisor.recommend(join_workload)

    def test_recommendation_carries_diagnostics(self, mini_db, farm8,
                                                join_workload):
        rec = LayoutAdvisor(mini_db, farm8).recommend(join_workload)
        # mini_db has objects the join workload never touches.
        assert "ALR023" in rule_ids(rec.diagnostics)

    def test_report_renders_audit_section(self, mini_db, farm8,
                                          join_workload):
        from repro.core.report import render_report
        rec = LayoutAdvisor(mini_db, farm8).recommend(join_workload)
        text = render_report(rec)
        assert "layout audit (static analysis)" in text
        assert "ALR023" in text

    def test_recommendation_diagnostics_round_trip(
            self, tmp_path, mini_db, farm8, join_workload):
        from repro.catalog.io import (
            load_recommendation,
            save_recommendation,
        )
        rec = LayoutAdvisor(mini_db, farm8).recommend(join_workload)
        save_recommendation(rec, tmp_path / "rec.json")
        loaded = load_recommendation(tmp_path / "rec.json", farm8)
        assert rule_ids(loaded.diagnostics) == rule_ids(rec.diagnostics)
        assert loaded.diagnostics[0].severity \
            is rec.diagnostics[0].severity

    def test_recommend_concurrent_preflights_unexpanded(
            self, mini_db, farm8, join_workload):
        """The concurrency expansion's negative correction weights must
        not trip ALR022 — pre-flight runs before the expansion."""
        from repro.workload.concurrency import ConcurrencySpec
        spec = ConcurrencySpec.from_groups([[0, 1]],
                                           overlap_factor=0.5)
        rec = LayoutAdvisor(mini_db, farm8).recommend_concurrent(
            join_workload, spec)
        assert "ALR022" not in rule_ids(rec.diagnostics)
