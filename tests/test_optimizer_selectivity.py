"""Tests for predicate selectivity estimation and classification."""

import datetime

import pytest

from repro.catalog.schema import Column, Table
from repro.optimizer.selectivity import (
    JoinPredicate,
    MAGIC_EQ,
    MAGIC_LIKE_CONTAINS,
    MAGIC_LIKE_PREFIX,
    MAGIC_RANGE,
    SelectivityEstimator,
    join_selectivity,
    literal_to_float,
    split_conjuncts,
)
from repro.sql import parse_statement
from tests.conftest import column


def _table():
    return Table("t", 1000, [
        column("a", ndv=100, lo=0, hi=100),
        column("b", ndv=10, lo=0, hi=10),
        Column("nostats", 8),  # deliberately no statistics
    ])


def _estimator(table=None):
    table = table or _table()
    return SelectivityEstimator(
        table, lambda ref: ref.name if table.has_column(ref.name)
        else None)


def _pred(cond):
    return parse_statement(f"SELECT * FROM t WHERE {cond}").where


class TestLiteralToFloat:
    def test_numbers(self):
        assert literal_to_float(5) == 5.0
        assert literal_to_float(2.5) == 2.5

    def test_iso_dates_become_ordinals(self):
        expected = float(datetime.date(1995, 3, 15).toordinal())
        assert literal_to_float("1995-03-15") == expected

    def test_invalid_dates_and_strings(self):
        assert literal_to_float("1995-13-45") is None
        assert literal_to_float("BUILDING") is None
        assert literal_to_float(None) is None
        assert literal_to_float(True) is None


class TestSplitConjuncts:
    def test_flattens_nested_ands(self):
        conjuncts = list(split_conjuncts(_pred("a = 1 AND b = 2 AND "
                                               "a < 5")))
        assert len(conjuncts) == 3

    def test_or_is_one_conjunct(self):
        assert len(list(split_conjuncts(_pred("a = 1 OR b = 2")))) == 1

    def test_none_yields_nothing(self):
        assert list(split_conjuncts(None)) == []


class TestPredicateSelectivity:
    def test_equality_uses_ndv(self):
        assert _estimator().predicate(_pred("a = 5")) == \
            pytest.approx(1 / 100)

    def test_equality_reversed_operands(self):
        assert _estimator().predicate(_pred("5 = a")) == \
            pytest.approx(1 / 100)

    def test_inequality_complement(self):
        assert _estimator().predicate(_pred("a <> 5")) == \
            pytest.approx(1 - 1 / 100)

    def test_range_interpolates_domain(self):
        assert _estimator().predicate(_pred("a < 50")) == \
            pytest.approx(0.5)
        assert _estimator().predicate(_pred("a >= 25")) == \
            pytest.approx(0.75)

    def test_range_with_flipped_operands(self):
        # "50 > a" is "a < 50".
        assert _estimator().predicate(_pred("50 > a")) == \
            pytest.approx(0.5)

    def test_between(self):
        assert _estimator().predicate(_pred("a BETWEEN 25 AND 75")) == \
            pytest.approx(0.5)

    def test_not_between(self):
        assert _estimator().predicate(
            _pred("a NOT BETWEEN 25 AND 75")) == pytest.approx(0.5)

    def test_in_list_scales_equality(self):
        assert _estimator().predicate(_pred("a IN (1, 2, 3)")) == \
            pytest.approx(3 / 100)

    def test_in_list_caps_at_one(self):
        estimator = _estimator()
        sel = estimator.predicate(_pred("b IN (0,1,2,3,4,5,6,7,8,9,10)"))
        assert sel == pytest.approx(1.0)

    def test_like_magic_constants(self):
        estimator = _estimator()
        assert estimator.predicate(_pred("nostats LIKE 'x%'")) == \
            MAGIC_LIKE_PREFIX
        assert estimator.predicate(_pred("nostats LIKE '%x%'")) == \
            MAGIC_LIKE_CONTAINS

    def test_is_null_uses_null_fraction(self):
        estimator = _estimator()
        assert estimator.predicate(_pred("nostats IS NULL")) == \
            pytest.approx(0.05)
        assert estimator.predicate(_pred("nostats IS NOT NULL")) == \
            pytest.approx(0.95)

    def test_and_multiplies_or_unions(self):
        estimator = _estimator()
        assert estimator.predicate(_pred("a = 1 AND b = 2")) == \
            pytest.approx(0.01 * 0.1)
        expected = 0.01 + 0.1 - 0.01 * 0.1
        assert estimator.predicate(_pred("a = 1 OR b = 2")) == \
            pytest.approx(expected)

    def test_not_complements(self):
        assert _estimator().predicate(_pred("NOT a = 1")) == \
            pytest.approx(0.99)

    def test_no_stats_falls_back_to_magic(self):
        estimator = _estimator()
        assert estimator.predicate(_pred("nostats = 'x'")) == MAGIC_EQ
        assert estimator.predicate(_pred("nostats < 'x'")) == MAGIC_RANGE

    def test_column_vs_column_same_table_is_magic(self):
        assert _estimator().predicate(_pred("a < b")) == MAGIC_RANGE

    def test_conjunction_multiplies(self):
        estimator = _estimator()
        sel = estimator.conjunction([_pred("a = 1"), _pred("b = 2")])
        assert sel == pytest.approx(0.01 * 0.1)


class TestJoinSelectivity:
    def test_one_over_max_ndv(self):
        left = Table("l", 1000, [column("x", ndv=100, lo=0, hi=100)])
        right = Table("r", 500, [column("y", ndv=400, lo=0, hi=400)])
        assert join_selectivity(left, "x", right, "y") == \
            pytest.approx(1 / 400)

    def test_missing_stats_fall_back_to_row_count(self):
        left = Table("l", 1000, [column("x", ndv=10)])
        right = Table("r", 500, [
            __import__("repro.catalog.schema",
                       fromlist=["Column"]).Column("y", 8)])
        assert join_selectivity(left, "x", right, "y") == \
            pytest.approx(1 / 500)


class TestJoinPredicate:
    def test_column_for(self):
        jp = JoinPredicate("a", "x", "b", "y")
        assert jp.column_for("a") == "x"
        assert jp.column_for("b") == "y"
        with pytest.raises(KeyError):
            jp.column_for("c")

    def test_bindings(self):
        assert JoinPredicate("a", "x", "b", "y").bindings() == \
            frozenset({"a", "b"})
