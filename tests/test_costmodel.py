"""Tests for the Figure-7 cost model and the vectorized evaluator."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.costmodel import CostModel, WorkloadCostEvaluator
from repro.core.fullstripe import full_striping
from repro.core.layout import Layout, stripe_fractions
from repro.core.random_layout import random_layout
from repro.errors import LayoutError
from repro.optimizer.operators import ObjectAccess, TableScanOp
from repro.storage.disk import uniform_farm, winbench_farm
from repro.workload.access import (
    AnalyzedStatement,
    AnalyzedWorkload,
    SubplanAccess,
    analyze_workload,
)
from repro.workload.workload import Statement, Workload


def _subplan(*accesses):
    return SubplanAccess(list(accesses))


def _stmt(subplans, weight=1.0):
    plan = TableScanOp("dummy", "dummy", blocks=0.0, rows_out=0.0)
    plan.accesses.clear()
    return AnalyzedStatement(
        statement=Statement("SELECT 1 FROM t", weight=weight),
        plan=plan, subplans=subplans)


class TestFigure7Semantics:
    """Closed-form checks of the Figure-7 formulas."""

    def setup_method(self):
        self.farm = uniform_farm(3, read_mb_s=10.0, seek_ms=10.0)
        self.T = self.farm[0].read_blocks_s
        self.S = self.farm[0].avg_seek_s
        self.model = CostModel(self.farm)
        self.sizes = {"A": 300, "B": 150}

    def _layout(self, a_disks, b_disks):
        return Layout(self.farm, self.sizes, {
            "A": stripe_fractions(a_disks, self.farm),
            "B": stripe_fractions(b_disks, self.farm)})

    def test_example5_l1(self):
        cost = self.model.subplan_cost(
            _subplan(ObjectAccess("A", 300), ObjectAccess("B", 150)),
            self._layout([0, 1, 2], [0, 1, 2]))
        assert cost == pytest.approx(150 / self.T + 100 * self.S)

    def test_example5_l2(self):
        cost = self.model.subplan_cost(
            _subplan(ObjectAccess("A", 300), ObjectAccess("B", 150)),
            self._layout([0, 1], [1, 2]))
        assert cost == pytest.approx(225 / self.T + 150 * self.S)

    def test_example5_l3(self):
        cost = self.model.subplan_cost(
            _subplan(ObjectAccess("A", 300), ObjectAccess("B", 150)),
            self._layout([0, 1], [2]))
        assert cost == pytest.approx(150 / self.T)

    def test_single_object_no_seek(self):
        cost = self.model.subplan_cost(
            _subplan(ObjectAccess("A", 300)),
            self._layout([0], [1]))
        assert cost == pytest.approx(300 / self.T)

    def test_max_over_disks_is_bottleneck(self):
        # A on one disk: that disk bounds the subplan.
        layout = self._layout([0], [1, 2])
        cost = self.model.subplan_cost(
            _subplan(ObjectAccess("A", 300), ObjectAccess("B", 150)),
            layout)
        assert cost == pytest.approx(300 / self.T)

    def test_write_uses_write_rate(self):
        layout = self._layout([0], [1])
        read = self.model.subplan_cost(
            _subplan(ObjectAccess("A", 300)), layout)
        write = self.model.subplan_cost(
            _subplan(ObjectAccess("A", 300, write=True)), layout)
        assert write > read  # write rate is 90% of read rate

    def test_statement_cost_sums_subplans(self):
        layout = self._layout([0], [1])
        stmt = _stmt([_subplan(ObjectAccess("A", 300)),
                      _subplan(ObjectAccess("B", 150))])
        expected = 300 / self.T + 150 / self.T
        assert self.model.statement_cost(stmt, layout) == \
            pytest.approx(expected)

    def test_workload_cost_weights_statements(self):
        layout = self._layout([0], [1])
        stmt = _stmt([_subplan(ObjectAccess("A", 300))], weight=4.0)
        workload = AnalyzedWorkload([stmt])
        assert self.model.workload_cost(workload, layout) == \
            pytest.approx(4.0 * 300 / self.T)

    def test_temp_accesses_ignored(self):
        layout = self._layout([0], [1])
        with_temp = _subplan(ObjectAccess("A", 300),
                             ObjectAccess("tempdb", 1e6, write=True))
        without = _subplan(ObjectAccess("A", 300))
        assert self.model.subplan_cost(with_temp, layout) == \
            pytest.approx(self.model.subplan_cost(without, layout))

    def test_empty_subplan_costs_nothing(self):
        assert self.model.subplan_cost(_subplan(),
                                       self._layout([0], [1])) == 0.0

    def test_seek_formula_three_streams(self):
        """k streams: seek = k * S * min(stream blocks on disk)."""
        sizes = {"A": 300, "B": 150, "C": 30}
        layout = Layout(self.farm, sizes, {
            "A": stripe_fractions([0], self.farm),
            "B": stripe_fractions([0], self.farm),
            "C": stripe_fractions([0], self.farm)})
        cost = self.model.subplan_cost(
            _subplan(ObjectAccess("A", 300), ObjectAccess("B", 150),
                     ObjectAccess("C", 30)), layout)
        expected = (300 + 150 + 30) / self.T + 3 * self.S * 30
        assert cost == pytest.approx(expected)


class TestEvaluatorAgainstReference:
    """The vectorized evaluator must match the readable model exactly."""

    def _analyzed(self, mini_db, join_workload):
        return analyze_workload(join_workload, mini_db)

    def test_full_striping_agrees(self, mini_db, join_workload, farm8):
        analyzed = self._analyzed(mini_db, join_workload)
        evaluator = WorkloadCostEvaluator(analyzed, farm8,
                                          sorted(mini_db.object_sizes()))
        model = CostModel(farm8)
        layout = full_striping(mini_db.object_sizes(), farm8)
        assert evaluator.cost(layout) == \
            pytest.approx(model.workload_cost(analyzed, layout))

    # The fixtures are read-only, so sharing them across examples is
    # safe; suppress the function-scoped-fixture health check.
    @settings(deadline=None, max_examples=25,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_random_layouts_agree(self, mini_db, join_workload,
                                           seed):
        farm = winbench_farm(5)
        analyzed = self._analyzed(mini_db, join_workload)
        evaluator = WorkloadCostEvaluator(analyzed, farm,
                                          sorted(mini_db.object_sizes()))
        model = CostModel(farm)
        layout = random_layout(mini_db.object_sizes(), farm, seed=seed)
        assert evaluator.cost(layout) == \
            pytest.approx(model.workload_cost(analyzed, layout))

    def test_delta_evaluation_matches_full(self, mini_db, join_workload,
                                           farm8):
        analyzed = self._analyzed(mini_db, join_workload)
        sizes = mini_db.object_sizes()
        evaluator = WorkloadCostEvaluator(analyzed, farm8, sorted(sizes))
        base = full_striping(sizes, farm8)
        evaluator.set_base(evaluator.matrix_of(base))
        candidate = base.with_fractions(
            "big", stripe_fractions([0, 1, 2], farm8))
        delta_cost = evaluator.cost_with_row(
            "big", list(candidate.fractions_of("big")))
        assert delta_cost == pytest.approx(evaluator.cost(candidate))

    def test_delta_does_not_mutate_base(self, mini_db, join_workload,
                                        farm8):
        analyzed = self._analyzed(mini_db, join_workload)
        sizes = mini_db.object_sizes()
        evaluator = WorkloadCostEvaluator(analyzed, farm8, sorted(sizes))
        base = full_striping(sizes, farm8)
        base_cost = evaluator.set_base(evaluator.matrix_of(base))
        evaluator.cost_with_row("big",
                                list(stripe_fractions([0], farm8)))
        # Re-evaluating the unchanged base gives the same cost.
        assert evaluator.cost_with_rows({}) == pytest.approx(base_cost)
        assert evaluator.cost(base) == pytest.approx(base_cost)

    def test_delta_requires_set_base(self, mini_db, join_workload,
                                     farm8):
        analyzed = self._analyzed(mini_db, join_workload)
        evaluator = WorkloadCostEvaluator(analyzed, farm8,
                                          sorted(mini_db.object_sizes()))
        with pytest.raises(LayoutError):
            evaluator.cost_with_row("big",
                                    list(stripe_fractions([0], farm8)))

    def test_untouched_object_delta_is_free(self, mini_db, farm8):
        workload = Workload()
        workload.add("SELECT COUNT(*) FROM big b")
        analyzed = analyze_workload(workload, mini_db)
        sizes = mini_db.object_sizes()
        evaluator = WorkloadCostEvaluator(analyzed, farm8, sorted(sizes))
        base_cost = evaluator.set_base(
            evaluator.matrix_of(full_striping(sizes, farm8)))
        moved = evaluator.cost_with_row(
            "small", list(stripe_fractions([0], farm8)))
        assert moved == base_cost

    def test_batched_costs_match_scalar_deltas(self, mini_db,
                                               join_workload, farm8):
        import numpy as np
        analyzed = self._analyzed(mini_db, join_workload)
        sizes = mini_db.object_sizes()
        evaluator = WorkloadCostEvaluator(analyzed, farm8, sorted(sizes))
        evaluator.set_base(evaluator.matrix_of(
            full_striping(sizes, farm8)))
        rows = np.array(
            [stripe_fractions([j], farm8) for j in range(8)]
            + [stripe_fractions([0, j], farm8) for j in range(1, 8)])
        batched = evaluator.costs_for_rows("big", rows, chunk=4)
        scalar = [evaluator.cost_with_row("big", row) for row in rows]
        assert batched == pytest.approx(scalar)

    def test_batched_costs_untouched_object(self, mini_db, farm8):
        import numpy as np
        workload = Workload()
        workload.add("SELECT COUNT(*) FROM big b")
        analyzed = analyze_workload(workload, mini_db)
        sizes = mini_db.object_sizes()
        evaluator = WorkloadCostEvaluator(analyzed, farm8, sorted(sizes))
        base_cost = evaluator.set_base(evaluator.matrix_of(
            full_striping(sizes, farm8)))
        rows = np.array([stripe_fractions([0], farm8),
                         stripe_fractions([1, 2], farm8)])
        assert list(evaluator.costs_for_rows("small", rows)) == \
            pytest.approx([base_cost, base_cost])

    def test_batched_costs_require_set_base(self, mini_db,
                                            join_workload, farm8):
        import numpy as np
        analyzed = self._analyzed(mini_db, join_workload)
        evaluator = WorkloadCostEvaluator(analyzed, farm8,
                                          sorted(mini_db.object_sizes()))
        with pytest.raises(LayoutError):
            evaluator.costs_for_rows(
                "big", np.array([stripe_fractions([0], farm8)]))

    def test_compression_merges_identical_statements(self, mini_db,
                                                     farm8):
        workload = Workload()
        for _ in range(10):
            workload.add("SELECT COUNT(*) FROM big b")
        analyzed = analyze_workload(workload, mini_db)
        evaluator = WorkloadCostEvaluator(analyzed, farm8,
                                          sorted(mini_db.object_sizes()))
        assert evaluator.n_subplans == 1
        # ... but the cost still counts all ten statements.
        model = CostModel(farm8)
        layout = full_striping(mini_db.object_sizes(), farm8)
        assert evaluator.cost(layout) == \
            pytest.approx(model.workload_cost(analyzed, layout))
