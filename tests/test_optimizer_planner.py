"""Tests for the cost-based planner."""

import pytest

from repro.errors import PlanningError
from repro.optimizer import operators as ops
from repro.optimizer.planner import TEMPDB, plan_statement
from repro.sql import parse_statement
from repro.workload.access import decompose


def _leafs(plan, kind):
    return [n for n in ops.walk(plan) if isinstance(n, kind)]


def _objects(plan):
    return {a.object_name for n in ops.walk(plan) for a in n.accesses}


class TestAccessPaths:
    def test_single_table_scan(self, mini_db):
        plan = plan_statement("SELECT COUNT(*) FROM big b", mini_db)
        scans = _leafs(plan, ops.TableScanOp)
        assert len(scans) == 1
        assert scans[0].accesses[0].blocks == \
            mini_db.table("big").size_blocks

    def test_clustered_scan_is_ordered(self, mini_db):
        plan = plan_statement("SELECT COUNT(*) FROM big b", mini_db)
        scan = _leafs(plan, ops.TableScanOp)[0]
        assert scan.order == (("b", "k"),)

    def test_clustered_range_seek_reduces_blocks(self, mini_db):
        plan = plan_statement(
            "SELECT COUNT(*) FROM big b WHERE b.k < 100000", mini_db)
        scan = _leafs(plan, ops.TableScanOp)[0]
        assert scan.range_seek
        assert scan.accesses[0].blocks < \
            0.2 * mini_db.table("big").size_blocks

    def test_covering_index_seek_chosen_for_selective_pred(self,
                                                           mini_db):
        plan = plan_statement(
            "SELECT SUM(b.v) FROM big b WHERE b.dim_id = 7", mini_db)
        seeks = _leafs(plan, ops.IndexSeekOp)
        assert seeks and seeks[0].index == "idx_big_dim"
        assert seeks[0].covering
        assert not _leafs(plan, ops.RidLookupOp)

    def test_non_covering_seek_adds_rid_lookup(self, mini_db):
        # idx_big_d covers only d; query needs v too, and d = const is
        # selective enough (1/2000) to beat a full scan with lookups.
        plan = plan_statement(
            "SELECT SUM(b.v) FROM big b WHERE b.d = 42", mini_db)
        lookups = _leafs(plan, ops.RidLookupOp)
        assert lookups
        assert not lookups[0].accesses[0].sequential

    def test_unselective_pred_keeps_table_scan(self, mini_db):
        plan = plan_statement(
            "SELECT SUM(b.v) FROM big b WHERE b.d >= 0", mini_db)
        assert not _leafs(plan, ops.IndexSeekOp)


class TestJoins:
    def test_clustered_keys_merge_join_without_sorts(self, mini_db):
        plan = plan_statement(
            "SELECT COUNT(*) FROM big b, mid m WHERE b.k = m.k",
            mini_db)
        assert _leafs(plan, ops.MergeJoinOp)
        assert not _leafs(plan, ops.SortOp)

    def test_merge_join_co_accesses_inputs(self, mini_db):
        plan = plan_statement(
            "SELECT COUNT(*) FROM big b, mid m WHERE b.k = m.k",
            mini_db)
        subplans = decompose(plan)
        joined = [s.objects() for s in subplans if len(s.objects()) > 1]
        assert joined and {"big", "mid"} <= joined[0]

    def test_unsortable_join_uses_hash(self, mini_db):
        # Joining on v (not a clustering key of either side, no index
        # with v leading) forces a hash join over sorting 1M rows.
        plan = plan_statement(
            "SELECT COUNT(*) FROM big b, mid m WHERE b.v = m.w",
            mini_db)
        assert _leafs(plan, ops.HashJoinOp)

    def test_hash_join_build_edge_is_blocking(self, mini_db):
        plan = plan_statement(
            "SELECT COUNT(*) FROM big b, mid m WHERE b.v = m.w",
            mini_db)
        join = _leafs(plan, ops.HashJoinOp)[0]
        assert join.blocking_edges == (True, False)

    def test_hash_join_separates_subplans(self, mini_db):
        plan = plan_statement(
            "SELECT COUNT(*) FROM big b, mid m WHERE b.v = m.w",
            mini_db)
        subplans = decompose(plan)
        assert all(len(s.objects() & {"big", "mid"}) <= 1
                   for s in subplans)

    def test_cross_join_as_last_resort(self, mini_db):
        plan = plan_statement(
            "SELECT COUNT(*) FROM small s, mid m", mini_db)
        assert _objects(plan) >= {"small", "mid"}

    def test_three_way_join(self, mini_db):
        plan = plan_statement(
            "SELECT COUNT(*) FROM big b, mid m, small s "
            "WHERE b.k = m.k AND b.dim_id = s.dim_id", mini_db)
        assert _objects(plan) >= {"big", "mid", "small"}

    def test_self_join_two_bindings(self, mini_db):
        plan = plan_statement(
            "SELECT COUNT(*) FROM big b1, big b2 WHERE b1.k = b2.k",
            mini_db)
        accesses = [a for n in ops.walk(plan) for a in n.accesses
                    if a.object_name == "big"]
        assert len(accesses) == 2


class TestBlockingStructure:
    def test_sort_is_blocking(self, mini_db):
        plan = plan_statement(
            "SELECT b.v FROM big b ORDER BY b.v", mini_db)
        sorts = _leafs(plan, ops.SortOp)
        assert sorts and sorts[0].blocking_edges == (True,)

    def test_order_by_clustering_key_avoids_sort(self, mini_db):
        plan = plan_statement(
            "SELECT b.k FROM big b ORDER BY b.k", mini_db)
        assert not _leafs(plan, ops.SortOp)

    def test_large_sort_spills_to_tempdb(self, mini_db):
        plan = plan_statement(
            "SELECT b.k, b.v, b.d FROM big b ORDER BY b.v", mini_db,
            memory_blocks=128)
        sort = _leafs(plan, ops.SortOp)[0]
        temp = [a for a in sort.accesses if a.object_name == TEMPDB]
        assert len(temp) == 2  # write then read
        assert temp[0].write and not temp[1].write

    def test_small_sort_stays_in_memory(self, mini_db):
        plan = plan_statement(
            "SELECT s.label FROM small s ORDER BY s.label", mini_db)
        sort = _leafs(plan, ops.SortOp)[0]
        assert not sort.accesses

    def test_scalar_aggregate_single_row(self, mini_db):
        plan = plan_statement("SELECT COUNT(*) FROM small s", mini_db)
        assert plan.rows_out == 1.0

    def test_group_by_stream_aggregate_on_sorted_input(self, mini_db):
        plan = plan_statement(
            "SELECT b.k, COUNT(*) FROM big b GROUP BY b.k", mini_db)
        assert _leafs(plan, ops.StreamAggregateOp)
        assert not _leafs(plan, ops.HashAggregateOp)

    def test_group_by_hash_aggregate_otherwise(self, mini_db):
        plan = plan_statement(
            "SELECT b.v, COUNT(*) FROM big b GROUP BY b.v", mini_db)
        agg = _leafs(plan, ops.HashAggregateOp)
        assert agg and agg[0].blocking_edges == (True,)

    def test_top_limits_rows(self, mini_db):
        plan = plan_statement("SELECT TOP 7 b.k FROM big b", mini_db)
        assert plan.rows_out == 7.0

    def test_distinct_dedupes(self, mini_db):
        plan = plan_statement("SELECT DISTINCT b.d FROM big b", mini_db)
        assert plan.rows_out < mini_db.table("big").row_count


class TestSubqueries:
    def test_exists_becomes_semi_join(self, mini_db):
        plan = plan_statement(
            "SELECT COUNT(*) FROM mid m WHERE EXISTS "
            "(SELECT * FROM big b WHERE b.k = m.k)", mini_db)
        semis = _leafs(plan, ops.SemiJoinOp)
        assert semis and not semis[0].anti

    def test_merge_semi_join_on_clustered_keys(self, mini_db):
        plan = plan_statement(
            "SELECT COUNT(*) FROM mid m WHERE EXISTS "
            "(SELECT * FROM big b WHERE b.k = m.k)", mini_db)
        semi = _leafs(plan, ops.SemiJoinOp)[0]
        assert semi.merge
        assert semi.blocking_edges == (False, False)

    def test_not_exists_is_anti(self, mini_db):
        plan = plan_statement(
            "SELECT COUNT(*) FROM mid m WHERE NOT EXISTS "
            "(SELECT * FROM big b WHERE b.k = m.k)", mini_db)
        assert _leafs(plan, ops.SemiJoinOp)[0].anti

    def test_in_subquery_keys(self, mini_db):
        plan = plan_statement(
            "SELECT COUNT(*) FROM mid m WHERE m.k IN "
            "(SELECT b.k FROM big b WHERE b.d = 3)", mini_db)
        semi = _leafs(plan, ops.SemiJoinOp)[0]
        assert semi.keys is not None

    def test_scalar_subquery_sequences_blocking(self, mini_db):
        plan = plan_statement(
            "SELECT COUNT(*) FROM mid m WHERE m.w > "
            "(SELECT AVG(b.v + b.d) FROM big b)", mini_db)
        seqs = _leafs(plan, ops.SequenceOp)
        assert seqs
        assert all(seqs[0].blocking_edges)
        assert "big" in _objects(plan)

    def test_correlated_scalar_subquery_planned(self, mini_db):
        plan = plan_statement(
            "SELECT COUNT(*) FROM mid m WHERE m.w > "
            "(SELECT AVG(b.v) FROM big b WHERE b.k = m.k)", mini_db)
        assert "big" in _objects(plan)


class TestDml:
    def test_insert_values_writes_table_and_indexes(self, mini_db):
        plan = plan_statement(
            "INSERT INTO big (k, dim_id, v, d) VALUES (1, 2, 3, 4)",
            mini_db)
        assert isinstance(plan, ops.DmlOp)
        written = {a.object_name for a in plan.accesses if a.write}
        assert written == {"big", "idx_big_d", "idx_big_dim"}

    def test_update_writes_only_affected_indexes(self, mini_db):
        plan = plan_statement(
            "UPDATE big SET v = v + 1 WHERE d = 3", mini_db)
        written = {a.object_name for a in plan.accesses if a.write}
        assert "big" in written
        assert "idx_big_dim" in written     # v is an included column
        assert "idx_big_d" not in written   # d untouched by SET

    def test_update_reads_via_child_access_path(self, mini_db):
        plan = plan_statement(
            "UPDATE big SET v = 0 WHERE k < 1000", mini_db)
        assert plan.children
        assert "big" in _objects(plan.children[0])

    def test_delete_writes_all_indexes(self, mini_db):
        plan = plan_statement("DELETE FROM big WHERE d = 3", mini_db)
        written = {a.object_name for a in plan.accesses if a.write}
        assert written == {"big", "idx_big_d", "idx_big_dim"}

    def test_insert_select(self, mini_db):
        plan = plan_statement(
            "INSERT INTO small SELECT b.dim_id, 'x' FROM big b "
            "WHERE b.d = 1", mini_db)
        assert plan.children
        assert plan.rows_out > 0


class TestErrors:
    def test_unknown_table(self, mini_db):
        with pytest.raises(PlanningError, match="unknown table"):
            plan_statement("SELECT * FROM missing", mini_db)

    def test_unknown_column(self, mini_db):
        with pytest.raises(PlanningError):
            plan_statement("SELECT zzz FROM big b WHERE zzz = 1",
                           mini_db)

    def test_ambiguous_column(self, mini_db):
        with pytest.raises(PlanningError, match="ambiguous"):
            plan_statement(
                "SELECT k FROM big b, mid m WHERE k = 1", mini_db)

    def test_duplicate_binding(self, mini_db):
        with pytest.raises(PlanningError, match="duplicate binding"):
            plan_statement("SELECT COUNT(*) FROM big b, mid b",
                           mini_db)

    def test_too_many_relations(self, mini_db):
        froms = ", ".join(f"small s{i}" for i in range(20))
        with pytest.raises(PlanningError, match="too many relations"):
            plan_statement(f"SELECT COUNT(*) FROM {froms}", mini_db)


class TestEstimates:
    def test_join_cardinality_fk_shape(self, mini_db):
        plan = plan_statement(
            "SELECT COUNT(*) FROM big b, small s "
            "WHERE b.dim_id = s.dim_id", mini_db)
        join = [n for n in ops.walk(plan)
                if isinstance(n, ops._JoinOp)][0]
        # FK join: |big| x |small| / max(ndv) = |big|
        assert join.rows_out == pytest.approx(1_000_000, rel=0.01)

    def test_filtered_rows_flow_up(self, mini_db):
        # SUM(v + d) needs columns no single index covers, so the leaf
        # is a table scan with the v-range filter folded in.
        plan = plan_statement(
            "SELECT SUM(b.v + b.d) FROM big b WHERE b.v < 1000",
            mini_db)
        scan = _leafs(plan, ops.TableScanOp)[0]
        assert scan.rows_out == pytest.approx(100_000, rel=0.05)

    def test_explain_renders(self, mini_db):
        from repro.optimizer import explain
        plan = plan_statement(
            "SELECT COUNT(*) FROM big b, mid m WHERE b.k = m.k",
            mini_db)
        text = explain(plan)
        assert "Merge Join" in text
        assert "big" in text and "mid" in text
