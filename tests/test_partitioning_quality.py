"""Quality tests for the partitioner: brute-force cross-checks.

On instances small enough to enumerate every assignment, the KL-style
heuristic should land at (or very near) the true maximum cut.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitioning import partition_access_graph
from repro.workload.access_graph import AccessGraph


def _graph_from_edges(edges):
    graph = AccessGraph()
    for u, v, w in edges:
        graph.add_edge_weight(u, v, w)
        graph.add_node_weight(u, w)
        graph.add_node_weight(v, w)
    return graph


def _brute_force_max_cut(graph, p):
    nodes = sorted(graph.nodes)
    best = -1.0
    for assignment in itertools.product(range(p), repeat=len(nodes)):
        mapping = dict(zip(nodes, assignment))
        best = max(best, graph.cut_weight(mapping))
    return best


def _heuristic_cut(graph, p):
    parts = partition_access_graph(graph, p)
    mapping = {n: i for i, part in enumerate(parts) for n in part}
    return graph.cut_weight(mapping)


class TestBruteForceCrossCheck:
    @pytest.mark.parametrize("p", [2, 3])
    def test_triangle(self, p):
        graph = _graph_from_edges([("a", "b", 3), ("b", "c", 5),
                                   ("a", "c", 4)])
        assert _heuristic_cut(graph, p) == \
            pytest.approx(_brute_force_max_cut(graph, p))

    @pytest.mark.parametrize("seed", range(8))
    def test_random_small_graphs_two_way(self, seed):
        rng = random.Random(seed)
        nodes = [f"n{i}" for i in range(6)]
        edges = [(u, v, rng.randint(1, 20))
                 for u, v in itertools.combinations(nodes, 2)
                 if rng.random() < 0.6]
        if not edges:
            pytest.skip("empty draw")
        graph = _graph_from_edges(edges)
        optimal = _brute_force_max_cut(graph, 2)
        achieved = _heuristic_cut(graph, 2)
        # KL-style local search: within 10% of the true max cut.
        assert achieved >= 0.9 * optimal

    @pytest.mark.parametrize("seed", range(5))
    def test_random_small_graphs_three_way(self, seed):
        rng = random.Random(100 + seed)
        nodes = [f"n{i}" for i in range(6)]
        edges = [(u, v, rng.randint(1, 20))
                 for u, v in itertools.combinations(nodes, 2)
                 if rng.random() < 0.7]
        if not edges:
            pytest.skip("empty draw")
        graph = _graph_from_edges(edges)
        optimal = _brute_force_max_cut(graph, 3)
        assert _heuristic_cut(graph, 3) >= 0.9 * optimal

    def test_bipartite_graph_fully_cut(self):
        """A bipartite conflict graph has a perfect 2-cut; the
        heuristic must find it."""
        edges = [(f"l{i}", f"r{j}", 1 + i + j)
                 for i in range(3) for j in range(3)]
        graph = _graph_from_edges(edges)
        assert _heuristic_cut(graph, 2) == \
            pytest.approx(graph.total_edge_weight())


class TestHeuristicProperties:
    @given(seed=st.integers(0, 500), p=st.integers(2, 4))
    @settings(max_examples=30, deadline=None)
    def test_property_cut_is_valid_and_bounded(self, seed, p):
        rng = random.Random(seed)
        nodes = [f"n{i}" for i in range(rng.randint(2, 8))]
        edges = [(u, v, rng.randint(1, 30))
                 for u, v in itertools.combinations(nodes, 2)
                 if rng.random() < 0.5]
        graph = _graph_from_edges(edges)
        for node in nodes:
            graph.add_object(node)
        parts = partition_access_graph(graph, p)
        flattened = sorted(n for part in parts for n in part)
        assert flattened == sorted(graph.nodes)
        mapping = {n: i for i, part in enumerate(parts) for n in part}
        cut = graph.cut_weight(mapping)
        assert 0.0 <= cut <= graph.total_edge_weight() + 1e-9
