"""Tests for the advisor service (repro.server).

Covers the four layers separately and end to end:

* fingerprints — content-addressed, order-independent, SLO-blind;
* the single-flight LRU cache — one compute per key under concurrency,
  failure propagation, selective admission;
* the bounded job queue — deterministic 429, drain vs abandon;
* the service core via ``handle()`` (no socket), then the real HTTP
  transport on an ephemeral port.

The HTTP tests ride in the chaos CI job under ``-W
error::ResourceWarning``: shutdown must close every socket and drain
every worker, the same contract as the parallel engine it wraps.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.catalog.io import database_to_dict, farm_to_dict
from repro.errors import QueueFull
from repro.obs.events import validate_events
from repro.server import (
    AdvisorService,
    FingerprintCache,
    Job,
    JobQueue,
    catalog_fingerprint,
    job_fingerprint,
    make_server,
)
from repro.workload.workload import Workload

JOIN_SQL = "SELECT COUNT(*) FROM big b, mid m WHERE b.k = m.k"
SCAN_SQL = "SELECT SUM(b.v) FROM big b"


def poll(service, job_id, timeout_s=60.0):
    """Poll a job until it reaches a terminal state."""
    deadline = time.monotonic() + timeout_s
    while True:
        status, job, _ = service.handle("GET", f"/v1/jobs/{job_id}")
        assert status == 200
        if job["status"] in ("done", "failed"):
            return job
        assert time.monotonic() < deadline, f"job stuck: {job}"
        time.sleep(0.01)


# ---------------------------------------------------------------------------
# fingerprints


class TestFingerprints:
    def _workload(self):
        workload = Workload(name="w")
        workload.add(JOIN_SQL, name="j")
        workload.add(SCAN_SQL, weight=2.0, name="s")
        return workload

    def test_catalog_fingerprint_stable(self, mini_db, farm4):
        db, farm = database_to_dict(mini_db), farm_to_dict(farm4)
        statements = self._workload().statements
        first = catalog_fingerprint(db, farm, statements)
        second = catalog_fingerprint(db, farm, statements)
        assert first == second
        assert len(first) == 64  # sha256 hex

    def test_key_order_is_canonicalized(self, mini_db, farm4):
        db, farm = database_to_dict(mini_db), farm_to_dict(farm4)
        statements = self._workload().statements
        shuffled = json.loads(json.dumps(db))
        shuffled = dict(reversed(list(shuffled.items())))
        assert catalog_fingerprint(db, farm, statements) \
            == catalog_fingerprint(shuffled, farm, statements)

    def test_workload_change_misses(self, mini_db, farm4):
        db, farm = database_to_dict(mini_db), farm_to_dict(farm4)
        base = self._workload()
        reweighted = Workload(name="w")
        reweighted.add(JOIN_SQL, name="j")
        reweighted.add(SCAN_SQL, weight=3.0, name="s")
        assert catalog_fingerprint(db, farm, base.statements) \
            != catalog_fingerprint(db, farm, reweighted.statements)

    def test_content_params_change_job_fingerprint(self):
        base = job_fingerprint("cat", {"method": "ts-greedy", "k": 1})
        assert base != job_fingerprint("cat",
                                       {"method": "ts-greedy", "k": 2})
        assert base != job_fingerprint("cat", {"method": "portfolio",
                                               "k": 1})

    def test_slo_params_do_not_change_job_fingerprint(self):
        relaxed = job_fingerprint("cat", {"method": "ts-greedy"})
        tight = job_fingerprint("cat", {
            "method": "ts-greedy", "deadline": 0.5, "retries": 3,
            "jobs": 8, "backend": "thread"})
        assert relaxed == tight

    def test_absent_and_none_params_are_identical(self):
        assert job_fingerprint("cat", {"method": "ts-greedy"}) \
            == job_fingerprint("cat", {"method": "ts-greedy",
                                       "k": None, "portfolio": None})


# ---------------------------------------------------------------------------
# single-flight LRU cache


class TestFingerprintCache:
    def test_miss_then_hit(self):
        cache = FingerprintCache(capacity=4)
        value, verdict = cache.get_or_compute("a", lambda: 1)
        assert (value, verdict) == (1, "miss")
        value, verdict = cache.get_or_compute("a", lambda: 2)
        assert (value, verdict) == (1, "hit")
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_ratio == pytest.approx(0.5)

    def test_lru_eviction_order(self):
        cache = FingerprintCache(capacity=2)
        cache.get_or_compute("a", lambda: "A")
        cache.get_or_compute("b", lambda: "B")
        cache.get("a")  # refresh: now b is least recent
        cache.get_or_compute("c", lambda: "C")
        assert cache.peek("a") == ("A", True)
        assert cache.peek("b") == (None, False)
        assert cache.peek("c") == ("C", True)

    def test_zero_capacity_always_computes(self):
        cache = FingerprintCache(capacity=0)
        calls = []
        cache.get_or_compute("a", lambda: calls.append(1))
        cache.get_or_compute("a", lambda: calls.append(1))
        assert len(calls) == 2 and len(cache) == 0

    def test_single_flight_computes_once(self):
        """N concurrent identical requests cost exactly one compute."""
        cache = FingerprintCache(capacity=4)
        gate = threading.Event()
        calls = []

        def compute():
            calls.append(1)
            gate.wait(5.0)
            return "value"

        results = []
        threads = [threading.Thread(
            target=lambda: results.append(
                cache.get_or_compute("k", compute)))
            for _ in range(8)]
        for thread in threads:
            thread.start()
        # Give every follower time to park on the leader's event.
        time.sleep(0.05)
        gate.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert len(calls) == 1
        assert len(results) == 8
        assert all(value == "value" for value, _ in results)
        verdicts = sorted(verdict for _, verdict in results)
        assert verdicts.count("miss") == 1
        assert verdicts.count("hit") == 7

    def test_leader_failure_propagates_and_clears(self):
        cache = FingerprintCache(capacity=4)
        gate = threading.Event()
        errors = []

        def explode():
            gate.wait(5.0)
            raise RuntimeError("search blew up")

        def follower():
            try:
                cache.get_or_compute("k", explode)
            except RuntimeError as exc:
                errors.append(str(exc))

        threads = [threading.Thread(target=follower)
                   for _ in range(3)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        gate.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert errors == ["search blew up"] * 3
        # The failure was not cached: the next call computes fresh.
        assert cache.get_or_compute("k", lambda: "ok") == ("ok", "miss")

    def test_uncacheable_value_is_returned_but_not_stored(self):
        cache = FingerprintCache(capacity=4)
        value, verdict = cache.get_or_compute(
            "k", lambda: {"degraded": True},
            cacheable=lambda v: not v["degraded"])
        assert verdict == "miss" and value["degraded"]
        assert cache.peek("k") == (None, False)
        # A later clean result for the same key is admitted.
        cache.get_or_compute("k", lambda: {"degraded": False},
                             cacheable=lambda v: not v["degraded"])
        assert cache.peek("k") == ({"degraded": False}, True)

    def test_get_counts_hits_but_peek_does_not(self):
        cache = FingerprintCache(capacity=4)
        cache.get_or_compute("a", lambda: 1)
        cache.peek("a")
        assert cache.hits == 0
        assert cache.get("a") == (1, True)
        assert cache.hits == 1
        assert cache.get("zzz") == (None, False)
        assert cache.misses == 1  # only the compute counted a miss


# ---------------------------------------------------------------------------
# job queue


class TestJobQueue:
    def _job(self, i=0):
        return Job(job_id=f"j{i}", tenant="t", workload="w",
                   method="ts-greedy", fingerprint=f"f{i}")

    def test_runs_submitted_jobs(self):
        done = []
        queue = JobQueue(runner=lambda job: done.append(job.job_id),
                         workers=2, max_queue=8)
        for i in range(6):
            queue.submit(self._job(i))
        queue.close(drain=True)
        assert sorted(done) == [f"j{i}" for i in range(6)]

    def test_deterministic_429_when_full(self):
        """With workers parked, the (max_queue+workers+1)-th submit
        is rejected immediately with a computed Retry-After."""
        gate = threading.Event()
        started = threading.Semaphore(0)

        def runner(job):
            started.release()
            gate.wait(10.0)

        queue = JobQueue(runner=runner, workers=1, max_queue=2)
        try:
            queue.submit(self._job(0))
            assert started.acquire(timeout=5.0)  # worker is busy
            queue.submit(self._job(1))
            queue.submit(self._job(2))  # queue now at max_queue
            with pytest.raises(QueueFull) as exc_info:
                queue.submit(self._job(3))
            assert exc_info.value.retry_after_s == 2  # max_queue//workers
        finally:
            gate.set()
            queue.close(drain=True)

    def test_submit_after_close_is_rejected(self):
        queue = JobQueue(runner=lambda job: None, workers=1,
                         max_queue=2)
        queue.close(drain=True)
        with pytest.raises(QueueFull) as exc_info:
            queue.submit(self._job())
        assert exc_info.value.retry_after_s == 5
        queue.close(drain=True)  # idempotent

    def test_non_draining_close_cancels_queued_jobs(self):
        gate = threading.Event()
        started = threading.Semaphore(0)
        cancelled = []

        def runner(job):
            started.release()
            gate.wait(10.0)

        queue = JobQueue(runner=runner, workers=1, max_queue=4,
                         cancelled=lambda job: cancelled.append(
                             job.job_id))
        queue.submit(self._job(0))
        assert started.acquire(timeout=5.0)
        queue.submit(self._job(1))
        queue.submit(self._job(2))
        closer = threading.Thread(
            target=lambda: queue.close(drain=False))
        closer.start()
        deadline = time.monotonic() + 5.0
        while len(cancelled) < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert sorted(cancelled) == ["j1", "j2"]
        gate.set()  # release the running job so close() can join
        closer.join(timeout=10.0)
        assert not closer.is_alive()


# ---------------------------------------------------------------------------
# service core (no socket)


@pytest.fixture
def service(mini_db, farm4):
    """A ready single-tenant service over the shared mini catalog."""
    svc = AdvisorService(workers=2, max_queue=4, max_cache=8)
    status, _, _ = svc.handle("POST", "/v1/tenants", {"tenant": "t"})
    assert status == 201
    status, _, _ = svc.handle("PUT", "/v1/tenants/t/database",
                              database_to_dict(mini_db))
    assert status == 200
    status, _, _ = svc.handle("PUT", "/v1/tenants/t/disks",
                              farm_to_dict(farm4))
    assert status == 200
    status, body, _ = svc.handle(
        "PUT", "/v1/tenants/t/workloads/w",
        {"statements": [JOIN_SQL, {"sql": SCAN_SQL, "weight": 2.0}]})
    assert status == 200 and body["statements"] == 2
    yield svc
    svc.close()


class TestServiceRouting:
    def test_health(self, service):
        status, body, _ = service.handle("GET", "/v1/health")
        assert status == 200
        assert body["status"] == "ok" and body["workers"] == 2

    def test_unknown_paths_404(self, service):
        for path in ("/nope", "/v1/nope", "/v1/tenants/ghost",
                     "/v1/jobs/ghost", "/v1/tenants/t/nope"):
            status, body, _ = service.handle("GET", path)
            assert status == 404, path
            assert "error" in body

    def test_malformed_catalog_is_400_not_500(self, service):
        status, body, _ = service.handle(
            "PUT", "/v1/tenants/t/database", {"tables": "nonsense"})
        assert status == 400
        assert "malformed database payload" in body["error"]

    def test_workload_upload_requires_statements_or_sql(self, service):
        status, body, _ = service.handle(
            "PUT", "/v1/tenants/t/workloads/bad", {"queries": []})
        assert status == 400

    def test_workload_upload_accepts_sql_text(self, service):
        status, body, _ = service.handle(
            "PUT", "/v1/tenants/t/workloads/text",
            {"sql": f"{JOIN_SQL};\n-- weight: 2\n{SCAN_SQL};\n"})
        assert status == 200 and body["statements"] == 2

    def test_job_against_unready_tenant_is_400(self, service):
        service.handle("POST", "/v1/tenants", {"tenant": "empty"})
        status, body, _ = service.handle(
            "POST", "/v1/tenants/empty/jobs", {"workload": "w"})
        assert status == 400

    def test_unknown_method_is_400(self, service):
        status, body, _ = service.handle(
            "POST", "/v1/tenants/t/jobs",
            {"workload": "w", "method": "simulated-annealing!"})
        assert status == 400 and "unknown method" in body["error"]

    def test_result_before_completion_is_409(self, service,
                                             monkeypatch):
        gate = threading.Event()
        real_compute = service._compute
        monkeypatch.setattr(
            service, "_compute",
            lambda job: (gate.wait(10.0), real_compute(job))[1])
        status, job, _ = service.handle(
            "POST", "/v1/tenants/t/jobs", {"workload": "w"})
        assert status == 202
        status, body, _ = service.handle(
            "GET", f"/v1/jobs/{job['job_id']}/result")
        assert status == 409 and body["error"] == "result not ready"
        gate.set()
        assert poll(service, job["job_id"])["status"] == "done"


class TestServiceJobs:
    def test_full_cycle_miss_then_hit(self, service):
        status, job, _ = service.handle(
            "POST", "/v1/tenants/t/jobs",
            {"workload": "w", "method": "greedy"})
        assert status == 202 and job["status"] == "queued"
        done = poll(service, job["job_id"])
        assert done["status"] == "done"
        assert done["cache"] == "miss"
        assert not done["degraded"]

        status, result, _ = service.handle(
            "GET", f"/v1/jobs/{job['job_id']}/result")
        assert status == 200
        rec = result["recommendation"]
        assert rec["improvement_pct"] >= 0.0
        assert rec["layout"]

        # Identical resubmission: answered synchronously from cache.
        status, repeat, _ = service.handle(
            "POST", "/v1/tenants/t/jobs",
            {"workload": "w", "method": "greedy"})
        assert status == 200
        assert repeat["status"] == "done" and repeat["cache"] == "hit"
        assert repeat["fingerprint"] == job["fingerprint"]
        assert repeat["job_id"] != job["job_id"]

    def test_tighter_slo_still_hits_cache(self, service):
        _, job, _ = service.handle("POST", "/v1/tenants/t/jobs",
                                   {"workload": "w"})
        poll(service, job["job_id"])
        status, repeat, _ = service.handle(
            "POST", "/v1/tenants/t/jobs",
            {"workload": "w", "deadline": 0.001, "retries": 5})
        assert status == 200 and repeat["cache"] == "hit"

    def test_queue_full_maps_to_429_with_retry_after(self, service,
                                                     monkeypatch):
        gate = threading.Event()
        monkeypatch.setattr(
            service, "_compute",
            lambda job: (gate.wait(10.0),
                         {"search": {"degraded": False}})[1])
        try:
            accepted = 0
            rejected = None
            # 2 workers + max_queue 4: the 7th distinct submission
            # must be the first rejection — vary k so fingerprints
            # differ and nothing single-flights.
            for k in range(1, 8):
                status, body, headers = service.handle(
                    "POST", "/v1/tenants/t/jobs",
                    {"workload": "w", "k": k})
                if status == 202:
                    accepted += 1
                else:
                    rejected = (k, status, body, headers)
                    break
                if accepted == 2:
                    # Make sure both workers picked up their jobs
                    # before we count queue slots.
                    deadline = time.monotonic() + 5.0
                    while service.queue.depth() > 0 \
                            and time.monotonic() < deadline:
                        time.sleep(0.01)
            assert accepted == 6
            k, status, body, headers = rejected
            assert (k, status) == (7, 429)
            assert headers["Retry-After"] == str(body["retry_after_s"])
            assert body["retry_after_s"] >= 1
        finally:
            gate.set()

    def test_killed_portfolio_worker_degrades_not_loses(self, service):
        """A kill_worker fault mid-portfolio still yields HTTP 200
        with ``degraded: true`` — and the partial answer is not
        cached, so a resubmission recomputes.

        Thread backend on purpose: the crash/degrade semantics are
        identical (``fire_kill`` raises ``WorkerCrash`` outside a
        worker process), and a SIGKILLed process worker leaks its pipe
        fds by design — which this file's ``-W error::ResourceWarning``
        CI run would flag.  The real process-kill path is exercised by
        the chaos suite and the live-daemon CI job."""
        status, job, _ = service.handle(
            "POST", "/v1/tenants/t/jobs",
            {"workload": "w", "method": "portfolio", "jobs": 2,
             "retries": 0, "backend": "thread",
             "faults": "kill_worker=1"})
        assert status == 202
        done = poll(service, job["job_id"], timeout_s=120.0)
        assert done["status"] == "done"
        assert done["degraded"] is True
        status, result, _ = service.handle(
            "GET", f"/v1/jobs/{job['job_id']}/result")
        assert status == 200 and result["degraded"] is True
        assert result["recommendation"]["layout"]
        # Degraded results are never admitted to the cache.
        assert service.cache.peek(job["fingerprint"]) == (None, False)
        status, again, _ = service.handle(
            "POST", "/v1/tenants/t/jobs",
            {"workload": "w", "method": "portfolio", "jobs": 2,
             "retries": 0, "backend": "thread",
             "faults": "kill_worker=1"})
        assert status == 202  # queued for a fresh computation
        poll(service, again["job_id"], timeout_s=120.0)

    def test_invalid_fault_spec_rejected_at_submit(self, service):
        status, body, _ = service.handle(
            "POST", "/v1/tenants/t/jobs",
            {"workload": "w", "faults": "meteor_strike=1"})
        assert status == 400

    def test_concurrent_identical_submissions_compute_once(
            self, service, monkeypatch):
        calls = []
        lock = threading.Lock()
        real_compute = service._compute

        def counting(job):
            with lock:
                calls.append(job.fingerprint)
            return real_compute(job)

        monkeypatch.setattr(service, "_compute", counting)
        responses = []

        def submit():
            responses.append(service.handle(
                "POST", "/v1/tenants/t/jobs", {"workload": "w"}))

        # At most max_queue submissions: all of them must be admitted
        # even if no worker has pulled one yet.
        threads = [threading.Thread(target=submit) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert len(responses) == 4
        for status, job, _ in responses:
            assert status in (200, 202)
            poll(service, job["job_id"])
        # Single-flight: the four submissions paid for one search.
        assert len(calls) == 1

    def test_stats_and_metrics_reflect_activity(self, service):
        _, job, _ = service.handle("POST", "/v1/tenants/t/jobs",
                                   {"workload": "w"})
        poll(service, job["job_id"])
        service.handle("POST", "/v1/tenants/t/jobs", {"workload": "w"})
        status, stats, _ = service.handle("GET", "/v1/stats")
        assert status == 200
        assert stats["jobs"]["done"] == 2
        assert stats["cache"]["entries"] == 1
        assert stats["cache"]["hits"] >= 1
        status, text, headers = service.handle("GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "server_jobs_completed_total" in text \
            or "server_jobs_completed" in text

    def test_timeline_validates_and_filters_by_job(self, service):
        _, job, _ = service.handle("POST", "/v1/tenants/t/jobs",
                                   {"workload": "w"})
        poll(service, job["job_id"])
        status, body, _ = service.handle("GET", "/v1/events")
        assert status == 200
        assert validate_events(body["events"]) == []
        types = [event["type"] for event in body["events"]]
        assert types[0] == "server-start"
        assert "server-job-queued" in types
        assert "server-job-finished" in types
        status, scoped, _ = service.handle(
            "GET", f"/v1/jobs/{job['job_id']}/events")
        assert status == 200
        assert scoped["events"]  # queued/started/finished at least
        assert all(e["data"]["job_id"] == job["job_id"]
                   for e in scoped["events"])

    def test_shutdown_drains_admitted_jobs(self, mini_db, farm4):
        svc = AdvisorService(workers=1, max_queue=8)
        svc.handle("POST", "/v1/tenants", {"tenant": "t"})
        svc.handle("PUT", "/v1/tenants/t/database",
                   database_to_dict(mini_db))
        svc.handle("PUT", "/v1/tenants/t/disks", farm_to_dict(farm4))
        svc.handle("PUT", "/v1/tenants/t/workloads/w",
                   {"statements": [JOIN_SQL]})
        jobs = []
        for k in (1, 2, 3):
            status, job, _ = svc.handle(
                "POST", "/v1/tenants/t/jobs", {"workload": "w", "k": k})
            assert status == 202
            jobs.append(job["job_id"])
        svc.close(drain=True)  # must finish all three, then stop
        for job_id in jobs:
            status, job, _ = svc.handle("GET", f"/v1/jobs/{job_id}")
            assert job["status"] == "done", job
        events = svc.recorder.snapshot()
        assert events[-1]["type"] == "server-stop"
        assert events[-1]["data"]["jobs_completed"] == 3
        assert validate_events(events) == []
        svc.close()  # idempotent


# ---------------------------------------------------------------------------
# HTTP transport (real sockets, ephemeral port)


class TestHTTPServer:
    @pytest.fixture
    def live(self, service):
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}"
        server.shutdown()
        server.server_close()
        thread.join(timeout=10.0)

    def _call(self, base, method, path, body=None):
        data = None if body is None else json.dumps(body).encode()
        request = urllib.request.Request(base + path, data=data,
                                         method=method)
        with urllib.request.urlopen(request, timeout=30) as response:
            payload = response.read()
            if response.headers.get_content_type() == "application/json":
                return response.status, json.loads(payload)
            return response.status, payload.decode()

    def test_health_over_http(self, live):
        status, body = self._call(live, "GET", "/v1/health")
        assert status == 200 and body["status"] == "ok"

    def test_http_error_codes_survive_transport(self, live):
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            self._call(live, "GET", "/v1/tenants/ghost")
        with exc_info.value:  # close the held error-response socket
            assert exc_info.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            self._call(live, "POST", "/v1/tenants", {"wrong": "key"})
        with exc_info.value:
            assert exc_info.value.code == 400

    def test_invalid_json_body_is_400(self, live):
        request = urllib.request.Request(
            live + "/v1/tenants", data=b"{not json", method="POST")
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(request, timeout=30).close()
        with exc_info.value:
            assert exc_info.value.code == 400

    def test_full_cycle_over_http(self, live):
        status, job = self._call(live, "POST", "/v1/tenants/t/jobs",
                                 {"workload": "w", "method": "greedy"})
        assert status == 202
        deadline = time.monotonic() + 60.0
        while job["status"] not in ("done", "failed"):
            assert time.monotonic() < deadline
            time.sleep(0.02)
            _, job = self._call(live, "GET",
                                f"/v1/jobs/{job['job_id']}")
        assert job["status"] == "done"
        status, result = self._call(
            live, "GET", f"/v1/jobs/{job['job_id']}/result")
        assert status == 200
        assert result["recommendation"]["layout"]
        status, text = self._call(live, "GET", "/metrics")
        assert status == 200 and "server_requests" in text

    def test_concurrent_http_clients(self, live):
        """Eight clients hammering the same submission: every request
        succeeds and the service computes the search at most twice
        (the cache single-flights the thundering herd)."""
        statuses = []
        lock = threading.Lock()

        def submit_with_backoff():
            deadline = time.monotonic() + 60.0
            while True:
                try:
                    return self._call(live, "POST",
                                      "/v1/tenants/t/jobs",
                                      {"workload": "w"})
                except urllib.error.HTTPError as exc:
                    # Honor the service's back-pressure: 429 carries a
                    # Retry-After hint sized from the queue.
                    with exc:
                        assert exc.code == 429
                        assert exc.headers["Retry-After"]
                    assert time.monotonic() < deadline
                    time.sleep(0.05)

        def client():
            status, job = submit_with_backoff()
            deadline = time.monotonic() + 60.0
            while job["status"] not in ("done", "failed"):
                assert time.monotonic() < deadline
                time.sleep(0.02)
                _, job = self._call(live, "GET",
                                    f"/v1/jobs/{job['job_id']}")
            with lock:
                statuses.append((status, job["status"]))

        threads = [threading.Thread(target=client) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=90.0)
        assert len(statuses) == 8
        assert all(final == "done" for _, final in statuses)
        assert all(code in (200, 202) for code, _ in statuses)
