"""Tests for the flight recorder: events, determinism, CLI round-trip."""

from __future__ import annotations

import json
import time
import warnings

import pytest

from repro.cli import main
from repro.core.costmodel import WorkloadCostEvaluator
from repro.core.greedy import TsGreedySearch
from repro.errors import DegradedResult, EventLogFormatError
from repro.obs import (
    EVENT_TYPES,
    EventRecorder,
    NULL_RECORDER,
    canonical_lines,
    read_events,
    render_timeline,
    validate_events,
)
from repro.parallel import PortfolioSearch, default_portfolio
from repro.resilience import FaultPlan
from repro.workload.access import analyze_workload
from repro.workload.access_graph import build_access_graph


@pytest.fixture
def case(mini_db, join_workload, farm8):
    analyzed = analyze_workload(join_workload, mini_db)
    sizes = mini_db.object_sizes()
    evaluator = WorkloadCostEvaluator(analyzed, farm8, sorted(sizes))
    graph = build_access_graph(analyzed, mini_db)
    return evaluator, graph, sizes, farm8


class TestRecorderApi:
    def test_emit_assigns_total_order(self):
        recorder = EventRecorder()
        first = recorder.emit("run-start", command="test")
        second = recorder.emit("note", message="hi")
        assert first["seq"] == 0 and second["seq"] == 1
        assert second["ts_s"] >= first["ts_s"] >= 0.0
        assert first["run_id"] == second["run_id"] == recorder.run_id
        assert validate_events(recorder.events) == []

    def test_undeclared_type_rejected_at_emit(self):
        recorder = EventRecorder()
        with pytest.raises(ValueError, match="undeclared event type"):
            recorder.emit("made-up-type", x=1)
        assert recorder.events == []

    def test_every_declared_type_has_a_description(self):
        for type_, description in EVENT_TYPES.items():
            assert type_ and description

    def test_snapshot_is_a_deep_copy(self):
        recorder = EventRecorder()
        recorder.emit("note", message="original")
        snap = recorder.snapshot()
        snap[0]["data"]["message"] = "mutated"
        assert recorder.events[0]["data"]["message"] == "original"

    def test_ingest_resequences_and_restamps_run_id(self):
        worker = EventRecorder(source="trajectory-3")
        worker.emit("kl-pass", pass_index=1, cut_weight=10.0)
        worker.emit("greedy-iteration", iteration=1, candidates=4,
                    best_cost=1.0, accepted=True, changed=["big"])
        parent = EventRecorder()
        parent.emit("run-start", command="test")
        relayed = parent.ingest(worker.snapshot())
        assert [e["seq"] for e in relayed] == [1, 2]
        assert all(e["run_id"] == parent.run_id for e in relayed)
        assert all(e["source"] == "trajectory-3" for e in relayed)
        assert validate_events(parent.events) == []

    def test_ingest_rejects_undeclared_types(self):
        parent = EventRecorder()
        with pytest.raises(ValueError, match="undeclared event type"):
            parent.ingest([{"type": "bogus", "data": {}}])

    def test_streaming_sink_flushes_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        recorder = EventRecorder(path=path)
        recorder.emit("run-start", command="test")
        # Before close: the event is already on disk (crash safety).
        assert len(read_events(path)) == 1
        recorder.emit("run-end", status="ok")
        recorder.close()
        events = read_events(path)
        assert [e["type"] for e in events] == ["run-start", "run-end"]
        assert validate_events(events) == []

    def test_null_recorder_records_nothing(self):
        NULL_RECORDER.emit("note", message="dropped")
        assert NULL_RECORDER.events == []
        assert NULL_RECORDER.snapshot() == []

    def test_read_events_names_file_and_line_on_bad_json(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"seq": 0, "type": "note"}\n{oops\n')
        with pytest.raises(EventLogFormatError, match="line 2"):
            read_events(path)

    def test_validate_catches_broken_sequence(self):
        recorder = EventRecorder()
        recorder.emit("note", message="a")
        events = recorder.snapshot()
        events[0]["seq"] = 7
        assert any("total order" in p for p in validate_events(events))

    def test_validate_catches_mixed_run_ids(self):
        a, b = EventRecorder(), EventRecorder()
        a.emit("note", message="a")
        b.emit("note", message="b")
        mixed = a.snapshot() + b.snapshot()
        mixed[1]["seq"] = 1
        assert any("multiple run_ids" in p
                   for p in validate_events(mixed))


class TestDeterminism:
    def test_two_seeded_runs_are_canonically_identical(self, case):
        evaluator, graph, sizes, farm = case

        def run():
            recorder = EventRecorder()
            TsGreedySearch(farm, evaluator, sizes, partition_seed=7,
                           recorder=recorder).search(graph)
            return canonical_lines(recorder.events)

        assert run() == run()

    def test_serial_and_pooled_portfolio_share_one_timeline(self, case):
        evaluator, graph, sizes, farm = case
        specs = default_portfolio(3)

        def run(jobs):
            recorder = EventRecorder()
            PortfolioSearch(farm, evaluator, sizes, specs=specs,
                            jobs=jobs,
                            recorder=recorder).search(graph)
            return canonical_lines(recorder.events)

        assert run(1) == run(2)


class TestResilienceTimeline:
    def test_killed_worker_run_yields_wellformed_timeline(
            self, case, tmp_path):
        evaluator, graph, sizes, farm = case
        specs = default_portfolio(4)
        path = tmp_path / "events.jsonl"
        recorder = EventRecorder(path=path)
        faults = FaultPlan.from_spec("kill_worker=1")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResult)
            result = PortfolioSearch(
                farm, evaluator, sizes, specs=specs, jobs=2,
                faults=faults, recorder=recorder).search(graph)
        recorder.close()
        assert result.degraded or result.cost > 0
        events = read_events(path)
        assert validate_events(events) == []
        types = {e["type"] for e in events}
        # The lost trajectory leaves resilience events in the timeline;
        # the surviving trajectories still open and close normally.
        assert "trajectory-start" in types
        assert "trajectory-end" in types
        assert types & {"worker-crash", "serial-fallback",
                        "trajectory-failed", "retry"}
        rendered = render_timeline(events)
        assert "flight recorder" in rendered


class TestNoopOverhead:
    def test_disabled_observability_emits_zero_events(self, case):
        evaluator, graph, sizes, farm = case
        TsGreedySearch(farm, evaluator, sizes).search(graph)
        assert NULL_RECORDER.events == []

    def test_noop_recorder_cost_is_under_two_percent(self, case):
        # Bound the cost of the no-op instrumentation: the events a
        # real recorder would capture, replayed against the no-op
        # recorder, must cost under 2% of the search's own wall time.
        evaluator, graph, sizes, farm = case
        probe = EventRecorder()
        TsGreedySearch(farm, evaluator, sizes,
                       recorder=probe).search(graph)
        emitted = [(e["type"], e["data"]) for e in probe.events]
        assert emitted, "instrumented search emitted no events"

        wall = min(_timed(lambda: TsGreedySearch(
            farm, evaluator, sizes).search(graph)) for _ in range(3))
        rounds = 50
        start = time.perf_counter()
        for _ in range(rounds):
            for type_, data in emitted:
                NULL_RECORDER.emit(type_, **data)
        per_run = (time.perf_counter() - start) / rounds
        assert per_run <= 0.02 * wall, \
            f"no-op emit cost {per_run:.6f}s vs search {wall:.4f}s"


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


class TestCliRoundTrip:
    def _inputs(self, tmp_path, mini_db, farm8, join_workload):
        from repro.catalog.io import save_database, save_farm
        save_database(mini_db, tmp_path / "db.json")
        save_farm(farm8, tmp_path / "disks.json")
        (tmp_path / "w.sql").write_text(
            "\n".join(f"-- name: {s.name}\n{s.sql};"
                      for s in join_workload))
        return ["--database", str(tmp_path / "db.json"),
                "--disks", str(tmp_path / "disks.json"),
                "--workload", str(tmp_path / "w.sql")]

    def test_degraded_portfolio_round_trips_through_inspect(
            self, tmp_path, mini_db, farm8, join_workload, capsys):
        events = tmp_path / "events.jsonl"
        prom = tmp_path / "metrics.prom"
        rc = main(["recommend",
                   *self._inputs(tmp_path, mini_db, farm8,
                                 join_workload),
                   "--method", "portfolio", "--portfolio", "4",
                   "--jobs", "4", "--faults", "kill_worker=1",
                   "--events", str(events), "--prom", str(prom)])
        assert rc == 0
        capsys.readouterr()
        loaded = read_events(events)
        assert validate_events(loaded) == []
        assert loaded[0]["type"] == "run-start"
        assert loaded[-1]["type"] == "run-end"
        rc = main(["inspect", str(events)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "flight recorder" in out
        assert "trajectory" in out
        assert "hotspots" in out
        # Prometheus dump exists and is non-trivial.
        assert "repro_" in prom.read_text()

    def test_inspect_json_summarizes_the_run(
            self, tmp_path, mini_db, farm8, join_workload, capsys):
        events = tmp_path / "events.jsonl"
        rc = main(["recommend",
                   *self._inputs(tmp_path, mini_db, farm8,
                                 join_workload),
                   "--events", str(events)])
        assert rc == 0
        capsys.readouterr()
        rc = main(["inspect", str(events), "--format", "json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events"] > 0
        assert "run-start" in payload["types"]
        assert payload["run_id"]

    def test_inspect_rejects_malformed_log(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n")
        rc = main(["inspect", str(bad)])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_inspect_rejects_broken_total_order(self, tmp_path, capsys):
        recorder = EventRecorder()
        recorder.emit("run-start", command="test")
        recorder.emit("run-end", status="ok")
        events = recorder.snapshot()
        events[1]["seq"] = 9
        path = tmp_path / "events.jsonl"
        path.write_text("\n".join(json.dumps(e) for e in events) + "\n")
        rc = main(["inspect", str(path)])
        assert rc == 2
        assert "total order" in capsys.readouterr().err

    def test_profile_trace_is_a_deprecated_alias(
            self, tmp_path, mini_db, farm8, capsys):
        from repro.catalog.io import save_database, save_farm
        save_database(mini_db, tmp_path / "db.json")
        save_farm(farm8, tmp_path / "disks.json")
        (tmp_path / "trace.csv").write_text(
            "start,end,sql\n"
            "0.0,10.0,SELECT COUNT(*) FROM big b\n")
        argv = ["recommend",
                "--database", str(tmp_path / "db.json"),
                "--disks", str(tmp_path / "disks.json"),
                "--profile-trace", str(tmp_path / "trace.csv")]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            rc = main(argv)
        assert rc == 0
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
        assert "deprecated" in capsys.readouterr().err

    def test_workload_trace_is_the_canonical_spelling(
            self, tmp_path, mini_db, farm8, capsys):
        from repro.catalog.io import save_database, save_farm
        save_database(mini_db, tmp_path / "db.json")
        save_farm(farm8, tmp_path / "disks.json")
        (tmp_path / "trace.csv").write_text(
            "start,end,sql\n"
            "0.0,10.0,SELECT COUNT(*) FROM big b\n")
        events = tmp_path / "events.jsonl"
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            rc = main(["recommend",
                       "--database", str(tmp_path / "db.json"),
                       "--disks", str(tmp_path / "disks.json"),
                       "--workload-trace", str(tmp_path / "trace.csv"),
                       "--events", str(events)])
        assert rc == 0
        assert not any(issubclass(w.category, DeprecationWarning)
                       for w in caught)
        ingests = [e for e in read_events(events)
                   if e["type"] == "workload-ingest"]
        assert ingests and ingests[0]["data"]["source"] == "trace"

    def test_saved_recommendation_carries_run_id(
            self, tmp_path, mini_db, farm8, join_workload, capsys):
        events = tmp_path / "events.jsonl"
        rec_path = tmp_path / "rec.json"
        rc = main(["recommend",
                   *self._inputs(tmp_path, mini_db, farm8,
                                 join_workload),
                   "--events", str(events),
                   "--save-recommendation", str(rec_path)])
        assert rc == 0
        saved = json.loads(rec_path.read_text())
        assert saved["run_id"] == read_events(events)[0]["run_id"]

    def test_drift_command_emits_drift_score_event(
            self, tmp_path, mini_db, capsys):
        from repro.catalog.io import save_database
        save_database(mini_db, tmp_path / "db.json")
        (tmp_path / "before.sql").write_text(
            "SELECT COUNT(*) FROM big b;")
        (tmp_path / "after.sql").write_text(
            "SELECT SUM(m.w) FROM mid m;")
        events = tmp_path / "events.jsonl"
        rc = main(["drift", "--database", str(tmp_path / "db.json"),
                   "--before", str(tmp_path / "before.sql"),
                   "--after", str(tmp_path / "after.sql"),
                   "--events", str(events)])
        assert rc in (0, 1)
        loaded = read_events(events)
        assert validate_events(loaded) == []
        assert any(e["type"] == "drift-score" for e in loaded)


class TestTelemetryOverheadBudget:
    def test_full_telemetry_within_five_percent_at_ci_scale(self):
        # The acceptance budget asserted by bench_search_speed's
        # ci/full invariants, measured here on the ci-sized case so a
        # plain `pytest` run exercises it too.
        import sys
        from pathlib import Path
        sys.path.insert(0, str(Path(__file__).parent.parent
                               / "benchmarks"))
        from bench_search_speed import _case, measure_telemetry_overhead
        evaluator, graph, sizes, farm = _case("ci")
        # Timer noise on a loaded runner can push a single measurement
        # over; a real regression pushes every attempt over.  Fail
        # only when three independent measurements all bust the budget.
        attempts = []
        for _ in range(3):
            overhead = measure_telemetry_overhead(
                farm, evaluator, sizes, graph, repeats=3)
            attempts.append(overhead)
            if overhead["overhead_pct"] <= 5.0:
                break
        assert attempts[-1]["overhead_pct"] <= 5.0, attempts
