"""Tests for the concurrency-aware workload extension."""

import pytest

from repro.core.costmodel import WorkloadCostEvaluator
from repro.core.greedy import TsGreedySearch
from repro.errors import WorkloadError
from repro.workload.access import analyze_workload
from repro.workload.access_graph import build_access_graph
from repro.workload.concurrency import (
    ConcurrencySpec,
    build_access_graph_concurrent,
    concurrent_cost_workload,
)
from repro.workload.workload import Workload


@pytest.fixture
def scan_workload():
    """Two single-table scans: zero intra-statement co-access."""
    workload = Workload()
    workload.add("SELECT COUNT(*) FROM big b", name="scan_big")
    workload.add("SELECT COUNT(*) FROM mid m", name="scan_mid")
    return workload


class TestConcurrencySpec:
    def test_from_groups(self):
        spec = ConcurrencySpec.from_groups([[0, 1], [1, 2]])
        assert spec.concurrent_pairs() == {(0, 1), (1, 2)}

    def test_uniform_windows(self):
        spec = ConcurrencySpec.uniform(5, multiprogramming_level=2)
        assert spec.concurrent_pairs() == {(0, 1), (2, 3)}
        assert spec.overlap_factor == pytest.approx(0.5)

    def test_uniform_mpl_one_is_sequential(self):
        spec = ConcurrencySpec.uniform(5, multiprogramming_level=1)
        assert spec.concurrent_pairs() == set()

    def test_invalid_overlap_factor(self):
        with pytest.raises(WorkloadError):
            ConcurrencySpec.from_groups([[0, 1]], overlap_factor=0.0)
        with pytest.raises(WorkloadError):
            ConcurrencySpec.from_groups([[0, 1]], overlap_factor=1.5)

    def test_invalid_mpl(self):
        with pytest.raises(WorkloadError):
            ConcurrencySpec.uniform(5, multiprogramming_level=0)

    def test_negative_index_rejected(self):
        with pytest.raises(WorkloadError):
            ConcurrencySpec.from_groups([[-1, 0]])


class TestConcurrentGraph:
    def test_sequential_scans_have_no_edge(self, mini_db,
                                           scan_workload):
        analyzed = analyze_workload(scan_workload, mini_db)
        graph = build_access_graph(analyzed, mini_db)
        assert graph.edge_weight("big", "mid") == 0.0

    def test_concurrent_scans_gain_an_edge(self, mini_db,
                                           scan_workload):
        analyzed = analyze_workload(scan_workload, mini_db)
        spec = ConcurrencySpec.from_groups([[0, 1]],
                                           overlap_factor=1.0)
        graph = build_access_graph_concurrent(analyzed, spec, mini_db)
        big = mini_db.table("big").size_blocks
        mid = mini_db.table("mid").size_blocks
        assert graph.edge_weight("big", "mid") == \
            pytest.approx(big + mid)

    def test_overlap_factor_scales_edges(self, mini_db, scan_workload):
        analyzed = analyze_workload(scan_workload, mini_db)
        full = build_access_graph_concurrent(
            analyzed, ConcurrencySpec.from_groups([[0, 1]],
                                                  overlap_factor=1.0),
            mini_db)
        half = build_access_graph_concurrent(
            analyzed, ConcurrencySpec.from_groups([[0, 1]],
                                                  overlap_factor=0.5),
            mini_db)
        assert half.edge_weight("big", "mid") == \
            pytest.approx(0.5 * full.edge_weight("big", "mid"))

    def test_node_weights_unchanged(self, mini_db, scan_workload):
        analyzed = analyze_workload(scan_workload, mini_db)
        base = build_access_graph(analyzed, mini_db)
        concurrent = build_access_graph_concurrent(
            analyzed, ConcurrencySpec.from_groups([[0, 1]]), mini_db)
        for name in base.nodes:
            assert concurrent.node_weight(name) == \
                base.node_weight(name)

    def test_intra_statement_edges_preserved(self, mini_db,
                                             join_workload):
        analyzed = analyze_workload(join_workload, mini_db)
        base = build_access_graph(analyzed, mini_db)
        concurrent = build_access_graph_concurrent(
            analyzed, ConcurrencySpec.from_groups([]), mini_db)
        assert concurrent.edge_weight("big", "mid") == \
            pytest.approx(base.edge_weight("big", "mid"))

    def test_out_of_range_group_rejected(self, mini_db, scan_workload):
        analyzed = analyze_workload(scan_workload, mini_db)
        spec = ConcurrencySpec.from_groups([[0, 9]])
        with pytest.raises(WorkloadError, match="references statement"):
            build_access_graph_concurrent(analyzed, spec, mini_db)

    def test_statement_weights_discount_via_min(self, mini_db):
        workload = Workload()
        workload.add("SELECT COUNT(*) FROM big b", weight=4.0)
        workload.add("SELECT COUNT(*) FROM mid m", weight=2.0)
        analyzed = analyze_workload(workload, mini_db)
        spec = ConcurrencySpec.from_groups([[0, 1]], overlap_factor=1.0)
        graph = build_access_graph_concurrent(analyzed, spec, mini_db)
        big = mini_db.table("big").size_blocks
        mid = mini_db.table("mid").size_blocks
        assert graph.edge_weight("big", "mid") == \
            pytest.approx(2.0 * (big + mid))


class TestConcurrentCostWorkload:
    def test_expansion_adds_paired_corrections(self, mini_db,
                                               scan_workload):
        analyzed = analyze_workload(scan_workload, mini_db)
        spec = ConcurrencySpec.from_groups([[0, 1]], overlap_factor=0.5)
        expanded = concurrent_cost_workload(analyzed, spec)
        weights = [s.weight for s in expanded]
        assert weights[:2] == [1.0, 1.0]
        assert weights[2:] == [0.5, -0.5]

    def test_co_located_concurrent_scans_cost_more(self, mini_db,
                                                   scan_workload,
                                                   farm8):
        """Contention: overlapping scans of co-located tables pay extra
        seeks relative to the sequential model."""
        analyzed = analyze_workload(scan_workload, mini_db)
        sizes = mini_db.object_sizes()
        from repro.core.fullstripe import full_striping
        layout = full_striping(sizes, farm8)
        spec = ConcurrencySpec.from_groups([[0, 1]], overlap_factor=1.0)
        base = WorkloadCostEvaluator(analyzed, farm8, sorted(sizes))
        conc = WorkloadCostEvaluator(
            concurrent_cost_workload(analyzed, spec), farm8,
            sorted(sizes))
        assert conc.cost(layout) > base.cost(layout)

    def test_separated_concurrent_scans_cost_less(self, mini_db,
                                                  scan_workload, farm8):
        """Parallelism credit: overlapping scans on disjoint disks
        finish together, so expected time drops below sequential."""
        from repro.core.layout import Layout, stripe_fractions
        analyzed = analyze_workload(scan_workload, mini_db)
        sizes = mini_db.object_sizes()
        fractions = {name: stripe_fractions(range(8), farm8)
                     for name in sizes}
        fractions["big"] = stripe_fractions(range(5), farm8)
        fractions["mid"] = stripe_fractions(range(5, 8), farm8)
        layout = Layout(farm8, sizes, fractions)
        spec = ConcurrencySpec.from_groups([[0, 1]], overlap_factor=1.0)
        base = WorkloadCostEvaluator(analyzed, farm8, sorted(sizes))
        conc = WorkloadCostEvaluator(
            concurrent_cost_workload(analyzed, spec), farm8,
            sorted(sizes))
        assert conc.cost(layout) < base.cost(layout)


class TestConcurrencyChangesTheLayout:
    def test_search_separates_concurrently_scanned_tables(self, mini_db,
                                                          scan_workload,
                                                          farm8):
        """The headline behaviour: objects co-accessed only *across*
        concurrent statements get separated once the spec says so."""
        analyzed = analyze_workload(scan_workload, mini_db)
        sizes = mini_db.object_sizes()

        sequential_eval = WorkloadCostEvaluator(analyzed, farm8,
                                                sorted(sizes))
        sequential_graph = build_access_graph(analyzed, mini_db)
        result_seq = TsGreedySearch(farm8, sequential_eval,
                                    sizes).search(sequential_graph)
        # Sequential: both tables stripe over everything.
        assert len(result_seq.layout.disks_of("big")) == 8
        assert len(result_seq.layout.disks_of("mid")) == 8

        spec = ConcurrencySpec.from_groups([[0, 1]], overlap_factor=1.0)
        concurrent_eval = WorkloadCostEvaluator(
            concurrent_cost_workload(analyzed, spec), farm8,
            sorted(sizes))
        concurrent_graph = build_access_graph_concurrent(analyzed, spec,
                                                         mini_db)
        result_con = TsGreedySearch(farm8, concurrent_eval,
                                    sizes).search(concurrent_graph)
        big = set(result_con.layout.disks_of("big"))
        mid = set(result_con.layout.disks_of("mid"))
        assert not big & mid
