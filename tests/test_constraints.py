"""Tests for manageability/availability constraints (Section 2.3)."""

import pytest

from repro.core.constraints import (
    AvailabilityRequirement,
    CoLocated,
    ConstraintSet,
    MaxDataMovement,
)
from repro.core.layout import Layout, stripe_fractions
from repro.errors import ConstraintError
from repro.storage.disk import Availability, DiskFarm, DiskSpec


def _mixed_farm():
    def disk(name, avail):
        return DiskSpec(name=name, capacity_blocks=10_000,
                        avg_seek_s=0.008, read_mb_s=20.0,
                        write_mb_s=18.0, availability=avail)
    return DiskFarm([
        disk("M1", Availability.MIRRORING),
        disk("M2", Availability.MIRRORING),
        disk("P1", Availability.PARITY),
        disk("N1", Availability.NONE),
    ])


def _layout(farm, **disk_sets):
    sizes = {name: 100 for name in disk_sets}
    return Layout(farm, sizes, {
        name: stripe_fractions(disks, farm)
        for name, disks in disk_sets.items()})


class TestCoLocated:
    def test_same_disk_set_passes(self, farm4):
        layout = _layout(farm4, a=[0, 1], b=[0, 1])
        CoLocated("a", "b").check(layout)

    def test_same_disks_different_fractions_still_co_located(self):
        # Co-location is about the disk *set* (the filegroup), not the
        # exact fractions.
        farm = _mixed_farm()
        layout = Layout(farm, {"a": 100, "b": 100}, {
            "a": (0.5, 0.5, 0.0, 0.0),
            "b": (0.9, 0.1, 0.0, 0.0)})
        CoLocated("a", "b").check(layout)

    def test_different_disk_sets_fail(self, farm4):
        layout = _layout(farm4, a=[0, 1], b=[1, 2])
        with pytest.raises(ConstraintError, match="Co-Located"):
            CoLocated("a", "b").check(layout)


class TestAvailability:
    def test_satisfied(self):
        farm = _mixed_farm()
        layout = _layout(farm, a=[0, 1])
        AvailabilityRequirement("a", Availability.MIRRORING).check(layout)

    def test_violated(self):
        farm = _mixed_farm()
        layout = _layout(farm, a=[0, 3])
        with pytest.raises(ConstraintError, match="Avail-Requirement"):
            AvailabilityRequirement("a",
                                    Availability.MIRRORING).check(layout)

    def test_allowed_disks(self):
        farm = _mixed_farm()
        req = AvailabilityRequirement("a", Availability.MIRRORING)
        assert req.allowed_disks(farm) == [0, 1]
        parity = AvailabilityRequirement("a", Availability.PARITY)
        assert parity.allowed_disks(farm) == [2]


class TestMaxDataMovement:
    def test_within_bound(self, farm4):
        baseline = _layout(farm4, a=[0])
        target = _layout(farm4, a=[0, 1])
        MaxDataMovement(baseline, max_blocks=60).check(target)

    def test_exceeds_bound(self, farm4):
        baseline = _layout(farm4, a=[0])
        target = _layout(farm4, a=[1, 2])
        with pytest.raises(ConstraintError, match="data movement"):
            MaxDataMovement(baseline, max_blocks=60).check(target)


class TestConstraintSet:
    def test_check_all(self, farm4):
        constraints = ConstraintSet(co_located=[CoLocated("a", "b")])
        good = _layout(farm4, a=[0], b=[0])
        bad = _layout(farm4, a=[0], b=[1])
        constraints.check(good)
        assert constraints.is_satisfied(good)
        assert not constraints.is_satisfied(bad)

    def test_groups_union_find(self):
        constraints = ConstraintSet(co_located=[
            CoLocated("a", "b"), CoLocated("b", "c"),
            CoLocated("x", "y")])
        groups = {frozenset(g) for g in constraints.groups()}
        assert frozenset({"a", "b", "c"}) in groups
        assert frozenset({"x", "y"}) in groups
        assert constraints.group_of("b") == frozenset({"a", "b", "c"})
        assert constraints.group_of("lonely") == frozenset({"lonely"})

    def test_allowed_disks_intersects_group_requirements(self):
        farm = _mixed_farm()
        constraints = ConstraintSet(
            co_located=[CoLocated("a", "b")],
            availability=[
                AvailabilityRequirement("a", Availability.MIRRORING)])
        # b inherits a's restriction through the group.
        assert constraints.allowed_disks("b", farm) == [0, 1]

    def test_unconstrained_object_gets_all_disks(self, farm4):
        constraints = ConstraintSet()
        assert constraints.allowed_disks("a", farm4) == [0, 1, 2, 3]

    def test_conflicting_availability_rejected(self):
        with pytest.raises(ConstraintError, match="conflicting"):
            ConstraintSet(availability=[
                AvailabilityRequirement("a", Availability.MIRRORING),
                AvailabilityRequirement("a", Availability.PARITY)])

    def test_unsatisfiable_group_requirements(self):
        farm = _mixed_farm()
        constraints = ConstraintSet(
            co_located=[CoLocated("a", "b")],
            availability=[
                AvailabilityRequirement("a", Availability.MIRRORING),
                AvailabilityRequirement("b", Availability.PARITY)])
        with pytest.raises(ConstraintError, match="no disk satisfies"):
            constraints.allowed_disks("a", farm)
