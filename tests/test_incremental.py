"""Tests for the incremental re-layout engine.

Covers the three tentpole pieces — drift detection
(:mod:`repro.workload.drift`), budget-bounded search
(:mod:`repro.core.incremental`) and migration planning
(:mod:`repro.storage.migration`) — plus the end-to-end acceptance
scenario over the ``examples/tpch`` inputs: a drifted workload, a
Δ = 0.2 movement budget that must be honored, and Δ = 1.0 matching the
unconstrained TS-GREEDY result.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.audit_rules import check_migration
from repro.catalog.io import load_database, load_farm
from repro.core.advisor import LayoutAdvisor
from repro.core.fullstripe import full_striping
from repro.core.incremental import IncrementalSearch
from repro.core.layout import Layout
from repro.core.tolerance import EPS_COST, EPS_FRACTION
from repro.core import tolerance
from repro.errors import LayoutError
from repro.obs import MetricsRegistry, Tracer
from repro.storage import migration as migration_module
from repro.storage.disk import DiskSpec, DiskFarm, uniform_farm
from repro.storage.migration import (
    MigrationPlan,
    MigrationStep,
    plan_migration,
)
from repro.workload.access_graph import AccessGraph
from repro.workload.drift import (
    RELAYOUT_THRESHOLD,
    DriftReport,
    detect_drift,
)
from repro.workload.workload import Statement, Workload

EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "tpch"


def graph_of(nodes: dict[str, float],
             edges: dict[tuple[str, str], float] = ()) -> AccessGraph:
    graph = AccessGraph(nodes)
    for name, weight in nodes.items():
        graph.add_node_weight(name, weight)
    for (u, v), weight in dict(edges or {}).items():
        graph.add_edge_weight(u, v, weight)
    return graph


class TestDriftDetection:
    def test_identical_windows_score_zero(self):
        g = graph_of({"a": 100.0, "b": 50.0}, {("a", "b"): 30.0})
        report = detect_drift(g, g)
        assert report.score == 0.0
        assert not report.relayout_recommended
        assert report.objects == [] and report.edges == []

    def test_disjoint_windows_score_one(self):
        before = graph_of({"a": 100.0})
        after = graph_of({"b": 100.0})
        report = detect_drift(before, after)
        assert report.node_drift == pytest.approx(1.0)
        assert report.score >= RELAYOUT_THRESHOLD
        assert report.relayout_recommended

    def test_small_noise_stays_under_threshold(self):
        before = graph_of({"a": 100.0, "b": 50.0}, {("a", "b"): 30.0})
        after = graph_of({"a": 102.0, "b": 49.0}, {("a", "b"): 30.5})
        report = detect_drift(before, after)
        assert report.score < RELAYOUT_THRESHOLD
        assert not report.relayout_recommended

    def test_score_blends_node_and_edge_terms(self):
        before = graph_of({"a": 100.0, "b": 100.0}, {("a", "b"): 10.0})
        after = graph_of({"a": 100.0, "b": 100.0}, {("a", "b"): 90.0})
        report = detect_drift(before, after)
        assert report.node_drift == pytest.approx(0.0)
        assert report.edge_drift == pytest.approx(0.8)
        assert report.score == pytest.approx(0.4)

    def test_deltas_sorted_by_magnitude(self):
        before = graph_of({"a": 100.0, "b": 100.0, "c": 100.0})
        after = graph_of({"a": 500.0, "b": 90.0, "c": 100.0})
        report = detect_drift(before, after)
        assert [o.name for o in report.objects] == ["a", "b"]
        assert report.objects[0].delta == pytest.approx(400.0)

    def test_round_trip(self):
        before = graph_of({"a": 100.0, "b": 50.0}, {("a", "b"): 30.0})
        after = graph_of({"a": 10.0, "c": 80.0}, {("a", "c"): 20.0})
        report = detect_drift(before, after)
        rebuilt = DriftReport.from_dict(
            json.loads(json.dumps(report.to_dict())))
        assert rebuilt.to_dict() == report.to_dict()
        assert rebuilt.relayout_recommended == \
            report.relayout_recommended

    def test_describe_names_the_verdict(self):
        before = graph_of({"a": 100.0})
        after = graph_of({"b": 100.0})
        text = detect_drift(before, after).describe()
        assert "re-layout recommended" in text
        assert "drift score" in text

    def test_observability(self):
        tracer, metrics = Tracer(), MetricsRegistry()
        before = graph_of({"a": 100.0})
        after = graph_of({"b": 100.0})
        report = detect_drift(before, after, tracer=tracer,
                              metrics=metrics)
        assert metrics.value("drift.score") == pytest.approx(
            report.score)
        assert metrics.value("drift.relayout_recommended") == 1
        assert tracer.find("detect-drift") is not None


def two_disk_farm(capacity: int = 1000) -> DiskFarm:
    def disk(name):
        return DiskSpec(name=name, capacity_blocks=capacity,
                        avg_seek_s=0.009, read_mb_s=20.0,
                        write_mb_s=20.0)
    return DiskFarm([disk("A"), disk("B")])


class TestMigrationPlanner:
    def test_tolerances_mirror_core(self):
        # storage cannot import core at module load (layering), so the
        # capacity tolerance is mirrored; keep them in sync.
        assert migration_module.EPS_CAPACITY == tolerance.EPS_CAPACITY

    def test_identity_is_empty(self):
        farm = two_disk_farm()
        layout = Layout(farm, {"t": 100}, {"t": [1.0, 0.0]})
        plan = plan_migration(layout, layout)
        assert len(plan) == 0
        assert plan.moved_blocks == 0.0
        assert plan.est_seconds == 0.0
        assert plan.is_capacity_safe(layout)

    def test_simple_move_matches_layout_distance(self):
        farm = two_disk_farm()
        sizes = {"t": 100, "u": 200}
        current = Layout(farm, sizes, {"t": [1.0, 0.0],
                                       "u": [0.0, 1.0]})
        target = Layout(farm, sizes, {"t": [0.0, 1.0],
                                      "u": [0.0, 1.0]})
        plan = plan_migration(current, target)
        assert plan.moved_blocks == pytest.approx(
            current.data_movement_blocks(target))
        assert plan.moved_fraction == pytest.approx(100 / 300)
        assert plan.staged_blocks == 0.0
        assert plan.is_capacity_safe(current)
        assert all(s.est_seconds > 0 for s in plan.steps)

    def test_fig7_step_seconds(self):
        farm = two_disk_farm()
        plan = plan_migration(
            Layout(farm, {"t": 100}, {"t": [1.0, 0.0]}),
            Layout(farm, {"t": 100}, {"t": [0.0, 1.0]}))
        (step,) = plan.steps
        expected = (farm[0].avg_seek_s + farm[1].avg_seek_s
                    + 100 / farm[0].read_blocks_s
                    + 100 / farm[1].write_blocks_s)
        assert step.est_seconds == pytest.approx(expected)

    def test_swap_on_full_disks_stages(self):
        # Both disks 90% full; swapping t and u cannot proceed directly
        # in full steps — the planner must break the cycle.
        farm = two_disk_farm(capacity=1000)
        sizes = {"t": 900, "u": 900}
        current = Layout(farm, sizes, {"t": [1.0, 0.0],
                                       "u": [0.0, 1.0]})
        target = Layout(farm, sizes, {"t": [0.0, 1.0],
                                      "u": [1.0, 0.0]})
        plan = plan_migration(current, target)
        assert plan.is_capacity_safe(current)
        assert plan.moved_blocks == pytest.approx(1800.0)
        # partial moves shuttle 100 blocks at a time; far more than the
        # two steps a roomy farm would need
        assert len(plan) > 2

    def test_cycle_with_spare_disk_stages_through_it(self):
        def disk(name, capacity):
            return DiskSpec(name=name, capacity_blocks=capacity,
                            avg_seek_s=0.009, read_mb_s=20.0,
                            write_mb_s=20.0)
        farm = DiskFarm([disk("A", 100), disk("B", 100),
                         disk("S", 100)])
        sizes = {"t": 100, "u": 100}
        current = Layout(farm, sizes, {"t": [1.0, 0.0, 0.0],
                                       "u": [0.0, 1.0, 0.0]})
        target = Layout(farm, sizes, {"t": [0.0, 1.0, 0.0],
                                      "u": [1.0, 0.0, 0.0]})
        plan = plan_migration(current, target)
        assert plan.is_capacity_safe(current)
        assert plan.staged_blocks > 0
        assert any(s.staged for s in plan.steps)
        # staged blocks transfer twice: gross step volume exceeds net
        assert sum(s.blocks for s in plan.steps) > plan.moved_blocks

    def test_totally_full_swap_is_impossible(self):
        farm = two_disk_farm(capacity=100)
        sizes = {"t": 100, "u": 100}
        current = Layout(farm, sizes, {"t": [1.0, 0.0],
                                       "u": [0.0, 1.0]})
        target = Layout(farm, sizes, {"t": [0.0, 1.0],
                                      "u": [1.0, 0.0]})
        with pytest.raises(LayoutError, match="blocked"):
            plan_migration(current, target)

    def test_different_farms_rejected(self):
        farm = two_disk_farm()
        other = uniform_farm(4, capacity_gb=2.0)
        with pytest.raises(LayoutError, match="different"):
            plan_migration(
                Layout(farm, {"t": 10}, {"t": [1.0, 0.0]}),
                Layout(other, {"t": 10},
                       {"t": [1.0, 0.0, 0.0, 0.0]}))

    def test_plan_round_trip(self):
        farm = two_disk_farm()
        plan = plan_migration(
            Layout(farm, {"t": 100}, {"t": [1.0, 0.0]}),
            Layout(farm, {"t": 100}, {"t": [0.5, 0.5]}))
        rebuilt = MigrationPlan.from_dict(
            json.loads(json.dumps(plan.to_dict())))
        assert rebuilt.to_dict() == plan.to_dict()
        assert len(rebuilt) == len(plan)

    def test_observability(self):
        tracer, metrics = Tracer(), MetricsRegistry()
        farm = two_disk_farm()
        plan_migration(
            Layout(farm, {"t": 100}, {"t": [1.0, 0.0]}),
            Layout(farm, {"t": 100}, {"t": [0.0, 1.0]}),
            tracer=tracer, metrics=metrics)
        assert metrics.value("incremental.migration_steps") == 1
        assert metrics.value("incremental.moved_blocks") == \
            pytest.approx(100.0)
        assert tracer.find("plan-migration") is not None


class TestMigrationAuditRules:
    def test_clean_plan_has_no_findings(self):
        farm = two_disk_farm()
        current = Layout(farm, {"t": 100}, {"t": [1.0, 0.0]})
        target = Layout(farm, {"t": 100}, {"t": [0.0, 1.0]})
        plan = plan_migration(current, target)
        assert list(check_migration(plan, current,
                                    movement_budget=1.0)) == []

    def test_alr032_fires_on_budget_overrun(self):
        farm = two_disk_farm()
        current = Layout(farm, {"t": 100}, {"t": [1.0, 0.0]})
        plan = MigrationPlan(
            steps=[MigrationStep("t", 0, 1, 100.0, 1.0)],
            moved_blocks=100.0, est_seconds=1.0, moved_fraction=1.0)
        findings = list(check_migration(plan, current,
                                        movement_budget=0.2))
        assert [f.rule_id for f in findings] == ["ALR032"]

    def test_alr033_fires_on_overflowing_step(self):
        farm = two_disk_farm(capacity=100)
        sizes = {"t": 90, "u": 90}
        current = Layout(farm, sizes, {"t": [1.0, 0.0],
                                       "u": [0.0, 1.0]})
        bad = MigrationPlan(
            steps=[MigrationStep("t", 0, 1, 90.0, 1.0)],
            moved_blocks=90.0, est_seconds=1.0, moved_fraction=0.5)
        findings = list(check_migration(bad, current))
        assert [f.rule_id for f in findings] == ["ALR033"]
        assert not bad.is_capacity_safe(current)


class TestIncrementalSearchValidation:
    def test_budget_outside_unit_interval_rejected(self, mini_db,
                                                   farm8):
        advisor = LayoutAdvisor(mini_db, farm8)
        workload = Workload(name="w")
        workload.add("SELECT SUM(b.v) FROM big b", name="S1")
        for bad in (-0.1, 1.5):
            with pytest.raises(LayoutError, match="movement budget"):
                advisor.recommend(workload, method="incremental",
                                  movement_budget=bad)

    def test_movement_constraint_conflicts(self, mini_db, farm8):
        from repro.core.constraints import (
            ConstraintSet,
            MaxDataMovement,
        )
        baseline = full_striping(mini_db.object_sizes(), farm8)
        constraints = ConstraintSet(
            movement=MaxDataMovement(baseline, max_blocks=10))
        with pytest.raises(LayoutError, match="movement_budget"):
            IncrementalSearch(farm8, evaluator=None,
                              object_sizes=mini_db.object_sizes(),
                              constraints=constraints)


class TestIncrementalRecommendMiniDb:
    @pytest.fixture
    def advisor(self, mini_db, farm8):
        return LayoutAdvisor(mini_db, farm8)

    @pytest.fixture
    def workload(self, join_workload):
        return join_workload

    def test_zero_budget_keeps_current_layout(self, advisor, mini_db,
                                              farm8, workload):
        current = full_striping(mini_db.object_sizes(), farm8)
        rec = advisor.recommend(workload, current_layout=current,
                                method="incremental",
                                movement_budget=0.0)
        assert rec.moved_fraction == 0.0
        assert rec.layout.data_movement_blocks(current) == 0.0
        assert len(rec.migration) == 0
        assert rec.estimated_cost <= rec.current_cost + EPS_COST

    def test_budget_is_respected_and_cost_never_worse(
            self, advisor, mini_db, farm8, workload):
        current = full_striping(mini_db.object_sizes(), farm8)
        for budget in (0.1, 0.5):
            rec = advisor.recommend(workload, current_layout=current,
                                    method="incremental",
                                    movement_budget=budget)
            assert rec.moved_fraction <= budget + EPS_FRACTION
            assert rec.estimated_cost <= rec.current_cost + EPS_COST
            assert rec.migration.is_capacity_safe(current)
            assert not [d for d in rec.diagnostics
                        if d.rule_id in ("ALR032", "ALR033")]

    def test_recommendation_carries_budget_and_plan(self, advisor,
                                                    mini_db, farm8,
                                                    workload):
        current = full_striping(mini_db.object_sizes(), farm8)
        rec = advisor.recommend(workload, current_layout=current,
                                method="incremental",
                                movement_budget=0.5)
        assert rec.movement_budget == 0.5
        assert rec.migration is not None
        assert rec.search.extras["movement_budget"] == 0.5
        assert rec.search.extras["moved_fraction"] == pytest.approx(
            rec.moved_fraction)


@pytest.fixture(scope="module")
def tpch_scenario():
    """The acceptance scenario: examples/tpch with shifted weights."""
    db = load_database(EXAMPLES / "db.json")
    farm = load_farm(EXAMPLES / "disks.json")
    workload = Workload.load(EXAMPLES / "workload.sql")
    advisor = LayoutAdvisor(db, farm)
    baseline = advisor.recommend(workload, method="ts-greedy")
    shifted = Workload(
        [Statement(s.sql, 8.0 if i % 3 == 0 else 0.25, name=s.name)
         for i, s in enumerate(workload.statements)],
        name="tpch-drifted")
    return advisor, workload, shifted, baseline.layout


class TestTpchAcceptance:
    def test_shifted_weights_register_as_drift(self, tpch_scenario):
        advisor, workload, shifted, _ = tpch_scenario
        before = advisor.access_graph(advisor.analyze(workload))
        after = advisor.access_graph(advisor.analyze(shifted))
        report = detect_drift(before, after)
        assert report.relayout_recommended
        assert report.score > RELAYOUT_THRESHOLD

    def test_budget_02_honored(self, tpch_scenario):
        advisor, _, shifted, current = tpch_scenario
        rec = advisor.recommend(shifted, current_layout=current,
                                method="incremental",
                                movement_budget=0.2)
        # the layout is valid by construction (Layout validates); the
        # constraints below are the Section-2.3 guarantees
        assert rec.moved_fraction <= 0.2 + EPS_FRACTION
        assert rec.estimated_cost <= rec.current_cost + EPS_COST
        assert rec.migration.is_capacity_safe(current)
        assert not [d for d in rec.diagnostics
                    if d.rule_id in ("ALR032", "ALR033")]

    def test_budget_1_matches_full_relayout(self, tpch_scenario):
        advisor, _, shifted, current = tpch_scenario
        rec = advisor.recommend(shifted, current_layout=current,
                                method="incremental",
                                movement_budget=1.0)
        full = advisor.recommend(shifted, method="ts-greedy")
        # Δ = 1 must be at least as good as the unconstrained search:
        # the engine runs full TS-GREEDY as a fallback and keeps the
        # cheaper of (seeded, full, current).
        assert rec.estimated_cost <= full.estimated_cost + EPS_COST


@pytest.fixture
def cli_files(tmp_path, mini_db):
    """Database, disks and two workload windows for the CLI."""
    from repro.catalog.io import save_database, save_farm
    from repro.storage.disk import winbench_farm
    save_database(mini_db, tmp_path / "db.json")
    save_farm(winbench_farm(8), tmp_path / "disks.json")
    (tmp_path / "before.sql").write_text(
        "-- name: J1\n"
        "SELECT COUNT(*) FROM big b, mid m WHERE b.k = m.k;\n"
        "-- name: S1\nSELECT SUM(b.v) FROM big b;\n")
    (tmp_path / "after.sql").write_text(
        "-- name: J1\n-- weight: 0.1\n"
        "SELECT COUNT(*) FROM big b, mid m WHERE b.k = m.k;\n"
        "-- name: S1\n-- weight: 20\nSELECT SUM(b.v) FROM big b;\n")
    return tmp_path


class TestIncrementalCli:
    def test_drift_exit_codes(self, cli_files, capsys):
        from repro.cli import main
        base = ["drift", "--database", str(cli_files / "db.json")]
        same = main([*base,
                     "--before", str(cli_files / "before.sql"),
                     "--after", str(cli_files / "before.sql")])
        assert same == 0
        drifted = main([*base,
                        "--before", str(cli_files / "before.sql"),
                        "--after", str(cli_files / "after.sql"),
                        "--save", str(cli_files / "drift.json")])
        assert drifted == 1
        out = capsys.readouterr().out
        assert "re-layout recommended" in out
        saved = json.loads((cli_files / "drift.json").read_text())
        assert saved["relayout_recommended"] is True

    def test_drift_json_format(self, cli_files, capsys):
        from repro.cli import main
        main(["drift", "--database", str(cli_files / "db.json"),
              "--before", str(cli_files / "before.sql"),
              "--after", str(cli_files / "after.sql"),
              "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) >= {"score", "node_drift", "edge_drift",
                                "objects", "edges"}

    def test_incremental_subcommand_end_to_end(self, cli_files,
                                               capsys):
        from repro.catalog.io import (
            load_farm as _load_farm,
            load_migration_plan,
            load_recommendation,
            save_layout,
        )
        from repro.cli import main
        farm = _load_farm(cli_files / "disks.json")
        db = load_database(cli_files / "db.json")
        current = full_striping(db.object_sizes(), farm)
        save_layout(current, cli_files / "current.json")
        rc = main(["incremental",
                   "--database", str(cli_files / "db.json"),
                   "--disks", str(cli_files / "disks.json"),
                   "--workload", str(cli_files / "after.sql"),
                   "--current", str(cli_files / "current.json"),
                   "--budget", "0.3",
                   "--save-plan", str(cli_files / "plan.json"),
                   "--save-recommendation",
                   str(cli_files / "rec.json")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "--- migration plan ---" in out
        assert "budget 30%" in out
        plan = load_migration_plan(cli_files / "plan.json")
        assert plan.is_capacity_safe(current)
        assert plan.moved_fraction <= 0.3 + EPS_FRACTION
        rec = load_recommendation(cli_files / "rec.json", farm)
        assert rec.movement_budget == 0.3
        assert rec.migration is not None

    def test_incremental_accepts_recommendation_as_current(
            self, cli_files, capsys):
        from repro.cli import main
        rc = main(["recommend",
                   "--database", str(cli_files / "db.json"),
                   "--disks", str(cli_files / "disks.json"),
                   "--workload", str(cli_files / "before.sql"),
                   "--save-recommendation",
                   str(cli_files / "rec0.json")])
        assert rc == 0
        rc = main(["incremental",
                   "--database", str(cli_files / "db.json"),
                   "--disks", str(cli_files / "disks.json"),
                   "--workload", str(cli_files / "after.sql"),
                   "--current", str(cli_files / "rec0.json"),
                   "--budget", "1.0"])
        assert rc == 0
        assert "migration plan" in capsys.readouterr().out

    def test_recommend_method_incremental(self, cli_files, capsys):
        from repro.cli import main
        rc = main(["recommend",
                   "--database", str(cli_files / "db.json"),
                   "--disks", str(cli_files / "disks.json"),
                   "--workload", str(cli_files / "after.sql"),
                   "--method", "incremental", "--budget", "0.4"])
        assert rc == 0
        assert "--- migration plan ---" in capsys.readouterr().out
