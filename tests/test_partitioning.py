"""Tests for the KL-style multiway max-cut partitioner."""

import pytest

from repro.core.partitioning import (
    intra_partition_weight,
    partition_access_graph,
)
from repro.errors import LayoutError
from repro.workload.access_graph import AccessGraph


def _graph(edges, nodes=()):
    graph = AccessGraph(nodes)
    for u, v, w in edges:
        graph.add_edge_weight(u, v, w)
        graph.add_node_weight(u, w / 2)
        graph.add_node_weight(v, w / 2)
    return graph


class TestPartitioning:
    def test_two_heavy_pairs_split_apart(self):
        graph = _graph([("a", "b", 100), ("c", "d", 100)])
        parts = partition_access_graph(graph, 2)
        assignment = {n: i for i, p in enumerate(parts) for n in p}
        assert assignment["a"] != assignment["b"]
        assert assignment["c"] != assignment["d"]

    def test_full_cut_on_star(self):
        graph = _graph([("hub", "x", 10), ("hub", "y", 10),
                        ("hub", "z", 10)])
        parts = partition_access_graph(graph, 4)
        assignment = {n: i for i, p in enumerate(parts) for n in p}
        # Every edge touches the hub; the hub alone in a partition cuts
        # everything.
        cut = graph.cut_weight(assignment)
        assert cut == pytest.approx(30)

    def test_all_nodes_exactly_once(self):
        graph = _graph([("a", "b", 5), ("b", "c", 3), ("c", "d", 7)],
                       nodes=["isolated"])
        parts = partition_access_graph(graph, 3)
        flattened = [n for p in parts for n in p]
        assert sorted(flattened) == ["a", "b", "c", "d", "isolated"]

    def test_deterministic(self):
        graph = _graph([("a", "b", 5), ("b", "c", 3), ("a", "c", 2),
                        ("c", "d", 7)])
        assert partition_access_graph(graph, 3) == \
            partition_access_graph(graph, 3)

    def test_single_partition(self):
        graph = _graph([("a", "b", 5)])
        assert partition_access_graph(graph, 1) == [["a", "b"]]

    def test_p_must_be_positive(self):
        with pytest.raises(LayoutError):
            partition_access_graph(_graph([]), 0)

    def test_empty_graph(self):
        parts = partition_access_graph(AccessGraph(), 3)
        assert parts == [[], [], []]

    def test_more_partitions_than_nodes(self):
        graph = _graph([("a", "b", 1)])
        parts = partition_access_graph(graph, 5)
        assert sum(1 for p in parts if p) == 2

    def test_subset_of_nodes(self):
        graph = _graph([("a", "b", 5), ("c", "d", 5)])
        parts = partition_access_graph(graph, 2, nodes=["a", "b"])
        flattened = sorted(n for p in parts for n in p)
        assert flattened == ["a", "b"]

    def test_cut_beats_trivial_assignment(self):
        """The heuristic must do at least as well as round-robin."""
        edges = [("a", "b", 10), ("a", "c", 8), ("b", "c", 6),
                 ("c", "d", 12), ("d", "e", 4), ("a", "e", 9)]
        graph = _graph(edges)
        parts = partition_access_graph(graph, 3)
        assignment = {n: i for i, p in enumerate(parts) for n in p}
        nodes = sorted(graph.nodes)
        round_robin = {n: i % 3 for i, n in enumerate(nodes)}
        assert graph.cut_weight(assignment) >= \
            graph.cut_weight(round_robin)

    def test_networkx_cross_check_cut_weight(self):
        """Independent cut computation via networkx agrees."""
        import networkx as nx
        edges = [("a", "b", 10), ("b", "c", 7), ("c", "a", 3),
                 ("c", "d", 9), ("d", "a", 1)]
        graph = _graph(edges)
        parts = partition_access_graph(graph, 2)
        assignment = {n: i for i, p in enumerate(parts) for n in p}
        nxg = nx.Graph()
        for u, v, w in edges:
            nxg.add_edge(u, v, weight=w)
        side0 = {n for n, p in assignment.items() if p == 0}
        nx_cut = nx.cut_size(nxg, side0, weight="weight")
        assert graph.cut_weight(assignment) == pytest.approx(nx_cut)

    def test_intra_partition_weight_complements_cut(self):
        graph = _graph([("a", "b", 10), ("c", "d", 4), ("a", "c", 2)])
        parts = partition_access_graph(graph, 2)
        assignment = {n: i for i, p in enumerate(parts) for n in p}
        total = graph.total_edge_weight()
        assert intra_partition_weight(graph, parts) == \
            pytest.approx(total - graph.cut_weight(assignment))
