"""Tests for repro.resilience: deadlines, retries, fault injection.

The parallel-engine integration of these primitives (degraded
portfolio runs, serial fallback, shm cleanup under faults) lives in
``tests/test_parallel.py``; this file covers the primitives themselves
plus the satellite surfaces: the typed recommendation loader, the
degraded report rendering, and the CLI flags.
"""

from __future__ import annotations

import json

import pytest

from repro.core.fullstripe import full_striping
from repro.core.greedy import SearchResult, TrajectoryFailure
from repro.core.report import render_search_diagnostics
from repro.errors import (
    CatalogError,
    DegradedResult,
    FaultSpecError,
    LayoutError,
    RecommendationFormatError,
    ReproError,
    SearchTimeout,
    SharedStateError,
    WorkerCrash,
)
from repro.resilience import Budget, Deadline, FaultPlan, RetryPolicy
from repro.resilience import faults as fault_injection


class FakeClock:
    """A controllable monotonic clock."""

    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_unlimited_never_expires(self):
        deadline = Deadline.never()
        assert deadline.unlimited
        assert deadline.remaining() == float("inf")
        assert not deadline.expired()
        deadline.check()  # must not raise

    def test_counts_down_and_expires(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        assert deadline.remaining() == 10.0
        clock.advance(4.0)
        assert deadline.remaining() == pytest.approx(6.0)
        assert deadline.elapsed() == pytest.approx(4.0)
        clock.advance(7.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0  # clamped, never negative

    def test_check_raises_search_timeout_with_elapsed(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(2.5)
        with pytest.raises(SearchTimeout, match="portfolio deadline"):
            deadline.check("portfolio")
        try:
            deadline.check()
        except SearchTimeout as error:
            assert error.elapsed_s == pytest.approx(2.5)

    def test_negative_seconds_rejected(self):
        with pytest.raises(LayoutError):
            Deadline(-1.0)
        with pytest.raises(LayoutError):
            Budget(seconds=-0.5)

    def test_coerce_normalizes_every_form(self):
        assert Deadline.coerce(None).unlimited
        live = Deadline(5.0)
        assert Deadline.coerce(live) is live
        assert Deadline.coerce(3).remaining() <= 3.0
        started = Deadline.coerce(Budget(seconds=2.0))
        assert not started.unlimited
        assert Deadline.coerce(Budget()).unlimited
        with pytest.raises(LayoutError):
            Deadline.coerce("soon")

    def test_budget_is_portable(self):
        clock = FakeClock()
        budget = Budget(seconds=5.0)
        clock.advance(100.0)  # time passes before work starts
        deadline = budget.start(clock=clock)
        assert deadline.remaining() == 5.0


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(LayoutError):
            RetryPolicy(attempts=0)
        with pytest.raises(LayoutError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(LayoutError):
            RetryPolicy(jitter=1.5)
        assert RetryPolicy.none().attempts == 1

    def test_delays_shape(self):
        policy = RetryPolicy(attempts=4, base_delay_s=0.1,
                             multiplier=2.0, max_delay_s=0.3,
                             jitter=0.0)
        delays = list(policy.delays(seed=7))
        assert len(delays) == 4
        assert delays[0] == 0.0  # first attempt is immediate
        assert delays[1] == pytest.approx(0.1)
        assert delays[2] == pytest.approx(0.2)
        assert delays[3] == pytest.approx(0.3)  # capped at max_delay_s

    def test_jitter_is_deterministic_per_seed(self):
        policy = RetryPolicy(attempts=5, jitter=0.5)
        assert list(policy.delays(seed=3)) == list(policy.delays(seed=3))
        assert list(policy.delays(seed=3)) != list(policy.delays(seed=4))
        # Jitter only ever lengthens a sleep (scale in [1, 1+jitter]).
        plain = list(RetryPolicy(attempts=5, jitter=0.0).delays())
        jittered = list(policy.delays(seed=9))
        for base, actual in zip(plain[1:], jittered[1:]):
            assert base <= actual <= base * 1.5 + 1e-12

    def test_run_returns_value_and_attempt_count(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "done"

        sleeps = []
        policy = RetryPolicy(attempts=4, base_delay_s=0.01)
        value, attempts = policy.run(flaky, seed=0,
                                     sleep=sleeps.append)
        assert value == "done"
        assert attempts == 3
        assert len(sleeps) == 2  # one sleep before each retry

    def test_run_exhaustion_reraises_last_error(self):
        def always_fails():
            raise ValueError("nope")

        policy = RetryPolicy(attempts=3, base_delay_s=0.0)
        with pytest.raises(ValueError, match="nope"):
            policy.run(always_fails, sleep=lambda _: None)

    def test_run_respects_retry_on_filter(self):
        calls = []

        def fails_with_type_error():
            calls.append(1)
            raise TypeError("not transient")

        policy = RetryPolicy(attempts=5, base_delay_s=0.0)
        with pytest.raises(TypeError):
            policy.run(fails_with_type_error, retry_on=(OSError,),
                       sleep=lambda _: None)
        assert len(calls) == 1  # no retries for a non-matching error

    def test_run_stops_at_deadline(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)

        def fails_slowly():
            clock.advance(6.0)
            raise OSError("slow failure")

        calls = []
        policy = RetryPolicy(attempts=10, base_delay_s=0.0)
        with pytest.raises(OSError):
            policy.run(fails_slowly, deadline=deadline,
                       sleep=calls.append)
        # 6s + 6s crosses the 10s deadline: only two attempts ran.
        assert clock.now - 100.0 == pytest.approx(12.0)


class TestFaultPlan:
    def test_from_spec_parses_every_fault(self):
        plan = FaultPlan.from_spec(
            "kill_worker=1, delay=2:0.75, fail_eval=0:2, "
            "fail_shm_attach")
        assert plan.kill_worker == 1
        assert plan.delay_trajectory == 2
        assert plan.delay_s == pytest.approx(0.75)
        assert plan.fail_eval == 0
        assert plan.fail_eval_times == 2
        assert plan.fail_shm_attach
        assert not plan.empty

    def test_from_spec_defaults(self):
        assert FaultPlan.from_spec("delay=3").delay_s == 1.0
        assert FaultPlan.from_spec("fail_eval=1").fail_eval_times == 0
        assert FaultPlan.from_spec("").empty

    def test_from_spec_rejects_garbage(self):
        with pytest.raises(FaultSpecError, match="unknown fault"):
            FaultPlan.from_spec("explode=now")
        with pytest.raises(FaultSpecError, match="malformed"):
            FaultPlan.from_spec("kill_worker=soon")
        with pytest.raises(FaultSpecError, match="malformed"):
            FaultPlan.from_spec("delay=1:fast")

    def test_unknown_kind_error_lists_valid_kinds(self):
        from repro.resilience import FAULT_KINDS
        with pytest.raises(FaultSpecError) as caught:
            FaultPlan.from_spec("crash_after_inten=2")  # typo
        message = str(caught.value)
        for kind in FAULT_KINDS:
            assert kind in message

    def test_from_spec_parses_migration_faults(self):
        plan = FaultPlan.from_spec(
            "fail_step=2:3, crash_after_intent=1, "
            "crash_before_done=4, stall_step=0:2.5")
        assert plan.fail_step == 2
        assert plan.fail_step_times == 3
        assert plan.crash_after_intent == 1
        assert plan.crash_before_done == 4
        assert plan.stall_step == 0
        assert plan.stall_s == pytest.approx(2.5)
        assert not plan.empty
        # Kind-specific defaults.
        assert FaultPlan.from_spec("fail_step=2").fail_step_times == 1
        assert FaultPlan.from_spec("stall_step=1").stall_s == 1.0

    def test_from_env(self):
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({"REPRO_FAULTS": "  "}) is None
        plan = FaultPlan.from_env({"REPRO_FAULTS": "kill_worker=2"})
        assert plan is not None and plan.kill_worker == 2

    def test_install_and_active(self):
        try:
            fault_injection.install(FaultPlan(kill_worker=0))
            assert fault_injection.active().kill_worker == 0
            fault_injection.install(FaultPlan())  # empty -> None
            assert fault_injection.active() is None
        finally:
            fault_injection.install(None)

    def test_fire_kill_in_parent_raises_worker_crash(self):
        plan = FaultPlan(kill_worker=1)
        fault_injection.fire_kill(plan, 0)  # wrong index: no-op
        fault_injection.fire_kill(None, 1)  # no plan: no-op
        with pytest.raises(WorkerCrash, match="trajectory 1"):
            fault_injection.fire_kill(plan, 1)

    def test_fire_delay_uses_injected_sleep(self):
        slept = []
        plan = FaultPlan(delay_trajectory=2, delay_s=0.25)
        fault_injection.fire_delay(plan, 0, sleep=slept.append)
        assert slept == []
        fault_injection.fire_delay(plan, 2, sleep=slept.append)
        assert slept == [0.25]

    def test_fire_eval_honors_times_limit(self):
        try:
            plan = FaultPlan(fail_eval=0, fail_eval_times=2)
            fault_injection.install(plan)
            for _ in range(2):
                with pytest.raises(WorkerCrash):
                    fault_injection.fire_eval(plan, 0)
            fault_injection.fire_eval(plan, 0)  # third attempt passes
            fault_injection.fire_eval(plan, 1)  # other index untouched
        finally:
            fault_injection.install(None)

    def test_fire_shm_attach_consults_installed_plan(self):
        fault_injection.fire_shm_attach("seg")  # nothing installed
        try:
            fault_injection.install(FaultPlan(fail_shm_attach=True))
            with pytest.raises(SharedStateError, match="seg"):
                fault_injection.fire_shm_attach("seg")
        finally:
            fault_injection.install(None)
        fault_injection.fire_shm_attach("seg")  # uninstalled again


class TestTrajectoryFailure:
    def test_round_trips_through_dict(self):
        failure = TrajectoryFailure(2, "anneal-104", "crash",
                                    attempts=3, message="boom")
        assert TrajectoryFailure.from_dict(failure.to_dict()) == failure

    def test_describe_reads_well(self):
        text = TrajectoryFailure(1, "greedy-102", "timeout",
                                 attempts=2, message="slow").describe()
        assert "trajectory 1 (greedy-102)" in text
        assert "timeout after 2 attempts" in text
        assert "slow" in text

    def test_search_result_telemetry_round_trip(self, mini_db, farm8):
        layout = full_striping(mini_db.object_sizes(), farm8)
        result = SearchResult(layout=layout, cost=10.0,
                              initial_cost=12.0, degraded=True,
                              failures=[TrajectoryFailure(
                                  1, "x", "crash", 2, "dead")])
        restored = SearchResult.from_telemetry(layout,
                                               result.telemetry_dict())
        assert restored.degraded
        assert restored.failures == result.failures
        # A healthy result's telemetry carries no degradation keys, so
        # pre-existing persisted payloads keep their exact shape.
        healthy = SearchResult(layout=layout, cost=1.0,
                               initial_cost=1.0)
        assert "degraded" not in healthy.telemetry_dict()
        assert "failures" not in healthy.telemetry_dict()


class TestDegradedRendering:
    def _degraded_result(self, mini_db, farm8):
        layout = full_striping(mini_db.object_sizes(), farm8)
        result = SearchResult(layout=layout, cost=10.0,
                              initial_cost=12.0)
        result.extras.update({"trajectories": 4.0, "workers": 2.0,
                              "best_trajectory": 0.0,
                              "best_trajectory_cost": 10.0,
                              "failed_trajectories": 2.0})
        result.degraded = True
        result.failures = [
            TrajectoryFailure(1, "greedy-102", "timeout", 1, "slow"),
            TrajectoryFailure(3, "anneal-104", "crash", 3, "dead"),
        ]
        return result

    def test_diagnostics_show_degradation(self, mini_db, farm8):
        text = render_search_diagnostics(
            self._degraded_result(mini_db, farm8))
        assert "degraded: 2/4 trajectories failed" in text
        assert "crash" in text and "timeout" in text
        assert "trajectory 3 (anneal-104)" in text

    def test_healthy_portfolio_unchanged(self, mini_db, farm8):
        result = self._degraded_result(mini_db, farm8)
        result.degraded = False
        result.failures = []
        result.extras.pop("failed_trajectories")
        text = render_search_diagnostics(result)
        assert "degraded" not in text
        assert "portfolio: 4 trajectories" in text

    def test_degraded_result_is_warning_and_repro_error(self):
        assert issubclass(DegradedResult, Warning)
        assert issubclass(DegradedResult, ReproError)


class TestRecommendationLoader:
    def _save_valid(self, tmp_path, mini_db, farm8):
        from repro.catalog.io import save_recommendation
        from repro.core.advisor import Recommendation
        layout = full_striping(mini_db.object_sizes(), farm8)
        rec = Recommendation(layout=layout, estimated_cost=5.0,
                             current_cost=8.0)
        path = tmp_path / "rec.json"
        save_recommendation(rec, path)
        return path

    def test_round_trip_still_works(self, tmp_path, mini_db, farm8):
        from repro.catalog.io import load_recommendation
        path = self._save_valid(tmp_path, mini_db, farm8)
        loaded = load_recommendation(path, farm8)
        assert loaded.estimated_cost == 5.0
        assert loaded.current_cost == 8.0

    def test_missing_key_names_file_and_key(self, tmp_path, mini_db,
                                            farm8):
        from repro.catalog.io import load_recommendation
        path = self._save_valid(tmp_path, mini_db, farm8)
        data = json.loads(path.read_text())
        del data["estimated_cost"]
        path.write_text(json.dumps(data))
        with pytest.raises(RecommendationFormatError) as excinfo:
            load_recommendation(path, farm8)
        assert excinfo.value.key == "estimated_cost"
        assert str(path) in str(excinfo.value)
        assert "estimated_cost" in str(excinfo.value)
        assert isinstance(excinfo.value, CatalogError)  # typed chain

    def test_malformed_value_names_file(self, tmp_path, mini_db,
                                        farm8):
        from repro.catalog.io import load_recommendation
        path = self._save_valid(tmp_path, mini_db, farm8)
        data = json.loads(path.read_text())
        data["estimated_cost"] = "not-a-number"
        path.write_text(json.dumps(data))
        with pytest.raises(RecommendationFormatError, match="malformed"):
            load_recommendation(path, farm8)

    def test_invalid_json_and_non_object(self, tmp_path, farm8):
        from repro.catalog.io import load_recommendation
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(RecommendationFormatError,
                           match="not valid JSON"):
            load_recommendation(path, farm8)
        path.write_text("[1, 2, 3]")
        with pytest.raises(RecommendationFormatError,
                           match="must be an object"):
            load_recommendation(path, farm8)
