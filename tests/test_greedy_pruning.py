"""Bound-based pruning: parity with unpruned search, bound soundness.

The transfer-only lower bound drops the (non-negative) seek term from
the Figure-7 per-disk cost, so ``bound(x) <= cost(x)`` must hold for
*every* layout — that inequality is the whole correctness argument for
skipping full evaluation of candidates whose bound already exceeds the
incumbent (see ``docs/performance.md``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.costmodel import WorkloadCostEvaluator
from repro.core.fullstripe import full_striping
from repro.core.greedy import TsGreedySearch
from repro.core.layout import stripe_fractions
from repro.core.random_layout import random_layout
from repro.errors import LayoutError
from repro.obs import MetricsRegistry
from repro.workload.access import analyze_workload
from repro.workload.access_graph import build_access_graph


@pytest.fixture
def case(mini_db, join_workload, farm8):
    analyzed = analyze_workload(join_workload, mini_db)
    sizes = mini_db.object_sizes()
    evaluator = WorkloadCostEvaluator(analyzed, farm8, sorted(sizes))
    graph = build_access_graph(analyzed, mini_db)
    return evaluator, graph, sizes, farm8


class TestPruningParity:
    def test_pruned_search_is_bit_identical(self, case):
        evaluator, graph, sizes, farm = case
        plain = TsGreedySearch(farm, evaluator, sizes,
                               prune=False).search(graph)
        pruned = TsGreedySearch(farm, evaluator, sizes,
                                prune=True).search(graph)
        assert pruned.cost == plain.cost
        for name in plain.layout.object_names:
            assert pruned.layout.fractions_of(name) \
                == plain.layout.fractions_of(name)
        # Same decisions step by step, not just the same endpoint.
        assert [s.best_cost for s in pruned.steps] \
            == [s.best_cost for s in plain.steps]
        assert [s.changed for s in pruned.steps] \
            == [s.changed for s in plain.steps]

    def test_pruning_skips_work(self, case):
        evaluator, graph, sizes, farm = case
        plain = TsGreedySearch(farm, evaluator, sizes,
                               prune=False).search(graph)
        pruned = TsGreedySearch(farm, evaluator, sizes,
                                prune=True).search(graph)
        assert pruned.evaluations < plain.evaluations
        assert pruned.extras["pruned_candidates"] > 0
        assert plain.extras["pruned_candidates"] == 0

    def test_pruned_counter_reported(self, case):
        evaluator, graph, sizes, farm = case
        metrics = MetricsRegistry()
        result = TsGreedySearch(farm, evaluator, sizes, prune=True,
                                metrics=metrics).search(graph)
        assert metrics.value("greedy.pruned_candidates") \
            == result.extras["pruned_candidates"]

    def test_parity_with_wider_k(self, case):
        evaluator, graph, sizes, farm = case
        plain = TsGreedySearch(farm, evaluator, sizes, k=2,
                               prune=False).search(graph)
        pruned = TsGreedySearch(farm, evaluator, sizes, k=2,
                                prune=True).search(graph)
        assert pruned.cost == plain.cost


class TestLowerBoundSoundness:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[
                  HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_bound_never_exceeds_cost(self, case, seed):
        # The fixture is read-only here (the bound path never mutates
        # evaluator state), so reuse across examples is safe.
        evaluator, _, sizes, farm = case
        layout = random_layout(sizes, farm, seed)
        matrix = np.array([layout.fractions_of(name)
                           for name in evaluator.object_names])
        bound = evaluator.lower_bound_matrix(matrix)
        cost = evaluator.cost(layout)
        assert bound <= cost + 1e-9

    def test_bound_tight_when_no_colocation(self, case):
        """With one object per disk set the seek term vanishes and the
        bound equals the true cost for single-object subplans."""
        evaluator, _, sizes, farm = case
        layout = full_striping(sizes, farm)
        matrix = np.array([layout.fractions_of(name)
                           for name in evaluator.object_names])
        bound = evaluator.lower_bound_matrix(matrix)
        assert bound <= evaluator.cost(layout) + 1e-9
        assert bound > 0.0

    def test_bounds_for_rows_match_matrix_bound(self, case):
        evaluator, _, sizes, farm = case
        base = full_striping(sizes, farm)
        matrix = np.array([base.fractions_of(name)
                           for name in evaluator.object_names])
        evaluator.set_base(matrix)
        name = evaluator.object_names[0]
        index = evaluator.object_names.index(name)
        rows = np.array([stripe_fractions(list(disks), farm)
                         for disks in ([0], [0, 1], [2, 3, 4],
                                       list(range(len(farm))))])
        batched = evaluator.bounds_for_rows(name, rows)
        for row, bound in zip(rows, batched):
            changed = matrix.copy()
            changed[index] = row
            assert bound == pytest.approx(
                evaluator.lower_bound_matrix(changed), abs=1e-9)

    def test_bounds_for_rows_lower_bound_true_cost(self, case):
        evaluator, _, sizes, farm = case
        base = full_striping(sizes, farm)
        matrix = np.array([base.fractions_of(name)
                           for name in evaluator.object_names])
        evaluator.set_base(matrix)
        for name in evaluator.object_names[:3]:
            rows = np.array([stripe_fractions([j], farm)
                             for j in range(len(farm))])
            bounds = evaluator.bounds_for_rows(name, rows)
            costs = evaluator.costs_for_rows(name, rows)
            assert np.all(bounds <= costs + 1e-9)

    def test_bounds_require_a_base(self, case):
        evaluator, _, sizes, farm = case
        rows = np.array([stripe_fractions([0], farm)])
        with pytest.raises(LayoutError):
            evaluator.bounds_for_rows(evaluator.object_names[0], rows)

    def test_bound_evaluations_counted(self, case):
        evaluator, _, sizes, farm = case
        metrics = MetricsRegistry()
        evaluator.bind_metrics(metrics)
        try:
            base = full_striping(sizes, farm)
            evaluator.set_base(np.array(
                [base.fractions_of(name)
                 for name in evaluator.object_names]))
            rows = np.array([stripe_fractions([0], farm),
                             stripe_fractions([0, 1], farm)])
            evaluator.bounds_for_rows(evaluator.object_names[0], rows)
        finally:
            evaluator.bind_metrics(None)
        assert metrics.value("costmodel.bound_evaluations") == 2.0
