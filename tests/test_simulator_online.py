"""Tests for the online-migration simulator: live-traffic degradation,
throttling, and time-to-benefit accounting."""

from __future__ import annotations

import pytest

from repro.core.fullstripe import full_striping
from repro.core.layout import Layout, stripe_fractions
from repro.errors import SimulationError
from repro.obs import EventRecorder, MetricsRegistry
from repro.simulator.concurrent import (
    MigrationWindow,
    OnlineMigrationReport,
    OnlineMigrationSimulator,
)
from repro.storage.executor import FarmState
from repro.storage.migration import plan_migration
from repro.workload.access import analyze_workload
from repro.workload.workload import Workload


@pytest.fixture
def scan_pair(mini_db):
    workload = Workload()
    workload.add("SELECT COUNT(*) FROM big b", name="scan_big")
    workload.add("SELECT COUNT(*) FROM mid m", name="scan_mid")
    return analyze_workload(workload, mini_db)


@pytest.fixture
def layouts(mini_db, farm8):
    """A striped source and a big/mid-separated target."""
    sizes = mini_db.object_sizes()
    source = full_striping(sizes, farm8)
    fractions = {name: stripe_fractions(range(len(farm8)), farm8)
                 for name in sizes}
    fractions["big"] = stripe_fractions([0, 1, 2, 3], farm8)
    fractions["mid"] = stripe_fractions([4, 5, 6], farm8)
    target = Layout(farm8, sizes, fractions)
    return source, target


class TestOnlineMigration:
    def test_unthrottled_finishes_in_one_window(self, scan_pair,
                                                layouts):
        source, target = layouts
        plan = plan_migration(source, target)
        sim = OnlineMigrationSimulator()
        report = sim.run_online(scan_pair, source, plan, target=target)
        assert len(report.windows) == 1
        assert report.windows[0].migration_blocks == \
            pytest.approx(plan.moved_blocks)
        # Sharing the disks with migration traffic cannot be faster
        # than the undisturbed baseline pass.
        assert report.windows[0].foreground_s > report.baseline_s
        assert report.peak_degradation > 1.0

    def test_target_defaults_to_plan_endpoint(self, scan_pair,
                                              layouts):
        source, target = layouts
        plan = plan_migration(source, target)
        sim = OnlineMigrationSimulator()
        derived = sim.run_online(scan_pair, source, plan)
        explicit = sim.run_online(scan_pair, source, plan,
                                  target=target)
        assert derived.target_s == pytest.approx(explicit.target_s)

    def test_throttle_spreads_migration_over_windows(self, scan_pair,
                                                     layouts):
        source, target = layouts
        plan = plan_migration(source, target)
        sim = OnlineMigrationSimulator()
        free = sim.run_online(scan_pair, source, plan, target=target)
        capped = sim.run_online(scan_pair, source, plan, target=target,
                                throttle_mb_s=20.0, max_windows=512)
        assert len(capped.windows) > len(free.windows)
        total = sum(w.migration_blocks for w in capped.windows)
        assert total == pytest.approx(plan.moved_blocks)
        # Throttling trades duration for gentler per-window impact.
        assert capped.peak_degradation <= free.peak_degradation \
            + 1e-9

    def test_too_low_throttle_raises(self, scan_pair, layouts):
        source, target = layouts
        plan = plan_migration(source, target)
        sim = OnlineMigrationSimulator()
        with pytest.raises(SimulationError, match="max_windows|too low"):
            sim.run_online(scan_pair, source, plan, target=target,
                           throttle_mb_s=20.0, max_windows=2)

    def test_events_and_metrics_are_catalogued(self, scan_pair,
                                               layouts):
        source, target = layouts
        plan = plan_migration(source, target)
        metrics = MetricsRegistry(strict=True)
        recorder = EventRecorder()
        sim = OnlineMigrationSimulator(metrics=metrics)
        report = sim.run_online(scan_pair, source, plan, target=target,
                                recorder=recorder)
        windows = [e for e in recorder.events
                   if e["type"] == "migration-window"]
        assert len(windows) == len(report.windows)
        assert windows[0]["data"]["window"] == 0
        assert metrics.value("migration.windows") == \
            len(report.windows)
        assert metrics.value("migration.foreground_degradation") == \
            pytest.approx(report.mean_degradation)

    def test_migrating_away_from_hot_pair_pays_back(self, scan_pair,
                                                    layouts):
        """Separating the two concurrently-scanned tables must beat
        full striping under concurrent execution, so the migration has
        a finite time-to-benefit."""
        source, target = layouts
        plan = plan_migration(source, target)
        sim = OnlineMigrationSimulator()
        report = sim.run_online(scan_pair, source, plan, target=target)
        assert report.per_pass_saving_s > 0
        assert report.time_to_benefit_s is not None
        assert report.time_to_benefit_s > 0

    def test_plan_endpoint_matches_farmstate_arith(self, layouts):
        source, target = layouts
        plan = plan_migration(source, target)
        state = FarmState.from_layout(source)
        for step in plan.steps:
            state.apply(step.obj, step.src, step.dst,
                        float(step.blocks))
        assert state.matches(FarmState.from_layout(target))


class TestReportArithmetic:
    def _report(self, baseline, target, windows):
        return OnlineMigrationReport(
            baseline_s=baseline, target_s=target,
            windows=[MigrationWindow(index=i, foreground_s=s,
                                     migration_blocks=0.0)
                     for i, s in enumerate(windows)])

    def test_degradation_and_overhead(self):
        report = self._report(2.0, 1.0, [3.0, 2.5])
        assert report.degradation == [1.5, 1.25]
        assert report.mean_degradation == pytest.approx(1.375)
        assert report.peak_degradation == pytest.approx(1.5)
        assert report.overhead_s == pytest.approx(1.5)

    def test_time_to_benefit(self):
        report = self._report(2.0, 1.0, [3.0, 2.5])
        # 1.5s overhead repaid at 1s saving per 1s-long target pass.
        assert report.time_to_benefit_s == pytest.approx(1.5)

    def test_never_pays_back_when_target_no_faster(self):
        report = self._report(2.0, 2.5, [3.0])
        assert report.per_pass_saving_s < 0
        assert report.time_to_benefit_s is None

    def test_empty_windows_degenerate(self):
        report = self._report(2.0, 1.0, [])
        assert report.mean_degradation == 1.0
        assert report.peak_degradation == 1.0
        assert report.overhead_s == 0.0
