"""Tests for cardinality helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.optimizer.cardinality import (
    bytes_to_blocks,
    distinct_rows,
    grouped_rows,
    sort_cpu_cost,
    yao_blocks_touched,
)


class TestYao:
    def test_zero_inputs(self):
        assert yao_blocks_touched(0, 100) == 0.0
        assert yao_blocks_touched(100, 0) == 0.0

    def test_single_block_object(self):
        assert yao_blocks_touched(1, 50) == 1.0

    def test_few_rows_touch_about_that_many_blocks(self):
        touched = yao_blocks_touched(100_000, 10)
        assert touched == pytest.approx(10, rel=0.01)

    def test_many_rows_touch_all_blocks(self):
        assert yao_blocks_touched(100, 100_000) == pytest.approx(100)

    def test_intermediate_regime(self):
        touched = yao_blocks_touched(100, 100)
        # E = B(1 - (1-1/B)^B) ~ B(1 - 1/e)
        assert touched == pytest.approx(100 * (1 - (1 - 0.01) ** 100))

    @given(blocks=st.floats(min_value=1, max_value=1e7),
           rows=st.floats(min_value=0, max_value=1e9))
    def test_property_bounds(self, blocks, rows):
        touched = yao_blocks_touched(blocks, rows)
        assert 0.0 <= touched <= blocks + 1e-9
        assert touched <= rows + 1e-9 or touched <= blocks

    @given(blocks=st.floats(min_value=2, max_value=1e6),
           r1=st.floats(min_value=1, max_value=1e6),
           r2=st.floats(min_value=1, max_value=1e6))
    def test_property_monotone_in_rows(self, blocks, r1, r2):
        lo, hi = sorted([r1, r2])
        assert yao_blocks_touched(blocks, lo) <= \
            yao_blocks_touched(blocks, hi) + 1e-9


class TestGroupedRows:
    def test_capped_by_input(self):
        assert grouped_rows(100, [1000, 1000]) == 100

    def test_product_of_ndvs(self):
        assert grouped_rows(1_000_000, [10, 20]) == 200

    def test_zero_input(self):
        assert grouped_rows(0, [10]) == 0.0

    def test_distinct_rows(self):
        assert distinct_rows(1000, 50) == 50
        assert distinct_rows(1000, None) == 500
        assert distinct_rows(1, None) == 1.0


class TestCostHelpers:
    def test_sort_cost_zero_for_tiny_inputs(self):
        assert sort_cpu_cost(1, 0.001) == 0.0

    def test_sort_cost_nlogn(self):
        assert sort_cpu_cost(8, 1.0) == pytest.approx(24.0)

    def test_bytes_to_blocks(self):
        assert bytes_to_blocks(0, 65536) == 0.0
        assert bytes_to_blocks(65536, 65536) == 1.0
        assert bytes_to_blocks(32768, 65536) == 0.5
