"""Tests for repro.catalog.schema."""

import pytest

from repro.catalog.schema import (
    Column,
    Database,
    Index,
    MaterializedView,
    ObjectKind,
    ROW_OVERHEAD_BYTES,
    Table,
)
from repro.errors import CatalogError
from repro.storage.disk import BLOCK_BYTES
from tests.conftest import column


class TestColumn:
    def test_width_must_be_positive(self):
        with pytest.raises(CatalogError):
            Column("c", 0)

    def test_stats_optional(self):
        assert Column("c", 8).stats is None


class TestTable:
    def _table(self, rows=1000):
        return Table("t", rows, [column("a"), column("b", width=12)],
                     clustered_on=["a"])

    def test_row_bytes_includes_overhead(self):
        assert self._table().row_bytes == 8 + 12 + ROW_OVERHEAD_BYTES

    def test_size_blocks_ceils(self):
        table = self._table(rows=1)
        assert table.size_blocks == 1

    def test_size_blocks_scales_with_rows(self):
        table = self._table(rows=100_000)
        expected = -(-100_000 * table.row_bytes // BLOCK_BYTES)
        assert table.size_blocks == expected

    def test_rows_per_block(self):
        table = self._table()
        assert table.rows_per_block == pytest.approx(
            BLOCK_BYTES / table.row_bytes)

    def test_column_lookup(self):
        table = self._table()
        assert table.column("b").width_bytes == 12
        assert table.has_column("a")
        assert not table.has_column("zzz")
        with pytest.raises(CatalogError):
            table.column("zzz")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            Table("t", 10, [column("a"), column("a")])

    def test_unknown_clustering_column_rejected(self):
        with pytest.raises(CatalogError):
            Table("t", 10, [column("a")], clustered_on=["b"])

    def test_negative_rows_rejected(self):
        with pytest.raises(CatalogError):
            Table("t", -1, [column("a")])

    def test_empty_columns_rejected(self):
        with pytest.raises(CatalogError):
            Table("t", 10, [])

    def test_heap_has_no_clustering(self):
        table = Table("t", 10, [column("a")])
        assert table.clustered_on is None


class TestIndex:
    def test_requires_key_columns(self):
        with pytest.raises(CatalogError):
            Index("i", "t", [])

    def test_unbound_index_has_no_size(self):
        index = Index("i", "t", ["a"])
        with pytest.raises(CatalogError):
            _ = index.size_blocks

    def test_bind_to_wrong_table_rejected(self):
        index = Index("i", "t", ["a"])
        other = Table("other", 10, [column("a")])
        with pytest.raises(CatalogError):
            index.bind(other)

    def test_entry_bytes_and_size(self):
        table = Table("t", 100_000, [column("a"), column("b", width=4)])
        index = Index("i", "t", ["a"], included_columns=["b"])
        index.bind(table)
        assert index.entry_bytes == 8 + 4 + 8  # keys + include + RID
        assert index.row_count == 100_000
        assert index.size_blocks >= 1

    def test_covers(self):
        table = Table("t", 10, [column("a"), column("b"), column("c")])
        index = Index("i", "t", ["a"], included_columns=["b"])
        index.bind(table)
        assert index.covers({"a", "b"})
        assert not index.covers({"a", "c"})


class TestDatabase:
    def test_objects_lists_tables_indexes_views(self, mini_db):
        names = [o.name for o in mini_db.objects()]
        assert names == ["big", "mid", "small", "idx_big_d",
                         "idx_big_dim"]
        kinds = {o.name: o.kind for o in mini_db.objects()}
        assert kinds["big"] is ObjectKind.TABLE
        assert kinds["idx_big_d"] is ObjectKind.INDEX

    def test_object_sizes_positive(self, mini_db):
        sizes = mini_db.object_sizes()
        assert all(s >= 1 for s in sizes.values())
        assert sizes["big"] > sizes["mid"] > sizes["small"]

    def test_indexes_on(self, mini_db):
        assert {ix.name for ix in mini_db.indexes_on("big")} == \
            {"idx_big_d", "idx_big_dim"}
        assert mini_db.indexes_on("small") == []

    def test_duplicate_table_rejected(self):
        table = Table("t", 10, [column("a")])
        with pytest.raises(CatalogError):
            Database("db", [table, table])

    def test_index_on_unknown_table_rejected(self):
        table = Table("t", 10, [column("a")])
        with pytest.raises(CatalogError):
            Database("db", [table], indexes=[Index("i", "zzz", ["a"])])

    def test_index_name_collision_rejected(self):
        table = Table("t", 10, [column("a")])
        with pytest.raises(CatalogError):
            Database("db", [table], indexes=[Index("t", "t", ["a"])])

    def test_materialized_view_is_an_object(self):
        table = Table("t", 10, [column("a")])
        view = MaterializedView("mv", row_count=100, row_bytes=50,
                                definition="SELECT ...")
        db = Database("db", [table], views=[view])
        assert "mv" in {o.name for o in db.objects()}
        assert db.views[0].size_blocks == 1

    def test_total_size(self, mini_db):
        assert mini_db.total_size_blocks == \
            sum(mini_db.object_sizes().values())

    def test_table_lookup_errors(self, mini_db):
        with pytest.raises(CatalogError):
            mini_db.table("zzz")
        with pytest.raises(CatalogError):
            mini_db.index("zzz")
