"""Tests for the access graph (paper Section 4.1, Figure 6)."""

import pytest

from repro.errors import WorkloadError
from repro.optimizer import operators as ops
from repro.workload.access import AnalyzedStatement, AnalyzedWorkload
from repro.workload.access import decompose
from repro.workload.access_graph import AccessGraph, build_access_graph
from repro.workload.workload import Statement


def _analyzed(plan, weight=1.0, name="q"):
    return AnalyzedStatement(
        statement=Statement("SELECT 1 FROM t", weight=weight, name=name),
        plan=plan, subplans=decompose(plan))


def scan(name, blocks):
    return ops.TableScanOp(name, name, blocks=blocks, rows_out=blocks)


class TestAccessGraphBasics:
    def test_nodes_start_at_zero(self):
        graph = AccessGraph(["a", "b"])
        assert graph.node_weight("a") == 0.0
        assert "a" in graph and "c" not in graph

    def test_node_weight_accumulates(self):
        graph = AccessGraph()
        graph.add_node_weight("a", 10)
        graph.add_node_weight("a", 5)
        assert graph.node_weight("a") == 15

    def test_edge_weight_accumulates_symmetrically(self):
        graph = AccessGraph()
        graph.add_edge_weight("a", "b", 10)
        graph.add_edge_weight("b", "a", 5)
        assert graph.edge_weight("a", "b") == 15
        assert graph.edge_weight("b", "a") == 15

    def test_missing_edge_is_zero(self):
        graph = AccessGraph(["a", "b"])
        assert graph.edge_weight("a", "b") == 0.0

    def test_self_edge_rejected(self):
        graph = AccessGraph()
        with pytest.raises(WorkloadError):
            graph.add_edge_weight("a", "a", 1)

    def test_unknown_node_weight_raises(self):
        with pytest.raises(WorkloadError):
            AccessGraph().node_weight("zzz")

    def test_neighbors(self):
        graph = AccessGraph()
        graph.add_edge_weight("a", "b", 1)
        graph.add_edge_weight("a", "c", 1)
        assert graph.neighbors("a") == {"b", "c"}
        assert graph.neighbors("b") == {"a"}

    def test_cut_weight(self):
        graph = AccessGraph()
        graph.add_edge_weight("a", "b", 10)
        graph.add_edge_weight("b", "c", 4)
        assert graph.cut_weight({"a": 0, "b": 1, "c": 1}) == 10
        assert graph.cut_weight({"a": 0, "b": 1, "c": 0}) == 14

    def test_group_edge_weight(self):
        graph = AccessGraph()
        graph.add_edge_weight("a", "b", 3)
        graph.add_edge_weight("a", "c", 5)
        assert graph.group_edge_weight(["a"], ["b", "c"]) == 8


class TestPaperExample2:
    """Figure 5's access graph for {Q1, Q2}.

    Q1 co-accesses R1 (500 blocks), R2 (700), R3 (600); Q2 co-accesses
    R2 (600), R3 (800), R4 (100).  The R2-R3 edge weight is
    (700+600) + (600+800) = 2700, node R2 is 1300, and so on.
    """

    def _workload(self):
        q1 = ops.MergeJoinOp(
            ops.MergeJoinOp(scan("r1", 500), scan("r2", 700),
                            rows_out=100),
            scan("r3", 600), rows_out=100)
        q2 = ops.MergeJoinOp(
            ops.MergeJoinOp(scan("r2", 600), scan("r3", 800),
                            rows_out=100),
            scan("r4", 100), rows_out=100)
        return AnalyzedWorkload([_analyzed(q1, name="Q1"),
                                 _analyzed(q2, name="Q2")])

    def test_node_weights(self):
        graph = build_access_graph(self._workload())
        assert graph.node_weight("r1") == 500
        assert graph.node_weight("r2") == 1300
        assert graph.node_weight("r3") == 1400
        assert graph.node_weight("r4") == 100

    def test_edge_weights(self):
        graph = build_access_graph(self._workload())
        assert graph.edge_weight("r2", "r3") == 2700
        assert graph.edge_weight("r1", "r2") == 1200
        assert graph.edge_weight("r1", "r3") == 1100
        assert graph.edge_weight("r3", "r4") == 900
        assert graph.edge_weight("r1", "r4") == 0

    def test_statement_weights_scale_graph(self):
        q1 = ops.MergeJoinOp(scan("a", 10), scan("b", 20), rows_out=5)
        workload = AnalyzedWorkload([_analyzed(q1, weight=3.0)])
        graph = build_access_graph(workload)
        assert graph.node_weight("a") == 30
        assert graph.edge_weight("a", "b") == 90


class TestBuildFromPlans:
    def test_blocking_cut_prevents_edge(self):
        plan = ops.HashJoinOp(scan("a", 10), scan("b", 20), rows_out=5)
        graph = build_access_graph(AnalyzedWorkload([_analyzed(plan)]))
        assert graph.edge_weight("a", "b") == 0
        assert graph.node_weight("a") == 10

    def test_catalog_objects_present_even_if_untouched(self, mini_db,
                                                       join_workload):
        from repro.workload.access import analyze_workload
        analyzed = analyze_workload(join_workload, mini_db)
        graph = build_access_graph(analyzed, mini_db)
        assert "small" in graph
        assert graph.node_weight("small") == 0.0

    def test_temp_objects_excluded(self):
        sort = ops.SortOp(
            scan("a", 10), rows_out=10, order=(("a", "x"),),
            spill_accesses=[ops.ObjectAccess("tempdb", 99.0, write=True),
                            ops.ObjectAccess("tempdb", 99.0)])
        graph = build_access_graph(AnalyzedWorkload([_analyzed(sort)]))
        assert "tempdb" not in graph
