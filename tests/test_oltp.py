"""Tests for the OLTP/DML workload generator."""

from repro.benchdb import oltp, tpch
from repro.core.advisor import LayoutAdvisor
from repro.optimizer.operators import DmlOp
from repro.storage.disk import winbench_farm
from repro.workload.access import analyze_workload


class TestOltpWorkload:
    def test_seeded(self):
        a = oltp.oltp_workload(30, seed=5)
        b = oltp.oltp_workload(30, seed=5)
        assert [s.sql for s in a] == [s.sql for s in b]

    def test_mix_contains_all_kinds(self):
        workload = oltp.oltp_workload(200, seed=1)
        kinds = {s.name.split("-", 1)[1] for s in workload}
        assert kinds == {"lookup", "update", "insert", "delete",
                         "report"}

    def test_custom_mix(self):
        workload = oltp.oltp_workload(50, seed=1,
                                      mix={"update": 1.0})
        assert all(s.sql.startswith("UPDATE") for s in workload)

    def test_all_statements_plan(self):
        db = tpch.tpch_database()
        analyzed = analyze_workload(oltp.oltp_workload(80, seed=2), db)
        assert len(analyzed) == 80

    def test_dml_statements_produce_writes(self):
        db = tpch.tpch_database()
        workload = oltp.oltp_workload(40, seed=3,
                                      mix={"update": 0.5,
                                           "insert": 0.5})
        analyzed = analyze_workload(workload, db)
        for statement in analyzed:
            assert isinstance(statement.plan, DmlOp)
            writes = [a for s in statement.subplans
                      for a in s.accesses if a.write]
            assert writes

    def test_insert_maintains_indexes(self):
        db = tpch.tpch_database()
        workload = oltp.oltp_workload(10, seed=4, mix={"insert": 1.0})
        analyzed = analyze_workload(workload, db)
        written = {a.object_name
                   for stmt in analyzed for s in stmt.subplans
                   for a in s.accesses if a.write}
        assert any(name.startswith("idx_") for name in written)

    def test_advisor_handles_oltp(self):
        db = tpch.tpch_database()
        advisor = LayoutAdvisor(db, winbench_farm(8))
        rec = advisor.recommend(oltp.oltp_workload(60, seed=6))
        assert rec.improvement_pct >= 0.0

    def test_lookups_use_clustered_point_access(self):
        db = tpch.tpch_database()
        workload = oltp.oltp_workload(10, seed=7, mix={"lookup": 1.0})
        analyzed = analyze_workload(workload, db)
        for statement in analyzed:
            blocks = sum(a.blocks for s in statement.subplans
                         for a in s.accesses)
            # A point lookup touches a handful of blocks, not a scan.
            assert blocks < 50
