"""Tests for `repro-advisor lint` and the typing/lint gate plumbing."""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.catalog.io import save_database, save_farm
from repro.cli import main
from repro.storage.disk import winbench_farm

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture
def lint_files(tmp_path, mini_db):
    save_database(mini_db, tmp_path / "db.json")
    save_farm(winbench_farm(8), tmp_path / "disks.json")
    (tmp_path / "w.sql").write_text(
        "-- name: J1\n"
        "SELECT COUNT(*) FROM big b, mid m WHERE b.k = m.k;\n")
    return tmp_path


def _base(lint_files, *extra):
    return ["lint",
            "--database", str(lint_files / "db.json"),
            "--disks", str(lint_files / "disks.json"), *extra]


class TestLintCommand:
    def test_clean_inputs_exit_zero(self, lint_files, capsys):
        rc = main(_base(lint_files))
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_info_only_exit_zero(self, lint_files, capsys):
        rc = main(_base(lint_files,
                        "--workload", str(lint_files / "w.sql")))
        assert rc == 0
        out = capsys.readouterr().out
        assert "ALR023" in out  # unused indexes / small table

    def test_error_constraints_exit_two(self, lint_files, capsys):
        (lint_files / "c.json").write_text(json.dumps(
            {"co_located": [["big", "order_archive"]]}))
        rc = main(_base(lint_files,
                        "--constraints", str(lint_files / "c.json")))
        assert rc == 2
        out = capsys.readouterr().out
        assert "ALR010" in out and "order_archive" in out

    def test_unbuildable_constraints_report_alr015(self, lint_files,
                                                   capsys):
        (lint_files / "c.json").write_text(json.dumps(
            {"availability": [
                {"object": "big", "level": "mirroring"},
                {"object": "big", "level": "parity"}]}))
        rc = main(_base(lint_files,
                        "--constraints", str(lint_files / "c.json")))
        assert rc == 2
        assert "ALR015" in capsys.readouterr().out

    def test_bad_layout_exit_two(self, lint_files, capsys):
        (lint_files / "l.json").write_text(json.dumps({
            "object_sizes": {"big": 100},
            "fractions": {"big": [0.5, 0.4, 0, 0, 0, 0, 0, 0]}}))
        rc = main(_base(lint_files,
                        "--layout", str(lint_files / "l.json")))
        assert rc == 2
        assert "ALR001" in capsys.readouterr().out

    def test_warning_layout_exit_one(self, lint_files, mini_db,
                                     capsys):
        """A valid one-disk layout leaves seven idle spindles."""
        sizes = mini_db.object_sizes()
        (lint_files / "l.json").write_text(json.dumps({
            "object_sizes": sizes,
            "fractions": {name: [1.0, 0, 0, 0, 0, 0, 0, 0]
                          for name in sizes}}))
        rc = main(_base(lint_files,
                        "--layout", str(lint_files / "l.json")))
        assert rc == 1
        assert "ALR004" in capsys.readouterr().out

    def test_json_format_is_machine_readable(self, lint_files,
                                             capsys):
        (lint_files / "c.json").write_text(json.dumps(
            {"co_located": [["big", "order_archive"]]}))
        rc = main(_base(lint_files,
                        "--workload", str(lint_files / "w.sql"),
                        "--constraints", str(lint_files / "c.json"),
                        "--format", "json"))
        assert rc == 2
        payload = json.loads(capsys.readouterr().out)
        rules = {d["rule"] for d in payload["diagnostics"]}
        assert "ALR010" in rules
        assert payload["summary"]["max_severity"] == "error"
        sample = payload["diagnostics"][0]
        assert set(sample) == {"rule", "severity", "message",
                               "location", "suggestion"}

    def test_rules_listing(self, capsys):
        rc = main(["lint", "--rules"])
        assert rc == 0
        out = capsys.readouterr().out
        for rule_id in ("ALR001", "ALR010", "ALR020", "ALR030"):
            assert rule_id in out

    def test_rules_listing_json(self, capsys):
        rc = main(["lint", "--rules", "--format", "json"])
        assert rc == 0
        rules = json.loads(capsys.readouterr().out)
        by_id = {r["rule"]: r for r in rules}
        assert by_id["ALR001"]["severity"] == "error"
        assert by_id["ALR004"]["category"] == "layout"

    def test_database_required_without_rules(self, capsys):
        rc = main(["lint"])
        assert rc == 2
        assert "--database" in capsys.readouterr().err

    def test_layout_requires_disks(self, lint_files, tmp_path,
                                   capsys):
        (tmp_path / "l.json").write_text("{}")
        rc = main(["lint",
                   "--database", str(lint_files / "db.json"),
                   "--layout", str(tmp_path / "l.json")])
        assert rc == 2
        assert "--disks" in capsys.readouterr().err


class TestBundledFixtures:
    """The TPC-H fixtures CI lints must exist and behave as documented."""

    def test_fixture_files_exist(self):
        fixtures = REPO / "examples" / "tpch"
        for name in ("db.json", "disks.json", "workload.sql",
                     "constraints.json", "constraints-infeasible.json"):
            assert (fixtures / name).is_file(), name

    def test_tpch_lint_is_info_only(self, capsys):
        fixtures = REPO / "examples" / "tpch"
        rc = main(["lint",
                   "--database", str(fixtures / "db.json"),
                   "--disks", str(fixtures / "disks.json"),
                   "--workload", str(fixtures / "workload.sql"),
                   "--constraints", str(fixtures / "constraints.json"),
                   "--format", "json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["error"] == 0
        assert payload["summary"]["warning"] == 0

    def test_infeasible_fixture_fails(self, capsys):
        fixtures = REPO / "examples" / "tpch"
        rc = main(["lint",
                   "--database", str(fixtures / "db.json"),
                   "--disks", str(fixtures / "disks.json"),
                   "--constraints",
                   str(fixtures / "constraints-infeasible.json")])
        assert rc == 2
        out = capsys.readouterr().out
        assert "ALR010" in out and "ALR012" in out


class TestTypingGate:
    """The packaging/config half of the lint gate."""

    def test_py_typed_marker_exists(self):
        assert (REPO / "src" / "repro" / "py.typed").is_file()

    def test_pyproject_declares_gates(self):
        text = (REPO / "pyproject.toml").read_text()
        assert "[tool.ruff]" in text
        assert "[tool.mypy]" in text
        assert '"repro.analysis.*"' in text
        assert 'repro = ["py.typed"]' in text

    def test_ci_has_lint_job(self):
        text = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        assert "ruff check" in text
        assert "mypy" in text
        assert "repro.cli lint" in text

    @pytest.mark.skipif(shutil.which("ruff") is None,
                        reason="ruff not installed")
    def test_ruff_clean(self):
        proc = subprocess.run(
            ["ruff", "check", "src", "tests"], cwd=REPO,
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    @pytest.mark.skipif(shutil.which("mypy") is None,
                        reason="mypy not installed")
    def test_mypy_gated_packages_clean(self):
        proc = subprocess.run(
            [sys.executable, "-m", "mypy"], cwd=REPO,
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr
