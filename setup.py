"""Legacy setuptools entry point.

Kept so that ``pip install -e .`` works in offline environments without
the ``wheel`` package (PEP 517 editable builds need it); metadata mirrors
pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Automating Layout of Relational Databases' "
        "(ICDE 2003): a workload-aware database layout advisor."
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={
        "console_scripts": ["repro-advisor = repro.cli:main"],
    },
)
