"""Nested, timed tracing spans for the advisor pipeline.

A :class:`Tracer` produces a tree of :class:`Span` objects — one per
instrumented pipeline phase (``span("analyze-workload")``,
``span("ts-greedy/step1")``, …) — with wall-clock timings, arbitrary
key/value attributes, a JSON round-trip, and a human-readable tree
renderer.  Library code takes an optional ``tracer=`` argument defaulting
to :data:`NULL_TRACER`, whose spans are shared no-op singletons, so
untraced callers pay one cheap method call per *phase* and nothing per
unit of work.

Span naming convention (see ``docs/observability.md``): lowercase,
dash-separated phase names; sub-phases of an algorithm use a ``/``
separator under the algorithm's own span (``ts-greedy/step2``).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator


@dataclass
class Span:
    """One timed phase: a node of the trace tree.

    Times are seconds relative to the owning tracer's epoch (its
    creation time), so exported traces are self-contained and
    machine-independent.
    """

    name: str
    start_s: float
    end_s: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    cpu_s: float = 0.0

    @property
    def duration_s(self) -> float:
        """Elapsed seconds; 0.0 while the span is still open."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute on the span."""
        self.attrs[key] = value

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (pre-order)."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def leaves(self) -> Iterator["Span"]:
        """The subtree's leaf spans, in tree order."""
        if not self.children:
            yield self
            return
        for child in self.children:
            yield from child.leaves()

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (plain floats, recursive children)."""
        out: dict[str, Any] = {
            "name": self.name,
            "start_s": round(float(self.start_s), 9),
            "duration_s": round(float(self.duration_s), 9),
            "cpu_s": round(float(self.cpu_s), 9),
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        """Inverse of :meth:`to_dict`."""
        start = float(data["start_s"])
        return cls(name=data["name"], start_s=start,
                   end_s=start + float(data["duration_s"]),
                   attrs=dict(data.get("attrs", {})),
                   children=[cls.from_dict(c)
                             for c in data.get("children", ())],
                   cpu_s=float(data.get("cpu_s", 0.0)))


class Tracer:
    """Collects a forest of nested, timed spans.

    Args:
        clock: Monotonic time source in seconds (injectable for tests).
        cpu_clock: Process CPU time source; each closed span carries
            the CPU seconds it covered (``span.cpu_s``), which the
            phase profiler aggregates.
        recorder: Optional :class:`repro.obs.events.EventRecorder`;
            when given, every span emits a ``phase-start`` event on
            open and a ``phase-end`` event (with wall/CPU seconds) on
            close, bridging the trace tree into the flight recorder's
            timeline.  Spans grafted via :meth:`attach` do not emit —
            the exporting process already recorded their events.

    Usage::

        tracer = Tracer()
        with tracer.span("recommend") as root:
            with tracer.span("analyze-workload", statements=22):
                ...
        print(tracer.render_tree())
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 cpu_clock: Callable[[], float] = time.process_time,
                 recorder=None):
        self._clock = clock
        self._cpu_clock = cpu_clock
        self._recorder = recorder
        self._epoch = clock()
        self._roots: list[Span] = []
        self._stack: list[Span] = []

    @property
    def roots(self) -> list[Span]:
        """Completed (and in-flight) top-level spans, oldest first."""
        return list(self._roots)

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs: Any):
        """Open a span named ``name``; nests under the current span."""
        node = Span(name=name, start_s=self._clock() - self._epoch,
                    attrs=dict(attrs))
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self._roots.append(node)
        self._stack.append(node)
        cpu_start = self._cpu_clock()
        if self._recorder is not None:
            self._recorder.emit("phase-start", phase=name)
        try:
            yield node
        finally:
            node.end_s = self._clock() - self._epoch
            node.cpu_s = self._cpu_clock() - cpu_start
            self._stack.pop()
            if self._recorder is not None:
                self._recorder.emit(
                    "phase-end", phase=name,
                    wall_s=round(node.duration_s, 9),
                    cpu_s=round(node.cpu_s, 9))

    def find(self, name: str) -> Span | None:
        """Most recent span named ``name`` across all roots."""
        for root in reversed(self._roots):
            found = root.find(name)
            if found is not None:
                return found
        return None

    def attach(self, span: Span) -> None:
        """Graft a completed span (tree) into the trace.

        Nests under the currently open span, or becomes a new root if
        none is open.  Used to merge span trees imported from other
        processes (e.g. portfolio workers); the attached tree keeps its
        original relative timings, which refer to the *exporting*
        tracer's epoch, not this one's.
        """
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self._roots.append(span)

    # -- export -----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form: ``{"spans": [root, ...]}``."""
        return {"spans": [root.to_dict() for root in self._roots]}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def write_json(self, path: str | Path) -> None:
        """Write the trace as a JSON file."""
        Path(path).write_text(self.to_json())

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Tracer":
        """Rebuild a (read-only) tracer from :meth:`to_dict` output."""
        tracer = cls()
        tracer._roots = [Span.from_dict(s) for s in data.get("spans", ())]
        return tracer

    def render_tree(self) -> str:
        """Human-readable span tree with durations and percentages."""
        lines: list[str] = []
        for root in self._roots:
            total = root.duration_s or 1e-12
            self._render(root, total, 0, lines)
        return "\n".join(lines)

    def _render(self, span: Span, total: float, depth: int,
                lines: list[str]) -> None:
        label = "  " * depth + span.name
        share = 100.0 * span.duration_s / total
        extra = ""
        if span.attrs:
            pairs = ", ".join(f"{k}={v}" for k, v in span.attrs.items())
            extra = f"  [{pairs}]"
        lines.append(f"{label:44s} {span.duration_s:9.4f}s "
                     f"{share:5.1f}%{extra}")
        for child in span.children:
            self._render(child, total, depth + 1, lines)


class _NullSpan:
    """Do-nothing stand-in for :class:`Span` (shared singleton)."""

    __slots__ = ()
    name = ""
    attrs: dict[str, Any] = {}
    children: list = []
    duration_s = 0.0

    def set(self, key: str, value: Any) -> None:
        pass

    def find(self, name: str) -> None:
        return None

    def leaves(self):
        return iter(())


class _NullSpanContext:
    """Reusable context manager yielding the shared null span."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """API-compatible tracer that records nothing.

    The default for every ``tracer=`` parameter in the library: one
    shared context-manager object is handed out for every span, so the
    untraced path allocates nothing.
    """

    @property
    def roots(self) -> list[Span]:
        return []

    @property
    def current(self) -> None:
        return None

    def span(self, name: str, **attrs: Any) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def find(self, name: str) -> None:
        return None

    def attach(self, span: Span) -> None:
        pass

    def to_dict(self) -> dict[str, Any]:
        return {"spans": []}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def write_json(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    def render_tree(self) -> str:
        return ""


#: Shared no-op tracer used as the default everywhere.
NULL_TRACER = NullTracer()
