"""Deterministic per-phase profiling for the bench and the perf gate.

Aggregates a run's tracer spans and metric counts into a fixed set of
algorithm phases — the paper's pipeline decomposition plus the fused
evaluator kernel — so `BENCH_search.json` can carry a versioned
per-phase breakdown and the CI perf gate can attribute a wall-time
regression to the phase that grew (see :func:`repro.perf_gate` — the
violation message names the slowest-growing phase).

The phase set is deliberately closed and stable: every breakdown
contains all seven phases (zeroed when a phase did not run), so gate
comparisons never have to reconcile schemas.  Version 2 added the
``evaluate`` phase (batched candidate-row evaluations inside the
fused kernel — count-only, like ``bound-prune``).
"""

from __future__ import annotations

from typing import Any

#: Schema version of the ``phases`` block in bench payloads.
PROFILE_VERSION = 2

#: The closed set of profiled phases, in pipeline order.
PHASES = ("expand", "kl", "greedy", "evaluate", "bound-prune",
          "anneal", "migration-plan")

#: span name -> phase.  Spans not listed here (orchestration wrappers
#: like ``recommend`` or ``portfolio``) are walked for their children
#: but contribute no time themselves.
_SPAN_PHASE: dict[str, str] = {
    "analyze-workload": "expand",
    "expand-concurrency": "expand",
    "build-access-graph": "expand",
    "build-evaluator": "expand",
    "ts-greedy/step1": "kl",
    "ts-greedy/step2": "greedy",
    "annealing": "anneal",
    "plan-migration": "migration-plan",
}

#: phase -> counter whose value is the phase's work count.  The
#: bound-prune and evaluate phases have no spans of their own (both
#: happen inside the greedy/annealing loops), so they contribute
#: counts with zero attributed time.
_PHASE_COUNTER: dict[str, str] = {
    "expand": "analyze.statements",
    "kl": "partition.kl_passes",
    "greedy": "greedy.evaluations",
    "evaluate": "costmodel.batch_rows",
    "bound-prune": "costmodel.bound_evaluations",
    "anneal": "annealing.proposals",
    "migration-plan": "incremental.migration_steps",
}


def phase_breakdown(tracer, metrics) -> dict[str, Any]:
    """Aggregate a run's spans and metrics into the six-phase schema.

    Args:
        tracer: A :class:`repro.obs.Tracer` (or anything with
            ``roots``); every span in the forest whose name maps to a
            phase contributes its wall and CPU time.  Sub-phase spans
            (``ts-greedy/step2`` under ``ts-greedy``) are counted once
            — the mapping only names leaf-level phase spans.
        metrics: A :class:`repro.obs.MetricsRegistry` (or anything with
            ``value``); supplies each phase's work count.

    Returns:
        ``{"version": 1, "phases": {phase: {"wall_s", "cpu_s",
        "count"}}}`` with every phase of :data:`PHASES` present.
    """
    totals = {phase: {"wall_s": 0.0, "cpu_s": 0.0, "count": 0.0}
              for phase in PHASES}

    def walk(span) -> None:
        phase = _SPAN_PHASE.get(span.name)
        if phase is not None:
            totals[phase]["wall_s"] += float(span.duration_s)
            totals[phase]["cpu_s"] += float(getattr(span, "cpu_s", 0.0))
        for child in span.children:
            walk(child)

    for root in tracer.roots:
        walk(root)
    for phase, counter in _PHASE_COUNTER.items():
        totals[phase]["count"] = float(metrics.value(counter))
    return {
        "version": PROFILE_VERSION,
        "phases": {phase: {"wall_s": round(entry["wall_s"], 9),
                           "cpu_s": round(entry["cpu_s"], 9),
                           "count": entry["count"]}
                   for phase, entry in totals.items()},
    }


def render_breakdown(breakdown: dict[str, Any]) -> str:
    """One-line-per-phase rendering for bench output."""
    lines = [f"{'phase':16s} {'count':>12s} {'wall':>10s} {'cpu':>10s}"]
    for phase in PHASES:
        entry = breakdown.get("phases", {}).get(phase)
        if entry is None:
            continue
        lines.append(f"{phase:16s} {entry['count']:12.0f} "
                     f"{entry['wall_s']:9.4f}s {entry['cpu_s']:9.4f}s")
    return "\n".join(lines)
