"""Counters, gauges and histograms for the advisor pipeline.

A :class:`MetricsRegistry` collects named instruments, created lazily on
first use: *counters* (monotone totals — cost-model evaluations, KL swap
moves, annealing accept/reject counts), *gauges* (last-written values —
access-graph node/edge counts), and *histograms* (distributions —
subplans per statement, candidate layouts per greedy step).

Metric naming convention (see ``docs/observability.md``): lowercase
``component.metric`` with dots as separators, e.g.
``costmodel.batch_rows`` or ``partition.kl_passes``.  The resilience
layer records its failure handling under ``resilience.*``:
``resilience.retries`` (extra in-process attempts),
``resilience.timeouts`` (trajectories lost to deadlines or per-future
caps), ``resilience.worker_crashes`` (trajectories lost to pool
breakage), ``resilience.serial_fallbacks`` (in-process re-runs after a
worker failure) and ``resilience.degraded`` (trajectories missing from
a returned result).

Like the tracer, every ``metrics=`` parameter in the library defaults to
:data:`NULL_METRICS`, whose instruments are shared no-op singletons.
"""

from __future__ import annotations

import json
from typing import Any, Iterator


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A distribution: running count/sum/min/max plus raw samples.

    Samples are kept verbatim up to ``max_samples`` (the pipeline's
    cardinalities are small); past the cap only the running aggregates
    keep updating, so summaries stay exact while memory stays bounded.
    """

    __slots__ = ("count", "total", "min", "max", "samples",
                 "max_samples")

    def __init__(self, max_samples: int = 10_000) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.samples: list[float] = []
        self.max_samples = max_samples

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self.samples) < self.max_samples:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge_summary(self, summary: dict) -> None:
        """Fold a :meth:`MetricsRegistry.to_dict` histogram entry in.

        Count, total, min and max merge exactly.  The remote samples
        are gone by snapshot time, so percentiles after a merge are
        approximate: the snapshot's p50/p95/p99 stand in as samples.
        """
        count = int(summary.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.total += float(summary.get("total", 0.0))
        self.min = min(self.min, float(summary["min"]))
        self.max = max(self.max, float(summary["max"]))
        for key in ("p50", "p95", "p99"):
            if key in summary and len(self.samples) < self.max_samples:
                self.samples.append(float(summary[key]))

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained samples."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1,
                   max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]


class MetricsRegistry:
    """Named counters, gauges and histograms, created on demand.

    A name identifies exactly one instrument; asking for it again with a
    different kind raises ``ValueError`` (catching typos early).

    With ``strict=True`` every accessed name must additionally be
    declared with the matching kind in
    :data:`repro.obs.names.METRIC_CATALOG`; an undeclared name raises
    ``ValueError``.  The test suite runs the whole pipeline strict, so
    new metric names must be added to the catalog before they can be
    emitted.
    """

    def __init__(self, strict: bool = False) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self.strict = strict

    # -- instrument accessors ---------------------------------------------

    def counter(self, name: str) -> Counter:
        self._check_kind(name, self._counters, "counter")
        return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        self._check_kind(name, self._gauges, "gauge")
        return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        self._check_kind(name, self._histograms, "histogram")
        return self._histograms.setdefault(name, Histogram())

    def _check_kind(self, name: str, expected: dict, kind: str) -> None:
        for table in (self._counters, self._gauges, self._histograms):
            if table is not expected and name in table:
                raise ValueError(
                    f"metric {name!r} already exists with another kind; "
                    f"cannot reuse it as a {kind}")
        if self.strict and name not in expected:
            from repro.obs.names import METRIC_CATALOG
            declared = METRIC_CATALOG.get(name)
            if declared is None:
                raise ValueError(
                    f"metric {name!r} is not declared in "
                    f"repro.obs.names.METRIC_CATALOG")
            if declared[0] != kind:
                raise ValueError(
                    f"metric {name!r} is declared as a {declared[0]}, "
                    f"not a {kind}")

    # -- convenience write paths ------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- read side ---------------------------------------------------------

    def value(self, name: str) -> float:
        """Current value of a counter or gauge (0.0 if never written)."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        return 0.0

    def names(self) -> Iterator[str]:
        yield from self._counters
        yield from self._gauges
        yield from self._histograms

    def merge(self, snapshot: dict[str, Any]) -> "MetricsRegistry":
        """Fold a :meth:`to_dict` snapshot into this registry.

        Counters add, gauges take the snapshot's value (last write
        wins), histograms merge via :meth:`Histogram.merge_summary`.
        This is how per-trajectory worker metrics reach the parent
        registry after a portfolio run.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, summary in snapshot.get("histograms", {}).items():
            self.histogram(name).merge_summary(summary)
        return self

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot of every instrument."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: {"count": h.count, "total": h.total,
                       "min": h.min if h.count else 0.0,
                       "max": h.max if h.count else 0.0,
                       "mean": h.mean,
                       "p50": h.percentile(50), "p95": h.percentile(95),
                       "p99": h.percentile(99)}
                for name, h in sorted(self._histograms.items())},
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """Human-readable metric summary, one instrument per line."""
        lines = ["=== metrics ==="]
        for name, counter in sorted(self._counters.items()):
            lines.append(f"{name:40s} {counter.value:14.6g}")
        for name, gauge in sorted(self._gauges.items()):
            lines.append(f"{name:40s} {gauge.value:14.6g}")
        for name, hist in sorted(self._histograms.items()):
            if not hist.count:
                continue
            lines.append(
                f"{name:40s} n={hist.count} mean={hist.mean:.6g} "
                f"min={hist.min:.6g} p50={hist.percentile(50):.6g} "
                f"p95={hist.percentile(95):.6g} "
                f"p99={hist.percentile(99):.6g} max={hist.max:.6g}")
        return "\n".join(lines)


class _NullInstrument:
    """Shared no-op counter/gauge/histogram."""

    __slots__ = ()
    value = 0.0
    count = 0
    total = 0.0
    min = 0.0
    max = 0.0
    mean = 0.0
    samples: list[float] = []

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """API-compatible registry that records nothing."""

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def inc(self, name: str, amount: float = 1.0) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def value(self, name: str) -> float:
        return 0.0

    def names(self) -> Iterator[str]:
        return iter(())

    def merge(self, snapshot: dict[str, Any]) -> "NullMetrics":
        return self

    def to_dict(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        return ""


#: Shared no-op registry used as the default everywhere.
NULL_METRICS = NullMetrics()
