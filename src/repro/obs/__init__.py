"""repro.obs — observability for the advisor pipeline.

Tracing spans (:class:`Tracer`), metrics (:class:`MetricsRegistry`) and
their zero-overhead no-op defaults (:data:`NULL_TRACER`,
:data:`NULL_METRICS`).  Every instrumented entry point in the library
accepts optional ``tracer=`` / ``metrics=`` arguments; passing nothing
selects the no-ops, which keep untouched callers bit-identical in
behavior and essentially free in cost.

See ``docs/observability.md`` for the span naming conventions and the
metric catalog.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "Span",
    "Tracer",
]
