"""repro.obs — observability for the advisor pipeline.

Tracing spans (:class:`Tracer`), metrics (:class:`MetricsRegistry`),
the flight recorder (:class:`EventRecorder` — an append-only JSONL
event timeline), exporters (Prometheus text exposition, OTLP-style
JSON spans), a deterministic phase profiler, and the zero-overhead
no-op defaults (:data:`NULL_TRACER`, :data:`NULL_METRICS`,
:data:`NULL_RECORDER`).  Every instrumented entry point in the library
accepts optional ``tracer=`` / ``metrics=`` / ``recorder=`` arguments;
passing nothing selects the no-ops, which keep untouched callers
bit-identical in behavior and essentially free in cost.

See ``docs/observability.md`` for the span naming conventions, the
event schema, and the metric catalog
(:data:`repro.obs.names.METRIC_CATALOG`).
"""

from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EVENT_TYPES,
    EventRecorder,
    NULL_RECORDER,
    NullRecorder,
    canonical_lines,
    read_events,
    render_timeline,
    validate_events,
)
from repro.obs.export import (
    parse_prometheus,
    to_otlp,
    to_prometheus,
    write_otlp,
    write_prometheus,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
)
from repro.obs.names import METRIC_CATALOG
from repro.obs.profile import PHASES, phase_breakdown, render_breakdown
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "EVENT_SCHEMA_VERSION",
    "EVENT_TYPES",
    "EventRecorder",
    "Gauge",
    "Histogram",
    "METRIC_CATALOG",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_RECORDER",
    "NULL_TRACER",
    "NullMetrics",
    "NullRecorder",
    "NullTracer",
    "PHASES",
    "Span",
    "Tracer",
    "canonical_lines",
    "parse_prometheus",
    "phase_breakdown",
    "read_events",
    "render_breakdown",
    "render_timeline",
    "to_otlp",
    "to_prometheus",
    "validate_events",
    "write_otlp",
    "write_prometheus",
]
