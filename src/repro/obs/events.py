"""The flight recorder: an append-only, typed, structured event log.

Where :mod:`repro.obs.trace` answers "how long did each phase take"
and :mod:`repro.obs.metrics` answers "how much work happened", the
flight recorder answers "*what happened, in what order*": every advisor
run can emit a single ordered JSONL timeline of typed events — pipeline
phases, greedy/KL/annealing iterations, portfolio trajectory lifecycle,
resilience incidents (retries, timeouts, worker crashes, serial
fallbacks, degraded results), drift scores and migration steps — that
survives the process and can be shipped, diffed and rendered later
(``repro-advisor inspect events.jsonl``).

Event record (one JSON object per line)::

    {"seq": 17, "ts_s": 0.0813, "run_id": "a3f1c9d2e4b5",
     "source": "trajectory-2", "type": "greedy-iteration",
     "data": {"iteration": 3, "candidates": 41, ...}}

* ``seq`` is the parent-assigned append order — the total order of the
  timeline.  Worker events are relayed through the portfolio engine's
  telemetry-merge path and re-sequenced there in trajectory order, so
  a ``jobs=4`` run produces the same ordered timeline as ``jobs=1``.
* ``ts_s`` is a monotonic timestamp relative to the emitting
  recorder's epoch (wall-clock free, machine-independent in meaning
  though not in value).
* ``run_id`` identifies the run; relayed worker events are re-stamped
  with the parent's run id.
* ``source`` is ``"parent"`` or ``"trajectory-<i>"``.
* ``type`` must be declared in :data:`EVENT_TYPES` — an undeclared
  type raises ``ValueError`` at emit time, so the schema below is the
  schema, not a convention.

Determinism: two identical seeded runs produce byte-identical event
files once the volatile fields (timestamps, run ids, measured
durations — see :data:`VOLATILE_FIELDS` / :data:`VOLATILE_DATA_KEYS`)
are stripped; :func:`canonical_lines` does exactly that and is what the
determinism tests compare.

Like the tracer and the metrics registry, every ``recorder=`` parameter
in the library defaults to :data:`NULL_RECORDER`, a shared no-op.
"""

from __future__ import annotations

import json
import time
import uuid
from pathlib import Path
from typing import Any, Callable, IO, Iterable, Sequence

from repro.errors import EventLogFormatError

#: Current schema version, stamped into ``run-start`` events.
EVENT_SCHEMA_VERSION = 1

#: Every event type the pipeline may emit, with a one-line description.
#: ``EventRecorder.emit`` rejects anything not declared here.
EVENT_TYPES: dict[str, str] = {
    "run-start": "an advisor CLI/bench run began (command, inputs)",
    "run-end": "the run finished (status, wall_s)",
    "phase-start": "a traced pipeline phase opened (phase)",
    "phase-end": "a traced pipeline phase closed (phase, wall_s, cpu_s)",
    "workload-ingest": "a profiler trace was folded into a workload "
                       "(path, statements, groups, overlap_factor)",
    "greedy-iteration": "one TS-GREEDY step-2 iteration (iteration, "
                        "candidates, best_cost, accepted, changed)",
    "kl-pass": "one KL partitioning pass converged (pass_index, "
               "cut_weight)",
    "anneal-step": "sampled annealing progress (proposal, best_cost, "
                   "temperature)",
    "trajectory-start": "a portfolio trajectory was dispatched "
                        "(index, label)",
    "trajectory-end": "a portfolio trajectory completed (index, label, "
                      "cost)",
    "trajectory-failed": "a trajectory produced no result (index, "
                         "label, cause, attempts, message)",
    "retry": "a failed trajectory is being re-attempted in-process "
             "(index, label, attempt)",
    "timeout": "a trajectory exceeded its budget (index, label, "
               "budget_s)",
    "worker-crash": "a trajectory was lost to a dead worker process "
                    "(index, label, message)",
    "serial-fallback": "a lost trajectory is re-run in-process "
                       "(index, label, cause)",
    "degraded": "the run returned a partial result (failed, total, "
                "causes)",
    "drift-score": "a workload drift comparison finished (score, "
                   "node_drift, edge_drift, relayout_recommended)",
    "migration-plan": "a migration plan was produced (steps, "
                      "moved_blocks, staged_blocks, est_seconds)",
    "migration-step": "one planned move (step, obj, src, dst, blocks, "
                      "staged)",
    "migration-exec-start": "a journaled migration execution began "
                            "(mode, steps, journal)",
    "migration-intent": "a step's intent record was journaled (step, "
                        "phase, obj, src, dst, blocks, staged)",
    "migration-step-done": "a step's transfer completed and was "
                           "journaled (step, phase, attempts)",
    "migration-exec-end": "a journaled migration execution finished "
                          "(status, executed, skipped)",
    "migration-resume": "execution resumed from a journal (done, "
                        "pending)",
    "migration-rollback": "a capacity-safe reverse path was planned "
                          "(steps, from_step)",
    "migration-window": "one online-migration foreground window "
                        "(window, foreground_s, baseline_s, "
                        "migration_blocks)",
    "server-start": "the advisor service began accepting requests "
                    "(workers, max_queue)",
    "server-stop": "the advisor service drained and shut down "
                   "(jobs_completed)",
    "server-tenant": "a tenant catalog or workload was uploaded "
                     "(tenant, kind)",
    "server-job-queued": "a job was admitted to the queue (job_id, "
                         "tenant, method, fingerprint, depth)",
    "server-job-started": "a worker picked a job up (job_id)",
    "server-job-finished": "a job completed (job_id, status, degraded, "
                           "cache)",
    "server-job-rejected": "a submission was bounced with 429 (tenant, "
                           "depth, retry_after_s)",
    "server-cache-hit": "a submission was served from the fingerprint "
                        "cache (job_id, fingerprint)",
    "note": "free-form annotation (message)",
}

#: Top-level record fields stripped by :func:`canonical_lines` —
#: timestamps and run identity vary between otherwise-identical runs.
VOLATILE_FIELDS = ("ts_s", "run_id")

#: ``data`` keys stripped by :func:`canonical_lines` — measured
#: durations are real time, never deterministic.
VOLATILE_DATA_KEYS = ("wall_s", "cpu_s", "budget_s", "elapsed_s")

#: Fields every well-formed event record must carry.
REQUIRED_FIELDS = ("seq", "ts_s", "run_id", "source", "type", "data")


def new_run_id() -> str:
    """A short unique run identifier (12 hex chars)."""
    return uuid.uuid4().hex[:12]


class EventRecorder:
    """Collects (and optionally streams) the run's event timeline.

    Args:
        run_id: Run identifier; generated when omitted.  Relayed
            worker events are re-stamped with this id by
            :meth:`ingest`.
        source: Name stamped on every event this recorder emits —
            ``"parent"`` for the main process, ``"trajectory-<i>"``
            inside portfolio workers.
        clock: Monotonic time source (injectable for tests).
        path: Optional JSONL sink; when given, every event is appended
            and flushed as it is emitted, so a crashed run still leaves
            a readable prefix of its timeline on disk.

    Usage::

        recorder = EventRecorder(path="events.jsonl")
        recorder.emit("run-start", command="recommend")
        ...
        recorder.emit("run-end", status="ok")
        recorder.close()
    """

    def __init__(self, run_id: str | None = None,
                 source: str = "parent",
                 clock: Callable[[], float] = time.perf_counter,
                 path: str | Path | None = None):
        self.run_id = run_id or new_run_id()
        self.source = source
        self._clock = clock
        self._epoch = clock()
        self._events: list[dict[str, Any]] = []
        self._sink: IO[str] | None = None
        self._path = Path(path) if path is not None else None
        if self._path is not None:
            self._sink = open(self._path, "a")

    # -- write side --------------------------------------------------------

    def emit(self, type_: str, **data: Any) -> dict[str, Any]:
        """Append one typed event; returns the record.

        Raises:
            ValueError: When ``type_`` is not declared in
                :data:`EVENT_TYPES` — every event type must be part of
                the documented schema.
        """
        if type_ not in EVENT_TYPES:
            raise ValueError(
                f"undeclared event type {type_!r}; declare it in "
                f"repro.obs.events.EVENT_TYPES")
        event = {
            "seq": len(self._events),
            "ts_s": round(self._clock() - self._epoch, 9),
            "run_id": self.run_id,
            "source": self.source,
            "type": type_,
            "data": data,
        }
        self._append(event)
        return event

    def ingest(self, events: Iterable[dict[str, Any]],
               ) -> list[dict[str, Any]]:
        """Relay events recorded elsewhere (e.g. a pool worker).

        Each event keeps its own ``source``, ``ts_s`` (relative to the
        *emitting* recorder's epoch), ``type`` and ``data``, but is
        re-sequenced into this recorder's timeline and re-stamped with
        this recorder's ``run_id`` — one run, one id, one total order.
        The portfolio engine calls this in sorted trajectory order, so
        the merged timeline is deterministic regardless of ``jobs``.
        """
        ingested = []
        for event in events:
            type_ = event.get("type", "")
            if type_ not in EVENT_TYPES:
                raise ValueError(
                    f"undeclared event type {type_!r} in relayed event")
            record = {
                "seq": len(self._events),
                "ts_s": float(event.get("ts_s", 0.0)),
                "run_id": self.run_id,
                "source": str(event.get("source", "unknown")),
                "type": type_,
                "data": dict(event.get("data", {})),
            }
            self._append(record)
            ingested.append(record)
        return ingested

    def _append(self, event: dict[str, Any]) -> None:
        self._events.append(event)
        if self._sink is not None:
            self._sink.write(json.dumps(event, sort_keys=True) + "\n")
            self._sink.flush()

    # -- read side ---------------------------------------------------------

    @property
    def events(self) -> list[dict[str, Any]]:
        """The recorded events, in append (= timeline) order."""
        return list(self._events)

    def snapshot(self) -> list[dict[str, Any]]:
        """JSON-ready copy of every event, for cross-process relay."""
        return [dict(e, data=dict(e["data"])) for e in self._events]

    def write_jsonl(self, path: str | Path) -> None:
        """Write the full timeline as a JSONL file (one event/line)."""
        with open(path, "w") as handle:
            for event in self._events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")

    def close(self) -> None:
        """Close the streaming sink, if one is open."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def __enter__(self) -> "EventRecorder":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class NullRecorder:
    """API-compatible recorder that records nothing (shared default)."""

    run_id = ""
    source = "null"

    def emit(self, type_: str, **data: Any) -> dict[str, Any]:
        return {}

    def ingest(self, events: Iterable[dict[str, Any]],
               ) -> list[dict[str, Any]]:
        return []

    @property
    def events(self) -> list[dict[str, Any]]:
        return []

    def snapshot(self) -> list[dict[str, Any]]:
        return []

    def write_jsonl(self, path: str | Path) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullRecorder":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


#: Shared no-op recorder used as the default everywhere.
NULL_RECORDER = NullRecorder()


# -- reading and validating event files ---------------------------------------


def read_events(path: str | Path) -> list[dict[str, Any]]:
    """Parse a JSONL event file back into event records.

    Raises:
        EventLogFormatError: When the file cannot be read, a line is
            not valid JSON, or a record is not a JSON object; the
            message names the file and the offending line.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise EventLogFormatError(
            f"cannot read event log: {error}",
            path=str(path)) from None
    events: list[dict[str, Any]] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise EventLogFormatError(
                f"event log line is not valid JSON: {error}",
                path=str(path), line=number) from None
        if not isinstance(record, dict):
            raise EventLogFormatError(
                f"event record must be a JSON object, got "
                f"{type(record).__name__}", path=str(path), line=number)
        events.append(record)
    return events


def validate_events(events: Sequence[dict[str, Any]]) -> list[str]:
    """Structural problems of an event timeline (empty list = valid).

    Checks: required fields present, event types declared, ``seq``
    strictly increasing from 0 (the single-total-order property the
    ``inspect`` renderer relies on), one ``run_id`` per file.
    """
    problems: list[str] = []
    run_ids = set()
    for position, event in enumerate(events):
        missing = [f for f in REQUIRED_FIELDS if f not in event]
        if missing:
            problems.append(f"event {position}: missing fields "
                            f"{missing}")
            continue
        if event["type"] not in EVENT_TYPES:
            problems.append(f"event {position}: undeclared type "
                            f"{event['type']!r}")
        if event["seq"] != position:
            problems.append(f"event {position}: seq {event['seq']} "
                            f"breaks the total order")
        if not isinstance(event["data"], dict):
            problems.append(f"event {position}: data is not an object")
        run_ids.add(event["run_id"])
    if len(run_ids) > 1:
        problems.append(f"multiple run_ids in one timeline: "
                        f"{sorted(run_ids)}")
    return problems


def canonical_lines(events: Sequence[dict[str, Any]]) -> list[str]:
    """Deterministic rendering of a timeline, volatile fields stripped.

    Two identical seeded runs must produce byte-identical canonical
    lines; this is the form the determinism tests compare.  Strips
    :data:`VOLATILE_FIELDS` from each record and
    :data:`VOLATILE_DATA_KEYS` from each record's ``data``.
    """
    lines = []
    for event in events:
        record = {k: v for k, v in event.items()
                  if k not in VOLATILE_FIELDS}
        record["data"] = {k: v for k, v in event.get("data", {}).items()
                          if k not in VOLATILE_DATA_KEYS}
        lines.append(json.dumps(record, sort_keys=True))
    return lines


# -- the `inspect` renderer ----------------------------------------------------

#: Event types shown line-by-line in the timeline (high-level
#: lifecycle; per-iteration events are summarized, not listed).
_TIMELINE_TYPES = frozenset({
    "run-start", "run-end", "workload-ingest",
    "trajectory-start", "trajectory-end", "trajectory-failed",
    "retry", "timeout", "worker-crash", "serial-fallback", "degraded",
    "drift-score", "migration-plan",
    "migration-exec-start", "migration-exec-end",
    "migration-resume", "migration-rollback",
    "server-start", "server-stop", "server-tenant",
    "server-job-queued", "server-job-started", "server-job-finished",
    "server-job-rejected", "server-cache-hit",
})


def _describe(event: dict[str, Any]) -> str:
    data = event.get("data", {})
    pairs = ", ".join(f"{k}={v}" for k, v in data.items()
                      if not isinstance(v, (list, dict)))
    return pairs


def render_timeline(events: Sequence[dict[str, Any]],
                    top: int = 10) -> str:
    """Human-readable timeline + hotspot table for ``inspect``.

    Shows the run header, the lifecycle timeline (phases collapsed to
    their closing event, per-iteration events summarized as counts),
    and a top-``top`` hotspot table aggregating ``phase-end`` wall/CPU
    time by phase name across every source.
    """
    if not events:
        return "(empty event log)"
    run_id = events[0].get("run_id", "?")
    sources = sorted({e.get("source", "?") for e in events})
    counts: dict[str, int] = {}
    for event in events:
        counts[event.get("type", "?")] = \
            counts.get(event.get("type", "?"), 0) + 1
    lines = [
        f"=== flight recorder: run {run_id} ===",
        f"{len(events)} events from {len(sources)} source(s): "
        f"{', '.join(sources)}",
        "",
        "--- timeline ---",
    ]
    for event in events:
        type_ = event.get("type", "?")
        if type_ in _TIMELINE_TYPES:
            lines.append(f"  [{event.get('seq', '?'):>4}] "
                         f"{event.get('source', '?'):14s} "
                         f"{type_:18s} {_describe(event)}")
        elif type_ == "phase-end":
            data = event.get("data", {})
            lines.append(f"  [{event.get('seq', '?'):>4}] "
                         f"{event.get('source', '?'):14s} "
                         f"{'phase':18s} "
                         f"{data.get('phase', '?')} "
                         f"({data.get('wall_s', 0.0):.4f}s)")
    iteration_counts = {t: n for t, n in sorted(counts.items())
                        if t in ("greedy-iteration", "kl-pass",
                                 "anneal-step", "migration-step",
                                 "migration-intent",
                                 "migration-step-done",
                                 "migration-window")}
    if iteration_counts:
        summary = ", ".join(f"{n} {t}" for t, n
                            in iteration_counts.items())
        lines.append(f"  (iteration events summarized: {summary})")
    hotspots = _hotspots(events)
    if hotspots:
        lines.append("")
        lines.append(f"--- top {min(top, len(hotspots))} hotspots "
                     f"(by wall time) ---")
        lines.append(f"  {'phase':28s} {'count':>5s} {'wall':>9s} "
                     f"{'cpu':>9s}")
        for phase, (count, wall, cpu) in hotspots[:top]:
            lines.append(f"  {phase:28s} {count:5d} {wall:8.4f}s "
                         f"{cpu:8.4f}s")
    degraded = [e for e in events if e.get("type") == "degraded"]
    if degraded:
        data = degraded[-1].get("data", {})
        lines.append("")
        lines.append(f"degraded run: {data.get('failed', '?')}/"
                     f"{data.get('total', '?')} trajectories failed "
                     f"({data.get('causes', '?')})")
    return "\n".join(lines)


def _hotspots(events: Sequence[dict[str, Any]],
              ) -> list[tuple[str, tuple[int, float, float]]]:
    """(phase, (count, wall_s, cpu_s)) aggregated over phase-end
    events, sorted by wall time descending (name-tiebroken)."""
    totals: dict[str, list[float]] = {}
    for event in events:
        if event.get("type") != "phase-end":
            continue
        data = event.get("data", {})
        phase = str(data.get("phase", "?"))
        entry = totals.setdefault(phase, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += float(data.get("wall_s", 0.0))
        entry[2] += float(data.get("cpu_s", 0.0))
    return sorted(
        ((phase, (int(c), w, cpu))
         for phase, (c, w, cpu) in totals.items()),
        key=lambda item: (-item[1][1], item[0]))
