"""Metric and span exporters: Prometheus text exposition and OTLP JSON.

Two standard wire formats for the telemetry the advisor already
collects in memory:

* :func:`to_prometheus` renders a :class:`~repro.obs.MetricsRegistry`
  in the Prometheus text exposition format — counters and gauges as
  single samples, histograms as summaries with p50/p95/p99 quantile
  samples plus ``_sum``/``_count`` — with ``# HELP``/``# TYPE`` lines
  taken from :data:`repro.obs.names.METRIC_CATALOG`.  Metric names are
  sanitized (dots become underscores) and prefixed ``repro_``.
* :func:`to_otlp` renders a :class:`~repro.obs.Tracer`'s span forest
  as an OTLP/JSON-shaped document (``resourceSpans`` → ``scopeSpans``
  → ``spans`` with hex trace/span ids and nanosecond timestamps),
  ready to feed an OTLP-compatible ingester.  Ids are derived
  deterministically from the run id and span order, so identical runs
  export identical documents.

:func:`parse_prometheus` is a pure-python validator of the exposition
format (used by the CI lint job's format check and ``--self-test``);
it has no external dependencies by design.
"""

from __future__ import annotations

import hashlib
import json
import re
import sys
from pathlib import Path
from typing import Any

from repro.obs.names import metric_help, metric_kind

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_PREFIX = "repro_"

#: Histogram quantiles exported as Prometheus summary samples.
QUANTILES = ((50, "0.5"), (95, "0.95"), (99, "0.99"))


def _sanitize(name: str) -> str:
    return _PREFIX + re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def _format_value(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def to_prometheus(metrics) -> str:
    """Prometheus text-exposition rendering of a metrics registry.

    Accepts a :class:`~repro.obs.MetricsRegistry` (anything with
    ``to_dict``) or an already-snapshotted dict.  Histograms become
    summary families: quantile samples for p50/p95/p99 plus ``_sum``
    and ``_count`` series.
    """
    snapshot = metrics if isinstance(metrics, dict) else metrics.to_dict()
    lines: list[str] = []

    def header(raw_name: str, prom_name: str, prom_type: str) -> None:
        help_text = metric_help(raw_name)
        if help_text:
            lines.append(f"# HELP {prom_name} {help_text}")
        lines.append(f"# TYPE {prom_name} {prom_type}")

    for name, value in sorted(snapshot.get("counters", {}).items()):
        prom = _sanitize(name) + "_total"
        header(name, prom, "counter")
        lines.append(f"{prom} {_format_value(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        prom = _sanitize(name)
        header(name, prom, "gauge")
        lines.append(f"{prom} {_format_value(value)}")
    for name, summary in sorted(snapshot.get("histograms", {}).items()):
        prom = _sanitize(name)
        header(name, prom, "summary")
        for q_key, q_label in QUANTILES:
            value = summary.get(f"p{q_key}", 0.0)
            lines.append(f'{prom}{{quantile="{q_label}"}} '
                         f"{_format_value(value)}")
        lines.append(f"{prom}_sum "
                     f"{_format_value(summary.get('total', 0.0))}")
        lines.append(f"{prom}_count "
                     f"{_format_value(summary.get('count', 0))}")
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(metrics, path: str | Path) -> None:
    """Write :func:`to_prometheus` output to ``path``."""
    Path(path).write_text(to_prometheus(metrics))


def parse_prometheus(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Validate Prometheus text exposition format (pure python).

    Returns ``{metric_name: [(labels, value), ...]}``.

    Raises:
        ValueError: On any malformed line, naming the 1-based line
            number — an invalid metric name, unparsable labels, a
            non-numeric value, or a ``TYPE``/``HELP`` comment for an
            invalid name.
    """
    series: dict[str, list[tuple[dict, float]]] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                if not _NAME_OK.match(parts[2]):
                    raise ValueError(
                        f"line {number}: invalid metric name in "
                        f"{parts[1]} comment: {parts[2]!r}")
                if parts[1] == "TYPE" and (
                        len(parts) < 4 or parts[3] not in (
                            "counter", "gauge", "histogram", "summary",
                            "untyped")):
                    kind = parts[3] if len(parts) > 3 else ""
                    raise ValueError(
                        f"line {number}: unknown metric type "
                        f"{kind!r}")
            continue
        match = re.match(
            r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"      # metric name
            r"(?:\{([^}]*)\})?"                  # optional label set
            r"\s+(\S+)"                          # value
            r"(?:\s+(-?\d+))?$",                 # optional timestamp
            line)
        if match is None:
            raise ValueError(f"line {number}: unparsable sample: "
                             f"{line!r}")
        name, label_text, value_text = match.group(1, 2, 3)
        labels: dict[str, str] = {}
        if label_text:
            for pair in filter(None, label_text.split(",")):
                pair_match = re.match(
                    r'^\s*([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
                    r"\s*$", pair)
                if pair_match is None:
                    raise ValueError(
                        f"line {number}: malformed label {pair!r}")
                labels[pair_match.group(1)] = pair_match.group(2)
        try:
            value = float(value_text)
        except ValueError:
            raise ValueError(f"line {number}: non-numeric value "
                             f"{value_text!r}") from None
        series.setdefault(name, []).append((labels, value))
    return series


# -- OTLP-style JSON span export ----------------------------------------------


def _span_to_otlp(span, trace_id: str, parent_id: str,
                  counter: list[int]) -> list[dict[str, Any]]:
    span_id = f"{counter[0]:016x}"
    counter[0] += 1
    record = {
        "traceId": trace_id,
        "spanId": span_id,
        "name": span.name,
        "kind": "SPAN_KIND_INTERNAL",
        "startTimeUnixNano": str(int(span.start_s * 1e9)),
        "endTimeUnixNano": str(int((span.end_s if span.end_s is not None
                                    else span.start_s) * 1e9)),
        "attributes": [
            {"key": key, "value": _otlp_value(value)}
            for key, value in span.attrs.items()
        ] + [{"key": "cpu_s",
              "value": {"doubleValue": float(span.cpu_s)}}],
    }
    if parent_id:
        record["parentSpanId"] = parent_id
    records = [record]
    for child in span.children:
        records.extend(_span_to_otlp(child, trace_id, span_id, counter))
    return records


def _otlp_value(value: Any) -> dict[str, Any]:
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def to_otlp(tracer, run_id: str = "") -> dict[str, Any]:
    """OTLP/JSON-shaped document for a tracer's span forest.

    The trace id is the md5 of ``run_id`` (or of the empty string) and
    span ids are sequential in pre-order, so the export is a pure
    function of the trace — identical seeded runs export identically.
    """
    trace_id = hashlib.md5(run_id.encode()).hexdigest()
    counter = [1]
    spans: list[dict[str, Any]] = []
    for root in tracer.roots:
        spans.extend(_span_to_otlp(root, trace_id, "", counter))
    return {
        "resourceSpans": [{
            "resource": {"attributes": [
                {"key": "service.name",
                 "value": {"stringValue": "repro-advisor"}},
                {"key": "run.id", "value": {"stringValue": run_id}},
            ]},
            "scopeSpans": [{
                "scope": {"name": "repro.obs", "version": "2"},
                "spans": spans,
            }],
        }],
    }


def write_otlp(tracer, path: str | Path, run_id: str = "") -> None:
    """Write :func:`to_otlp` output as a JSON file."""
    Path(path).write_text(json.dumps(to_otlp(tracer, run_id), indent=2))


# -- self test (used by the CI lint job) --------------------------------------


def self_test() -> str:
    """Round-trip a synthetic registry through the exposition format.

    Builds a registry exercising all three instrument kinds, renders
    it, re-parses the text with :func:`parse_prometheus`, and checks
    the values survive.  Returns a one-line summary; raises on any
    mismatch.
    """
    from repro.obs.metrics import MetricsRegistry
    metrics = MetricsRegistry(strict=True)
    metrics.inc("greedy.evaluations", 42)
    metrics.set_gauge("drift.score", 0.125)
    for value in (1, 2, 3, 4, 100):
        metrics.observe("greedy.candidates_per_iteration", value)
    text = to_prometheus(metrics)
    series = parse_prometheus(text)
    checks = {
        "repro_greedy_evaluations_total": 42.0,
        "repro_drift_score": 0.125,
        "repro_greedy_candidates_per_iteration_count": 5.0,
        "repro_greedy_candidates_per_iteration_sum": 110.0,
    }
    for name, expected in checks.items():
        [(labels, value)] = series[name]
        if value != expected:
            raise AssertionError(f"{name}: expected {expected}, "
                                 f"parsed {value}")
    quantiles = {labels["quantile"]: value for labels, value
                 in series["repro_greedy_candidates_per_iteration"]}
    if set(quantiles) != {"0.5", "0.95", "0.99"}:
        raise AssertionError(f"unexpected quantile set: "
                             f"{sorted(quantiles)}")
    return (f"prometheus exposition self-test ok: "
            f"{sum(len(v) for v in series.values())} samples across "
            f"{len(series)} series round-tripped")


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.obs.export [--self-test | --check FILE]``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv == ["--self-test"] or not argv:
        print(self_test())
        return 0
    if len(argv) == 2 and argv[0] == "--check":
        try:
            series = parse_prometheus(Path(argv[1]).read_text())
        except (OSError, ValueError) as error:
            print(f"invalid: {error}", file=sys.stderr)
            return 1
        print(f"valid: {sum(len(v) for v in series.values())} samples "
              f"across {len(series)} series")
        return 0
    print("usage: python -m repro.obs.export [--self-test | "
          "--check FILE]", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
