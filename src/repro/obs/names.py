"""The metric-name registry: one table declaring every metric.

Every counter, gauge and histogram the library emits is declared here
with its kind and a one-line help string.  The table serves three
consumers:

* ``MetricsRegistry(strict=True)`` rejects any emission whose name is
  not declared (or whose kind disagrees) — the test suite runs the
  whole pipeline in strict mode, so an undeclared metric name cannot
  ship;
* :func:`repro.obs.export.to_prometheus` takes ``# HELP`` and
  ``# TYPE`` lines from here;
* ``docs/observability.md`` documents exactly this table.

To add a metric: declare it here first, then emit it.  The
``tests/test_metric_names.py`` backstop greps the source tree for
``inc(`` / ``set_gauge(`` / ``observe(`` literals and fails on any
string not in this table.
"""

from __future__ import annotations

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: name -> (kind, help).  Keep sorted by name within each section.
METRIC_CATALOG: dict[str, tuple[str, str]] = {
    # -- static analysis / preflight ------------------------------------
    "analysis.audit_findings": (
        COUNTER, "post-search audit diagnostics raised"),
    "analysis.errors": (
        COUNTER, "error-level preflight diagnostics"),
    "analysis.info": (
        COUNTER, "info-level preflight diagnostics"),
    "analysis.migration_findings": (
        COUNTER, "migration-plan audit diagnostics raised"),
    "analysis.warnings": (
        COUNTER, "warning-level preflight diagnostics"),
    # -- workload expansion ---------------------------------------------
    "analyze.statements": (
        COUNTER, "workload statements analyzed"),
    "analyze.subplans_per_statement": (
        HISTOGRAM, "access-path subplans derived per statement"),
    # -- annealing trajectory -------------------------------------------
    "annealing.accepted": (
        COUNTER, "annealing proposals accepted"),
    "annealing.infeasible": (
        COUNTER, "annealing proposals rejected as infeasible"),
    "annealing.proposals": (
        COUNTER, "annealing proposals generated"),
    "annealing.rejected": (
        COUNTER, "annealing proposals rejected by temperature"),
    # -- advisor summary ------------------------------------------------
    "advisor.improvement_pct": (
        GAUGE, "recommended layout's cost improvement over baseline"),
    # -- cost model -----------------------------------------------------
    "costmodel.base_evaluations": (
        COUNTER, "from-scratch layout cost evaluations"),
    "costmodel.batch_evaluations": (
        COUNTER, "vectorized batch cost evaluations"),
    "costmodel.batch_rows": (
        COUNTER, "candidate rows evaluated across batches"),
    "costmodel.bound_evaluations": (
        COUNTER, "lower-bound evaluations used to prune candidates"),
    "costmodel.commit_evaluations": (
        COUNTER, "O(delta) base-cost commits of adopted moves"),
    "costmodel.delta_evaluations": (
        COUNTER, "incremental delta cost evaluations"),
    "costmodel.fused_evaluations": (
        COUNTER, "fused prune+evaluate kernel invocations"),
    "costmodel.full_evaluations": (
        COUNTER, "full layout cost evaluations"),
    "costmodel.subplans": (
        GAUGE, "distinct subplans after concurrency expansion"),
    "costmodel.subplans_raw": (
        GAUGE, "subplans before concurrency expansion"),
    # -- workload drift -------------------------------------------------
    "drift.edge_drift": (
        GAUGE, "normalized co-access edge-weight drift"),
    "drift.node_drift": (
        GAUGE, "normalized referenced-block drift"),
    "drift.relayout_recommended": (
        COUNTER, "drift comparisons that crossed the re-layout threshold"),
    "drift.score": (
        GAUGE, "combined workload drift score in [0, 1]"),
    # -- access graph ---------------------------------------------------
    "graph.edges": (
        GAUGE, "co-access graph edge count"),
    "graph.nodes": (
        GAUGE, "co-access graph node count"),
    "graph.total_edge_weight": (
        GAUGE, "sum of co-access edge weights"),
    # -- TS-GREEDY search -----------------------------------------------
    "greedy.accepted_moves": (
        COUNTER, "greedy candidate moves accepted"),
    "greedy.candidates_per_iteration": (
        HISTOGRAM, "candidate moves evaluated per greedy iteration"),
    "greedy.evaluations": (
        COUNTER, "candidate layouts cost-evaluated by greedy"),
    "greedy.iterations": (
        COUNTER, "greedy step-2 iterations executed"),
    "greedy.pruned_candidates": (
        COUNTER, "candidates discarded by the lower-bound prune"),
    # -- incremental re-layout ------------------------------------------
    "incremental.full_relayout_fallbacks": (
        COUNTER, "incremental searches that fell back to full re-layout"),
    "incremental.migration_steps": (
        COUNTER, "steps in the produced migration plan"),
    "incremental.moved_blocks": (
        GAUGE, "blocks the migration plan moves"),
    "incremental.moved_fraction": (
        GAUGE, "fraction of stored blocks the plan moves"),
    "incremental.projected_moves": (
        COUNTER, "candidate placements projected onto the movement budget"),
    "incremental.staged_blocks": (
        GAUGE, "blocks staged through scratch space"),
    # -- migration execution / online impact ----------------------------
    "migration.executed_steps": (
        COUNTER, "plan steps executed and journaled as done"),
    "migration.foreground_degradation": (
        GAUGE, "mean foreground slowdown factor while migrating"),
    "migration.resumes": (
        COUNTER, "executions resumed from an interrupted journal"),
    "migration.rollbacks": (
        COUNTER, "journaled rollbacks executed back to the source"),
    "migration.skipped_steps": (
        COUNTER, "already-done steps skipped by a resume"),
    "migration.step_retries": (
        COUNTER, "step re-attempts after transient transfer failures"),
    "migration.time_to_benefit_s": (
        GAUGE, "post-migration seconds until the overhead pays back"),
    "migration.transfer_seconds": (
        GAUGE, "estimated transfer time of the executed steps"),
    "migration.windows": (
        GAUGE, "foreground workload windows the migration spanned"),
    # -- KL partitioning ------------------------------------------------
    "partition.cut_weight": (
        GAUGE, "final cut weight of the KL partition"),
    "partition.kl_passes": (
        COUNTER, "Kernighan-Lin improvement passes"),
    "partition.moves": (
        COUNTER, "single-node KL moves applied"),
    "partition.swaps": (
        COUNTER, "node-pair KL swaps applied"),
    # -- portfolio engine -----------------------------------------------
    "portfolio.backend": (
        GAUGE, "backend of the last run (-1 serial, 0 thread, 1 process)"),
    "portfolio.best_trajectory": (
        GAUGE, "index of the winning trajectory"),
    "portfolio.trajectories": (
        GAUGE, "trajectories the portfolio dispatched"),
    "portfolio.workers": (
        GAUGE, "worker processes used by the portfolio"),
    # -- resilience -----------------------------------------------------
    "resilience.degraded": (
        COUNTER, "portfolio runs that returned a partial result"),
    "resilience.retries": (
        COUNTER, "trajectory re-attempts after failure"),
    "resilience.serial_fallbacks": (
        COUNTER, "lost trajectories re-run in-process"),
    "resilience.timeouts": (
        COUNTER, "trajectories abandoned at their deadline"),
    "resilience.worker_crashes": (
        COUNTER, "trajectories lost to dead worker processes"),
    # -- advisor service (repro.server) ---------------------------------
    "server.cache_entries": (
        GAUGE, "recommendation/analysis cache entries resident"),
    "server.cache_hits": (
        COUNTER, "job submissions served from the fingerprint cache"),
    "server.cache_misses": (
        COUNTER, "job submissions that had to compute fresh"),
    "server.errors": (
        COUNTER, "requests answered with a 4xx/5xx status"),
    "server.job_latency_s": (
        HISTOGRAM, "submit-to-completion job latency in seconds"),
    "server.job_wait_s": (
        HISTOGRAM, "queue wait before a worker picked the job up"),
    "server.jobs_completed": (
        COUNTER, "jobs that finished with a usable recommendation"),
    "server.jobs_degraded": (
        COUNTER, "completed jobs whose recommendation was degraded"),
    "server.jobs_failed": (
        COUNTER, "jobs that raised instead of producing a result"),
    "server.jobs_rejected": (
        COUNTER, "job submissions bounced with 429 (queue full)"),
    "server.jobs_submitted": (
        COUNTER, "job submissions admitted to the queue"),
    "server.queue_depth": (
        GAUGE, "jobs waiting for a worker right now"),
    "server.requests": (
        COUNTER, "HTTP requests routed to the service"),
    "server.tenants": (
        GAUGE, "tenant catalogs resident in memory"),
    "server.workers": (
        GAUGE, "job-queue worker threads configured"),
    # -- I/O simulator --------------------------------------------------
    "sim.blocks": (
        COUNTER, "blocks requested from the simulated disks"),
    "sim.buffer_hits": (
        GAUGE, "simulated buffer-pool hits"),
    "sim.buffer_misses": (
        GAUGE, "simulated buffer-pool misses"),
    "sim.streams": (
        COUNTER, "access streams replayed by the simulator"),
    "sim.subplans": (
        COUNTER, "subplans replayed by the simulator"),
}


def metric_kind(name: str) -> str | None:
    """Declared kind of ``name``, or ``None`` when undeclared."""
    entry = METRIC_CATALOG.get(name)
    return entry[0] if entry is not None else None


def metric_help(name: str) -> str:
    """Declared help string of ``name`` (empty when undeclared)."""
    entry = METRIC_CATALOG.get(name)
    return entry[1] if entry is not None else ""
