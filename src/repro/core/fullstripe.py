"""The FULL STRIPING baseline.

Every object is spread over every available disk drive.  Following the
paper's footnote 1 ("to ensure a fair comparison with our search method,
we assume that the fraction of each object allocated to a disk is
proportional to the transfer rate of that disk"), fractions default to
transfer-rate proportional.
"""

from __future__ import annotations

from typing import Mapping

from repro.catalog.schema import Database
from repro.core.layout import Layout, stripe_fractions
from repro.storage.disk import DiskFarm


def full_striping(object_sizes: Mapping[str, int] | Database,
                  farm: DiskFarm,
                  rate_proportional: bool = True) -> Layout:
    """Build the full-striping layout for the given objects.

    Args:
        object_sizes: Mapping from object name to size in blocks, or a
            :class:`Database` whose objects should be laid out.
        farm: The disk drives to stripe across.
        rate_proportional: Stripe proportionally to read transfer rates
            (the paper's convention); otherwise stripe evenly.
    """
    if isinstance(object_sizes, Database):
        object_sizes = object_sizes.object_sizes()
    row = stripe_fractions(range(len(farm)), farm,
                           rate_proportional=rate_proportional)
    return Layout(farm, object_sizes, {name: row for name in object_sizes})
