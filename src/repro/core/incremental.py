"""Incremental re-layout under a data-movement budget (Section 2.3).

The paper's incrementality constraint bounds the fraction of the
database that may move when the advisor is re-run against a drifted
workload.  This module turns that constraint from something the repo
could only *validate* (ALR015) into something it can *search under*:

* the search is seeded from the **current** layout (TS-GREEDY step 1 is
  skipped — the current placement is the starting point, exactly the
  incremental mode the paper sketches);
* every candidate move is checked against the cumulative movement
  budget ``Δ * total_blocks``; a candidate that would overshoot is not
  discarded but **projected back onto the budget** — its fraction row is
  blended toward the current row (``(1-t)·current + t·candidate``) with
  the largest ``t`` the remaining budget provably allows, so partial
  versions of good moves still compete;
* when the budget is generous enough that a from-scratch re-layout fits
  inside it, the engine **falls back to full TS-GREEDY** and keeps
  whichever result costs less — so ``Δ = 1`` degenerates to the
  unconstrained search, and a hopeless budget degenerates to "keep the
  current layout" (cost never exceeds the current layout's).

Projection safety: movement is measured per object as half the L1
distance between fraction rows times the object size.  For the blend
row ``x(t) = (1-t)·x_cur + t·x_cand``, convexity of the L1 norm gives
``moved(x(t)) ≤ (1-t)·moved(x_cur) + t·moved(x_cand)``, so choosing
``t`` from the linear bound can only under-use the budget, never
violate it.
"""

from __future__ import annotations

import numpy as np

from repro.core.constraints import ConstraintSet, MaxDataMovement
from repro.core.costmodel import WorkloadCostEvaluator
from repro.core.greedy import SearchResult, TsGreedySearch
from repro.core.layout import Layout
from repro.core.tolerance import EPS_CAPACITY, EPS_COST
from repro.errors import LayoutError
from repro.obs import NULL_METRICS, NULL_RECORDER, NULL_TRACER
from repro.storage.disk import DiskFarm
from repro.workload.access_graph import AccessGraph


class _BudgetedGreedySearch(TsGreedySearch):
    """TS-GREEDY whose over-budget candidates are projected, not dropped.

    The base class's ``_fits`` already rejects moves that exceed the
    movement constraint; this subclass intercepts candidate generation
    and replaces each over-budget candidate with its largest feasible
    blend toward the current row, so the search can keep harvesting the
    improving direction of a move it can no longer afford in full.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        movement = self._constraints.movement
        if movement is None:  # pragma: no cover - guarded by caller
            raise LayoutError("budgeted search needs a movement "
                              "constraint")
        self._baseline_rows = {
            name: np.asarray(movement.baseline.fractions_of(name),
                             dtype=float)
            for name in self._names}
        self._max_blocks = movement.max_blocks
        self.projected_moves = 0

    def _movement_of(self, name: str, row: np.ndarray) -> float:
        """Blocks object ``name`` moves (vs. baseline) if placed on row."""
        base = self._baseline_rows[name]
        return self._sizes[name] * float(np.abs(row - base).sum()) / 2.0

    def _moves(self, group: tuple[str, ...],
               current: dict[str, np.ndarray]):
        used_others = sum(
            self._movement_of(name, current[name])
            for name in self._names if name not in set(group))
        budget = self._max_blocks - used_others
        moved_now = sum(self._movement_of(name, current[name])
                        for name in group)
        for change in super()._moves(group, current):
            moved_cand = sum(self._movement_of(name, change[name])
                             for name in group)
            if moved_cand <= budget + EPS_CAPACITY:
                yield change
                continue
            headroom = budget - moved_now
            if headroom <= EPS_CAPACITY or moved_cand <= moved_now:
                continue
            t = headroom / (moved_cand - moved_now)
            projected = {
                name: (1.0 - t) * current[name] + t * change[name]
                for name in change}
            self.projected_moves += 1
            yield projected


class IncrementalSearch:
    """Movement-budget-bounded re-layout seeded from the current layout.

    Args:
        farm: Available disk drives.
        evaluator: Precompiled workload cost evaluator (built from the
            *drifted* workload — the one the layout should now serve).
        object_sizes: Object name -> size in blocks.
        constraints: Optional manageability/availability constraints.
            Must not itself carry a movement constraint — the budget is
            this engine's to manage (pass ``movement_budget`` instead).
        k: TS-GREEDY's widening parameter.
        tracer: Optional :class:`repro.obs.Tracer`; emits an
            ``incremental`` span with ``incremental/seeded`` and
            ``incremental/full-relayout`` children.
        metrics: Optional :class:`repro.obs.MetricsRegistry`; records
            ``incremental.*`` instruments.
        recorder: Optional :class:`repro.obs.EventRecorder`; forwarded
            to the inner greedy searches (``greedy-iteration`` /
            ``kl-pass`` events).
    """

    def __init__(self, farm: DiskFarm, evaluator: WorkloadCostEvaluator,
                 object_sizes: dict[str, int],
                 constraints: ConstraintSet | None = None,
                 k: int = 1, tracer=None, metrics=None, recorder=None):
        self._farm = farm
        self._evaluator = evaluator
        self._sizes = dict(object_sizes)
        self._constraints = constraints or ConstraintSet()
        if self._constraints.movement is not None:
            raise LayoutError(
                "IncrementalSearch manages the movement budget itself; "
                "pass movement_budget instead of a MaxDataMovement "
                "constraint")
        self._k = k
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics if metrics is not None else NULL_METRICS
        self._recorder = recorder if recorder is not None \
            else NULL_RECORDER

    def search(self, graph: AccessGraph, current_layout: Layout,
               movement_budget: float) -> SearchResult:
        """Find the best layout reachable within the movement budget.

        Args:
            graph: Access graph of the (drifted) workload.
            current_layout: The layout the data is in now; the search
                seed, the movement baseline, and the quality floor.
            movement_budget: Δ — the maximum fraction of the database's
                total blocks that may change disks, in ``[0, 1]``.

        Returns:
            A :class:`SearchResult` whose layout moves at most
            ``Δ * total_blocks`` blocks from ``current_layout`` and
            whose cost never exceeds the current layout's.  Extras
            carry ``moved_blocks`` / ``moved_fraction`` /
            ``movement_budget`` / ``projected_moves`` /
            ``full_relayout`` telemetry.
        """
        if not 0.0 <= movement_budget <= 1.0:
            raise LayoutError(
                f"movement budget must be a fraction in [0, 1], got "
                f"{movement_budget}")
        total_blocks = sum(self._sizes.values())
        max_blocks = movement_budget * total_blocks
        with self._tracer.span("incremental",
                               budget=movement_budget) as span:
            budgeted = ConstraintSet(
                co_located=self._constraints.co_located,
                availability=self._constraints.availability,
                movement=MaxDataMovement(current_layout, max_blocks))
            with self._tracer.span("incremental/seeded"):
                seeded = _BudgetedGreedySearch(
                    self._farm, self._evaluator, self._sizes,
                    constraints=budgeted, k=self._k,
                    tracer=self._tracer, metrics=self._metrics,
                    recorder=self._recorder)
                result = seeded.search(graph,
                                       initial_layout=current_layout)
            # Fall back to a from-scratch re-layout when the budget can
            # afford it: seeding from the current layout is a local
            # refinement and cannot re-partition, so Δ -> 1 must
            # converge to the unconstrained TS-GREEDY result.
            with self._tracer.span("incremental/full-relayout"):
                full = TsGreedySearch(
                    self._farm, self._evaluator, self._sizes,
                    constraints=self._constraints, k=self._k,
                    tracer=self._tracer, metrics=self._metrics,
                    recorder=self._recorder).search(graph)
            full_moved = current_layout.data_movement_blocks(full.layout)
            used_full = (full_moved <= max_blocks + EPS_CAPACITY
                         and full.cost < result.cost - EPS_COST)
            if used_full:
                evaluations = result.evaluations + full.evaluations
                result = full
                result.evaluations = evaluations
            # The current layout (zero movement) is always feasible:
            # never return something the model scores worse than it.
            current_cost = self._evaluator.cost(current_layout)
            if result.cost >= current_cost - EPS_COST:
                result = result.with_layout(current_layout,
                                            current_cost)
            moved = current_layout.data_movement_blocks(result.layout)
            result.extras["moved_blocks"] = moved
            result.extras["moved_fraction"] = \
                moved / total_blocks if total_blocks else 0.0
            result.extras["movement_budget"] = movement_budget
            result.extras["projected_moves"] = \
                float(seeded.projected_moves)
            result.extras["full_relayout"] = float(used_full)
            span.set("moved_blocks", round(moved, 3))
            span.set("full_relayout", used_full)
            self._metrics.set_gauge("incremental.moved_fraction",
                                    result.extras["moved_fraction"])
            self._metrics.inc("incremental.projected_moves",
                              seeded.projected_moves)
            if used_full:
                self._metrics.inc("incremental.full_relayout_fallbacks")
        return result
