"""Simulated-annealing layout search — the generic baseline.

Section 6 of the paper: "rather than using generic search techniques
for solving non-linear optimization problems, which tend to be
computationally expensive, we try to leverage domain knowledge to
develop a scalable heuristic solution."  This module implements the
generic technique the paper declined, so the claim can be quantified:
how close does domain-blind annealing get, and at what evaluation
budget, compared to TS-GREEDY?  (See ``bench_ablations.py``.)

The move set is layout-native but knowledge-free: pick a random object,
then either add a disk to it, drop a disk from it (if it has more than
one), or jump it to a random disk subset — always re-striped
rate-proportionally, so the search space matches the one TS-GREEDY and
the exhaustive baseline explore.
"""

from __future__ import annotations

import logging
import math
import random
from typing import Mapping

import numpy as np

from repro.core.constraints import ConstraintSet
from repro.core.costmodel import WorkloadCostEvaluator
from repro.core.fullstripe import full_striping
from repro.core.greedy import SearchResult
from repro.core.layout import Layout, stripe_fractions
from repro.core.tolerance import EPS_CAPACITY
from repro.errors import LayoutError
from repro.obs import NULL_METRICS, NULL_RECORDER, NULL_TRACER
from repro.storage.disk import DiskFarm

logger = logging.getLogger("repro.core.annealing")


def annealing_search(farm: DiskFarm,
                     evaluator: WorkloadCostEvaluator,
                     object_sizes: Mapping[str, int],
                     seed: int = 0,
                     iterations: int = 2_000,
                     initial_temperature: float | None = None,
                     cooling: float = 0.995,
                     constraints: ConstraintSet | None = None,
                     tracer=None, metrics=None, recorder=None,
                     ) -> SearchResult:
    """Anneal over rate-proportionally-striped layouts.

    Args:
        farm: Disk drives.
        evaluator: Precompiled cost evaluator.
        object_sizes: Object name -> blocks.
        seed: RNG seed (deterministic for a given seed).
        iterations: Proposal budget (each proposal costs one layout
            evaluation, comparable to TS-GREEDY's ``evaluations``).
        initial_temperature: Starting temperature; defaults to 10% of
            the full-striping cost, a standard scale-free choice.
        cooling: Geometric cooling factor per accepted-or-rejected step.
        constraints: Only capacity is enforced here (the baseline is
            deliberately generic); richer constraints reject proposals.
        tracer: Optional :class:`repro.obs.Tracer`; emits one
            ``annealing`` span.
        metrics: Optional :class:`repro.obs.MetricsRegistry`; records
            ``annealing.proposals`` / ``annealing.accepted`` /
            ``annealing.rejected`` / ``annealing.infeasible`` counters.
        recorder: Optional :class:`repro.obs.EventRecorder`; emits
            sampled ``anneal-step`` progress events (at most 32 per
            run, evenly strided over the proposal budget).

    Returns:
        A :class:`SearchResult` with the best layout visited; its
        ``extras`` carry the accept/reject/infeasible counts.
    """
    if iterations < 1:
        raise LayoutError("iterations must be positive")
    tracer = tracer if tracer is not None else NULL_TRACER
    metrics = metrics if metrics is not None else NULL_METRICS
    recorder = recorder if recorder is not None else NULL_RECORDER
    sample_stride = max(1, iterations // 32)
    constraints = constraints or ConstraintSet()
    rng = random.Random(seed)
    names = evaluator.object_names
    sizes = dict(object_sizes)
    m = len(farm)
    capacity = np.array([d.capacity_blocks for d in farm])

    current_layout = full_striping(sizes, farm)
    current = {name: list(current_layout.fractions_of(name))
               for name in names}
    matrix = np.array([current[name] for name in names])
    cost = evaluator.set_base(matrix)
    initial_cost = cost
    best_cost = cost
    best = {name: tuple(row) for name, row in current.items()}
    temperature = initial_temperature \
        if initial_temperature is not None else 0.1 * cost

    disk_used = np.array([current_layout.disk_used_blocks(j)
                          for j in range(m)])
    evaluations = 0
    accepted = rejected = infeasible = 0
    with tracer.span("annealing", iterations=iterations,
                     seed=seed) as span:
        for proposal_index in range(iterations):
            if proposal_index % sample_stride == 0:
                recorder.emit("anneal-step", proposal=proposal_index,
                              best_cost=float(best_cost),
                              temperature=float(temperature))
            name = rng.choice(names)
            disks_now = [j for j, f in enumerate(current[name]) if f > 0]
            kind = rng.random()
            if kind < 0.4 and len(disks_now) < m:         # add a disk
                choice = rng.choice([j for j in range(m)
                                     if j not in disks_now])
                proposal = sorted(disks_now + [choice])
            elif kind < 0.7 and len(disks_now) > 1:       # drop a disk
                victim = rng.choice(disks_now)
                proposal = [j for j in disks_now if j != victim]
            else:                                         # random jump
                size = rng.randint(1, m)
                proposal = sorted(rng.sample(range(m), size))
            row = np.array(stripe_fractions(proposal, farm))
            old_row = np.array(current[name])
            delta_use = sizes[name] * (row - old_row)
            if np.any(disk_used + delta_use > capacity + EPS_CAPACITY):
                infeasible += 1
                temperature *= cooling
                continue
            candidate_cost = evaluator.cost_with_row(name, row)
            evaluations += 1
            delta = candidate_cost - cost
            if delta <= 0 or rng.random() < math.exp(
                    -delta / max(temperature, 1e-12)):
                accepted += 1
                current[name] = list(row)
                disk_used += delta_use
                # O(Δ) adoption: re-cost only the subplans touching the
                # moved object (bit-identical to a full set_base).
                cost = evaluator.commit_rows({name: row})
                if cost < best_cost:
                    best_cost = cost
                    best = {n: tuple(r) for n, r in current.items()}
            else:
                rejected += 1
            temperature *= cooling
        span.set("accepted", accepted)
        span.set("rejected", rejected)
        span.set("infeasible", infeasible)

    metrics.inc("annealing.proposals", iterations)
    metrics.inc("annealing.accepted", accepted)
    metrics.inc("annealing.rejected", rejected)
    metrics.inc("annealing.infeasible", infeasible)
    logger.info(
        "annealing: cost %.3f -> %.3f (%d proposals: %d accepted, "
        "%d rejected, %d infeasible)", initial_cost, best_cost,
        iterations, accepted, rejected, infeasible)
    layout = Layout(farm, sizes, best)
    if not constraints.is_satisfied(layout):
        raise LayoutError(
            "annealing produced a constraint-violating layout; use "
            "TS-GREEDY for constrained problems")
    return SearchResult(layout=layout, cost=best_cost,
                        initial_cost=initial_cost,
                        iterations=iterations,
                        evaluations=evaluations,
                        extras={"accepted": float(accepted),
                                "rejected": float(rejected),
                                "infeasible": float(infeasible),
                                "seed": float(seed)})
