"""TS-GREEDY: the paper's two-step greedy search (Section 6.2, Figure 9).

Step 1 (minimize co-location): partition the access graph into ``m``
partitions maximizing the cut weight, then pack partitions — in
descending total-node-weight order — onto the smallest disjoint sets of
fast disks that can hold them, merging a partition with its least
co-accessed predecessor when disjoint disks run out.

Step 2 (increase parallelism): starting from the step-1 layout, repeat-
edly try widening each object by at most ``k`` additional disks (striped
proportionally to transfer rates); apply the single best cost-improving
widening per iteration; stop when none improves the workload cost.
"""

from __future__ import annotations

import itertools
import logging
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.constraints import ConstraintSet
from repro.core.costmodel import WorkloadCostEvaluator
from repro.core.layout import Layout, stripe_fractions
from repro.core.partitioning import PartitionStats, partition_access_graph
from repro.core.tolerance import EPS_CAPACITY, EPS_COST, EPS_ZERO
from repro.errors import LayoutError
from repro.obs import NULL_METRICS, NULL_RECORDER, NULL_TRACER
from repro.storage.disk import DiskFarm
from repro.workload.access_graph import AccessGraph


logger = logging.getLogger("repro.core.greedy")


@dataclass
class GreedyStep:
    """Telemetry of one step-2 greedy iteration.

    Attributes:
        iteration: 1-based iteration number.
        candidates: Candidate layouts costed this iteration.
        best_cost: Workload cost after the iteration (unchanged when no
            improving move was found).
        accepted: Whether an improving move was applied.
        changed: Objects whose placement the applied move changed.
    """

    iteration: int
    candidates: int
    best_cost: float
    accepted: bool
    changed: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {"iteration": self.iteration,
                "candidates": self.candidates,
                "best_cost": float(self.best_cost),
                "accepted": self.accepted,
                "changed": list(self.changed)}

    @classmethod
    def from_dict(cls, data: dict) -> "GreedyStep":
        """Inverse of :meth:`to_dict`."""
        return cls(iteration=int(data["iteration"]),
                   candidates=int(data["candidates"]),
                   best_cost=float(data["best_cost"]),
                   accepted=bool(data["accepted"]),
                   changed=tuple(data.get("changed", ())))


@dataclass(frozen=True)
class TrajectoryFailure:
    """Record of one portfolio trajectory that produced no result.

    Attributes:
        index: The trajectory's position in the portfolio spec list.
        label: Its display label (``TrajectorySpec.describe()``).
        cause: ``"timeout"``, ``"crash"`` (worker process died) or
            ``"error"`` (the trajectory raised).
        attempts: Total attempts made (including serial re-runs after
            a worker failure).
        message: The final error message, for diagnostics.
    """

    index: int
    label: str
    cause: str
    attempts: int = 1
    message: str = ""

    def to_dict(self) -> dict:
        return {"index": self.index, "label": self.label,
                "cause": self.cause, "attempts": self.attempts,
                "message": self.message}

    @classmethod
    def from_dict(cls, data: dict) -> "TrajectoryFailure":
        """Inverse of :meth:`to_dict`."""
        return cls(index=int(data["index"]),
                   label=str(data.get("label", "")),
                   cause=str(data.get("cause", "error")),
                   attempts=int(data.get("attempts", 1)),
                   message=str(data.get("message", "")))

    def describe(self) -> str:
        """One-line rendering for logs and reports."""
        noun = "attempt" if self.attempts == 1 else "attempts"
        text = (f"trajectory {self.index} ({self.label}): {self.cause} "
                f"after {self.attempts} {noun}")
        if self.message:
            text += f" — {self.message}"
        return text


@dataclass
class SearchResult:
    """Outcome and telemetry of one search run.

    Attributes:
        layout: The recommended layout.
        cost: Its estimated workload cost (seconds of I/O response time).
        initial_cost: Cost of the step-1 (pre-greedy) layout.
        iterations: Greedy iterations executed (accepted moves + final
            no-improvement round).
        evaluations: Candidate layouts costed.
        elapsed_s: Wall-clock search time.
        steps: Per-iteration step-2 telemetry, in execution order.
        kl_passes: KL partitioning passes executed in step 1 (0 when
            step 1 was skipped, e.g. incremental mode).
        kl_cut_weights: Cut weight after each KL pass.
        extras: Method-specific scalar telemetry (e.g. annealing
            accept/reject counts).
        degraded: ``True`` when some portfolio trajectories failed and
            the result is the exact best over the *completed* ones.
        failures: One :class:`TrajectoryFailure` per lost trajectory.
    """

    layout: Layout
    cost: float
    initial_cost: float
    iterations: int = 0
    evaluations: int = 0
    elapsed_s: float = 0.0
    steps: list[GreedyStep] = field(default_factory=list)
    kl_passes: int = 0
    kl_cut_weights: tuple[float, ...] = ()
    extras: dict[str, float] = field(default_factory=dict)
    degraded: bool = False
    failures: list[TrajectoryFailure] = field(default_factory=list)

    def telemetry_dict(self) -> dict:
        """JSON-ready telemetry (everything except the layout itself)."""
        out = {
            "cost": float(self.cost),
            "initial_cost": float(self.initial_cost),
            "iterations": self.iterations,
            "evaluations": self.evaluations,
            "elapsed_s": float(self.elapsed_s),
            "steps": [step.to_dict() for step in self.steps],
            "kl_passes": self.kl_passes,
            "kl_cut_weights": [float(w) for w in self.kl_cut_weights],
            "extras": {k: float(v) for k, v in self.extras.items()},
        }
        if self.degraded or self.failures:
            out["degraded"] = bool(self.degraded)
            out["failures"] = [f.to_dict() for f in self.failures]
        return out

    @classmethod
    def from_telemetry(cls, layout: Layout,
                       data: dict) -> "SearchResult":
        """Rebuild a result from :meth:`telemetry_dict` output.

        The layout travels separately (telemetry is layout-free JSON);
        the portfolio engine uses this to resurrect per-trajectory
        results shipped back from worker processes.
        """
        return cls(
            layout=layout,
            cost=float(data["cost"]),
            initial_cost=float(data["initial_cost"]),
            iterations=int(data.get("iterations", 0)),
            evaluations=int(data.get("evaluations", 0)),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            steps=[GreedyStep.from_dict(s)
                   for s in data.get("steps", ())],
            kl_passes=int(data.get("kl_passes", 0)),
            kl_cut_weights=tuple(float(w)
                                 for w in data.get("kl_cut_weights", ())),
            extras={k: float(v)
                    for k, v in data.get("extras", {}).items()},
            degraded=bool(data.get("degraded", False)),
            failures=[TrajectoryFailure.from_dict(f)
                      for f in data.get("failures", ())])

    def with_layout(self, layout: Layout, cost: float) -> "SearchResult":
        """A copy recommending ``layout`` but keeping the telemetry.

        Used when the advisor overrides the search outcome (e.g. the
        current layout scores better): the search's diagnostics should
        survive the substitution.
        """
        return SearchResult(layout=layout, cost=cost,
                            initial_cost=self.initial_cost,
                            iterations=self.iterations,
                            evaluations=self.evaluations,
                            elapsed_s=self.elapsed_s,
                            steps=list(self.steps),
                            kl_passes=self.kl_passes,
                            kl_cut_weights=tuple(self.kl_cut_weights),
                            extras=dict(self.extras),
                            degraded=self.degraded,
                            failures=list(self.failures))


class TsGreedySearch:
    """The TS-GREEDY search algorithm.

    Args:
        farm: Available disk drives.
        evaluator: Precompiled workload cost evaluator (shared across
            candidate layouts).
        object_sizes: Object name -> size in blocks.
        constraints: Optional manageability/availability constraints.
        k: Max disks added to one object per greedy move (paper uses 1).
        tracer: Optional :class:`repro.obs.Tracer`; emits ``ts-greedy``
            with ``ts-greedy/step1`` and ``ts-greedy/step2`` children.
        metrics: Optional :class:`repro.obs.MetricsRegistry`; records
            ``greedy.*`` and ``partition.*`` instruments.
        recorder: Optional :class:`repro.obs.EventRecorder`; emits one
            ``greedy-iteration`` event per step-2 iteration and one
            ``kl-pass`` event per converged KL pass.
        partition_seed: ``None`` runs the canonical deterministic KL
            partitioning; an integer shuffles its processing order
            (deterministically per seed), yielding a different step-1
            starting point — the portfolio engine's multi-start lever.
        prune: Skip full evaluation of candidate rows whose transfer-
            only lower bound already exceeds the iteration's best cost.
            The bound is a provable underestimate, so the search result
            is bit-identical with pruning on or off; only the number of
            full evaluations changes.
    """

    def __init__(self, farm: DiskFarm, evaluator: WorkloadCostEvaluator,
                 object_sizes: dict[str, int],
                 constraints: ConstraintSet | None = None,
                 k: int = 1, tracer=None, metrics=None,
                 partition_seed: int | None = None,
                 prune: bool = True, recorder=None):
        if k < 1:
            raise LayoutError("k must be at least 1")
        self._farm = farm
        self._evaluator = evaluator
        self._sizes = dict(object_sizes)
        self._constraints = constraints or ConstraintSet()
        self._k = k
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics if metrics is not None else NULL_METRICS
        self._recorder = recorder if recorder is not None \
            else NULL_RECORDER
        self._partition_seed = partition_seed
        self._prune = prune
        self._allow_removals = False
        self._names = evaluator.object_names
        missing = set(self._names) - set(self._sizes)
        if missing:
            raise LayoutError(f"no sizes for objects: {sorted(missing)}")

    # -- public API ---------------------------------------------------------

    def search(self, graph: AccessGraph,
               initial_layout: Layout | None = None) -> SearchResult:
        """Run both steps and return the best layout found.

        Args:
            graph: The workload's access graph (drives step 1).
            initial_layout: Skip step 1 and refine this layout instead —
                used for incremental mode under a data-movement
                constraint.
        """
        start = time.perf_counter()
        with self._tracer.span("ts-greedy", k=self._k) as span:
            kl_stats = PartitionStats()
            if initial_layout is None:
                with self._tracer.span("ts-greedy/step1"):
                    layout = self._initial_layout(graph, kl_stats)
                self._allow_removals = False
            else:
                layout = initial_layout
                # Incremental mode: refining an arbitrary starting layout
                # (e.g. full striping) also needs *narrowing* moves, or a
                # fully-striped start would be a trivial fixed point.
                self._allow_removals = True
            with self._tracer.span("ts-greedy/step2"):
                result = self._greedy(layout)
            result.elapsed_s = time.perf_counter() - start
            result.kl_passes = kl_stats.passes
            result.kl_cut_weights = tuple(kl_stats.cut_weights)
            for index, weight in enumerate(result.kl_cut_weights):
                self._recorder.emit("kl-pass", pass_index=index + 1,
                                    cut_weight=float(weight))
            span.set("iterations", result.iterations)
            span.set("evaluations", result.evaluations)
        logger.info(
            "ts-greedy: cost %.3f -> %.3f (%d iterations, %d layouts "
            "costed, %d KL passes, %.3fs)", result.initial_cost,
            result.cost, result.iterations, result.evaluations,
            result.kl_passes, result.elapsed_s)
        return result

    # -- step 1: partition & pack ------------------------------------------------

    def _initial_layout(self, graph: AccessGraph,
                        kl_stats: PartitionStats | None = None) -> Layout:
        m = len(self._farm)
        partitions = [p for p in
                      partition_access_graph(graph, m, nodes=self._names,
                                             stats=kl_stats,
                                             metrics=self._metrics,
                                             seed=self._partition_seed)
                      if p]
        partitions = self._apply_co_location(partitions)
        partitions.sort(key=lambda p: (-sum(graph.node_weight(o)
                                            for o in p), p[0]))
        rate_order = self._farm.indices_by_read_rate()
        free = [0.0] * m  # blocks already promised per disk
        used_disks: set[int] = set()
        assignment: dict[int, tuple[int, ...]] = {}  # partition -> disks
        disk_sets: list[tuple[int, ...]] = []
        for index, part in enumerate(partitions):
            size = sum(self._sizes[o] for o in part)
            allowed = self._allowed_for(part)
            chosen = self._pick_disjoint(size, allowed, used_disks, free,
                                         rate_order)
            if chosen is None:
                chosen = self._merge_target(graph, part, partitions,
                                            assignment, size, free)
            if chosen is None:
                raise LayoutError(
                    "step 1 could not place partition within capacity")
            assignment[index] = chosen
            used_disks.update(chosen)
            for j in chosen:
                free[j] += size * self._stripe_share(chosen, j)
            disk_sets.append(chosen)
        fractions = {}
        for part, disks in zip(partitions, disk_sets):
            row = stripe_fractions(disks, self._farm)
            for name in part:
                fractions[name] = row
        layout = Layout(self._farm, self._sizes, fractions)
        self._constraints.check(layout)
        return layout

    def _apply_co_location(self,
                           partitions: list[list[str]]) -> list[list[str]]:
        """Pull each co-location group into one partition."""
        groups = self._constraints.groups()
        if not groups:
            return partitions
        part_of = {name: i for i, part in enumerate(partitions)
                   for name in part}
        for group in groups:
            members = sorted(n for n in group if n in part_of)
            if not members:
                continue
            target = part_of[max(members, key=lambda n: self._sizes[n])]
            for name in members:
                part_of[name] = target
        rebuilt: list[list[str]] = [[] for _ in partitions]
        for name, index in part_of.items():
            rebuilt[index].append(name)
        return [sorted(p) for p in rebuilt if p]

    def _allowed_for(self, part: list[str]) -> list[int]:
        allowed = set(range(len(self._farm)))
        for name in part:
            allowed &= set(self._constraints.allowed_disks(name,
                                                           self._farm))
        if not allowed:
            raise LayoutError(
                f"no disk satisfies all constraints of partition {part}")
        return sorted(allowed)

    def _stripe_share(self, disks: tuple[int, ...], j: int) -> float:
        total = sum(self._farm[d].read_mb_s for d in disks)
        return self._farm[j].read_mb_s / total

    def _pick_disjoint(self, size: float, allowed: list[int],
                       used: set[int], free: list[float],
                       rate_order: list[int]) -> tuple[int, ...] | None:
        """Smallest prefix of unused fast disks that can hold ``size``."""
        candidates = [j for j in rate_order
                      if j in set(allowed) and j not in used]
        chosen: list[int] = []
        capacity = 0.0
        for j in candidates:
            chosen.append(j)
            capacity += self._farm[j].capacity_blocks - free[j]
            if capacity >= size:
                return tuple(sorted(chosen))
        return None

    def _merge_target(self, graph: AccessGraph, part: list[str],
                      partitions: list[list[str]],
                      assignment: dict[int, tuple[int, ...]],
                      size: float,
                      free: list[float]) -> tuple[int, ...] | None:
        """Disk set of the least co-accessed, capacity-feasible
        previously-assigned partition."""
        best: tuple[float, int] | None = None
        allowed = set(self._allowed_for(part))
        for index, disks in assignment.items():
            if not set(disks) <= allowed:
                continue
            headroom = sum(self._farm[j].capacity_blocks - free[j]
                           for j in disks)
            if headroom < size:
                continue
            weight = graph.group_edge_weight(part, partitions[index])
            if best is None or (weight, index) < best:
                best = (weight, index)
        if best is None:
            return None
        return assignment[best[1]]

    # -- step 2: greedy widening -----------------------------------------------------

    def _greedy(self, layout: Layout) -> SearchResult:
        matrix = self._evaluator.matrix_of(layout)
        cost = self._evaluator.set_base(matrix)
        initial_cost = cost
        disk_used = np.array([layout.disk_used_blocks(j)
                              for j in range(len(self._farm))])
        capacity = np.array([d.capacity_blocks for d in self._farm])
        groups = {name: sorted(self._constraints.group_of(name))
                  for name in self._names}
        result = SearchResult(layout=layout, cost=cost,
                              initial_cost=initial_cost)
        # Rows live as ndarrays for the whole search: `_fits` runs per
        # candidate, so converting per check (np.asarray on tuples)
        # would dominate the capacity test.
        current = {name: np.asarray(layout.fractions_of(name),
                                    dtype=float)
                   for name in self._names}
        pruned_total = 0
        while True:
            result.iterations += 1
            iteration_evals = 0
            best_cost = cost
            best_change: dict[str, np.ndarray] | None = None
            seen_groups: set[tuple[str, ...]] = set()
            for name in self._names:
                group = tuple(groups[name])
                if group in seen_groups:
                    continue
                seen_groups.add(group)
                feasible = [change for change in
                            self._moves(group, current)
                            if self._fits(change, current, disk_used,
                                          capacity)]
                if not feasible:
                    continue
                if len(group) == 1:
                    # Single-object moves: one fused prune+evaluate
                    # call — bounds for every candidate, full costs
                    # for the survivors, selection inside the kernel.
                    rows = np.array([change[name]
                                     for change in feasible])
                    candidate_cost, index, pruned = \
                        self._evaluator.best_for_rows(
                            name, rows, best_cost, prune=self._prune)
                    pruned_total += pruned
                    evaluated = len(feasible) - pruned
                    result.evaluations += evaluated
                    iteration_evals += evaluated
                    if index >= 0:
                        best_cost = candidate_cost
                        best_change = feasible[index]
                else:
                    result.evaluations += len(feasible)
                    iteration_evals += len(feasible)
                    for change in feasible:
                        candidate_cost = self._evaluator.cost_with_rows(
                            dict(change))
                        if candidate_cost < best_cost - EPS_COST:
                            best_cost = candidate_cost
                            best_change = change
            if best_change is None:
                result.steps.append(GreedyStep(
                    iteration=result.iterations,
                    candidates=iteration_evals, best_cost=float(cost),
                    accepted=False))
                self._recorder.emit(
                    "greedy-iteration", iteration=result.iterations,
                    candidates=iteration_evals, best_cost=float(cost),
                    accepted=False, changed=[])
                break
            for name, row in best_change.items():
                disk_used += self._sizes[name] * (row - current[name])
                current[name] = row
            # O(Δ) adoption: only the subplans touching the moved
            # objects are re-costed (bit-identical to a full set_base).
            cost = self._evaluator.commit_rows(dict(best_change))
            result.steps.append(GreedyStep(
                iteration=result.iterations, candidates=iteration_evals,
                best_cost=float(cost), accepted=True,
                changed=tuple(sorted(best_change))))
            self._recorder.emit(
                "greedy-iteration", iteration=result.iterations,
                candidates=iteration_evals, best_cost=float(cost),
                accepted=True, changed=sorted(best_change))
            logger.debug(
                "greedy iteration %d: widened %s, cost %.3f "
                "(%d candidates)", result.iterations,
                ",".join(sorted(best_change)), cost, iteration_evals)
        self._metrics.inc("greedy.iterations", result.iterations)
        self._metrics.inc("greedy.evaluations", result.evaluations)
        self._metrics.inc("greedy.pruned_candidates", pruned_total)
        self._metrics.inc("greedy.accepted_moves",
                          sum(1 for s in result.steps if s.accepted))
        result.extras["pruned_candidates"] = float(pruned_total)
        for step in result.steps:
            self._metrics.observe("greedy.candidates_per_iteration",
                                  step.candidates)
        final = Layout(self._farm, self._sizes, current)
        if self._constraints.movement is not None \
                and not self._constraints.is_satisfied(final):
            # Should not happen: moves are filtered; fail loudly if so.
            raise LayoutError("greedy produced a constraint-violating "
                              "layout")
        result.layout = final
        result.cost = cost
        return result

    def _moves(self, group: tuple[str, ...],
               current: dict[str, np.ndarray]):
        """Yield candidate fraction-row changes for one object group.

        A move adds 1..k disks (from the group's allowed set) to the
        group's current disk set; every member of the group gets the same
        widened, rate-proportional row (one shared ndarray per move).
        """
        lead = group[0]
        disks_now = tuple(j for j, f in enumerate(current[lead])
                          if f > EPS_ZERO)
        allowed = self._constraints.allowed_disks(lead, self._farm)
        remaining = [j for j in allowed if j not in set(disks_now)]
        for size in range(1, self._k + 1):
            for combo in itertools.combinations(remaining, size):
                row = np.array(stripe_fractions(disks_now + combo,
                                                self._farm))
                yield {name: row for name in group}
        if getattr(self, "_allow_removals", False):
            for size in range(1, min(self._k, len(disks_now) - 1) + 1):
                for combo in itertools.combinations(disks_now, size):
                    kept = tuple(j for j in disks_now
                                 if j not in set(combo))
                    row = np.array(stripe_fractions(kept, self._farm))
                    yield {name: row for name in group}

    def _fits(self, change: dict[str, np.ndarray],
              current: dict[str, np.ndarray],
              disk_used: np.ndarray, capacity: np.ndarray) -> bool:
        """Capacity (and movement-constraint) feasibility of a move."""
        delta = np.zeros(len(self._farm))
        for name, row in change.items():
            delta += self._sizes[name] * (row - current[name])
        if np.any(disk_used + delta > capacity + EPS_CAPACITY):
            return False
        movement = self._constraints.movement
        if movement is not None:
            trial = dict(current)
            trial.update(change)
            layout = Layout(self._farm, self._sizes, trial,
                            check_capacity=False)
            if movement.baseline.data_movement_blocks(layout) \
                    > movement.max_blocks + EPS_CAPACITY:
                return False
        return True
