"""Exhaustive layout enumeration for small instances.

Used as the quality yardstick the paper compares TS-GREEDY against
("comparable to exhaustive enumeration in most cases").  Every object is
assigned to every non-empty subset of the disks it is allowed on and
striped proportionally to transfer rates; the cross product over objects
is enumerated, capacity-checked, and costed.
"""

from __future__ import annotations

import itertools
from typing import Mapping

from repro.core.constraints import ConstraintSet
from repro.core.costmodel import WorkloadCostEvaluator
from repro.core.greedy import SearchResult
from repro.core.layout import Layout, stripe_fractions
from repro.core.tolerance import EPS_CAPACITY
from repro.errors import LayoutError
from repro.storage.disk import DiskFarm


def exhaustive_search(farm: DiskFarm, evaluator: WorkloadCostEvaluator,
                      object_sizes: Mapping[str, int],
                      constraints: ConstraintSet | None = None,
                      max_layouts: int = 200_000) -> SearchResult:
    """Find the optimal rate-proportionally-striped layout by enumeration.

    Args:
        farm: Disk drives.
        evaluator: Precompiled cost evaluator (fixes object row order).
        object_sizes: Object name -> size in blocks.
        constraints: Optional constraints; co-location groups are
            enumerated as units.
        max_layouts: Safety cap; exceeding it raises ``LayoutError``
            (the space is ``(2^m - 1)^n``).

    Returns:
        A :class:`SearchResult` whose ``evaluations`` counts the layouts
        actually costed.
    """
    constraints = constraints or ConstraintSet()
    names = evaluator.object_names
    groups: list[tuple[str, ...]] = []
    seen: set[str] = set()
    for name in names:
        if name in seen:
            continue
        group = tuple(sorted(constraints.group_of(name)
                             & set(names))) or (name,)
        groups.append(group)
        seen.update(group)

    subset_choices: list[list[tuple[int, ...]]] = []
    count = 1
    for group in groups:
        allowed = constraints.allowed_disks(group[0], farm)
        subsets = [combo
                   for size in range(1, len(allowed) + 1)
                   for combo in itertools.combinations(allowed, size)]
        subset_choices.append(subsets)
        count *= len(subsets)
        if count > max_layouts:
            raise LayoutError(
                f"exhaustive search space exceeds {max_layouts} layouts")

    capacity = [d.capacity_blocks for d in farm]
    best_cost = float("inf")
    best_layout: Layout | None = None
    evaluations = 0
    for assignment in itertools.product(*subset_choices):
        fractions: dict[str, tuple[float, ...]] = {}
        used = [0.0] * len(farm)
        feasible = True
        for group, disks in zip(groups, assignment):
            row = stripe_fractions(disks, farm)
            for name in group:
                fractions[name] = row
                for j in disks:
                    used[j] += object_sizes[name] * row[j]
        for j, u in enumerate(used):
            if u > capacity[j] + EPS_CAPACITY:
                feasible = False
                break
        if not feasible:
            continue
        layout = Layout(farm, dict(object_sizes), fractions,
                        check_capacity=False)
        if constraints.movement is not None \
                and not constraints.is_satisfied(layout):
            continue
        cost = evaluator.cost(layout)
        evaluations += 1
        if cost < best_cost:
            best_cost = cost
            best_layout = layout
    if best_layout is None:
        raise LayoutError("no feasible layout found by exhaustive search")
    return SearchResult(layout=best_layout, cost=best_cost,
                        initial_cost=best_cost, iterations=1,
                        evaluations=evaluations)
