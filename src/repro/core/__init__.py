"""The paper's core contribution: layouts, cost model and search.

* :class:`Layout` — the ``x_ij`` fraction matrix with Definition-2
  validity;
* :class:`CostModel` / :class:`WorkloadCostEvaluator` — the Figure-7
  analytical I/O response-time model;
* constraints — co-location, availability, and incrementality
  (Section 2.3);
* searchers — FULL STRIPING, TS-GREEDY (Figure 9), exhaustive and
  random baselines;
* :class:`LayoutAdvisor` — the end-to-end facade matching Figure 3's
  architecture.
"""

from repro.core.layout import Layout, stripe_fractions
from repro.core.costmodel import CostModel, WorkloadCostEvaluator
from repro.core.constraints import (
    AvailabilityRequirement,
    CoLocated,
    ConstraintSet,
    MaxDataMovement,
)
from repro.core.fullstripe import full_striping
from repro.core.partitioning import PartitionStats, partition_access_graph
from repro.core.greedy import GreedyStep, SearchResult, TsGreedySearch
from repro.core.exhaustive import exhaustive_search
from repro.core.annealing import annealing_search
from repro.core.random_layout import random_layout
from repro.core.advisor import LayoutAdvisor, Recommendation
from repro.core.incremental import IncrementalSearch

__all__ = [
    "Layout",
    "stripe_fractions",
    "CostModel",
    "WorkloadCostEvaluator",
    "AvailabilityRequirement",
    "CoLocated",
    "ConstraintSet",
    "MaxDataMovement",
    "full_striping",
    "GreedyStep",
    "PartitionStats",
    "partition_access_graph",
    "SearchResult",
    "TsGreedySearch",
    "exhaustive_search",
    "annealing_search",
    "random_layout",
    "IncrementalSearch",
    "LayoutAdvisor",
    "Recommendation",
]
