"""DBA-facing recommendation reports.

The paper's tool hands the DBA a recommendation plus an estimated
improvement percentage.  This module renders that into (a) a readable
report and (b) an implementation script in SQL-Server-style DDL —
filegroups per distinct disk set, files per disk, and the object
assignments — which is how a layout is actually realized (Section 2.1).
"""

from __future__ import annotations

import math

from repro.core.advisor import Recommendation
from repro.core.layout import Layout
from repro.storage.disk import BLOCK_BYTES


def render_report(recommendation: Recommendation,
                  top_statements: int = 10) -> str:
    """A human-readable summary of a recommendation.

    Args:
        recommendation: The advisor's output.
        top_statements: How many statements to list in the per-statement
            breakdown (ordered by absolute improvement).
    """
    rec = recommendation
    lines = [
        "=== database layout recommendation ===",
        f"estimated workload I/O time: {rec.estimated_cost:.1f}s",
        f"current layout I/O time:     {rec.current_cost:.1f}s",
        f"estimated improvement:       {rec.improvement_pct:.0f}%",
        "",
        "--- placement ---",
        rec.layout.describe(),
    ]
    if rec.per_statement:
        ranked = sorted(rec.per_statement,
                        key=lambda row: -(row[1] - row[2]))
        lines.append("")
        lines.append("--- statements with the largest changes ---")
        for name, current, proposed in ranked[:top_statements]:
            delta = current - proposed
            sign = "saves" if delta >= 0 else "costs"
            lines.append(f"{name:12s} {current:8.2f}s -> "
                         f"{proposed:8.2f}s  ({sign} {abs(delta):.2f}s)")
    movement = rec.data_movement_blocks
    if movement is not None and movement > 0:
        moved_gb = movement * BLOCK_BYTES / 1024 ** 3
        lines.append("")
        lines.append(f"implementing this layout moves "
                     f"{moved_gb:.2f} GB ({movement:.0f} blocks)")
    if rec.migration is not None:
        lines.append("")
        lines.append(render_migration(rec.migration,
                                      farm=rec.layout.farm,
                                      movement_budget=rec.movement_budget))
    if rec.search is not None:
        lines.append("")
        lines.append(f"search: {rec.search.iterations} iterations, "
                     f"{rec.search.evaluations} layouts costed, "
                     f"{rec.search.elapsed_s:.2f}s")
        diagnostics = render_search_diagnostics(rec.search)
        if diagnostics:
            lines.append("")
            lines.append(diagnostics)
    if rec.diagnostics:
        lines.append("")
        lines.append("--- layout audit (static analysis) ---")
        for finding in sorted(rec.diagnostics,
                              key=lambda d: -d.severity.rank):
            lines.append(finding.render())
    return "\n".join(lines)


def render_migration(plan, farm=None,
                     movement_budget: float | None = None,
                     max_steps: int = 12) -> str:
    """The migration plan, rendered for the DBA.

    Lists the ordered per-object moves (head and tail kept, middle
    elided past ``max_steps``), the totals, and — when the run carried
    a movement budget — the moved fraction against it.

    Args:
        plan: A :class:`repro.storage.migration.MigrationPlan`.
        farm: The :class:`~repro.storage.disk.DiskFarm` the plan's disk
            indices refer to; names the disks when given.
        movement_budget: The Δ fraction the search ran under, if any.
        max_steps: Cap on steps listed individually.
    """
    def disk(j: int) -> str:
        return farm[j].name if farm is not None else f"disk{j}"

    lines = ["--- migration plan ---"]
    if not plan.steps:
        lines.append("no data movement required")
        return "\n".join(lines)
    steps = list(plan.steps)
    shown_from = shown_until = None
    if len(steps) > max_steps:
        shown_from, shown_until = max_steps - 2, len(steps) - 2
    for index, step in enumerate(steps):
        if shown_from is not None and shown_from <= index < shown_until:
            if index == shown_from:
                lines.append(f"  ... {shown_until - shown_from} "
                             f"steps elided ...")
            continue
        staged = "  (staged)" if step.staged else ""
        lines.append(f"  step {index + 1:3d}: {step.obj:20s} "
                     f"{disk(step.src)} -> {disk(step.dst)}  "
                     f"{step.blocks:10.0f} blocks  "
                     f"{step.est_seconds:7.1f}s{staged}")
    moved_gb = plan.moved_blocks * BLOCK_BYTES / 1024 ** 3
    totals = (f"total: {len(plan.steps)} steps, "
              f"{plan.moved_blocks:.0f} blocks ({moved_gb:.2f} GB) "
              f"moved, est. {plan.est_seconds:.1f}s transfer time")
    if plan.staged_blocks > 0:
        totals += (f"; {plan.staged_blocks:.0f} blocks staged "
                   f"through a temporary disk (moved twice)")
    lines.append(totals)
    if movement_budget is not None:
        lines.append(f"moved fraction: {plan.moved_fraction:.1%} of "
                     f"the database (budget {movement_budget:.0%})")
    return "\n".join(lines)


def render_migration_execution(result) -> str:
    """An execution outcome, rendered for the DBA.

    Args:
        result: A :class:`repro.storage.executor.ExecutionResult`
            (duck-typed; any object with the same fields renders).
    """
    lines = ["--- migration execution ---"]
    lines.append(f"status: {result.status}")
    lines.append(f"  executed: {result.executed_steps} steps"
                 + (f"  (skipped {result.skipped_steps} already done)"
                    if result.skipped_steps else ""))
    if result.retried_steps:
        lines.append(f"  retried: {result.retried_steps} steps needed "
                     f"more than one attempt")
    lines.append(f"  transfer: est. {result.transfer_seconds:.1f}s")
    lines.append(f"  state:    {result.state_digest}")
    lines.append(f"  journal:  {result.journal_path}")
    return "\n".join(lines)


def render_online_migration(report) -> str:
    """Live-traffic impact of a migration, rendered for the DBA.

    Args:
        report: A
            :class:`repro.simulator.concurrent.OnlineMigrationReport`
            (duck-typed).
    """
    lines = ["--- online migration impact ---"]
    throttle = "unthrottled" if report.throttle_mb_s is None \
        else f"{report.throttle_mb_s:.0f} MB/s throttle"
    lines.append(f"foreground pass: {report.baseline_s:.2f}s before, "
                 f"{report.target_s:.2f}s after migration "
                 f"({throttle})")
    for window, factor in zip(report.windows, report.degradation):
        lines.append(f"  window {window.index + 1:3d}: "
                     f"{window.foreground_s:8.2f}s foreground "
                     f"({factor:5.2f}x baseline), "
                     f"{window.migration_blocks:10.0f} blocks moved")
    lines.append(f"mean degradation: {report.mean_degradation:.2f}x  "
                 f"peak: {report.peak_degradation:.2f}x  "
                 f"overhead: {report.overhead_s:.2f}s")
    benefit = report.time_to_benefit_s
    if benefit is None:
        lines.append("time to benefit: never (the target layout is "
                     "not faster on this workload)")
    else:
        lines.append(f"time to benefit: {benefit:.1f}s of "
                     f"post-migration work repays the overhead "
                     f"(each pass saves "
                     f"{report.per_pass_saving_s:.2f}s)")
    return "\n".join(lines)


def _percentile(values: list[int], pct: float) -> float:
    """Nearest-rank percentile (matches the metric histograms)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


def render_search_diagnostics(search, max_steps: int = 8) -> str:
    """The search's per-iteration telemetry, rendered for the DBA.

    Shows the KL partitioning convergence (cut weight per pass) and the
    greedy trajectory (candidates tried and best cost per accepted
    move).  Portfolio runs get a summary line (trajectories, workers,
    winner) and pruned-candidate counts their own line.  Returns the
    empty string when the search carried no telemetry (e.g. full
    striping or a plain exhaustive run).

    Args:
        search: A :class:`repro.core.greedy.SearchResult`.
        max_steps: Cap on greedy steps listed; the trajectory keeps its
            head and tail and elides the middle.
    """
    lines: list[str] = []
    kl_passes = getattr(search, "kl_passes", 0)
    cut_weights = list(getattr(search, "kl_cut_weights", ()) or ())
    steps = list(getattr(search, "steps", ()) or ())
    extras = dict(getattr(search, "extras", {}) or {})
    if "trajectories" in extras:
        trajectories = int(extras.pop("trajectories"))
        workers = int(extras.pop("workers", 1))
        best = int(extras.pop("best_trajectory", 0))
        extras.pop("best_trajectory_cost", None)
        extras.pop("failed_trajectories", None)
        backend = {-1.0: "serial", 0.0: "thread", 1.0: "process"}.get(
            extras.pop("backend", None))
        via = f" via {backend} backend" if backend else ""
        lines.append(f"portfolio: {trajectories} trajectories on "
                     f"{workers} worker(s){via}; "
                     f"winner: trajectory {best}")
        failures = list(getattr(search, "failures", ()) or ())
        if getattr(search, "degraded", False) or failures:
            causes = ", ".join(sorted({f.cause for f in failures})) \
                or "unknown"
            lines.append(f"degraded: {len(failures)}/{trajectories} "
                         f"trajectories failed ({causes}); result is "
                         f"the exact best over the rest")
            for failure in failures:
                lines.append(f"  {failure.describe()}")
    pruned = extras.pop("pruned_candidates", None)
    bound_evals = extras.pop("bound_evaluations", None)
    if pruned is not None:
        line = f"pruning: {int(pruned)} candidates skipped"
        if bound_evals is not None:
            line += f" via {int(bound_evals)} lower-bound evaluations"
        lines.append(line + " (result unchanged by construction)")
    evaluations = int(getattr(search, "evaluations", 0) or 0)
    elapsed_s = float(getattr(search, "elapsed_s", 0.0) or 0.0)
    if evaluations > 0 and elapsed_s > 0:
        lines.append(f"throughput: {evaluations / elapsed_s:,.0f} "
                     f"candidates/s ({evaluations} evaluated in "
                     f"{elapsed_s:.3f}s)")
    if kl_passes or cut_weights:
        trail = " -> ".join(f"{w:.0f}" for w in cut_weights)
        lines.append(f"partitioning: {kl_passes} KL pass(es), "
                     f"cut weight {trail}" if trail else
                     f"partitioning: {kl_passes} KL pass(es)")
    if steps:
        accepted = [s for s in steps if s.accepted]
        candidates = sum(s.candidates for s in steps)
        lines.append(f"greedy: {len(accepted)} accepted moves over "
                     f"{len(steps)} iterations "
                     f"({candidates} candidates tried)")
        per_iteration = [s.candidates for s in steps]
        lines.append(
            "  candidates/iteration: "
            f"p50={_percentile(per_iteration, 50):g} "
            f"p95={_percentile(per_iteration, 95):g} "
            f"p99={_percentile(per_iteration, 99):g}")
        shown = accepted
        elided = 0
        if len(accepted) > max_steps:
            head = accepted[:max_steps - 2]
            tail = accepted[-2:]
            elided = len(accepted) - len(head) - len(tail)
            shown = head + tail
        for step in shown:
            if elided and step is shown[-2]:
                lines.append(f"  ... {elided} moves elided ...")
            changed = ", ".join(step.changed) if step.changed else "-"
            lines.append(f"  iter {step.iteration:3d}: "
                         f"best {step.best_cost:10.2f}s  "
                         f"({step.candidates} candidates; {changed})")
    if extras:
        rendered = ", ".join(f"{key}={value:g}"
                             for key, value in sorted(extras.items()))
        lines.append(f"search counters: {rendered}")
    if not lines:
        return ""
    return "\n".join(["--- search diagnostics ---", *lines])


def render_filegroup_script(layout: Layout,
                            database_name: str = "targetdb") -> str:
    """An implementation script for the layout.

    Emits one filegroup per distinct disk set, one file per member disk
    (sized to the objects' share on that disk), and the object-to-
    filegroup assignments — mirroring how a DBA realizes a layout with
    SQL Server filegroups or Oracle/DB2 tablespaces.
    """
    farm = layout.farm
    lines = [f"-- layout implementation script for {database_name}",
             f"-- {len(layout.object_names)} objects over "
             f"{len(farm)} disk drives", ""]
    for number, (disks, objects) in enumerate(
            sorted(layout.filegroups().items()), start=1):
        group = f"FG_{number}"
        lines.append(f"ALTER DATABASE {database_name} "
                     f"ADD FILEGROUP {group};")
        for disk in disks:
            blocks = sum(
                layout.size_of(obj) * layout.fraction(obj, disk)
                for obj in objects)
            size_mb = max(1, int(blocks * BLOCK_BYTES / 1024 / 1024))
            lines.append(
                f"ALTER DATABASE {database_name} ADD FILE "
                f"(NAME = {group}_{farm[disk].name}, "
                f"FILENAME = '{farm[disk].name}:\\{database_name}"
                f"\\{group}.ndf', SIZE = {size_mb}MB) "
                f"TO FILEGROUP {group};")
        for obj in sorted(objects):
            lines.append(f"-- move {obj} onto {group} "
                         f"(disks {', '.join(farm[d].name for d in disks)})")
            lines.append(f"ALTER TABLE {obj} MOVE TO {group};")
        lines.append("")
    return "\n".join(lines)
