"""DBA-facing recommendation reports.

The paper's tool hands the DBA a recommendation plus an estimated
improvement percentage.  This module renders that into (a) a readable
report and (b) an implementation script in SQL-Server-style DDL —
filegroups per distinct disk set, files per disk, and the object
assignments — which is how a layout is actually realized (Section 2.1).
"""

from __future__ import annotations

from repro.core.advisor import Recommendation
from repro.core.layout import Layout
from repro.storage.disk import BLOCK_BYTES


def render_report(recommendation: Recommendation,
                  top_statements: int = 10) -> str:
    """A human-readable summary of a recommendation.

    Args:
        recommendation: The advisor's output.
        top_statements: How many statements to list in the per-statement
            breakdown (ordered by absolute improvement).
    """
    rec = recommendation
    lines = [
        "=== database layout recommendation ===",
        f"estimated workload I/O time: {rec.estimated_cost:.1f}s",
        f"current layout I/O time:     {rec.current_cost:.1f}s",
        f"estimated improvement:       {rec.improvement_pct:.0f}%",
        "",
        "--- placement ---",
        rec.layout.describe(),
    ]
    if rec.per_statement:
        ranked = sorted(rec.per_statement,
                        key=lambda row: -(row[1] - row[2]))
        lines.append("")
        lines.append("--- statements with the largest changes ---")
        for name, current, proposed in ranked[:top_statements]:
            delta = current - proposed
            sign = "saves" if delta >= 0 else "costs"
            lines.append(f"{name:12s} {current:8.2f}s -> "
                         f"{proposed:8.2f}s  ({sign} {abs(delta):.2f}s)")
    movement = rec.data_movement_blocks
    if movement is not None and movement > 0:
        moved_gb = movement * BLOCK_BYTES / 1024 ** 3
        lines.append("")
        lines.append(f"implementing this layout moves "
                     f"{moved_gb:.2f} GB ({movement:.0f} blocks)")
    if rec.search is not None:
        lines.append("")
        lines.append(f"search: {rec.search.iterations} iterations, "
                     f"{rec.search.evaluations} layouts costed, "
                     f"{rec.search.elapsed_s:.2f}s")
    return "\n".join(lines)


def render_filegroup_script(layout: Layout,
                            database_name: str = "targetdb") -> str:
    """An implementation script for the layout.

    Emits one filegroup per distinct disk set, one file per member disk
    (sized to the objects' share on that disk), and the object-to-
    filegroup assignments — mirroring how a DBA realizes a layout with
    SQL Server filegroups or Oracle/DB2 tablespaces.
    """
    farm = layout.farm
    lines = [f"-- layout implementation script for {database_name}",
             f"-- {len(layout.object_names)} objects over "
             f"{len(farm)} disk drives", ""]
    for number, (disks, objects) in enumerate(
            sorted(layout.filegroups().items()), start=1):
        group = f"FG_{number}"
        lines.append(f"ALTER DATABASE {database_name} "
                     f"ADD FILEGROUP {group};")
        for disk in disks:
            blocks = sum(
                layout.size_of(obj) * layout.fraction(obj, disk)
                for obj in objects)
            size_mb = max(1, int(blocks * BLOCK_BYTES / 1024 / 1024))
            lines.append(
                f"ALTER DATABASE {database_name} ADD FILE "
                f"(NAME = {group}_{farm[disk].name}, "
                f"FILENAME = '{farm[disk].name}:\\{database_name}"
                f"\\{group}.ndf', SIZE = {size_mb}MB) "
                f"TO FILEGROUP {group};")
        for obj in sorted(objects):
            lines.append(f"-- move {obj} onto {group} "
                         f"(disks {', '.join(farm[d].name for d in disks)})")
            lines.append(f"ALTER TABLE {obj} MOVE TO {group};")
        lines.append("")
    return "\n".join(lines)
