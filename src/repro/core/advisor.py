"""The end-to-end layout advisor (the paper's Figure-3 architecture).

Inputs: a database catalog, a workload, a disk-farm description, and
optional constraints.  Output: a layout recommendation with the estimated
percentage improvement in I/O response time over the current layout —
exactly the tool interface the paper describes.
"""

from __future__ import annotations

import logging
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.catalog.schema import Database
from repro.core.constraints import ConstraintSet
from repro.core.costmodel import CostModel, WorkloadCostEvaluator
from repro.core.exhaustive import exhaustive_search
from repro.core.fullstripe import full_striping
from repro.core.greedy import SearchResult, TsGreedySearch
from repro.core.layout import Layout
from repro.errors import DegradedResult, LayoutError
from repro.obs import NULL_METRICS, NULL_RECORDER, NULL_TRACER
from repro.optimizer.planner import Planner
from repro.storage.disk import DiskFarm
from repro.storage.migration import MigrationPlan, plan_migration
from repro.workload.access import AnalyzedWorkload, analyze_workload
from repro.workload.access_graph import AccessGraph, build_access_graph
from repro.workload.workload import Workload

if TYPE_CHECKING:
    from repro.analysis.diagnostics import AnalysisReport, Diagnostic

logger = logging.getLogger("repro.core.advisor")


@dataclass
class Recommendation:
    """A layout recommendation with its estimated benefit.

    Attributes:
        layout: The recommended layout.
        estimated_cost: Estimated workload I/O response time under it.
        current_cost: Estimated workload I/O response time under the
            current layout (full striping unless one was supplied).
        improvement_pct: ``100 * (current - estimated) / current``.
        per_statement: (statement name or index, current cost, new cost)
            triples for reporting.
        search: Raw search telemetry.
        diagnostics: Static-analysis findings attached to the run —
            pre-flight warnings plus the post-search audit of the
            recommended layout (``repro.analysis`` rule IDs).
        migration: Ordered capacity-safe move plan from
            ``current_layout`` to ``layout`` (incremental runs only).
        movement_budget: The Δ movement-budget fraction the search ran
            under (incremental runs only).
    """

    layout: Layout
    estimated_cost: float
    current_cost: float
    per_statement: list[tuple[str, float, float]] = field(
        default_factory=list)
    search: SearchResult | None = None
    current_layout: Layout | None = None
    diagnostics: "list[Diagnostic]" = field(default_factory=list)
    migration: MigrationPlan | None = None
    movement_budget: float | None = None

    @property
    def improvement_pct(self) -> float:
        if self.current_cost <= 0:
            return 0.0
        return 100.0 * (self.current_cost - self.estimated_cost) \
            / self.current_cost

    @property
    def data_movement_blocks(self) -> float | None:
        """Blocks that must move to implement the recommendation, or
        ``None`` when no current layout was recorded."""
        if self.current_layout is None:
            return None
        return self.current_layout.data_movement_blocks(self.layout)

    @property
    def moved_fraction(self) -> float | None:
        """Moved blocks as a fraction of the database's total blocks,
        or ``None`` when no current layout was recorded."""
        moved = self.data_movement_blocks
        if moved is None:
            return None
        total = sum(self.layout.object_sizes.values())
        return moved / total if total else 0.0


class LayoutAdvisor:
    """Recommends a database layout for a workload.

    Args:
        db: Database catalog (tables, indexes, views, statistics).
        farm: Available disk drives with their characteristics.
        constraints: Optional manageability/availability constraints.
        planner: Optional custom planner (defaults to one over ``db``).
        tracer: Optional :class:`repro.obs.Tracer`; every pipeline phase
            of :meth:`recommend` emits a span under a ``recommend`` root.
        metrics: Optional :class:`repro.obs.MetricsRegistry`; the
            pipeline's components record their instruments into it.
        recorder: Optional :class:`repro.obs.EventRecorder` (the flight
            recorder); the search loops, the portfolio engine and the
            migration planner emit their typed events into it.  Pass a
            tracer built with the same recorder
            (``Tracer(recorder=recorder)``) to get phase events too.

    With no ``tracer``/``metrics``/``recorder`` the no-op
    implementations are used: results are bit-identical and the
    overhead is a handful of cheap method calls per phase (nothing per
    candidate layout).
    """

    def __init__(self, db: Database, farm: DiskFarm,
                 constraints: ConstraintSet | None = None,
                 planner: Planner | None = None,
                 tracer=None, metrics=None, recorder=None):
        self._db = db
        self._farm = farm
        self._constraints = constraints or ConstraintSet()
        self._planner = planner or Planner(db)
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics if metrics is not None else NULL_METRICS
        self._recorder = recorder if recorder is not None \
            else NULL_RECORDER

    # -- analysis --------------------------------------------------------------

    def analyze(self, workload: Workload) -> AnalyzedWorkload:
        """Run the Analyze Workload component (plan, decompose)."""
        return analyze_workload(workload, self._db, self._planner,
                                tracer=self._tracer,
                                metrics=self._metrics)

    def access_graph(self, analyzed: AnalyzedWorkload) -> AccessGraph:
        """Build the co-access graph for an analyzed workload."""
        return build_access_graph(analyzed, self._db,
                                  tracer=self._tracer,
                                  metrics=self._metrics)

    def evaluator(self,
                  analyzed: AnalyzedWorkload) -> WorkloadCostEvaluator:
        """Precompile the workload for repeated cost evaluation."""
        with self._tracer.span("build-evaluator"):
            return WorkloadCostEvaluator(analyzed, self._farm,
                                         sorted(self._db.object_sizes()),
                                         metrics=self._metrics)

    # -- static analysis ---------------------------------------------------------

    def _preflight(self,
                   analyzed: AnalyzedWorkload) -> "AnalysisReport":
        """Gate the run on its inputs (raises AnalysisError on errors)."""
        # Deferred import: repro.analysis is a higher layer built on top
        # of repro.core, so repro.core modules must not import it at
        # load time.
        from repro.analysis.engine import preflight
        return preflight(self._db, self._farm,
                         constraints=self._constraints,
                         analyzed=analyzed,
                         tracer=self._tracer, metrics=self._metrics)

    def _audit(self, layout: Layout,
               graph: AccessGraph) -> "AnalysisReport":
        """Post-search audit of the recommended layout."""
        from repro.analysis.engine import audit_recommendation
        return audit_recommendation(layout, graph,
                                    tracer=self._tracer,
                                    metrics=self._metrics)

    def _audit_migration(self, migration: MigrationPlan,
                         current_layout: Layout,
                         movement_budget: float) -> "AnalysisReport":
        """Post-search audit of an incremental run's migration plan."""
        from repro.analysis.engine import audit_migration
        return audit_migration(migration, current_layout,
                               movement_budget,
                               tracer=self._tracer,
                               metrics=self._metrics)

    # -- recommendation -----------------------------------------------------------

    def recommend(self, workload: Workload | AnalyzedWorkload,
                  current_layout: Layout | None = None,
                  method: str = "ts-greedy",
                  k: int = 1, jobs: int = 1, backend: str = "auto",
                  portfolio=None, deadline=None, retry=None,
                  trajectory_timeout_s: float | None = None,
                  faults=None,
                  movement_budget: float | None = None,
                  ) -> Recommendation:
        """Recommend a layout for the workload.

        Args:
            workload: The workload (raw or pre-analyzed).
            current_layout: The database's current layout; defaults to
                full striping, the traditional practice the paper
                compares against.
            method: ``"ts-greedy"`` (default), ``"portfolio"``,
                ``"incremental"``, ``"full-striping"`` or
                ``"exhaustive"``.
            k: TS-GREEDY's widening parameter.
            jobs: Worker count for ``method="portfolio"`` (1 runs
                the portfolio serially in-process, 0 auto-sizes to the
                machine; results are identical either way).
            backend: For ``method="portfolio"`` with ``jobs != 1``:
                ``"thread"``, ``"process"``, or ``"auto"`` (default —
                a deterministic workload-size heuristic).  Results are
                bit-identical across backends; only wall time differs.
            portfolio: For ``method="portfolio"``: a trajectory count,
                a sequence of :class:`repro.parallel.TrajectorySpec`,
                or ``None`` for the default portfolio.
            deadline: For ``method="portfolio"``: wall-clock budget for
                the search — seconds, a :class:`repro.resilience.Budget`
                or a live :class:`repro.resilience.Deadline`.  When it
                expires the advisor returns the exact best layout over
                the trajectories that completed (a *degraded* result; a
                :class:`~repro.errors.DegradedResult` warning is
                emitted) rather than raising.
            retry: For ``method="portfolio"``: a
                :class:`repro.resilience.RetryPolicy` governing serial
                re-runs of failed trajectories.
            trajectory_timeout_s: For ``method="portfolio"``: per-
                trajectory cap while draining worker futures.
            faults: For ``method="portfolio"``: a
                :class:`repro.resilience.FaultPlan` for tests/chaos
                runs (defaults to the ``REPRO_FAULTS`` environment
                variable; ``None`` in production).
            movement_budget: For ``method="incremental"``: Δ, the
                maximum fraction of the database's blocks that may
                change disks relative to ``current_layout`` (defaults
                to 1.0, i.e. unbounded).  The search is seeded from
                the current layout, over-budget moves are projected
                back onto the budget, and the recommendation carries
                an ordered capacity-safe :class:`MigrationPlan` (see
                ``docs/incremental.md``).

        Returns:
            A :class:`Recommendation`; its ``improvement_pct`` is the
            estimate the tool reports to the DBA.  Check
            ``recommendation.search.degraded`` / ``.failures`` to see
            whether (and why) trajectories were lost.

        Raises:
            AnalysisError: If the pre-flight static analysis finds an
                error-level diagnostic in the constraints or workload.
            SearchTimeout: If a ``deadline`` expired before *any*
                portfolio trajectory completed.
            WorkerCrash: If every portfolio trajectory was lost to
                worker failures (after serial re-runs).
        """
        with self._tracer.span("recommend", method=method) as root:
            analyzed = workload if isinstance(workload, AnalyzedWorkload) \
                else self.analyze(workload)
            preflight_report = self._preflight(analyzed)
            sizes = self._db.object_sizes()
            if current_layout is None:
                with self._tracer.span("baseline-layout"):
                    current_layout = full_striping(sizes, self._farm)
            evaluator = self.evaluator(analyzed)
            graph: AccessGraph | None = None
            if method == "ts-greedy":
                graph = self.access_graph(analyzed)
                search = TsGreedySearch(self._farm, evaluator, sizes,
                                        constraints=self._constraints,
                                        k=k, tracer=self._tracer,
                                        metrics=self._metrics,
                                        recorder=self._recorder)
                initial = current_layout \
                    if self._constraints.movement is not None else None
                result = search.search(graph, initial_layout=initial)
            elif method == "portfolio":
                graph = self.access_graph(analyzed)
                result = self._portfolio_search(
                    evaluator, sizes, graph, current_layout, k, jobs,
                    portfolio, backend=backend, deadline=deadline,
                    retry=retry,
                    trajectory_timeout_s=trajectory_timeout_s,
                    faults=faults)
                if result.degraded:
                    detail = "; ".join(f.describe()
                                       for f in result.failures)
                    warnings.warn(
                        f"degraded recommendation: "
                        f"{len(result.failures)}/"
                        f"{int(result.extras.get('trajectories', 0))} "
                        f"trajectories failed ({detail}); the layout "
                        f"is the exact best over the completed ones",
                        DegradedResult, stacklevel=2)
            elif method == "incremental":
                from repro.core.incremental import IncrementalSearch
                budget = 1.0 if movement_budget is None \
                    else movement_budget
                graph = self.access_graph(analyzed)
                engine = IncrementalSearch(
                    self._farm, evaluator, sizes,
                    constraints=self._constraints, k=k,
                    tracer=self._tracer, metrics=self._metrics,
                    recorder=self._recorder)
                result = engine.search(graph, current_layout, budget)
            elif method == "full-striping":
                with self._tracer.span("full-striping"):
                    layout = full_striping(sizes, self._farm)
                    result = SearchResult(layout=layout,
                                          cost=evaluator.cost(layout),
                                          initial_cost=evaluator.cost(
                                              layout))
            elif method == "exhaustive":
                with self._tracer.span("exhaustive") as span:
                    result = exhaustive_search(
                        self._farm, evaluator, sizes,
                        constraints=self._constraints)
                    span.set("evaluations", result.evaluations)
            else:
                raise LayoutError(f"unknown search method {method!r}")
            self._constraints.check(result.layout)
            with self._tracer.span("score-current"):
                current_cost = evaluator.cost(current_layout)
            # Never recommend a layout the model scores worse than what
            # the DBA already has, provided keeping it is allowed.
            if result.cost > current_cost \
                    and self._constraints.is_satisfied(current_layout):
                logger.info(
                    "search result (%.3f) is worse than the current "
                    "layout (%.3f); keeping the current layout",
                    result.cost, current_cost)
                result = result.with_layout(current_layout,
                                            current_cost)
            with self._tracer.span("per-statement-costs"):
                model = CostModel(self._farm)
                per_statement = []
                for index, analyzed_stmt in enumerate(analyzed):
                    name = analyzed_stmt.statement.name \
                        or f"stmt{index + 1}"
                    per_statement.append((
                        name,
                        model.statement_cost(analyzed_stmt,
                                             current_layout),
                        model.statement_cost(analyzed_stmt,
                                             result.layout)))
            audit_graph = graph if graph is not None \
                else self.access_graph(analyzed)
            diagnostics = list(preflight_report) \
                + list(self._audit(result.layout, audit_graph))
            migration = None
            budget_used = None
            if method == "incremental":
                budget_used = 1.0 if movement_budget is None \
                    else movement_budget
                migration = plan_migration(current_layout,
                                           result.layout,
                                           tracer=self._tracer,
                                           metrics=self._metrics,
                                           recorder=self._recorder)
                diagnostics += list(self._audit_migration(
                    migration, current_layout, budget_used))
            recommendation = Recommendation(
                layout=result.layout, estimated_cost=result.cost,
                current_cost=current_cost, per_statement=per_statement,
                search=result, current_layout=current_layout,
                diagnostics=diagnostics, migration=migration,
                movement_budget=budget_used)
            root.set("improvement_pct",
                     round(recommendation.improvement_pct, 3))
            self._metrics.set_gauge("advisor.improvement_pct",
                                    recommendation.improvement_pct)
            logger.info(
                "recommendation: %.3fs -> %.3fs (%.1f%% improvement, "
                "method=%s)", current_cost, result.cost,
                recommendation.improvement_pct, method)
            return recommendation

    def _portfolio_search(self, evaluator: WorkloadCostEvaluator,
                          sizes: dict[str, int], graph: AccessGraph,
                          current_layout: Layout, k: int, jobs: int,
                          portfolio, backend: str = "auto",
                          deadline=None, retry=None,
                          trajectory_timeout_s: float | None = None,
                          faults=None) -> SearchResult:
        """Run the multi-start portfolio engine (method="portfolio")."""
        # Deferred import: repro.parallel builds on repro.core, so the
        # dependency must point parallel -> core at module-load time.
        from repro.parallel import PortfolioSearch, default_portfolio
        constrained = bool(self._constraints.co_located
                           or self._constraints.availability
                           or self._constraints.movement)
        if portfolio is None:
            specs = default_portfolio(
                k=k, include_annealing=not constrained)
        elif isinstance(portfolio, int):
            specs = default_portfolio(
                portfolio, k=k, include_annealing=not constrained)
        else:
            specs = list(portfolio)
        engine = PortfolioSearch(self._farm, evaluator, sizes,
                                 constraints=self._constraints,
                                 specs=specs, jobs=jobs,
                                 backend=backend,
                                 tracer=self._tracer,
                                 metrics=self._metrics,
                                 deadline=deadline, retry=retry,
                                 trajectory_timeout_s=trajectory_timeout_s,
                                 faults=faults,
                                 recorder=self._recorder)
        initial = current_layout \
            if self._constraints.movement is not None else None
        return engine.search(graph, initial_layout=initial)

    def recommend_concurrent(self, workload: "Workload | AnalyzedWorkload",
                             spec,
                             current_layout: Layout | None = None,
                             k: int = 1) -> Recommendation:
        """Recommend a layout for a workload with overlap information.

        The concurrency-aware variant of :meth:`recommend` (the paper's
        stated future work): statements grouped by the
        :class:`~repro.workload.concurrency.ConcurrencySpec` are treated
        as co-executing, so both the access graph and the cost being
        optimized include cross-statement contention and the parallelism
        credit of disjoint placement.

        Args:
            workload: The workload (raw or pre-analyzed).
            spec: A :class:`~repro.workload.concurrency.ConcurrencySpec`.
            current_layout: Baseline for the improvement estimate;
                defaults to full striping.
            k: TS-GREEDY's widening parameter.
        """
        from repro.workload.concurrency import (
            build_access_graph_concurrent,
            concurrent_cost_workload,
        )
        with self._tracer.span("recommend-concurrent"):
            analyzed = workload \
                if isinstance(workload, AnalyzedWorkload) \
                else self.analyze(workload)
            # Pre-flight runs on the *un-expanded* workload: the
            # concurrency expansion legitimately adds negative
            # correction weights that ALR022 would flag.
            preflight_report = self._preflight(analyzed)
            sizes = self._db.object_sizes()
            if current_layout is None:
                with self._tracer.span("baseline-layout"):
                    current_layout = full_striping(sizes, self._farm)
            with self._tracer.span("expand-concurrency"):
                expanded = concurrent_cost_workload(analyzed, spec)
            with self._tracer.span("build-evaluator"):
                evaluator = WorkloadCostEvaluator(
                    expanded, self._farm, sorted(sizes),
                    metrics=self._metrics)
            with self._tracer.span("build-access-graph"):
                graph = build_access_graph_concurrent(analyzed, spec,
                                                      self._db)
            search = TsGreedySearch(self._farm, evaluator, sizes,
                                    constraints=self._constraints, k=k,
                                    tracer=self._tracer,
                                    metrics=self._metrics,
                                    recorder=self._recorder)
            initial = current_layout \
                if self._constraints.movement is not None else None
            result = search.search(graph, initial_layout=initial)
            self._constraints.check(result.layout)
            with self._tracer.span("score-current"):
                current_cost = evaluator.cost(current_layout)
            if result.cost > current_cost \
                    and self._constraints.is_satisfied(current_layout):
                result = result.with_layout(current_layout,
                                            current_cost)
            diagnostics = list(preflight_report) \
                + list(self._audit(result.layout, graph))
            return Recommendation(layout=result.layout,
                                  estimated_cost=result.cost,
                                  current_cost=current_cost,
                                  search=result,
                                  current_layout=current_layout,
                                  diagnostics=diagnostics)
