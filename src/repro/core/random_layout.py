"""Seeded random layouts (used by the cost-model validation experiment).

The paper's Section 7 generates layouts "where … the layout of all the
TPCH1G tables is determined at random"; this module reproduces that with
a deterministic RNG: each object lands on a uniformly random non-empty
subset of disks and is striped rate-proportionally across it.
"""

from __future__ import annotations

import random
from typing import Mapping

from repro.core.layout import Layout, stripe_fractions
from repro.errors import LayoutError
from repro.storage.disk import DiskFarm


def random_layout(object_sizes: Mapping[str, int], farm: DiskFarm,
                  seed: int, max_attempts: int = 200) -> Layout:
    """A random valid layout.

    Each object independently picks a subset size uniformly from
    ``1..m`` and then a uniform subset of that size.  Capacity-violating
    draws are retried (the paper's testbed, like ours, has ample slack).

    Args:
        object_sizes: Object name -> size in blocks.
        farm: Disk drives.
        seed: RNG seed; the same seed always yields the same layout.
        max_attempts: Retries before giving up on capacity.
    """
    rng = random.Random(seed)
    names = sorted(object_sizes)
    for _ in range(max_attempts):
        fractions = {}
        for name in names:
            size = rng.randint(1, len(farm))
            disks = rng.sample(range(len(farm)), size)
            fractions[name] = stripe_fractions(disks, farm)
        try:
            return Layout(farm, dict(object_sizes), fractions)
        except LayoutError:
            continue
    raise LayoutError(
        f"could not draw a capacity-feasible random layout in "
        f"{max_attempts} attempts")
