"""Manageability and availability constraints (Section 2.3).

Constraints refine the definition of a *valid* layout:

* :class:`CoLocated` — two objects must live in the same filegroup,
  i.e. on exactly the same set of disk drives
  (``x_ij = 0  <=>  x_kj = 0`` for all ``j``);
* :class:`AvailabilityRequirement` — an object may only be placed on
  drives with a given availability property
  (``x_ij > 0  =>  AVAIL_j = A``);
* :class:`MaxDataMovement` — an incrementality bound: transforming the
  current layout into the proposed one may move at most N blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.layout import Layout
from repro.core.tolerance import EPS_CAPACITY
from repro.errors import ConstraintError
from repro.storage.disk import Availability, DiskFarm


@dataclass(frozen=True)
class CoLocated:
    """Objects ``a`` and ``b`` must be assigned to the same disk set."""

    a: str
    b: str

    def check(self, layout: Layout) -> None:
        """Raise :class:`ConstraintError` if the objects' disk sets differ."""
        if layout.disks_of(self.a) != layout.disks_of(self.b):
            raise ConstraintError(
                f"Co-Located({self.a}, {self.b}) violated: "
                f"{layout.disks_of(self.a)} vs {layout.disks_of(self.b)}")


@dataclass(frozen=True)
class AvailabilityRequirement:
    """Object ``obj`` may only be placed on drives with ``level``."""

    obj: str
    level: Availability

    def check(self, layout: Layout) -> None:
        """Raise :class:`ConstraintError` on any disallowed drive."""
        for j in layout.disks_of(self.obj):
            if layout.farm[j].availability is not self.level:
                raise ConstraintError(
                    f"Avail-Requirement({self.obj}) violated: disk "
                    f"{layout.farm[j].name} is "
                    f"{layout.farm[j].availability}, requires {self.level}")

    def allowed_disks(self, farm: DiskFarm) -> list[int]:
        """Farm indices of disks satisfying the requirement."""
        return [j for j, d in enumerate(farm)
                if d.availability is self.level]


@dataclass(frozen=True)
class MaxDataMovement:
    """Moving from ``baseline`` to the proposed layout must shift at most
    ``max_blocks`` blocks (the paper's incremental-redesign constraint)."""

    baseline: Layout
    max_blocks: float

    def check(self, layout: Layout) -> None:
        """Raise :class:`ConstraintError` if the move budget is exceeded."""
        moved = self.baseline.data_movement_blocks(layout)
        if moved > self.max_blocks + EPS_CAPACITY:
            raise ConstraintError(
                f"data movement {moved:.0f} blocks exceeds bound "
                f"{self.max_blocks:.0f}")


class ConstraintSet:
    """A bundle of layout constraints with combined validation.

    Also exposes the two queries the search needs: per-object allowed
    disk sets (availability) and co-location groups (objects that must
    move together).
    """

    def __init__(self,
                 co_located: Iterable[CoLocated] = (),
                 availability: Iterable[AvailabilityRequirement] = (),
                 movement: MaxDataMovement | None = None):
        self.co_located = list(co_located)
        self.availability = list(availability)
        self.movement = movement
        self._avail_by_obj: dict[str, AvailabilityRequirement] = {}
        for req in self.availability:
            if req.obj in self._avail_by_obj \
                    and self._avail_by_obj[req.obj].level is not req.level:
                raise ConstraintError(
                    f"conflicting availability requirements for {req.obj}")
            self._avail_by_obj[req.obj] = req

    def check(self, layout: Layout) -> None:
        """Raise :class:`ConstraintError` on the first violation."""
        for constraint in self.co_located:
            constraint.check(layout)
        for constraint in self.availability:
            constraint.check(layout)
        if self.movement is not None:
            self.movement.check(layout)

    def is_satisfied(self, layout: Layout) -> bool:
        """Boolean form of :meth:`check`."""
        try:
            self.check(layout)
        except ConstraintError:
            return False
        return True

    def allowed_disks(self, obj: str, farm: DiskFarm) -> list[int]:
        """Disks object ``obj`` may occupy given availability rules.

        Co-location tightens this further: the intersection over a
        co-location group applies to every member.
        """
        group = self.group_of(obj)
        allowed = set(range(len(farm)))
        for member in group:
            req = self._avail_by_obj.get(member)
            if req is not None:
                allowed &= set(req.allowed_disks(farm))
        if not allowed:
            raise ConstraintError(
                f"no disk satisfies the availability requirements of "
                f"{obj!r}'s co-location group")
        return sorted(allowed)

    def group_of(self, obj: str) -> frozenset[str]:
        """The co-location group containing ``obj`` (singleton if none)."""
        for group in self.groups():
            if obj in group:
                return group
        return frozenset({obj})

    def groups(self) -> list[frozenset[str]]:
        """Connected components of the co-location relation."""
        parent: dict[str, str] = {}

        def find(x: str) -> str:
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for constraint in self.co_located:
            root_a, root_b = find(constraint.a), find(constraint.b)
            if root_a != root_b:
                parent[root_a] = root_b
        groups: dict[str, set[str]] = {}
        for member in parent:
            groups.setdefault(find(member), set()).add(member)
        return [frozenset(g) for g in groups.values()]
