"""The analytical I/O response-time cost model (Section 5, Figure 7).

For a statement ``Q`` under layout ``L``::

    Cost(Q, L) = sum over non-blocking subplans P of
                   max over disks D_j of (TransferCost_j + SeekCost_j)

    TransferCost_j = sum_i x_ij * B(|R_i|, P) / T_j
    SeekCost_j     = k * S_j * min_i (x_ij * B(|R_i|, P))   if k > 1
                   = 0                                      otherwise

where the sums run over objects accessed in ``P``, ``k`` is the number of
such objects with a positive fraction on ``D_j``, ``T_j`` is the read or
write transfer rate as appropriate, and ``S_j`` the average seek time.
The max captures "the last disk drive to complete I/O determines the I/O
response time"; the seek term models proportional interleaving of
co-located streams.

Mirroring the paper's implementation, accesses to temp objects (tempdb)
are *ignored* by this model — the paper's Section 7 attributes its
validation failures to exactly that omission, and our simulator charges
them, so the same failure mode reproduces here.

Two implementations are provided: a direct, readable one
(:class:`CostModel`) and a precompiled vectorized one
(:class:`WorkloadCostEvaluator`) used by the search, which must evaluate
thousands of layouts.  They agree to float precision (tested).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.layout import Layout
from repro.core.tolerance import EPS_COST, EPS_ZERO
from repro.errors import LayoutError
from repro.obs import NULL_METRICS
from repro.optimizer.planner import TEMPDB
from repro.storage.disk import DiskFarm, DiskSpec
from repro.workload.access import (
    AnalyzedStatement,
    AnalyzedWorkload,
    SubplanAccess,
)

#: Byte budget for the candidate tensor of one vectorized evaluation
#: pass.  :meth:`WorkloadCostEvaluator.costs_for_rows` sizes its chunk
#: so the ``(chunk, S_affected, K, m)`` working set stays near this
#: figure — small problems get large chunks (fewer Python iterations),
#: paper-scale problems keep the old memory profile.  Sized to sit in
#: the L2 cache: measured on the SRCH bench, throughput peaks with
#: ~128 KB working sets and falls ~20% by 1 MB (the reduction passes
#: re-stream the tensor from L3/DRAM instead).
_CHUNK_TARGET_BYTES = 128 << 10

#: Chunk bounds for the auto-sizer: the floor matches the historical
#: fixed chunk (never slower than before), the ceiling bounds peak
#: memory when a workload barely touches an object.
_CHUNK_MIN = 16
_CHUNK_MAX = 1024

#: The read-only packed arrays every evaluator clone / shared-memory
#: attach shares; mutable per-search state is never in this list.
PACKED_ARRAYS = ("_idx", "_blocks", "_mask", "_inv", "_weights",
                 "_seeks")


class CostModel:
    """Direct (reference) implementation of the Figure-7 cost model.

    Args:
        farm: The disk drives layouts are defined over.
        tempdb: Optional dedicated temp drive.  The paper's formulation
            supports temp objects ("we can incorporate these effects by
            modeling temporary tables as objects") but its implementation
            ignored them — the source of its validation failures.  Pass
            the tempdb drive spec to enable the temp-aware extension:
            each subplan's temp I/O is charged to this drive, which
            participates in the last-disk-to-finish max.
    """

    def __init__(self, farm: DiskFarm, tempdb: "DiskSpec | None" = None):
        self._farm = farm
        self._tempdb = tempdb

    def _tempdb_cost(self, subplan: SubplanAccess) -> float:
        """I/O time of the subplan's temp streams on the temp drive.

        Spill passes are sequential (a sort writes its run files fully
        before reading them back), so no Figure-7 interleave seek term
        applies between the write and read streams.
        """
        if self._tempdb is None:
            return 0.0
        return sum(
            blocks / self._tempdb.transfer_blocks_s(write=write)
            for (name, write), blocks
            in subplan.blocks_by_object(include_temp=True).items()
            if name == TEMPDB and blocks > 0)

    def subplan_cost(self, subplan: SubplanAccess, layout: Layout) -> float:
        """Estimated I/O time of one non-blocking subplan: max over disks."""
        streams = [(name, write, blocks)
                   for (name, write), blocks
                   in subplan.blocks_by_object(include_temp=False).items()
                   if blocks > 0 and name in layout.object_names]
        worst = self._tempdb_cost(subplan)
        if not streams:
            return worst
        for j, disk in enumerate(self._farm):
            transfer = 0.0
            active: list[float] = []
            for name, write, blocks in streams:
                here = layout.fraction(name, j) * blocks
                if here <= EPS_ZERO:
                    continue
                transfer += here / disk.transfer_blocks_s(write=write)
                active.append(here)
            if not active:
                continue
            seek = 0.0
            if len(active) > 1:
                seek = len(active) * disk.avg_seek_s * min(active)
            worst = max(worst, transfer + seek)
        return worst

    def statement_cost(self, analyzed: AnalyzedStatement,
                       layout: Layout) -> float:
        """``Cost(Q, L)``: summed subplan costs (unweighted)."""
        return sum(self.subplan_cost(s, layout) for s in analyzed.subplans)

    def workload_cost(self, workload: AnalyzedWorkload,
                      layout: Layout) -> float:
        """Weighted total: ``sum_Q w_Q * Cost(Q, L)``."""
        return sum(a.weight * self.statement_cost(a, layout)
                   for a in workload)


class WorkloadCostEvaluator:
    """Precompiled, vectorized workload cost evaluation.

    The search algorithms evaluate thousands of candidate layouts that
    differ from a base layout in a single object's fraction row; this
    class supports both full evaluation (:meth:`cost`) and O(affected
    subplans) delta evaluation (:meth:`cost_with_row` after
    :meth:`set_base`).

    Two optimizations keep large experiments (64 disks x 800 queries)
    tractable without changing any result:

    * **workload compression** — subplans with identical (object, write,
      blocks) stream sets are merged, summing their statement weights
      (frequent in template-generated workloads like APB-800);
    * **padded-array evaluation** — all subplans are packed into
      ``(S, K, m)`` arrays (K = max streams per subplan) so a full
      evaluation is a handful of vectorized operations.

    Args:
        workload: A planned-and-decomposed workload.
        farm: The disk farm candidate layouts are defined over.
        object_names: Row order of the layout matrices to evaluate;
            must match the layouts passed in later.
        metrics: Optional :class:`repro.obs.MetricsRegistry`; records
            ``costmodel.*`` evaluation counters.
    """

    def __init__(self, workload: AnalyzedWorkload, farm: DiskFarm,
                 object_names: Sequence[str], metrics=None):
        self._metrics = metrics if metrics is not None else NULL_METRICS
        self._farm = farm
        self._names = list(object_names)
        self._index = {name: i for i, name in enumerate(self._names)}
        m = len(farm)
        self._seeks = np.array([d.avg_seek_s for d in farm])
        inv_read = np.array([1.0 / d.read_blocks_s for d in farm])
        inv_write = np.array([1.0 / d.write_blocks_s for d in farm])

        # Collect subplans as hashable stream signatures and compress.
        signatures: dict[tuple, float] = {}
        for analyzed in workload:
            for subplan in analyzed.subplans:
                entries = tuple(sorted(
                    (self._index[name], write, round(blocks, 6))
                    for (name, write), blocks
                    in subplan.blocks_by_object(include_temp=False).items()
                    if blocks > 0 and name in self._index))
                if not entries:
                    continue
                signatures[entries] = signatures.get(entries, 0.0) \
                    + analyzed.weight
        self._n_subplans = len(signatures)
        self.n_compressed_from = sum(
            1 for a in workload for s in a.subplans if s.accesses)
        if self._n_subplans == 0:
            self._idx = np.zeros((0, 1), dtype=np.intp)
            self._blocks = np.zeros((0, 1))
            self._mask = np.zeros((0, 1), dtype=bool)
            self._inv = np.zeros((0, 1, m))
            self._weights = np.zeros(0)
        else:
            k_max = max(len(sig) for sig in signatures)
            s_count = self._n_subplans
            self._idx = np.zeros((s_count, k_max), dtype=np.intp)
            self._blocks = np.zeros((s_count, k_max))
            self._mask = np.zeros((s_count, k_max), dtype=bool)
            self._inv = np.zeros((s_count, k_max, m))
            self._weights = np.zeros(s_count)
            for s, (sig, weight) in enumerate(signatures.items()):
                self._weights[s] = weight
                for k, (obj, write, blocks) in enumerate(sig):
                    self._idx[s, k] = obj
                    self._blocks[s, k] = blocks
                    self._mask[s, k] = True
                    self._inv[s, k] = inv_write if write else inv_read
        #: subplan indices touching each object row
        self._touching: list[np.ndarray] = []
        for i in range(len(self._names)):
            rows = np.nonzero(((self._idx == i) & self._mask)
                              .any(axis=1))[0]
            self._touching.append(rows)
        self._init_mutable_state()
        self._metrics.set_gauge("costmodel.subplans", self._n_subplans)
        self._metrics.set_gauge("costmodel.subplans_raw",
                                self.n_compressed_from)

    def _init_mutable_state(self) -> None:
        """Fresh per-search mutable state (base matrix and caches).

        Shared by ``__init__``, :meth:`clone` and the shared-memory
        attach path — anything mutable an evaluator owns starts here,
        so clones and attached replicas can never alias search state.
        """
        self._base_matrix: np.ndarray | None = None
        self._base_costs: np.ndarray | None = None
        self._base_total: float = 0.0
        #: Monotone counter identifying the current base layout; bumped
        #: by :meth:`set_base` and :meth:`commit_rows`.  Base-dependent
        #: cache entries are tagged with the epoch they were built at
        #: and are valid only while the tags match.
        self._base_epoch: int = 0
        #: per-object base-independent slices for batched delta eval:
        #: ``i -> (idx, blocks_mask, inv, is_target, weights)``
        self._slice_static: dict[int, tuple] = {}
        #: per-object base-dependent slice state:
        #: ``i -> (epoch, base_sub, affected_base)``
        self._slice_base: dict[int, tuple] = {}
        #: per-object base-independent bound slices:
        #: ``i -> (target_coeff, weights, idx, blocks_mask, inv,
        #: is_target)``
        self._bound_static: dict[int, tuple] = {}
        #: per-object base-dependent bound state:
        #: ``i -> (epoch, other_transfer, affected_base)``
        self._bound_base: dict[int, tuple] = {}

    # -- matrix plumbing -----------------------------------------------------

    def clone(self) -> "WorkloadCostEvaluator":
        """A twin sharing the packed arrays but no mutable state.

        The packed ``(S, K, m)`` arrays and the touching-set index are
        immutable after construction, so clones reference them without
        copying; the base matrix, the per-object caches and the metrics
        binding are private per clone.  This is what lets the
        thread-backed portfolio run trajectories concurrently: numpy
        kernels release the GIL, and each trajectory mutates only its
        own clone.
        """
        twin = WorkloadCostEvaluator.__new__(WorkloadCostEvaluator)
        twin._metrics = NULL_METRICS
        twin._farm = self._farm
        twin._names = list(self._names)
        twin._index = dict(self._index)
        for attr in PACKED_ARRAYS:
            setattr(twin, attr, getattr(self, attr))
        twin._n_subplans = self._n_subplans
        twin.n_compressed_from = self.n_compressed_from
        twin._touching = self._touching
        twin._init_mutable_state()
        return twin

    @property
    def packed_nbytes(self) -> int:
        """Total bytes of the packed evaluation arrays.

        The deterministic size signal the portfolio's ``backend="auto"``
        heuristic keys on: small packings favor the thread backend
        (nothing worth paying process spawn + shared memory for).
        """
        return int(sum(getattr(self, attr).nbytes
                       for attr in PACKED_ARRAYS))

    def bind_metrics(self, metrics) -> None:
        """Swap the registry recording ``costmodel.*`` counters.

        The portfolio workers reuse one attached evaluator across
        trajectories but want per-trajectory counter attribution; they
        rebind a fresh registry before each run.
        """
        self._metrics = metrics if metrics is not None else NULL_METRICS

    @property
    def object_names(self) -> list[str]:
        return list(self._names)

    @property
    def farm(self) -> DiskFarm:
        """The disk farm this evaluator's layouts are defined over."""
        return self._farm

    @property
    def n_subplans(self) -> int:
        """Number of distinct (compressed) subplan signatures."""
        return self._n_subplans

    def matrix_of(self, layout: Layout) -> np.ndarray:
        """The layout's fraction matrix in this evaluator's row order."""
        return np.array([layout.fractions_of(name)
                         for name in self._names])

    def touching_count(self, object_name: str) -> int:
        """How many subplans read ``object_name``.

        The object's delta-evaluation cost is proportional to this;
        benchmarks use it to pick the hottest object.
        """
        return int(self._touching[self._index[object_name]].size)

    # -- evaluation ------------------------------------------------------------

    def _subplan_costs(self, matrix: np.ndarray,
                       rows: np.ndarray | None = None) -> np.ndarray:
        """Per-subplan Figure-7 costs; ``rows`` selects a subset."""
        if rows is None:
            idx, blocks, mask, inv = (self._idx, self._blocks,
                                      self._mask, self._inv)
        else:
            idx, blocks, mask, inv = (self._idx[rows],
                                      self._blocks[rows],
                                      self._mask[rows], self._inv[rows])
        # sub[s, k, j]: blocks of stream k on disk j.
        sub = matrix[idx] * blocks[:, :, None] * mask[:, :, None]
        transfer = (sub * inv).sum(axis=1)              # (S, m)
        active = sub > EPS_ZERO
        k = active.sum(axis=1)                          # (S, m)
        stream_min = np.where(active, sub, np.inf).min(axis=1,
                                                       initial=np.inf)
        stream_min = np.where(np.isfinite(stream_min), stream_min, 0.0)
        seek = np.where(k > 1, k * self._seeks * stream_min, 0.0)
        per_disk = transfer + seek
        if per_disk.shape[0] == 0:
            return np.zeros(0)
        return per_disk.max(axis=1)

    def cost_matrix(self, matrix: np.ndarray) -> float:
        """Weighted workload cost of a raw fraction matrix."""
        self._metrics.inc("costmodel.full_evaluations")
        return float(self._subplan_costs(matrix) @ self._weights)

    def cost(self, layout: Layout) -> float:
        """Weighted workload cost of a layout."""
        return self.cost_matrix(self.matrix_of(layout))

    # -- delta evaluation ----------------------------------------------------------

    def set_base(self, matrix: np.ndarray) -> float:
        """Fix a base matrix; returns its total cost.

        Subsequent :meth:`cost_with_row` calls evaluate single-row
        deviations from this base in time proportional to the number of
        subplans that touch the changed object.
        """
        self._metrics.inc("costmodel.base_evaluations")
        self._base_matrix = matrix.copy()
        self._base_costs = self._subplan_costs(matrix)
        self._base_total = float(self._base_costs @ self._weights)
        # New base: every base-dependent cache entry is stale (the
        # static slices survive — they never depend on the base).
        self._base_epoch += 1
        return self._base_total

    def commit_rows(self, rows: dict[str, np.ndarray]) -> float:
        """Adopt row replacements into the base in O(Δ); return the total.

        Equivalent to rebuilding the full matrix and calling
        :meth:`set_base` — bit-identical ``_base_costs`` and total, by
        construction: only the subplans touching a committed object are
        recomputed (each subplan's cost is elementwise-independent of
        the rest), and the total is re-derived as the full dot product
        over the patched per-subplan costs rather than accumulated
        incrementally.  Base-dependent cache entries for objects whose
        subplans are disjoint from the committed ones stay valid and
        are re-tagged to the new epoch; everything else lazily rebuilds
        on next use.

        This is what makes an adopted search move cheap: greedy and
        annealing call this after every accepted move instead of
        re-evaluating all ``S`` subplans from scratch.
        """
        if self._base_matrix is None or self._base_costs is None:
            raise LayoutError("set_base() must be called before "
                              "commit_rows()")
        self._metrics.inc("costmodel.commit_evaluations")
        affected: np.ndarray | None = None
        for name, row in rows.items():
            i = self._index[name]
            affected = self._touching[i] if affected is None else \
                np.union1d(affected, self._touching[i])
            self._base_matrix[i] = row
        previous = self._base_epoch
        self._base_epoch += 1
        if affected is None or affected.size == 0:
            # No subplan reads the committed objects: costs, total and
            # the current epoch's cache entries are untouched — carry
            # them over.  Entries left from an older epoch stay stale.
            for cache in (self._slice_base, self._bound_base):
                for j, entry in cache.items():
                    if entry[0] == previous:
                        cache[j] = (self._base_epoch,) + entry[1:]
            return self._base_total
        self._base_costs[affected] = self._subplan_costs(
            self._base_matrix, rows=affected)
        self._base_total = float(self._base_costs @ self._weights)
        for cache in (self._slice_base, self._bound_base):
            for j in list(cache):
                entry = cache[j]
                if entry[0] != previous or np.intersect1d(
                        self._touching[j], affected,
                        assume_unique=True).size:
                    del cache[j]
                else:
                    cache[j] = (self._base_epoch,) + entry[1:]
        return self._base_total

    def cost_with_row(self, object_name: str,
                      row: np.ndarray) -> float:
        """Cost of (base matrix with one object's row replaced).

        Routed through the batched kernel (:meth:`costs_for_rows`) so
        repeated single-row probes of the same object — annealing's
        proposal loop — reuse the epoch-keyed slice cache instead of
        re-gathering the touched subplans per call.
        """
        if self._base_matrix is None or self._base_costs is None:
            raise LayoutError("set_base() must be called before "
                              "cost_with_row()")
        self._metrics.inc("costmodel.delta_evaluations")
        row = np.asarray(row, dtype=float)
        return float(self.costs_for_rows(object_name, row[None])[0])

    def cost_with_rows(self, rows: dict[str, np.ndarray]) -> float:
        """Cost of the base matrix with several rows replaced at once.

        Used when co-location constraints force a group of objects to
        move together.
        """
        if self._base_matrix is None or self._base_costs is None:
            raise LayoutError("set_base() must be called before "
                              "cost_with_rows()")
        self._metrics.inc("costmodel.delta_evaluations")
        affected: np.ndarray | None = None
        saved: dict[int, np.ndarray] = {}
        for name, row in rows.items():
            i = self._index[name]
            affected = self._touching[i] if affected is None else \
                np.union1d(affected, self._touching[i])
            saved[i] = self._base_matrix[i].copy()
            self._base_matrix[i] = row
        if affected is None or affected.size == 0:
            for i, old_row in saved.items():
                self._base_matrix[i] = old_row
            return self._base_total
        new_costs = self._subplan_costs(self._base_matrix, rows=affected)
        delta = float((new_costs - self._base_costs[affected])
                      @ self._weights[affected])
        for i, old_row in saved.items():
            self._base_matrix[i] = old_row
        return self._base_total + delta

    def _slice_parts(self, i: int) -> tuple[tuple, tuple]:
        """Static and base-dependent slice state for object ``i``.

        The static tuple (gathered subplan arrays) only depends on the
        packed workload, so it survives every base change; the base
        tuple (``base_sub`` — the base layout's stream spread — and the
        affected subplans' share of the base total) is tagged with the
        epoch it was built at and rebuilt lazily after
        :meth:`set_base` / :meth:`commit_rows` invalidated it.
        """
        affected = self._touching[i]
        static = self._slice_static.get(i)
        if static is None:
            idx = self._idx[affected]
            static = (
                idx,
                self._blocks[affected][:, :, None]
                * self._mask[affected][:, :, None],   # (S, K, 1)
                self._inv[affected],                  # (S, K, m)
                (idx == i),                           # (S, K)
                self._weights[affected],
            )
            self._slice_static[i] = static
        based = self._slice_base.get(i)
        if based is None or based[0] != self._base_epoch:
            idx, blocks_mask = static[0], static[1]
            based = (
                self._base_epoch,
                self._base_matrix[idx] * blocks_mask,  # (S, K, m)
                float(self._base_costs[affected]
                      @ self._weights[affected]),
            )
            self._slice_base[i] = based
        return static, based

    def _auto_chunk(self, n_affected: int) -> int:
        """Deterministic chunk size for one vectorized pass.

        Sized so the ``(chunk, S_affected, K, m)`` float64 candidate
        tensor stays near :data:`_CHUNK_TARGET_BYTES`; clamped to
        ``[_CHUNK_MIN, _CHUNK_MAX]``.  Depends only on array shapes, so
        results and evaluation counts never vary with the machine.
        """
        k_max = max(1, self._idx.shape[1] if self._idx.ndim == 2 else 1)
        per_row = max(1, n_affected) * k_max * max(1, len(self._farm)) * 8
        return max(_CHUNK_MIN, min(_CHUNK_MAX,
                                   _CHUNK_TARGET_BYTES // per_row))

    def costs_for_rows(self, object_name: str, rows: np.ndarray,
                       chunk: int | None = None) -> np.ndarray:
        """Costs of many single-row deviations from the base, batched.

        Equivalent to ``[cost_with_row(object_name, r) for r in rows]``
        but evaluated a chunk of candidates at a time in one vectorized
        pass — the hot loop of the greedy search.

        Args:
            object_name: The object whose fraction row varies.
            rows: Candidate rows, shape ``(C, m)``.
            chunk: Candidates per vectorized pass (bounds memory);
                ``None`` auto-sizes from the affected-subplan count so
                the working set stays near a fixed byte budget.

        Returns:
            Array of ``C`` total workload costs.
        """
        if self._base_matrix is None or self._base_costs is None:
            raise LayoutError("set_base() must be called before "
                              "costs_for_rows()")
        self._metrics.inc("costmodel.batch_evaluations")
        self._metrics.inc("costmodel.batch_rows", len(rows))
        i = self._index[object_name]
        affected = self._touching[i]
        rows = np.asarray(rows, dtype=float)
        if affected.size == 0:
            return np.full(len(rows), self._base_total)
        static, based = self._slice_parts(i)
        idx, blocks_mask, inv, is_target, weights = static
        _, base_sub, affected_base = based
        if chunk is None:
            chunk = self._auto_chunk(affected.size)
        out = np.empty(len(rows))
        for start in range(0, len(rows), chunk):
            batch = rows[start:start + chunk]                # (C, m)
            # (C, S, K, m): base streams, with the target object's
            # streams re-spread per candidate row.
            sub = np.where(is_target[None, :, :, None],
                           batch[:, None, None, :] * blocks_mask[None],
                           base_sub[None])
            transfer = (sub * inv[None]).sum(axis=2)         # (C, S, m)
            active = sub > EPS_ZERO
            k = active.sum(axis=2)
            stream_min = np.where(active, sub, np.inf).min(
                axis=2, initial=np.inf)
            stream_min = np.where(np.isfinite(stream_min), stream_min,
                                  0.0)
            seek = np.where(k > 1, k * self._seeks * stream_min, 0.0)
            per_disk = transfer + seek
            costs = per_disk.max(axis=2) if per_disk.shape[1] else \
                np.zeros((len(batch), 0))
            out[start:start + chunk] = \
                self._base_total - affected_base + costs @ weights
        return out

    # -- transfer-only lower bound ----------------------------------------------

    def lower_bound_matrix(self, matrix: np.ndarray) -> float:
        """Transfer-only lower bound on :meth:`cost_matrix`.

        Drops the Figure-7 seek term: for every subplan the bound is
        ``max_j sum_i x_ij * B_i / T_j``.  Since the seek term is
        non-negative, this never exceeds the true cost — a provable
        underestimate usable for branch-and-bound style pruning.
        """
        self._metrics.inc("costmodel.bound_evaluations")
        sub = matrix[self._idx] * self._blocks[:, :, None] \
            * self._mask[:, :, None]
        transfer = (sub * self._inv).sum(axis=1)        # (S, m)
        if transfer.shape[0] == 0:
            return 0.0
        return float(transfer.max(axis=1) @ self._weights)

    def bounds_for_rows(self, object_name: str,
                        rows: np.ndarray) -> np.ndarray:
        """Lower bounds on :meth:`costs_for_rows`, one per candidate.

        For the subplans touching ``object_name`` only the seek-free
        transfer term is charged (a per-subplan underestimate); every
        untouched subplan keeps its exact base cost.  The result
        therefore never exceeds the true candidate cost, and costs
        ``O(C * S_affected * m)`` — no per-stream axis and no seek
        bookkeeping, an order of magnitude cheaper than full evaluation.
        """
        if self._base_matrix is None or self._base_costs is None:
            raise LayoutError("set_base() must be called before "
                              "bounds_for_rows()")
        rows = np.asarray(rows, dtype=float)
        self._metrics.inc("costmodel.bound_evaluations", len(rows))
        i = self._index[object_name]
        affected = self._touching[i]
        if affected.size == 0:
            return np.full(len(rows), self._base_total)
        static = self._bound_static.get(i)
        if static is None:
            idx = self._idx[affected]
            blocks_mask = self._blocks[affected][:, :, None] \
                * self._mask[affected][:, :, None]
            inv = self._inv[affected]
            is_target = (idx == i)[:, :, None]           # (S, K, 1)
            # The candidate-scaled half of the transfer split; the
            # base-dependent half lives in the epoch-tagged entry.
            target_coeff = (np.where(is_target, blocks_mask, 0.0)
                            * inv).sum(axis=1)           # (S, m)
            static = (target_coeff, self._weights[affected],
                      idx, blocks_mask, inv, is_target)
            self._bound_static[i] = static
        target_coeff, weights, idx, blocks_mask, inv, is_target = static
        based = self._bound_base.get(i)
        if based is None or based[0] != self._base_epoch:
            base_sub = self._base_matrix[idx] * blocks_mask
            # Transfer per disk split into the target object's streams
            # (scales with the candidate row) and everything else
            # (constant across candidates).
            other_transfer = (np.where(is_target, 0.0, base_sub)
                              * inv).sum(axis=1)         # (S, m)
            based = (
                self._base_epoch,
                other_transfer,
                float(self._base_costs[affected]
                      @ self._weights[affected]),
            )
            self._bound_base[i] = based
        _, other_transfer, affected_base = based
        # (C, S, m): candidate transfer time per subplan and disk.
        transfer = other_transfer[None] \
            + rows[:, None, :] * target_coeff[None]
        bound = transfer.max(axis=2) @ weights            # (C,)
        return self._base_total - affected_base + bound

    # -- fused prune + evaluate --------------------------------------------------

    def best_for_rows(self, object_name: str, rows: np.ndarray,
                      incumbent: float, prune: bool = True,
                      ) -> tuple[float, int, int]:
        """Fused prune+evaluate: the best single-row deviation, one call.

        Computes transfer-only lower bounds for all ``C`` candidates in
        one vectorized pass, fully evaluates only the survivors (bound
        below the incumbent), and replays the search's sequential
        epsilon acceptance over the survivor costs — so the selected
        candidate, the winning cost, and the pruned count are
        bit-identical to the unfused ``bounds_for_rows`` →
        ``costs_for_rows`` → Python-loop composition it replaces.

        Args:
            object_name: The object whose fraction row varies.
            rows: Candidate rows, shape ``(C, m)``.
            incumbent: The cost to beat (the search's running best).
            prune: Disable to evaluate every candidate (results are
                identical; only the evaluation count changes).

        Returns:
            ``(best_cost, best_index, n_pruned)``.  ``best_index`` is
            the index into ``rows`` of the accepted candidate, or
            ``-1`` when nothing beats the incumbent by ``EPS_COST`` —
            in which case ``best_cost`` is the incumbent, unchanged.
        """
        rows = np.asarray(rows, dtype=float)
        self._metrics.inc("costmodel.fused_evaluations")
        if len(rows) == 0:
            return float(incumbent), -1, 0
        if prune:
            bounds = self.bounds_for_rows(object_name, rows)
            keep = np.nonzero(bounds < incumbent - EPS_COST)[0]
            pruned = len(rows) - int(keep.size)
        else:
            keep = np.arange(len(rows))
            pruned = 0
        if keep.size == 0:
            return float(incumbent), -1, pruned
        costs = self.costs_for_rows(object_name, rows[keep])
        best_cost = float(incumbent)
        best_index = -1
        # Sequential epsilon acceptance, not argmin: each later
        # candidate must beat the *running* best by EPS_COST, exactly
        # the tie-breaking the greedy loop has always used.  An
        # accepted candidate is strictly below every earlier cost
        # (accepted ones by > EPS_COST; rejected ones were >= the
        # then-best - EPS_COST, which the acceptance undercuts), so
        # only strict prefix minima can be accepted — the Python loop
        # replaying the rule runs over those few, not all survivors.
        running_min = np.minimum.accumulate(costs)
        contender = np.empty(costs.size, dtype=bool)
        contender[0] = True
        np.less(costs[1:], running_min[:-1], out=contender[1:])
        for position in np.nonzero(contender)[0]:
            candidate_cost = costs[position]
            if candidate_cost < best_cost - EPS_COST:
                best_cost = float(candidate_cost)
                best_index = int(keep[position])
        return best_cost, best_index, pruned

    # -- shared-memory plumbing --------------------------------------------------

    def to_shared(self) -> "object":
        """Publish the packed arrays in a shared-memory segment.

        Returns a :class:`repro.parallel.shared.SharedEvaluatorState`
        (a context manager) whose picklable :attr:`spec` lets worker
        processes rebuild this evaluator with :meth:`from_shared`
        without re-pickling the MB-scale ``(S, K, m)`` arrays.  The
        caller owns the segment and must ``close()`` it (or use a
        ``with`` block).
        """
        from repro.parallel.shared import share_evaluator
        return share_evaluator(self)

    @classmethod
    def from_shared(cls, spec: "object",
                    metrics=None) -> "WorkloadCostEvaluator":
        """Rebuild an evaluator from a shared-memory spec (in a worker).

        The packed arrays are zero-copy read-only views into the shared
        segment; per-evaluator mutable state (base matrix, caches) stays
        private to the process.
        """
        from repro.parallel.shared import attach_evaluator
        return attach_evaluator(spec, metrics=metrics)
