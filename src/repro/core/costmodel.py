"""The analytical I/O response-time cost model (Section 5, Figure 7).

For a statement ``Q`` under layout ``L``::

    Cost(Q, L) = sum over non-blocking subplans P of
                   max over disks D_j of (TransferCost_j + SeekCost_j)

    TransferCost_j = sum_i x_ij * B(|R_i|, P) / T_j
    SeekCost_j     = k * S_j * min_i (x_ij * B(|R_i|, P))   if k > 1
                   = 0                                      otherwise

where the sums run over objects accessed in ``P``, ``k`` is the number of
such objects with a positive fraction on ``D_j``, ``T_j`` is the read or
write transfer rate as appropriate, and ``S_j`` the average seek time.
The max captures "the last disk drive to complete I/O determines the I/O
response time"; the seek term models proportional interleaving of
co-located streams.

Mirroring the paper's implementation, accesses to temp objects (tempdb)
are *ignored* by this model — the paper's Section 7 attributes its
validation failures to exactly that omission, and our simulator charges
them, so the same failure mode reproduces here.

Two implementations are provided: a direct, readable one
(:class:`CostModel`) and a precompiled vectorized one
(:class:`WorkloadCostEvaluator`) used by the search, which must evaluate
thousands of layouts.  They agree to float precision (tested).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.layout import Layout
from repro.core.tolerance import EPS_ZERO
from repro.errors import LayoutError
from repro.obs import NULL_METRICS
from repro.optimizer.planner import TEMPDB
from repro.storage.disk import DiskFarm, DiskSpec
from repro.workload.access import (
    AnalyzedStatement,
    AnalyzedWorkload,
    SubplanAccess,
)


class CostModel:
    """Direct (reference) implementation of the Figure-7 cost model.

    Args:
        farm: The disk drives layouts are defined over.
        tempdb: Optional dedicated temp drive.  The paper's formulation
            supports temp objects ("we can incorporate these effects by
            modeling temporary tables as objects") but its implementation
            ignored them — the source of its validation failures.  Pass
            the tempdb drive spec to enable the temp-aware extension:
            each subplan's temp I/O is charged to this drive, which
            participates in the last-disk-to-finish max.
    """

    def __init__(self, farm: DiskFarm, tempdb: "DiskSpec | None" = None):
        self._farm = farm
        self._tempdb = tempdb

    def _tempdb_cost(self, subplan: SubplanAccess) -> float:
        """I/O time of the subplan's temp streams on the temp drive.

        Spill passes are sequential (a sort writes its run files fully
        before reading them back), so no Figure-7 interleave seek term
        applies between the write and read streams.
        """
        if self._tempdb is None:
            return 0.0
        return sum(
            blocks / self._tempdb.transfer_blocks_s(write=write)
            for (name, write), blocks
            in subplan.blocks_by_object(include_temp=True).items()
            if name == TEMPDB and blocks > 0)

    def subplan_cost(self, subplan: SubplanAccess, layout: Layout) -> float:
        """Estimated I/O time of one non-blocking subplan: max over disks."""
        streams = [(name, write, blocks)
                   for (name, write), blocks
                   in subplan.blocks_by_object(include_temp=False).items()
                   if blocks > 0 and name in layout.object_names]
        worst = self._tempdb_cost(subplan)
        if not streams:
            return worst
        for j, disk in enumerate(self._farm):
            transfer = 0.0
            active: list[float] = []
            for name, write, blocks in streams:
                here = layout.fraction(name, j) * blocks
                if here <= EPS_ZERO:
                    continue
                transfer += here / disk.transfer_blocks_s(write=write)
                active.append(here)
            if not active:
                continue
            seek = 0.0
            if len(active) > 1:
                seek = len(active) * disk.avg_seek_s * min(active)
            worst = max(worst, transfer + seek)
        return worst

    def statement_cost(self, analyzed: AnalyzedStatement,
                       layout: Layout) -> float:
        """``Cost(Q, L)``: summed subplan costs (unweighted)."""
        return sum(self.subplan_cost(s, layout) for s in analyzed.subplans)

    def workload_cost(self, workload: AnalyzedWorkload,
                      layout: Layout) -> float:
        """Weighted total: ``sum_Q w_Q * Cost(Q, L)``."""
        return sum(a.weight * self.statement_cost(a, layout)
                   for a in workload)


class WorkloadCostEvaluator:
    """Precompiled, vectorized workload cost evaluation.

    The search algorithms evaluate thousands of candidate layouts that
    differ from a base layout in a single object's fraction row; this
    class supports both full evaluation (:meth:`cost`) and O(affected
    subplans) delta evaluation (:meth:`cost_with_row` after
    :meth:`set_base`).

    Two optimizations keep large experiments (64 disks x 800 queries)
    tractable without changing any result:

    * **workload compression** — subplans with identical (object, write,
      blocks) stream sets are merged, summing their statement weights
      (frequent in template-generated workloads like APB-800);
    * **padded-array evaluation** — all subplans are packed into
      ``(S, K, m)`` arrays (K = max streams per subplan) so a full
      evaluation is a handful of vectorized operations.

    Args:
        workload: A planned-and-decomposed workload.
        farm: The disk farm candidate layouts are defined over.
        object_names: Row order of the layout matrices to evaluate;
            must match the layouts passed in later.
        metrics: Optional :class:`repro.obs.MetricsRegistry`; records
            ``costmodel.*`` evaluation counters.
    """

    def __init__(self, workload: AnalyzedWorkload, farm: DiskFarm,
                 object_names: Sequence[str], metrics=None):
        self._metrics = metrics if metrics is not None else NULL_METRICS
        self._farm = farm
        self._names = list(object_names)
        self._index = {name: i for i, name in enumerate(self._names)}
        m = len(farm)
        self._seeks = np.array([d.avg_seek_s for d in farm])
        inv_read = np.array([1.0 / d.read_blocks_s for d in farm])
        inv_write = np.array([1.0 / d.write_blocks_s for d in farm])

        # Collect subplans as hashable stream signatures and compress.
        signatures: dict[tuple, float] = {}
        for analyzed in workload:
            for subplan in analyzed.subplans:
                entries = tuple(sorted(
                    (self._index[name], write, round(blocks, 6))
                    for (name, write), blocks
                    in subplan.blocks_by_object(include_temp=False).items()
                    if blocks > 0 and name in self._index))
                if not entries:
                    continue
                signatures[entries] = signatures.get(entries, 0.0) \
                    + analyzed.weight
        self._n_subplans = len(signatures)
        self.n_compressed_from = sum(
            1 for a in workload for s in a.subplans if s.accesses)
        if self._n_subplans == 0:
            self._idx = np.zeros((0, 1), dtype=np.intp)
            self._blocks = np.zeros((0, 1))
            self._mask = np.zeros((0, 1), dtype=bool)
            self._inv = np.zeros((0, 1, m))
            self._weights = np.zeros(0)
        else:
            k_max = max(len(sig) for sig in signatures)
            s_count = self._n_subplans
            self._idx = np.zeros((s_count, k_max), dtype=np.intp)
            self._blocks = np.zeros((s_count, k_max))
            self._mask = np.zeros((s_count, k_max), dtype=bool)
            self._inv = np.zeros((s_count, k_max, m))
            self._weights = np.zeros(s_count)
            for s, (sig, weight) in enumerate(signatures.items()):
                self._weights[s] = weight
                for k, (obj, write, blocks) in enumerate(sig):
                    self._idx[s, k] = obj
                    self._blocks[s, k] = blocks
                    self._mask[s, k] = True
                    self._inv[s, k] = inv_write if write else inv_read
        #: subplan indices touching each object row
        self._touching: list[np.ndarray] = []
        for i in range(len(self._names)):
            rows = np.nonzero(((self._idx == i) & self._mask)
                              .any(axis=1))[0]
            self._touching.append(rows)
        self._base_matrix: np.ndarray | None = None
        self._base_costs: np.ndarray | None = None
        self._base_total: float = 0.0
        #: per-object cache of sliced arrays for batched delta eval
        self._slice_cache: dict[int, tuple] = {}
        #: per-object cache of sliced arrays for batched lower bounds
        self._bound_cache: dict[int, tuple] = {}
        self._metrics.set_gauge("costmodel.subplans", self._n_subplans)
        self._metrics.set_gauge("costmodel.subplans_raw",
                                self.n_compressed_from)

    # -- matrix plumbing -----------------------------------------------------

    def bind_metrics(self, metrics) -> None:
        """Swap the registry recording ``costmodel.*`` counters.

        The portfolio workers reuse one attached evaluator across
        trajectories but want per-trajectory counter attribution; they
        rebind a fresh registry before each run.
        """
        self._metrics = metrics if metrics is not None else NULL_METRICS

    @property
    def object_names(self) -> list[str]:
        return list(self._names)

    @property
    def farm(self) -> DiskFarm:
        """The disk farm this evaluator's layouts are defined over."""
        return self._farm

    @property
    def n_subplans(self) -> int:
        """Number of distinct (compressed) subplan signatures."""
        return self._n_subplans

    def matrix_of(self, layout: Layout) -> np.ndarray:
        """The layout's fraction matrix in this evaluator's row order."""
        return np.array([layout.fractions_of(name)
                         for name in self._names])

    # -- evaluation ------------------------------------------------------------

    def _subplan_costs(self, matrix: np.ndarray,
                       rows: np.ndarray | None = None) -> np.ndarray:
        """Per-subplan Figure-7 costs; ``rows`` selects a subset."""
        if rows is None:
            idx, blocks, mask, inv = (self._idx, self._blocks,
                                      self._mask, self._inv)
        else:
            idx, blocks, mask, inv = (self._idx[rows],
                                      self._blocks[rows],
                                      self._mask[rows], self._inv[rows])
        # sub[s, k, j]: blocks of stream k on disk j.
        sub = matrix[idx] * blocks[:, :, None] * mask[:, :, None]
        transfer = (sub * inv).sum(axis=1)              # (S, m)
        active = sub > EPS_ZERO
        k = active.sum(axis=1)                          # (S, m)
        stream_min = np.where(active, sub, np.inf).min(axis=1,
                                                       initial=np.inf)
        stream_min = np.where(np.isfinite(stream_min), stream_min, 0.0)
        seek = np.where(k > 1, k * self._seeks * stream_min, 0.0)
        per_disk = transfer + seek
        if per_disk.shape[0] == 0:
            return np.zeros(0)
        return per_disk.max(axis=1)

    def cost_matrix(self, matrix: np.ndarray) -> float:
        """Weighted workload cost of a raw fraction matrix."""
        self._metrics.inc("costmodel.full_evaluations")
        return float(self._subplan_costs(matrix) @ self._weights)

    def cost(self, layout: Layout) -> float:
        """Weighted workload cost of a layout."""
        return self.cost_matrix(self.matrix_of(layout))

    # -- delta evaluation ----------------------------------------------------------

    def set_base(self, matrix: np.ndarray) -> float:
        """Fix a base matrix; returns its total cost.

        Subsequent :meth:`cost_with_row` calls evaluate single-row
        deviations from this base in time proportional to the number of
        subplans that touch the changed object.
        """
        self._metrics.inc("costmodel.base_evaluations")
        self._base_matrix = matrix.copy()
        self._base_costs = self._subplan_costs(matrix)
        self._base_total = float(self._base_costs @ self._weights)
        self._slice_cache.clear()
        self._bound_cache.clear()
        return self._base_total

    def cost_with_row(self, object_name: str,
                      row: np.ndarray) -> float:
        """Cost of (base matrix with one object's row replaced)."""
        return self.cost_with_rows({object_name: row})

    def cost_with_rows(self, rows: dict[str, np.ndarray]) -> float:
        """Cost of the base matrix with several rows replaced at once.

        Used when co-location constraints force a group of objects to
        move together.
        """
        if self._base_matrix is None or self._base_costs is None:
            raise LayoutError("set_base() must be called before "
                              "cost_with_rows()")
        self._metrics.inc("costmodel.delta_evaluations")
        affected: np.ndarray | None = None
        saved: dict[int, np.ndarray] = {}
        for name, row in rows.items():
            i = self._index[name]
            affected = self._touching[i] if affected is None else \
                np.union1d(affected, self._touching[i])
            saved[i] = self._base_matrix[i].copy()
            self._base_matrix[i] = row
        if affected is None or affected.size == 0:
            for i, old_row in saved.items():
                self._base_matrix[i] = old_row
            return self._base_total
        new_costs = self._subplan_costs(self._base_matrix, rows=affected)
        delta = float((new_costs - self._base_costs[affected])
                      @ self._weights[affected])
        for i, old_row in saved.items():
            self._base_matrix[i] = old_row
        return self._base_total + delta

    def costs_for_rows(self, object_name: str, rows: np.ndarray,
                       chunk: int = 16) -> np.ndarray:
        """Costs of many single-row deviations from the base, batched.

        Equivalent to ``[cost_with_row(object_name, r) for r in rows]``
        but evaluated a chunk of candidates at a time in one vectorized
        pass — the hot loop of the greedy search.

        Args:
            object_name: The object whose fraction row varies.
            rows: Candidate rows, shape ``(C, m)``.
            chunk: Candidates per vectorized pass (bounds memory).

        Returns:
            Array of ``C`` total workload costs.
        """
        if self._base_matrix is None or self._base_costs is None:
            raise LayoutError("set_base() must be called before "
                              "costs_for_rows()")
        self._metrics.inc("costmodel.batch_evaluations")
        self._metrics.inc("costmodel.batch_rows", len(rows))
        i = self._index[object_name]
        affected = self._touching[i]
        rows = np.asarray(rows, dtype=float)
        if affected.size == 0:
            return np.full(len(rows), self._base_total)
        cached = self._slice_cache.get(i)
        if cached is None:
            idx = self._idx[affected]
            cached = (
                idx,
                self._blocks[affected][:, :, None]
                * self._mask[affected][:, :, None],   # (S, K, 1)
                self._inv[affected],                  # (S, K, m)
                (idx == i),                           # (S, K)
                self._weights[affected],
                float(self._base_costs[affected]
                      @ self._weights[affected]),
            )
            self._slice_cache[i] = cached
        idx, blocks_mask, inv, is_target, weights, affected_base = cached
        base_sub = self._base_matrix[idx] * blocks_mask      # (S, K, m)
        out = np.empty(len(rows))
        for start in range(0, len(rows), chunk):
            batch = rows[start:start + chunk]                # (C, m)
            # (C, S, K, m): base streams, with the target object's
            # streams re-spread per candidate row.
            sub = np.where(is_target[None, :, :, None],
                           batch[:, None, None, :] * blocks_mask[None],
                           base_sub[None])
            transfer = (sub * inv[None]).sum(axis=2)         # (C, S, m)
            active = sub > EPS_ZERO
            k = active.sum(axis=2)
            stream_min = np.where(active, sub, np.inf).min(
                axis=2, initial=np.inf)
            stream_min = np.where(np.isfinite(stream_min), stream_min,
                                  0.0)
            seek = np.where(k > 1, k * self._seeks * stream_min, 0.0)
            per_disk = transfer + seek
            costs = per_disk.max(axis=2) if per_disk.shape[1] else \
                np.zeros((len(batch), 0))
            out[start:start + chunk] = \
                self._base_total - affected_base + costs @ weights
        return out

    # -- transfer-only lower bound ----------------------------------------------

    def lower_bound_matrix(self, matrix: np.ndarray) -> float:
        """Transfer-only lower bound on :meth:`cost_matrix`.

        Drops the Figure-7 seek term: for every subplan the bound is
        ``max_j sum_i x_ij * B_i / T_j``.  Since the seek term is
        non-negative, this never exceeds the true cost — a provable
        underestimate usable for branch-and-bound style pruning.
        """
        self._metrics.inc("costmodel.bound_evaluations")
        sub = matrix[self._idx] * self._blocks[:, :, None] \
            * self._mask[:, :, None]
        transfer = (sub * self._inv).sum(axis=1)        # (S, m)
        if transfer.shape[0] == 0:
            return 0.0
        return float(transfer.max(axis=1) @ self._weights)

    def bounds_for_rows(self, object_name: str,
                        rows: np.ndarray) -> np.ndarray:
        """Lower bounds on :meth:`costs_for_rows`, one per candidate.

        For the subplans touching ``object_name`` only the seek-free
        transfer term is charged (a per-subplan underestimate); every
        untouched subplan keeps its exact base cost.  The result
        therefore never exceeds the true candidate cost, and costs
        ``O(C * S_affected * m)`` — no per-stream axis and no seek
        bookkeeping, an order of magnitude cheaper than full evaluation.
        """
        if self._base_matrix is None or self._base_costs is None:
            raise LayoutError("set_base() must be called before "
                              "bounds_for_rows()")
        rows = np.asarray(rows, dtype=float)
        self._metrics.inc("costmodel.bound_evaluations", len(rows))
        i = self._index[object_name]
        affected = self._touching[i]
        if affected.size == 0:
            return np.full(len(rows), self._base_total)
        cached = self._bound_cache.get(i)
        if cached is None:
            idx = self._idx[affected]
            blocks_mask = self._blocks[affected][:, :, None] \
                * self._mask[affected][:, :, None]
            inv = self._inv[affected]
            is_target = (idx == i)[:, :, None]           # (S, K, 1)
            base_sub = self._base_matrix[idx] * blocks_mask
            # Transfer per disk split into the target object's streams
            # (scales with the candidate row) and everything else
            # (constant across candidates).
            other_transfer = (np.where(is_target, 0.0, base_sub)
                              * inv).sum(axis=1)         # (S, m)
            target_coeff = (np.where(is_target, blocks_mask, 0.0)
                            * inv).sum(axis=1)           # (S, m)
            cached = (
                other_transfer,
                target_coeff,
                self._weights[affected],
                float(self._base_costs[affected]
                      @ self._weights[affected]),
            )
            self._bound_cache[i] = cached
        other_transfer, target_coeff, weights, affected_base = cached
        # (C, S, m): candidate transfer time per subplan and disk.
        transfer = other_transfer[None] \
            + rows[:, None, :] * target_coeff[None]
        bound = transfer.max(axis=2) @ weights            # (C,)
        return self._base_total - affected_base + bound

    # -- shared-memory plumbing --------------------------------------------------

    def to_shared(self) -> "object":
        """Publish the packed arrays in a shared-memory segment.

        Returns a :class:`repro.parallel.shared.SharedEvaluatorState`
        (a context manager) whose picklable :attr:`spec` lets worker
        processes rebuild this evaluator with :meth:`from_shared`
        without re-pickling the MB-scale ``(S, K, m)`` arrays.  The
        caller owns the segment and must ``close()`` it (or use a
        ``with`` block).
        """
        from repro.parallel.shared import share_evaluator
        return share_evaluator(self)

    @classmethod
    def from_shared(cls, spec: "object",
                    metrics=None) -> "WorkloadCostEvaluator":
        """Rebuild an evaluator from a shared-memory spec (in a worker).

        The packed arrays are zero-copy read-only views into the shared
        segment; per-evaluator mutable state (base matrix, caches) stays
        private to the process.
        """
        from repro.parallel.shared import attach_evaluator
        return attach_evaluator(spec, metrics=metrics)
