"""Database layout: the paper's ``x_ij`` fraction matrix.

Definition 1: *a database layout is an assignment of each database object
to a set of disk drives along with a specification of the fraction of the
object that is allocated to each disk drive.*

Definition 2 (validity): every fraction is non-negative, every object's
fractions sum to 1, and no disk's capacity is exceeded.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.catalog.schema import Database
from repro.core.tolerance import EPS_CAPACITY, EPS_FRACTION, EPS_ZERO
from repro.errors import LayoutError
from repro.storage.allocation import MaterializedLayout
from repro.storage.disk import DiskFarm


def stripe_fractions(disks: Iterable[int], farm: DiskFarm,
                     rate_proportional: bool = True) -> tuple[float, ...]:
    """A fraction row striping an object over the given disks.

    Args:
        disks: Farm indices of the target disks.
        farm: The disk farm (supplies rates and width of the row).
        rate_proportional: Allocate in proportion to each disk's read
            transfer rate (the paper's footnote-1 convention, also used
            by TS-GREEDY's step 6); otherwise allocate evenly.

    Raises:
        LayoutError: If the disk set is empty or out of range.
    """
    disk_set = sorted(set(disks))
    if not disk_set:
        raise LayoutError("cannot stripe over an empty disk set")
    if disk_set[0] < 0 or disk_set[-1] >= len(farm):
        raise LayoutError(f"disk index out of range: {disk_set}")
    row = [0.0] * len(farm)
    if rate_proportional:
        total_rate = sum(farm[j].read_mb_s for j in disk_set)
        for j in disk_set:
            row[j] = farm[j].read_mb_s / total_rate
    else:
        for j in disk_set:
            row[j] = 1.0 / len(disk_set)
    return tuple(row)


class Layout:
    """An immutable valid database layout.

    Args:
        farm: The available disk drives ``{D_1 … D_m}``.
        object_sizes: Mapping from object name to size in blocks
            (``|R_i|``); fixes the row set of the matrix.
        fractions: Mapping from object name to its per-disk fraction row.
        check_capacity: Verify Definition 2's capacity constraint (can be
            disabled for deliberately-invalid test fixtures).

    Raises:
        LayoutError: If the layout violates Definition 2.
    """

    def __init__(self, farm: DiskFarm,
                 object_sizes: Mapping[str, int],
                 fractions: Mapping[str, Sequence[float]],
                 check_capacity: bool = True):
        self._farm = farm
        self._sizes = dict(object_sizes)
        self._fractions: dict[str, tuple[float, ...]] = {}
        for name in self._sizes:
            if name not in fractions:
                raise LayoutError(f"object {name!r} has no fraction row")
            row = tuple(float(f) for f in fractions[name])
            if len(row) != len(farm):
                raise LayoutError(
                    f"object {name!r}: row length {len(row)} != "
                    f"{len(farm)} disks")
            if any(f < -EPS_ZERO for f in row):
                raise LayoutError(f"object {name!r}: negative fraction")
            total = sum(row)
            if abs(total - 1.0) > EPS_FRACTION:
                raise LayoutError(
                    f"object {name!r}: fractions sum to {total:.9f}, not 1")
            self._fractions[name] = row
        extra = set(fractions) - set(self._sizes)
        if extra:
            raise LayoutError(f"fraction rows for unknown objects: "
                              f"{sorted(extra)}")
        if check_capacity:
            self._check_capacity()

    def _check_capacity(self) -> None:
        for j, disk in enumerate(self._farm):
            used = sum(self._sizes[name] * row[j]
                       for name, row in self._fractions.items())
            if used > disk.capacity_blocks + EPS_CAPACITY:
                raise LayoutError(
                    f"disk {disk.name} over capacity: {used:.0f} blocks "
                    f"needed, {disk.capacity_blocks} available")

    # -- accessors ---------------------------------------------------------------

    @property
    def farm(self) -> DiskFarm:
        return self._farm

    @property
    def object_names(self) -> tuple[str, ...]:
        return tuple(self._fractions)

    @property
    def object_sizes(self) -> dict[str, int]:
        return dict(self._sizes)

    def size_of(self, name: str) -> int:
        """Size ``|R_i|`` in blocks of one object."""
        self._require(name)
        return self._sizes[name]

    def fractions_of(self, name: str) -> tuple[float, ...]:
        """The fraction row ``x_i*`` for one object."""
        self._require(name)
        return self._fractions[name]

    def fraction(self, name: str, disk: int) -> float:
        """One matrix cell ``x_ij``."""
        return self.fractions_of(name)[disk]

    def disks_of(self, name: str) -> tuple[int, ...]:
        """Farm indices of disks holding a positive fraction of object."""
        return tuple(j for j, f in enumerate(self.fractions_of(name))
                     if f > EPS_ZERO)

    def disk_used_blocks(self, disk: int) -> float:
        """Blocks allocated on one disk by this layout."""
        return sum(self._sizes[name] * row[disk]
                   for name, row in self._fractions.items())

    # -- derived layouts -----------------------------------------------------------

    def with_fractions(self, name: str,
                       row: Sequence[float],
                       check_capacity: bool = True) -> "Layout":
        """A new layout with one object's fraction row replaced."""
        self._require(name)
        fractions = dict(self._fractions)
        fractions[name] = tuple(row)
        return Layout(self._farm, self._sizes, fractions,
                      check_capacity=check_capacity)

    def data_movement_blocks(self, target: "Layout") -> float:
        """Blocks that must move to transform this layout into ``target``.

        For each object, half the L1 distance between its fraction rows
        times its size (blocks leaving one disk arrive on another, so
        each moved block is counted once).
        """
        if set(target.object_names) != set(self._fractions):
            raise LayoutError("layouts cover different object sets")
        moved = 0.0
        for name, row in self._fractions.items():
            other = target.fractions_of(name)
            if len(other) != len(row):
                raise LayoutError("layouts use different disk farms")
            moved += self._sizes[name] * \
                sum(abs(a - b) for a, b in zip(row, other)) / 2.0
        return moved

    # -- exports -------------------------------------------------------------------

    def filegroups(self) -> dict[tuple[int, ...], list[str]]:
        """Group objects by the disk set they live on.

        Each distinct disk set corresponds to one filegroup (tablespace)
        in the commercial-DBMS realization of the layout.
        """
        groups: dict[tuple[int, ...], list[str]] = {}
        for name in self._fractions:
            groups.setdefault(self.disks_of(name), []).append(name)
        return groups

    def materialize(self) -> MaterializedLayout:
        """Concrete block placement of this layout (for the simulator)."""
        return MaterializedLayout(self._farm, self._sizes, self._fractions)

    def describe(self) -> str:
        """Human-readable one-line-per-object summary."""
        lines = []
        for name in sorted(self._fractions):
            parts = ", ".join(
                f"{self._farm[j].name}:{f:.0%}"
                for j, f in enumerate(self._fractions[name]) if f > EPS_ZERO)
            lines.append(f"{name} ({self._sizes[name]} blk) -> {parts}")
        return "\n".join(lines)

    def _require(self, name: str) -> None:
        if name not in self._fractions:
            raise LayoutError(f"no object {name!r} in layout")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Layout({len(self._fractions)} objects on " \
               f"{len(self._farm)} disks)"

    @classmethod
    def from_database(cls, db: Database, farm: DiskFarm,
                      fractions: Mapping[str, Sequence[float]],
                      check_capacity: bool = True) -> "Layout":
        """Build a layout for every object of a database catalog."""
        return cls(farm, db.object_sizes(), fractions,
                   check_capacity=check_capacity)
