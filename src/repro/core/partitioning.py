"""Kernighan–Lin style multiway partitioning of the access graph.

TS-GREEDY's first step partitions the access graph's nodes into ``p``
partitions so as to *maximize* the total weight of edges crossing
partitions — the mirror image of the classical min-cut formulation
(heavily co-accessed objects should land in *different* partitions).
The paper uses the Kernighan–Lin heuristic; we implement a deterministic
KL-style local search from scratch:

1. a greedy initial assignment — nodes in descending node-weight order,
   each placed in the partition that currently maximizes the cut gain;
2. repeated improvement passes considering single-node moves and
   pairwise swaps between partitions, applying the best positive-gain
   change of each pass until a pass finds none.

The result is deterministic for a given graph (ties break on object
name), which keeps every downstream experiment reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.tolerance import EPS_GAIN
from repro.errors import LayoutError
from repro.obs import NULL_METRICS
from repro.workload.access_graph import AccessGraph


@dataclass
class PartitionStats:
    """Telemetry of one :func:`partition_access_graph` run.

    Attributes:
        passes: KL improvement passes executed (≥ 1 whenever the
            refinement loop ran at all).
        initial_cut_weight: Cut weight after greedy seeding.
        cut_weights: Cut weight after each KL pass.
        moves: Single-node moves applied across all passes.
        swaps: Pairwise swaps applied across all passes.
    """

    passes: int = 0
    initial_cut_weight: float = 0.0
    cut_weights: list[float] = field(default_factory=list)
    moves: int = 0
    swaps: int = 0

    @property
    def final_cut_weight(self) -> float:
        if self.cut_weights:
            return self.cut_weights[-1]
        return self.initial_cut_weight


def partition_access_graph(graph: AccessGraph, p: int,
                           nodes: Sequence[str] | None = None,
                           max_passes: int = 16,
                           stats: PartitionStats | None = None,
                           metrics=NULL_METRICS,
                           seed: int | None = None) -> list[list[str]]:
    """Partition the graph's nodes into ``p`` parts maximizing cut weight.

    Args:
        graph: The co-access graph.
        p: Number of partitions (the paper uses ``p = m`` disks).
        nodes: Optional subset/ordering of nodes to partition; defaults
            to every node of the graph.
        max_passes: Upper bound on improvement passes.
        stats: Optional :class:`PartitionStats` filled in with per-pass
            telemetry (cut weight per KL pass, move/swap counts).
        metrics: Optional metrics registry; records the same telemetry
            under ``partition.*`` names.
        seed: ``None`` (default) keeps the canonical deterministic
            processing order.  An integer shuffles the order with a
            seeded RNG, steering greedy seeding and refinement into a
            different — still deterministic per seed — local optimum;
            the portfolio engine uses this for multi-start search.

    Returns:
        ``p`` lists of object names (some possibly empty), sorted within
        each partition.  Every input node appears exactly once.
    """
    if p <= 0:
        raise LayoutError("number of partitions must be positive")
    names = list(nodes) if nodes is not None else list(graph.nodes)
    if not names:
        return [[] for _ in range(p)]
    if p == 1:
        return [sorted(names)]

    # Deterministic processing order: heavy, well-connected nodes first.
    def priority(name: str) -> tuple[float, str]:
        return (-(graph.node_weight(name)
                  + sum(graph.edge_weight(name, v)
                        for v in graph.neighbors(name))), name)

    ordered = sorted(names, key=priority)
    if seed is not None:
        random.Random(seed).shuffle(ordered)
    assign: dict[str, int] = {}
    member_set = set(names)

    def connection(name: str, part: int) -> float:
        """Edge weight between ``name`` and current members of ``part``."""
        return sum(graph.edge_weight(name, v)
                   for v in graph.neighbors(name)
                   if v in member_set and assign.get(v) == part)

    # 1. Greedy seeding: put each node where it is least connected
    # (equivalently, where it adds the most cut weight), breaking ties
    # toward the emptiest partition for spread.
    sizes = [0] * p
    for name in ordered:
        best = min(range(p), key=lambda q: (connection(name, q),
                                            sizes[q], q))
        assign[name] = best
        sizes[best] += 1

    # 2. KL-style refinement: single moves and pairwise swaps.
    stats = stats if stats is not None else PartitionStats()
    stats.initial_cut_weight = graph.cut_weight(assign)
    for _ in range(max_passes):
        moves = 0
        for name in ordered:
            current = assign[name]
            internal = connection(name, current)
            best_gain, best_part = 0.0, current
            for q in range(p):
                if q == current:
                    continue
                gain = internal - connection(name, q)
                if gain > best_gain + EPS_GAIN:
                    best_gain, best_part = gain, q
            if best_part != current:
                assign[name] = best_part
                moves += 1
        swaps = _swap_pass(graph, ordered, assign)
        stats.passes += 1
        stats.moves += moves
        stats.swaps += swaps
        stats.cut_weights.append(graph.cut_weight(assign))
        if not moves and not swaps:
            break
    metrics.inc("partition.kl_passes", stats.passes)
    metrics.inc("partition.moves", stats.moves)
    metrics.inc("partition.swaps", stats.swaps)
    metrics.set_gauge("partition.cut_weight", stats.final_cut_weight)

    partitions: list[list[str]] = [[] for _ in range(p)]
    for name in names:
        partitions[assign[name]].append(name)
    return [sorted(part) for part in partitions]


def _swap_pass(graph: AccessGraph, ordered: Sequence[str],
               assign: dict[str, int]) -> int:
    """One pass of profitable pairwise swaps; how many were applied."""
    applied = 0
    for i, u in enumerate(ordered):
        for v in ordered[i + 1:]:
            pu, pv = assign[u], assign[v]
            if pu == pv:
                continue
            gain = _swap_gain(graph, assign, u, v)
            if gain > EPS_GAIN:
                assign[u], assign[v] = pv, pu
                applied += 1
    return applied


def _swap_gain(graph: AccessGraph, assign: dict[str, int],
               u: str, v: str) -> float:
    """Cut-weight change from swapping the partitions of ``u`` and ``v``."""
    pu, pv = assign[u], assign[v]

    def internal(node: str, part: int, *, excluding: str) -> float:
        return sum(graph.edge_weight(node, w)
                   for w in graph.neighbors(node)
                   if w != excluding and assign.get(w) == part)

    before = internal(u, pu, excluding=v) + internal(v, pv, excluding=u)
    after = internal(u, pv, excluding=v) + internal(v, pu, excluding=u)
    # The u–v edge is cut both before and after the swap; it cancels.
    return before - after


def intra_partition_weight(graph: AccessGraph,
                           partitions: Sequence[Sequence[str]]) -> float:
    """Total edge weight *not* cut by the partitioning (lower is better)."""
    total = 0.0
    for part in partitions:
        members = list(part)
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                total += graph.edge_weight(u, v)
    return total
