"""Central numeric tolerances for layout arithmetic.

Every fraction/capacity comparison in the package goes through the
constants defined here.  They used to be redefined module by module
(``_EPS = 1e-9`` in four places, bare ``1e-6``/``1e-9`` literals in four
more), which let the full-allocation check and the capacity check drift
apart silently.  Keeping them in one module makes the two deliberately
different tolerances visible:

* sum-to-1 checks accumulate one rounding error per disk, so they get
  the loose :data:`EPS_FRACTION`;
* single-value comparisons (a fraction against zero, a block count
  against a capacity or budget) get the tight :data:`EPS_CAPACITY` /
  :data:`EPS_ZERO` / :data:`EPS_COST`.
"""

from __future__ import annotations

#: Tolerance for "the fractions of an object sum to 1" (full-allocation)
#: checks.  Loose because the sum accumulates one float rounding error
#: per disk in the farm.
EPS_FRACTION = 1e-6

#: Slack allowed when comparing allocated blocks against a disk capacity
#: or a data-movement budget.
EPS_CAPACITY = 1e-9

#: Threshold below which a single fraction is treated as exactly zero
#: (e.g. when deriving the disk set of an object).
EPS_ZERO = 1e-9

#: Minimum cost decrease the search accepts as a strict improvement.
EPS_COST = 1e-9

#: Minimum cut-weight gain the KL refinement accepts for a move or
#: swap.  Tighter than :data:`EPS_COST`: gains are differences of a
#: handful of edge weights, so there is almost no accumulated error,
#: and a looser threshold would reject real single-edge improvements.
EPS_GAIN = 1e-12
