"""The diagnostics engine: run analyzers, collect a report, gate runs.

Three entry points, one per pipeline position:

* :func:`analyze_inputs` — the ``repro-advisor lint`` pass: check
  whatever inputs were supplied (catalog, farm, workload, constraints,
  layout) and report everything found, never raising on bad *input*
  (un-analyzable inputs become ALR000 diagnostics);
* :func:`preflight` — the advisor's gate: same rules, but error-level
  diagnostics raise :class:`~repro.errors.AnalysisError` naming the
  rule IDs, before any search work starts;
* :func:`audit_recommendation` — the post-search audit: re-read a
  finished recommendation against the access graph and flag placements
  the cost model considers expensive.
"""

from __future__ import annotations

import logging
from typing import Any, Mapping, Sequence

from repro.analysis.audit_rules import (
    check_journal,
    check_migration,
    check_recommendation,
    check_rollback,
)
from repro.analysis.constraint_rules import ALR015, check_constraints
from repro.analysis.diagnostics import (
    AnalysisReport,
    Severity,
    register,
)
from repro.analysis.layout_rules import check_layout
from repro.analysis.workload_rules import check_workload
from repro.catalog.schema import Database
from repro.core.constraints import ConstraintSet
from repro.core.layout import Layout
from repro.errors import AnalysisError, ReproError
from repro.obs import NULL_METRICS, NULL_TRACER
from repro.storage.disk import DiskFarm
from repro.workload.access import AnalyzedWorkload, analyze_workload
from repro.workload.access_graph import AccessGraph, build_access_graph
from repro.workload.workload import Workload

logger = logging.getLogger("repro.analysis")

ALR000 = register(
    "ALR000", Severity.ERROR, "engine",
    "Input could not be loaded or analyzed")


def _layout_parts(layout: "Layout | Mapping[str, Any]",
                  db: Database | None,
                  ) -> tuple[Mapping[str, int],
                             Mapping[str, Sequence[float]]]:
    """``(object_sizes, fractions)`` from a Layout or its JSON dict.

    Accepting the raw dict matters: a *invalid* layout cannot be
    constructed as a :class:`Layout` at all, and the lint pass exists
    precisely to report on such inputs instead of crashing.
    """
    if isinstance(layout, Layout):
        return layout.object_sizes, {
            name: layout.fractions_of(name)
            for name in layout.object_names}
    sizes = dict(layout.get("object_sizes") or {})
    if not sizes and db is not None:
        sizes = db.object_sizes()
    return sizes, dict(layout.get("fractions") or {})


def analyze_inputs(db: Database | None = None,
                   farm: DiskFarm | None = None,
                   workload: "Workload | AnalyzedWorkload | None" = None,
                   constraints: ConstraintSet | None = None,
                   layout: "Layout | Mapping[str, Any] | None" = None,
                   graph: AccessGraph | None = None,
                   ) -> AnalysisReport:
    """Run every applicable rule over the supplied inputs.

    Each analyzer runs only when its inputs are present: constraint
    rules need ``constraints`` + ``farm`` + ``db``; layout rules need
    ``layout`` + ``farm``; workload rules need ``workload`` (plus ``db``
    to plan a raw :class:`Workload` and to find never-accessed
    objects); the recommendation audit needs ``layout`` plus a graph
    (given, or built from the workload).

    Returns:
        An :class:`AnalysisReport`; never raises on rule violations.
    """
    report = AnalysisReport()

    analyzed: AnalyzedWorkload | None = None
    if isinstance(workload, AnalyzedWorkload):
        analyzed = workload
    elif workload is not None and db is not None:
        try:
            analyzed = analyze_workload(workload, db)
        except ReproError as bad:
            report.extend([ALR000.diagnostic(
                f"workload could not be analyzed: {bad}",
                location=f"workload:{workload.name}",
                suggestion="fix the statement the error names; run "
                           "`repro-advisor analyze` for plans")])

    if constraints is not None and farm is not None and db is not None:
        report.extend(check_constraints(constraints, farm,
                                        db.object_sizes()))

    audit_layout: Layout | None = None
    if layout is not None and farm is not None:
        sizes, fractions = _layout_parts(layout, db)
        report.extend(check_layout(
            farm, sizes, fractions,
            catalog_objects=list(db.object_sizes()) if db else None))
        if isinstance(layout, Layout):
            audit_layout = layout
        else:
            try:
                audit_layout = Layout(farm, sizes, fractions)
            except ReproError:
                audit_layout = None  # already reported by check_layout

    if analyzed is not None:
        report.extend(check_workload(analyzed, db=db, graph=graph))

    if audit_layout is not None and analyzed is not None:
        audit_graph = graph if graph is not None \
            else build_access_graph(analyzed, db)
        report.extend(check_recommendation(audit_layout, audit_graph))

    return report


def constraint_construction_diagnostic(error: ReproError,
                                       source: str = "constraints",
                                       ) -> AnalysisReport:
    """ALR015 report for a constraint set that failed to construct.

    :class:`~repro.core.constraints.ConstraintSet` rejects per-object
    contradictions (two availability levels for one object) in its
    constructor, so such sets never reach :func:`check_constraints`;
    the loader catches the error and reports it through this helper.
    """
    return AnalysisReport([ALR015.diagnostic(
        f"constraint set could not be built: {error}",
        location=f"constraint:{source}",
        suggestion="remove one of the conflicting requirements")])


def preflight(db: Database,
              farm: DiskFarm,
              constraints: ConstraintSet | None = None,
              analyzed: AnalyzedWorkload | None = None,
              tracer: Any = None, metrics: Any = None,
              ) -> AnalysisReport:
    """Gate an advisor run on its inputs being analyzably sane.

    Runs the constraint and workload analyzers (layout rules are not
    relevant pre-search — the advisor *produces* the layout).  Warnings
    and info are returned in the report and recorded as
    ``analysis.warnings`` / ``analysis.info`` metrics; error-level
    diagnostics abort the run.

    Raises:
        AnalysisError: If any error-level diagnostic was found; the
            message lists each rule ID and message.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    metrics = metrics if metrics is not None else NULL_METRICS
    with tracer.span("preflight") as span:
        report = AnalysisReport()
        if constraints is not None:
            report.extend(check_constraints(constraints, farm,
                                            db.object_sizes()))
        if analyzed is not None:
            report.extend(check_workload(analyzed, db=db))
        counts = report.counts()
        span.set("errors", counts["error"])
        span.set("warnings", counts["warning"])
        metrics.inc("analysis.errors", counts["error"])
        metrics.inc("analysis.warnings", counts["warning"])
        metrics.inc("analysis.info", counts["info"])
        for diagnostic in report.warnings:
            logger.warning("preflight %s: %s", diagnostic.rule_id,
                           diagnostic.message)
        errors = report.errors
        if errors:
            summary = "; ".join(f"{d.rule_id}: {d.message}"
                                for d in errors)
            raise AnalysisError(
                f"pre-flight failed with {len(errors)} error-level "
                f"diagnostic(s): {summary}",
                diagnostics=tuple(errors))
    return report


def audit_recommendation(layout: Layout,
                         graph: AccessGraph,
                         tracer: Any = None, metrics: Any = None,
                         ) -> AnalysisReport:
    """Post-search audit of a recommended layout.

    Runs the audit rules (seek blowup, load skew) plus the layout
    smells that apply to a finished layout (idle disks, mixed
    availability); records ``analysis.audit_findings`` in ``metrics``.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    metrics = metrics if metrics is not None else NULL_METRICS
    with tracer.span("audit-recommendation") as span:
        report = AnalysisReport()
        report.extend(check_layout(
            layout.farm, layout.object_sizes,
            {name: layout.fractions_of(name)
             for name in layout.object_names}))
        report.extend(check_recommendation(layout, graph))
        span.set("findings", len(report))
        metrics.inc("analysis.audit_findings", len(report))
    return report


def audit_migration(plan, current: Layout,
                    movement_budget: float | None = None,
                    tracer: Any = None, metrics: Any = None,
                    ) -> AnalysisReport:
    """Post-search audit of an incremental run's migration plan.

    Runs the migration rules (ALR032 budget respected, ALR033
    intermediate capacity safe) and records
    ``analysis.migration_findings`` in ``metrics``.  A clean report is
    the run's proof that the Section-2.3 incrementality guarantees
    actually held.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    metrics = metrics if metrics is not None else NULL_METRICS
    with tracer.span("audit-migration") as span:
        report = AnalysisReport()
        report.extend(check_migration(plan, current,
                                      movement_budget=movement_budget))
        span.set("findings", len(report))
        metrics.inc("analysis.migration_findings", len(report))
    return report


def audit_journal(records, plan=None, source: Layout | None = None,
                  tracer: Any = None, metrics: Any = None,
                  ) -> AnalysisReport:
    """Audit a migration execution journal (ALR034/ALR035).

    ALR034 proves the journal is internally consistent and belongs to
    the given plan and source layout; ALR035 proves the journaled
    intermediate state still has a capacity-safe reverse path back to
    the source (rollback feasibility is checked only when both ``plan``
    and ``source`` are supplied).  Records
    ``analysis.migration_findings`` in ``metrics``.

    Args:
        records: Parsed journal records
            (:func:`repro.storage.executor.read_journal` output).
        plan: The forward :class:`~repro.storage.migration.MigrationPlan`
            the journal executes.
        source: The layout the journal's replay starts from.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    metrics = metrics if metrics is not None else NULL_METRICS
    with tracer.span("audit-journal") as span:
        report = AnalysisReport()
        report.extend(check_journal(records, plan=plan, source=source))
        if not report.errors and plan is not None \
                and source is not None:
            report.extend(check_rollback(records, plan, source))
        span.set("findings", len(report))
        metrics.inc("analysis.migration_findings", len(report))
    return report
