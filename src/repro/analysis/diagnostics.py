"""Diagnostic primitives: severities, rules, diagnostics, reports.

The static analyzer is organized like a compiler's lint pass: a
*rule* is a registered, documented invariant with a stable ID
(``ALR0xx`` — *Automated Layout Rule*), a default severity and a title;
a *diagnostic* is one concrete violation of a rule, carrying a location
and an optional suggested fix; a *report* is an ordered collection of
diagnostics with severity roll-ups and text/JSON renderings.

Rule IDs are part of the tool's public contract: scripts match on them
(``--format json``), the advisor's pre-flight names them in exceptions,
and ``docs/static-analysis.md`` documents each with a minimal
triggering example.  Never renumber an existing rule.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

_SEVERITY_RANK = {"info": 0, "warning": 1, "error": 2}


class Severity(enum.Enum):
    """How bad a diagnostic is.

    ``ERROR`` means the inputs cannot produce a meaningful
    recommendation (the advisor's pre-flight refuses to search);
    ``WARNING`` means the run can proceed but the result is suspect;
    ``INFO`` is advisory.
    """

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        """Numeric ordering: info < warning < error."""
        return _SEVERITY_RANK[self.value]

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Rule:
    """One registered analysis rule.

    Attributes:
        rule_id: Stable identifier, e.g. ``"ALR003"``.
        severity: Default severity of diagnostics from this rule.
        category: Which analyzer owns it: ``"layout"``,
            ``"constraints"``, ``"workload"`` or ``"audit"``.
        title: One-line summary used in listings and docs.
    """

    rule_id: str
    severity: Severity
    category: str
    title: str

    def diagnostic(self, message: str, location: str = "",
                   suggestion: str | None = None,
                   severity: Severity | None = None) -> "Diagnostic":
        """A concrete violation of this rule."""
        return Diagnostic(rule_id=self.rule_id,
                          severity=severity or self.severity,
                          message=message, location=location,
                          suggestion=suggestion)


#: Every registered rule by ID, in registration order.
REGISTRY: dict[str, Rule] = {}


def register(rule_id: str, severity: Severity, category: str,
             title: str) -> Rule:
    """Register a rule under a stable ID (module-import time only)."""
    if rule_id in REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    rule = Rule(rule_id=rule_id, severity=severity, category=category,
                title=title)
    REGISTRY[rule_id] = rule
    return rule


def rules_by_category(category: str | None = None) -> list[Rule]:
    """All registered rules, optionally restricted to one category."""
    return [r for r in REGISTRY.values()
            if category is None or r.category == category]


@dataclass(frozen=True)
class Diagnostic:
    """One concrete finding of the static analyzer.

    Attributes:
        rule_id: The violated rule's stable ID.
        severity: Effective severity (usually the rule's default).
        message: Human-readable description naming the offenders.
        location: Where the problem is, as ``kind:name`` (e.g.
            ``"layout:lineitem"``, ``"constraint:CoLocated(a, b)"``,
            ``"statement:Q3"``, ``"disk:D4"``).
        suggestion: Optional one-line suggested fix.
    """

    rule_id: str
    severity: Severity
    message: str
    location: str = ""
    suggestion: str | None = None

    def render(self) -> str:
        """``severity ALR0xx [location] message  (fix: ...)``."""
        where = f" [{self.location}]" if self.location else ""
        fix = f"  (fix: {self.suggestion})" if self.suggestion else ""
        return f"{self.severity.value:7s} {self.rule_id}{where} " \
               f"{self.message}{fix}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (stable keys; ``suggestion`` may be null)."""
        return {"rule": self.rule_id, "severity": self.severity.value,
                "message": self.message, "location": self.location,
                "suggestion": self.suggestion}


class AnalysisReport:
    """An ordered collection of diagnostics with severity roll-ups."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()):
        self.diagnostics: list[Diagnostic] = list(diagnostics)

    # -- collection ----------------------------------------------------------

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        """Append diagnostics (analyzers yield, the engine collects)."""
        self.diagnostics.extend(diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    # -- roll-ups ------------------------------------------------------------

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        """Diagnostics of exactly the given severity."""
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def max_severity(self) -> Severity | None:
        """The worst severity present, or ``None`` for a clean report."""
        if not self.diagnostics:
            return None
        return max((d.severity for d in self.diagnostics),
                   key=lambda s: s.rank)

    @property
    def exit_code(self) -> int:
        """Process exit code: 0 clean/info, 1 warnings, 2 errors."""
        worst = self.max_severity
        if worst is Severity.ERROR:
            return 2
        if worst is Severity.WARNING:
            return 1
        return 0

    def counts(self) -> dict[str, int]:
        """``{"error": n, "warning": n, "info": n}``."""
        out = {s.value: 0 for s in
               (Severity.ERROR, Severity.WARNING, Severity.INFO)}
        for d in self.diagnostics:
            out[d.severity.value] += 1
        return out

    # -- renderings ----------------------------------------------------------

    def render_text(self) -> str:
        """One line per diagnostic (worst first), plus a summary line."""
        ordered = sorted(self.diagnostics,
                         key=lambda d: (-d.severity.rank, d.rule_id,
                                        d.location))
        lines = [d.render() for d in ordered]
        c = self.counts()
        lines.append(f"{len(self.diagnostics)} diagnostic(s): "
                     f"{c['error']} error(s), {c['warning']} warning(s), "
                     f"{c['info']} info")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form: diagnostics plus a summary block."""
        return {"diagnostics": [d.to_dict() for d in self.diagnostics],
                "summary": {**self.counts(),
                            "max_severity":
                                self.max_severity.value
                                if self.max_severity else None}}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        c = self.counts()
        return f"AnalysisReport({c['error']}E/{c['warning']}W/" \
               f"{c['info']}I)"


__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "REGISTRY",
    "Rule",
    "Severity",
    "register",
    "rules_by_category",
]
