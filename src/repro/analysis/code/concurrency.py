"""Concurrency/resource rules (``RPC2xx``): workers, shm, globals.

The portfolio engine survives killed workers and interrupts only
because ``parallel/`` keeps three disciplines: every shared-memory
segment is created under the creator-owns-unlink lifecycle (registered
in the ``_LIVE_SEGMENTS`` ledger so the ``atexit`` sweeper can reap a
crash window), no exception is swallowed silently on the worker/drain
paths (a silent ``except: pass`` there turns a crashed trajectory into
a hung run), and no fork-hostile mutable module global leaks state
between the parent and forked workers.  These rules enforce all three.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.code.engine import (
    CodeFinding,
    SourceFile,
    code_checker,
    dotted_name,
)
from repro.analysis.diagnostics import Severity, register

RPC201 = register(
    "RPC201", Severity.ERROR, "code",
    "Shared-memory creation outside the creator-owns-unlink ledger")
RPC202 = register(
    "RPC202", Severity.WARNING, "code",
    "Swallowed exception on a worker/drain path")
RPC203 = register(
    "RPC203", Severity.WARNING, "code",
    "Fork-hostile mutable module global in the parallel engine")

#: The sanctioned ledger name (see ``repro/parallel/shared.py``).
_LEDGER = "_LIVE_SEGMENTS"


def _is_shm_create(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    if name is None or not name.endswith("SharedMemory"):
        return False
    return any(kw.arg == "create"
               and isinstance(kw.value, ast.Constant)
               and kw.value.value is True
               for kw in node.keywords)


@code_checker(RPC201)
def check_shm_ledger(source: SourceFile) -> Iterator[CodeFinding]:
    """``SharedMemory(create=True)`` must register in the ledger.

    The enclosing function must reference ``_LIVE_SEGMENTS`` (the
    crash-recovery ledger backing :func:`repro.parallel.shared
    .reap_orphans`); a segment created outside it can leak in
    ``/dev/shm`` past process exit on any path ``finally`` misses.
    """
    functions = [node for node in ast.walk(source.tree)
                 if isinstance(node, (ast.FunctionDef,
                                      ast.AsyncFunctionDef))]
    for function in functions:
        creations = [node for node in ast.walk(function)
                     if _is_shm_create(node)]
        if not creations:
            continue
        ledgered = any(isinstance(node, ast.Name) and node.id == _LEDGER
                       for node in ast.walk(function))
        if ledgered:
            continue
        for creation in creations:
            yield CodeFinding(
                RPC201, creation.lineno,
                f"SharedMemory(create=True) in {function.name}() "
                f"never registers in {_LEDGER}",
                suggestion=f"add the segment to {_LEDGER} right after "
                           "creation (and discard it on unlink) so "
                           "reap_orphans() covers crash paths")


def _swallows(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing but move on."""
    return all(
        isinstance(statement, (ast.Pass, ast.Continue, ast.Break))
        or (isinstance(statement, ast.Expr)
            and isinstance(statement.value, ast.Constant))
        for statement in handler.body)


@code_checker(RPC202, include=("parallel/",))
def check_swallowed_exceptions(source: SourceFile,
                               ) -> Iterator[CodeFinding]:
    """Flag ``except`` handlers that silently discard the error."""
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _swallows(node):
            continue
        caught = "bare except" if node.type is None else \
            f"except {ast.unparse(node.type)}"
        yield CodeFinding(
            RPC202, node.lineno,
            f"{caught} swallows the error without logging or "
            "re-raising",
            suggestion="log the incident, re-raise a typed error, or "
                       "suppress with a written rationale if the "
                       "swallow is a deliberate idempotency race")


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is None:
            return False
        return name.rsplit(".", 1)[-1] in (
            "list", "dict", "set", "defaultdict", "deque", "Counter",
            "OrderedDict")
    return False


@code_checker(RPC203, include=("parallel/",))
def check_mutable_globals(source: SourceFile) -> Iterator[CodeFinding]:
    """Flag lowercase mutable module globals in ``parallel/``.

    Forked workers inherit a snapshot of module state; a mutable
    module-level container mutated after the fork silently diverges
    between parent and children.  Deliberate process-local registries
    (the shm ledger, the worker context) are named ``_UPPER_CASE`` and
    documented; anything else is suspect.
    """
    for statement in source.tree.body:
        if isinstance(statement, ast.Assign):
            targets = statement.targets
            value = statement.value
        elif isinstance(statement, ast.AnnAssign):
            if statement.value is None:
                continue
            targets = [statement.target]
            value = statement.value
        else:
            continue
        if not _is_mutable_value(value):
            continue
        for target in targets:
            if (isinstance(target, ast.Name)
                    and not target.id.isupper()
                    and not (target.id.startswith("__")
                             and target.id.endswith("__"))):
                yield CodeFinding(
                    RPC203, statement.lineno,
                    f"module global {target.id!r} is a mutable "
                    "container in a fork-shared module",
                    suggestion="pass the state explicitly, or rename "
                               "to _UPPER_CASE and document it as a "
                               "deliberate process-local registry")
