"""Numeric-hygiene rules (``RPC4xx``): one home for every epsilon.

``repro/core/tolerance.py`` exists because per-module ``_EPS = 1e-9``
literals let the full-allocation check and the capacity check drift
apart silently (see that module's docstring).  This rule keeps the
regression from creeping back: a tiny float literal used as a
comparison tolerance — or an ``EPS_*`` constant minted outside the
tolerance module — must route through the shared constants
(``EPS_FRACTION``/``EPS_CAPACITY``/``EPS_ZERO``/``EPS_COST``/…).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.code.engine import (
    CodeFinding,
    SourceFile,
    code_checker,
)
from repro.analysis.diagnostics import Severity, register

RPC401 = register(
    "RPC401", Severity.WARNING, "code",
    "Epsilon literal outside core/tolerance.py")

#: Floats at or below this are treated as comparison tolerances rather
#: than domain values (the shared constants range 1e-6 .. 1e-12).
_TINY = 1e-5

_EXCLUDE = ("core/tolerance.py",)


def _tiny_floats(node: ast.AST) -> list[float]:
    """Tiny float constants in ``node``, not descending into calls.

    A float inside a nested call — ``max(temperature, 1e-12)`` as a
    division floor — is a clamp argument, not a comparison tolerance;
    only literals in the comparison's own arithmetic count.
    """
    found: list[float] = []
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Call) and current is not node:
            continue
        if (isinstance(current, ast.Constant)
                and isinstance(current.value, float)
                and current.value != 0.0
                and abs(current.value) <= _TINY):
            found.append(current.value)
        stack.extend(ast.iter_child_nodes(current))
    return found


@code_checker(RPC401, exclude=_EXCLUDE)
def check_epsilon_literals(source: SourceFile) -> Iterator[CodeFinding]:
    """Flag tiny-float comparisons and out-of-place EPS constants."""
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        tiny = [value for operand in operands
                for value in _tiny_floats(operand)]
        if tiny:
            yield CodeFinding(
                RPC401, node.lineno,
                f"float literal {tiny[0]!r} used as a comparison "
                "tolerance",
                suggestion="compare against the shared constants in "
                           "repro/core/tolerance.py (EPS_FRACTION/"
                           "EPS_CAPACITY/EPS_ZERO/EPS_COST/...)")
    for statement in source.tree.body:
        if isinstance(statement, ast.Assign):
            targets = statement.targets
            value = statement.value
        elif isinstance(statement, ast.AnnAssign):
            if statement.value is None:
                continue
            targets = [statement.target]
            value = statement.value
        else:
            continue
        if not (isinstance(value, ast.Constant)
                and isinstance(value.value, float)
                and value.value != 0.0
                and abs(value.value) <= 1e-3):
            continue
        for target in targets:
            if isinstance(target, ast.Name) and "EPS" in target.id:
                yield CodeFinding(
                    RPC401, statement.lineno,
                    f"epsilon constant {target.id} defined outside "
                    "core/tolerance.py",
                    suggestion="move the constant into "
                               "repro/core/tolerance.py and import it "
                               "(or suppress with the layering reason)")
