"""Determinism rules (``RPC1xx``): the ``jobs=1 ≡ jobs=N`` contract.

The portfolio engine promises bit-identical results for any ``--jobs``
value, and the flight recorder promises canonical timelines for
identical seeded runs.  Both promises die quietly the moment library
code reads the wall clock, consults the process-global ``random``
module, salts anything through builtin ``hash()`` (``PYTHONHASHSEED``
varies per process), or lets an unordered ``set`` decide an iteration
order that feeds results or telemetry.  These rules make that class of
regression a lint failure instead of a flaky chaos-CI bisect.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.code.engine import (
    CodeFinding,
    SourceFile,
    code_checker,
    dotted_name,
    parent_map,
)
from repro.analysis.diagnostics import Severity, register

RPC101 = register(
    "RPC101", Severity.ERROR, "code",
    "Wall-clock read in library code")
RPC102 = register(
    "RPC102", Severity.ERROR, "code",
    "Process-global random module call")
RPC103 = register(
    "RPC103", Severity.ERROR, "code",
    "Builtin hash() call (PYTHONHASHSEED-dependent)")
RPC104 = register(
    "RPC104", Severity.WARNING, "code",
    "Unordered set iteration feeding an ordered consumer")
RPC105 = register(
    "RPC105", Severity.WARNING, "code",
    "Raw time.* call in the parallel engine (inject a clock)")

#: Wall-clock reads: absolute time, which differs across runs and
#: machines.  ``time.perf_counter``/``time.monotonic`` are the
#: sanctioned relative clocks (and even those must be injected inside
#: ``parallel/`` — see RPC105).
_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.ctime", "time.localtime",
    "time.gmtime", "time.strftime", "time.asctime",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "date.today", "datetime.date.today",
})

#: ``random.<fn>`` calls that consume the process-global RNG.
_GLOBAL_RANDOM_FUNCS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "seed",
    "betavariate", "expovariate", "getrandbits", "triangular",
})

#: Raw time functions banned inside ``parallel/``: workers replay
#: trajectories and tests fake time, so timing must flow through an
#: injected ``clock=``/``sleep=`` (the Tracer/EventRecorder/Deadline
#: convention).  Referencing them as *defaults* is fine — only calls
#: are flagged.
_RAW_TIME_CALLS = frozenset({
    "time.perf_counter", "time.perf_counter_ns", "time.monotonic",
    "time.monotonic_ns", "time.process_time", "time.thread_time",
    "time.sleep",
})


@code_checker(RPC101)
def check_wall_clock(source: SourceFile) -> Iterator[CodeFinding]:
    """Flag ``time.time()`` / ``datetime.now()`` style calls."""
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name in _WALL_CLOCK_CALLS:
            yield CodeFinding(
                RPC101, node.lineno,
                f"wall-clock read {name}() in library code",
                suggestion="use time.perf_counter()/time.monotonic() "
                           "relative to an epoch, or take an injected "
                           "clock= parameter")


@code_checker(RPC102)
def check_global_random(source: SourceFile) -> Iterator[CodeFinding]:
    """Flag calls that consume the process-global ``random`` state."""
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None or "." not in name:
            continue
        module, _, func = name.partition(".")
        if module == "random" and func in _GLOBAL_RANDOM_FUNCS:
            yield CodeFinding(
                RPC102, node.lineno,
                f"{name}() consumes the shared module-level RNG",
                suggestion="use a seeded random.Random(seed) instance "
                           "owned by the caller")


@code_checker(RPC103)
def check_builtin_hash(source: SourceFile) -> Iterator[CodeFinding]:
    """Flag builtin ``hash()``: salted per process for str/bytes."""
    for node in ast.walk(source.tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"):
            yield CodeFinding(
                RPC103, node.lineno,
                "builtin hash() varies across processes "
                "(PYTHONHASHSEED)",
                suggestion="derive values with integer arithmetic or "
                           "hashlib over canonical bytes")


#: Callables whose output order mirrors their input order.
_ORDER_SINKS = frozenset({"list", "tuple", "enumerate", "iter",
                          "reversed", "zip", "next"})


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


@code_checker(RPC104)
def check_set_iteration(source: SourceFile) -> Iterator[CodeFinding]:
    """Flag set expressions whose iteration order escapes unsorted.

    Iterating a set is fine when the consumer is order-insensitive
    (``sorted``/``min``/``max``/``sum``/membership/another set); it is
    a determinism bug when the order reaches an ordered consumer — a
    ``for`` body with side effects, a list/tuple, ``str.join`` — and
    from there results, float accumulation order, or telemetry.
    """
    parents = parent_map(source.tree)
    for node in ast.walk(source.tree):
        if not _is_set_expression(node):
            continue
        parent = parents.get(node)
        context: str | None = None
        if isinstance(parent, ast.For) and parent.iter is node:
            context = "a for loop"
        elif (isinstance(parent, ast.comprehension)
                and parent.iter is node
                and not isinstance(parents.get(parent), ast.SetComp)):
            context = "a comprehension"
        elif isinstance(parent, ast.Call) and node in parent.args:
            func = parent.func
            if (isinstance(func, ast.Name)
                    and func.id in _ORDER_SINKS):
                context = f"{func.id}()"
            elif isinstance(func, ast.Attribute) and func.attr == "join":
                context = "str.join()"
        if context is not None:
            yield CodeFinding(
                RPC104, node.lineno,
                f"set iteration order reaches {context}",
                suggestion="wrap the set in sorted(...) before it "
                           "feeds an ordered consumer")


@code_checker(RPC105, include=("parallel/",))
def check_raw_time(source: SourceFile) -> Iterator[CodeFinding]:
    """Flag direct ``time.*`` calls inside the parallel engine."""
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name in _RAW_TIME_CALLS:
            yield CodeFinding(
                RPC105, node.lineno,
                f"raw {name}() call in the parallel engine",
                suggestion="route timing through an injected clock=/"
                           "sleep= parameter (defaulting to time.*) "
                           "so tests and replays can fake it")
