"""Telemetry-contract rules (``RPC3xx``): catalog-resolved emissions.

``MetricsRegistry(strict=True)`` and ``EventRecorder.emit`` already
reject undeclared names *at runtime* — but only on code paths a test
actually exercises.  These rules resolve every literal emission in the
source against :data:`repro.obs.names.METRIC_CATALOG` and
:data:`repro.obs.events.EVENT_TYPES` *statically*, with real AST
scoping instead of the regex scrape the test suite used to run: string
literals inside comments/docstrings don't count, multi-line calls
resolve, and the method (``inc``/``set_gauge``/``observe``) must agree
with the declared kind.  Dynamic names — a variable where the literal
should be — defeat the static check and are reported as ``RPC304``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.code.engine import (
    CodeFinding,
    SourceFile,
    code_checker,
    iter_source_files,
    load_source,
)
from repro.analysis.diagnostics import Severity, register
from repro.obs.events import EVENT_TYPES
from repro.obs.names import COUNTER, GAUGE, HISTOGRAM, METRIC_CATALOG

RPC301 = register(
    "RPC301", Severity.ERROR, "code",
    "Metric emission not declared in METRIC_CATALOG")
RPC302 = register(
    "RPC302", Severity.ERROR, "code",
    "Metric emission disagrees with its declared kind")
RPC303 = register(
    "RPC303", Severity.ERROR, "code",
    "Event emission not declared in EVENT_TYPES")
RPC304 = register(
    "RPC304", Severity.INFO, "code",
    "Dynamic telemetry name defeats the static contract check")

#: The registry/recorder machinery itself handles names generically
#: (merge paths, exporters, the catalog module) — its calls are not
#: emissions.
_MACHINERY = ("obs/metrics.py", "obs/names.py", "obs/events.py",
              "obs/export.py", "obs/profile.py")

_METRIC_METHODS = {"inc": COUNTER, "set_gauge": GAUGE,
                   "observe": HISTOGRAM}
_EVENT_METHOD = "emit"


@dataclass(frozen=True)
class TelemetrySite:
    """One ``.inc/.set_gauge/.observe/.emit`` call site."""

    method: str
    name: str | None  # literal first argument, None when dynamic
    line: int


def telemetry_sites(tree: ast.AST) -> Iterator[TelemetrySite]:
    """Every telemetry call site in ``tree``, literal or dynamic."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr not in _METRIC_METHODS \
                and func.attr != _EVENT_METHOD:
            continue
        if not node.args:
            continue
        first = node.args[0]
        name = first.value if (isinstance(first, ast.Constant)
                               and isinstance(first.value, str)) \
            else None
        yield TelemetrySite(method=func.attr, name=name,
                            line=node.lineno)


def count_telemetry_sites(paths: Iterable[Path]) -> int:
    """Total telemetry call sites under ``paths`` (machinery excluded).

    The test suite uses this as a self-guard: if the emission idiom
    ever changes shape, the count collapses and the guard fails loudly
    instead of the contract checks silently checking nothing.
    """
    total = 0
    for path in iter_source_files(paths):
        if any(part in path.as_posix() for part in _MACHINERY):
            continue
        total += sum(1 for _ in telemetry_sites(load_source(path).tree))
    return total


@code_checker(RPC301, exclude=_MACHINERY)
def check_metric_names(source: SourceFile) -> Iterator[CodeFinding]:
    """Every literal metric emission must resolve to the catalog."""
    for site in telemetry_sites(source.tree):
        if site.method not in _METRIC_METHODS or site.name is None:
            continue
        if site.name not in METRIC_CATALOG:
            yield CodeFinding(
                RPC301, site.line,
                f"{site.method}({site.name!r}) is not declared in "
                "METRIC_CATALOG",
                suggestion="declare the metric (kind + help) in "
                           "repro/obs/names.py before emitting it")


@code_checker(RPC302, exclude=_MACHINERY)
def check_metric_kinds(source: SourceFile) -> Iterator[CodeFinding]:
    """``inc``/``set_gauge``/``observe`` must match the declared kind."""
    for site in telemetry_sites(source.tree):
        if site.method not in _METRIC_METHODS or site.name is None:
            continue
        declared = METRIC_CATALOG.get(site.name)
        expected = _METRIC_METHODS[site.method]
        if declared is not None and declared[0] != expected:
            yield CodeFinding(
                RPC302, site.line,
                f"{site.method}({site.name!r}) emits a {expected} but "
                f"the catalog declares a {declared[0]}",
                suggestion="use the method matching the declared kind, "
                           "or fix the catalog entry")


@code_checker(RPC303, exclude=_MACHINERY)
def check_event_types(source: SourceFile) -> Iterator[CodeFinding]:
    """Every literal recorder emission must be a declared event type."""
    for site in telemetry_sites(source.tree):
        if site.method != _EVENT_METHOD or site.name is None:
            continue
        if site.name not in EVENT_TYPES:
            yield CodeFinding(
                RPC303, site.line,
                f"emit({site.name!r}) is not declared in EVENT_TYPES",
                suggestion="declare the event type (with a one-line "
                           "description) in repro/obs/events.py")


@code_checker(RPC304, exclude=_MACHINERY)
def check_dynamic_names(source: SourceFile) -> Iterator[CodeFinding]:
    """Telemetry names should be literals the linter can resolve."""
    for site in telemetry_sites(source.tree):
        if site.name is not None:
            continue
        yield CodeFinding(
            RPC304, site.line,
            f"{site.method}(...) takes a computed name; the contract "
            "check cannot resolve it statically",
            suggestion="emit a string literal, or suppress with the "
                       "invariant that guarantees catalog membership")
