"""The code-contract linter's engine: files, pragmas, suppressions.

Where the ``ALR0xx`` rules lint the advisor's *data* (layouts,
constraints, workloads), the ``RPC0xx`` rules (*RePro Code*) lint the
advisor's *source*: the determinism, concurrency and telemetry
contracts that ``docs/performance.md`` and ``docs/resilience.md``
promise — ``jobs=1 ≡ jobs=N`` bit-identity, seeded-never-``hash()``
jitter, monotonic clocks, creator-owns-unlink shared memory, every
metric/event emission resolving to its declared catalog entry.

This module owns the mechanics shared by every rule family:

* a :class:`CodeChecker` registry (:func:`code_checker`) binding each
  registered :class:`~repro.analysis.diagnostics.Rule` to an AST check
  plus a path scope;
* file discovery and parsing (:func:`iter_source_files`,
  unparseable files become ``RPC001`` diagnostics);
* the per-line suppression pragma::

      segment.unlink()  # repro: noqa RPC202 -- idempotent unlink race

  A pragma *must* name the suppressed rule IDs and *must* carry a
  ``--``-separated justification (``RPC002`` otherwise); a suppression
  whose rule did not actually fire on that line is itself reported as
  stale (``RPC003``), so dead pragmas cannot accumulate.

The rule families live in sibling modules (:mod:`.determinism`,
:mod:`.concurrency`, :mod:`.telemetry`, :mod:`.numeric`); importing
:mod:`repro.analysis.code` registers all of them.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from repro.analysis.diagnostics import (
    REGISTRY,
    AnalysisReport,
    Diagnostic,
    Rule,
    Severity,
    register,
)

RPC001 = register(
    "RPC001", Severity.ERROR, "code",
    "Source file could not be parsed")
RPC002 = register(
    "RPC002", Severity.ERROR, "code",
    "Suppression pragma without rule IDs or justification")
RPC003 = register(
    "RPC003", Severity.WARNING, "code",
    "Stale suppression: rule did not fire on this line")


@dataclass(frozen=True)
class SourceFile:
    """One parsed Python source file under analysis.

    Attributes:
        path: The file as discovered (kept relative when the scan
            roots were relative, so locations are stable in CI logs).
        display: ``path`` in POSIX form — used in diagnostic locations
            and matched (by substring) against checker scopes.
        tree: The parsed module AST.
        lines: Source lines, 1-indexed via ``lines[lineno - 1]``.
    """

    path: Path
    display: str
    tree: ast.Module
    lines: tuple[str, ...]


@dataclass(frozen=True)
class CodeFinding:
    """One raw rule hit, before suppression handling."""

    rule: Rule
    line: int
    message: str
    suggestion: str | None = None


Checker = Callable[[SourceFile], Iterable[CodeFinding]]


@dataclass(frozen=True)
class CodeChecker:
    """A registered rule bound to its AST check and path scope.

    ``include``/``exclude`` are substrings matched against
    :attr:`SourceFile.display`: an empty ``include`` means the rule
    runs everywhere; any ``exclude`` match wins over ``include``.
    """

    rule: Rule
    check: Checker
    include: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()

    def applies_to(self, display: str) -> bool:
        if any(part in display for part in self.exclude):
            return False
        return not self.include or any(part in display
                                       for part in self.include)


#: Every registered code checker, in registration order.
CODE_CHECKERS: list[CodeChecker] = []


def code_checker(rule: Rule, include: Sequence[str] = (),
                 exclude: Sequence[str] = (),
                 ) -> Callable[[Checker], Checker]:
    """Decorator: register ``rule``'s checker (module-import time)."""
    def wrap(check: Checker) -> Checker:
        CODE_CHECKERS.append(CodeChecker(
            rule=rule, check=check, include=tuple(include),
            exclude=tuple(exclude)))
        return check
    return wrap


def code_rules() -> list[Rule]:
    """Every registered ``RPC0xx`` rule (engine rules included)."""
    return [rule for rule in REGISTRY.values()
            if rule.rule_id.startswith("RPC")]


# -- AST helpers shared by the rule modules ----------------------------------

def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """Child -> parent for every node of ``tree``."""
    return {child: parent
            for parent in ast.walk(tree)
            for child in ast.iter_child_nodes(parent)}


# -- suppression pragmas -----------------------------------------------------

_PRAGMA = re.compile(r"#\s*repro:\s*noqa\b(?P<rest>.*)$")
_RULE_ID = re.compile(r"RPC\d{3}")


@dataclass
class Suppression:
    """One parsed ``# repro: noqa`` pragma."""

    line: int
    rule_ids: tuple[str, ...]
    justification: str
    used: set[str] = field(default_factory=set)

    def covers(self, rule_id: str) -> bool:
        return rule_id in self.rule_ids


def parse_suppressions(lines: Sequence[str]) -> list[Suppression]:
    """All pragmas in ``lines`` (1-based line numbers).

    The source is tokenized so only real comments count: a pragma
    spelled inside a string literal or docstring (documentation, a
    suggestion message, this module's own regex) is not a suppression.
    """
    reader = io.StringIO("\n".join(lines) + "\n").readline
    try:
        tokens = list(tokenize.generate_tokens(reader))
    except (tokenize.TokenError, IndentationError):
        tokens = []
    found: list[Suppression] = []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA.search(token.string)
        if match is None:
            continue
        rest = match.group("rest")
        ids_part, sep, why = rest.partition("--")
        found.append(Suppression(
            line=token.start[0],
            rule_ids=tuple(_RULE_ID.findall(ids_part)),
            justification=why.strip() if sep else ""))
    return found


# -- analysis ----------------------------------------------------------------

@dataclass
class CodeReport:
    """Outcome of one :func:`analyze_paths` run.

    Attributes:
        report: Unsuppressed diagnostics (plus engine findings) — the
            gate; its :attr:`~AnalysisReport.exit_code` is the
            ``selfcheck`` exit code.
        suppressed: Findings silenced by a justified pragma, kept for
            reporting (``N suppressed``) and audits.
        files: Source files scanned.
    """

    report: AnalysisReport
    suppressed: list[Diagnostic]
    files: int


def iter_source_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Python files under ``paths`` (dirs recursed, sorted, no caches)."""
    for path in paths:
        if path.is_dir():
            for found in sorted(path.rglob("*.py")):
                if "__pycache__" not in found.parts:
                    yield found
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(
                f"{path}: not a Python file or directory")


def _selected(rule_id: str, select: Sequence[str] | None) -> bool:
    if select is None:
        return True
    return any(rule_id.startswith(prefix.strip().upper())
               for prefix in select if prefix.strip())


def load_source(path: Path) -> SourceFile:
    """Parse one file (raises ``SyntaxError`` on unparseable source)."""
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    return SourceFile(path=path, display=path.as_posix(), tree=tree,
                      lines=tuple(text.splitlines()))


def analyze_source(source: SourceFile,
                   select: Sequence[str] | None = None,
                   ) -> tuple[list[Diagnostic], list[Diagnostic]]:
    """Run every in-scope checker; apply pragmas.

    Returns ``(unsuppressed, suppressed)`` diagnostics.  Engine
    findings (malformed pragmas, stale suppressions) are themselves
    not suppressible — a pragma cannot vouch for itself.
    """
    suppressions = parse_suppressions(source.lines)
    active = [checker for checker in CODE_CHECKERS
              if checker.applies_to(source.display)
              and _selected(checker.rule.rule_id, select)]
    ran_ids = {checker.rule.rule_id for checker in active}

    findings: list[CodeFinding] = []
    seen: set[tuple[str, int]] = set()
    for checker in active:
        for finding in checker.check(source):
            key = (finding.rule.rule_id, finding.line)
            if key not in seen:
                seen.add(key)
                findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.rule.rule_id))

    unsuppressed: list[Diagnostic] = []
    suppressed: list[Diagnostic] = []
    for finding in findings:
        diagnostic = finding.rule.diagnostic(
            finding.message,
            location=f"{source.display}:{finding.line}",
            suggestion=finding.suggestion)
        covering = next(
            (s for s in suppressions
             if s.line == finding.line
             and s.covers(finding.rule.rule_id)), None)
        if covering is not None:
            covering.used.add(finding.rule.rule_id)
            suppressed.append(diagnostic)
        else:
            unsuppressed.append(diagnostic)

    if _selected(RPC002.rule_id, select):
        for pragma in suppressions:
            if not pragma.rule_ids:
                unsuppressed.append(RPC002.diagnostic(
                    "blanket 'repro: noqa' names no rule IDs",
                    location=f"{source.display}:{pragma.line}",
                    suggestion="name the rules: "
                               "# repro: noqa RPC101 -- why"))
            elif not pragma.justification:
                unsuppressed.append(RPC002.diagnostic(
                    f"suppression of {', '.join(pragma.rule_ids)} "
                    "carries no justification",
                    location=f"{source.display}:{pragma.line}",
                    suggestion="append one: # repro: noqa "
                               f"{pragma.rule_ids[0]} -- why"))
    if _selected(RPC003.rule_id, select):
        for pragma in suppressions:
            for rule_id in pragma.rule_ids:
                if rule_id in pragma.used:
                    continue
                if rule_id not in REGISTRY:
                    unsuppressed.append(RPC003.diagnostic(
                        f"suppressed rule {rule_id} is not registered",
                        location=f"{source.display}:{pragma.line}",
                        suggestion="remove the pragma or fix the "
                                   "rule ID"))
                elif rule_id in ran_ids:
                    unsuppressed.append(RPC003.diagnostic(
                        f"suppressed rule {rule_id} did not fire on "
                        "this line",
                        location=f"{source.display}:{pragma.line}",
                        suggestion="remove the stale pragma"))
    return unsuppressed, suppressed


def analyze_paths(paths: Sequence[Path],
                  select: Sequence[str] | None = None) -> CodeReport:
    """Run the code-contract rules over files and directories.

    Args:
        paths: Files and/or directories to scan.
        select: Optional rule-ID prefixes (``["RPC1", "RPC301"]``);
            ``None`` runs everything.

    Returns:
        A :class:`CodeReport`; never raises on rule violations (an
        unreadable/unparseable file becomes an ``RPC001`` diagnostic).
    """
    report = AnalysisReport()
    suppressed: list[Diagnostic] = []
    files = 0
    for path in iter_source_files(paths):
        files += 1
        try:
            source = load_source(path)
        except SyntaxError as error:
            if _selected(RPC001.rule_id, select):
                report.extend([RPC001.diagnostic(
                    f"syntax error: {error.msg}",
                    location=f"{path.as_posix()}:{error.lineno or 0}",
                    suggestion="fix the syntax; an unparseable file "
                               "cannot be contract-checked")])
            continue
        except (OSError, UnicodeDecodeError) as error:
            if _selected(RPC001.rule_id, select):
                report.extend([RPC001.diagnostic(
                    f"unreadable: {error}",
                    location=f"{path.as_posix()}:0")])
            continue
        file_unsuppressed, file_suppressed = analyze_source(
            source, select=select)
        report.extend(file_unsuppressed)
        suppressed.extend(file_suppressed)
    return CodeReport(report=report, suppressed=suppressed, files=files)
