"""repro.analysis.code — the AST contract linter (``RPC0xx`` rules).

Four rule families over the advisor's own source, each guarding a
promise the docs make and the data-level ``ALR0xx`` rules cannot see:

* **determinism** (``RPC1xx``) — no wall-clock reads, no process-global
  ``random``, no builtin ``hash()``, no unordered set iteration feeding
  ordered consumers, injected clocks inside ``parallel/``;
* **concurrency/resources** (``RPC2xx``) — shared-memory creation pairs
  with the ``_LIVE_SEGMENTS`` ledger, no swallowed exceptions on
  worker/drain paths, no fork-hostile mutable module globals;
* **telemetry contracts** (``RPC3xx``) — every literal
  ``inc``/``set_gauge``/``observe`` resolves to ``METRIC_CATALOG`` with
  the right kind, every ``emit`` to ``EVENT_TYPES``;
* **numeric hygiene** (``RPC4xx``) — epsilon comparisons go through
  ``repro/core/tolerance.py``.

Run it as ``repro-advisor selfcheck [paths...]`` (text/JSON/SARIF,
exit code = max severity) or via :func:`analyze_paths`.  Findings are
suppressed per line with a justified pragma::

    shm.unlink()  # repro: noqa RPC202 -- idempotent unlink race

Every rule is documented with a triggering example in
``docs/static-analysis.md`` and backed by an adversarial fixture in
``tests/fixtures/rpc/`` that CI asserts it still fires on.
"""

from repro.analysis.code.engine import (
    CODE_CHECKERS,
    CodeChecker,
    CodeFinding,
    CodeReport,
    SourceFile,
    analyze_paths,
    analyze_source,
    code_checker,
    code_rules,
    iter_source_files,
    load_source,
    parse_suppressions,
)

# Importing the rule modules registers their rules and checkers.
from repro.analysis.code import concurrency as _concurrency  # noqa: F401
from repro.analysis.code import determinism as _determinism  # noqa: F401
from repro.analysis.code import numeric as _numeric  # noqa: F401
from repro.analysis.code import telemetry as _telemetry  # noqa: F401
from repro.analysis.code.telemetry import (
    count_telemetry_sites,
    telemetry_sites,
)

__all__ = [
    "CODE_CHECKERS",
    "CodeChecker",
    "CodeFinding",
    "CodeReport",
    "SourceFile",
    "analyze_paths",
    "analyze_source",
    "code_checker",
    "code_rules",
    "count_telemetry_sites",
    "iter_source_files",
    "load_source",
    "parse_suppressions",
    "telemetry_sites",
]
