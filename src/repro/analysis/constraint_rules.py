"""Constraint rules (ALR010–ALR015): Section-2.3 constraint feasibility.

The search treats constraints as hard filters, so an unsatisfiable
constraint set used to surface only deep inside TS-GREEDY as an opaque
:class:`~repro.errors.ConstraintError` (or worse, as an exhaustive
search that silently finds nothing).  These rules decide feasibility
*statically*: contradictory co-location/availability combinations,
requirements no disk in the farm can satisfy, movement budgets smaller
than the movement the other constraints force, and constraints naming
objects the database does not contain.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.analysis.diagnostics import Diagnostic, Severity, register
from repro.core.constraints import ConstraintSet
from repro.core.tolerance import EPS_CAPACITY, EPS_ZERO
from repro.storage.disk import DiskFarm

ALR010 = register(
    "ALR010", Severity.ERROR, "constraints",
    "Constraint references an object not in the database")
ALR011 = register(
    "ALR011", Severity.ERROR, "constraints",
    "Co-location group has contradictory availability requirements")
ALR012 = register(
    "ALR012", Severity.ERROR, "constraints",
    "No disk in the farm satisfies an availability requirement")
ALR013 = register(
    "ALR013", Severity.INFO, "constraints",
    "Redundant Co-Located pair (already implied transitively)")
ALR014 = register(
    "ALR014", Severity.ERROR, "constraints",
    "Data-movement budget is infeasible for the constraint set")
ALR015 = register(
    "ALR015", Severity.ERROR, "constraints",
    "Constraint set is self-contradictory and could not be built")


def _group_label(group: frozenset[str]) -> str:
    return "{" + ", ".join(sorted(group)) + "}"


def check_constraints(constraints: ConstraintSet,
                      farm: DiskFarm,
                      db_objects: Iterable[str],
                      ) -> Iterator[Diagnostic]:
    """Run every constraint rule over a constructed constraint set.

    Args:
        constraints: The Section-2.3 constraint bundle.
        farm: Disk farm the layout will be searched over.
        db_objects: Names of every layout object in the catalog.
    """
    known = set(db_objects)

    # ALR010: references to unknown objects.
    for pair in constraints.co_located:
        for name in (pair.a, pair.b):
            if name not in known:
                yield ALR010.diagnostic(
                    f"Co-Located({pair.a}, {pair.b}) references unknown "
                    f"object {name!r}",
                    location=f"constraint:CoLocated({pair.a}, {pair.b})",
                    suggestion="fix the object name or drop the "
                               "constraint")
    for req in constraints.availability:
        if req.obj not in known:
            yield ALR010.diagnostic(
                f"Avail-Requirement({req.obj}, {req.level}) references "
                f"unknown object {req.obj!r}",
                location=f"constraint:AvailRequirement({req.obj})",
                suggestion="fix the object name or drop the constraint")
    movement = constraints.movement
    if movement is not None:
        baseline_extra = sorted(
            set(movement.baseline.object_names) - known)
        baseline_missing = sorted(
            known - set(movement.baseline.object_names))
        for name in baseline_extra + baseline_missing:
            yield ALR010.diagnostic(
                f"Max-Data-Movement baseline layout and catalog "
                f"disagree on object {name!r}",
                location="constraint:MaxDataMovement",
                suggestion="regenerate the baseline layout from the "
                           "current catalog")

    # ALR011/ALR012: availability feasibility per co-location group.
    avail_by_obj = {req.obj: req for req in constraints.availability}
    seen_groups: set[frozenset[str]] = set()
    for obj in sorted(set(avail_by_obj) & known):
        group = constraints.group_of(obj)
        if group in seen_groups:
            continue
        seen_groups.add(group)
        required = {name: avail_by_obj[name].level
                    for name in sorted(group) if name in avail_by_obj}
        levels = sorted({level.value for level in required.values()})
        if len(levels) > 1:
            detail = ", ".join(f"{name} requires {level}"
                               for name, level in required.items())
            yield ALR011.diagnostic(
                f"co-location group {_group_label(group)} is "
                f"contradictory: {detail}; a disk has exactly one "
                f"availability level, so no disk set satisfies all "
                f"members",
                location=f"constraint:group{_group_label(group)}",
                suggestion="drop one of the conflicting constraints or "
                           "split the co-location group")
            continue
        allowed = set(range(len(farm)))
        for req in required.values():
            allowed &= {j for j, d in enumerate(farm)
                        if d.availability is req}
        if not allowed:
            level = levels[0]
            yield ALR012.diagnostic(
                f"no disk in the farm has availability {level!r}, "
                f"required by {_group_label(group)}",
                location=f"constraint:group{_group_label(group)}",
                suggestion=f"add a {level} disk to the farm or relax "
                           f"the requirement")

    # ALR013: redundant co-location edges (duplicates / cycle closers).
    parent: dict[str, str] = {}

    def find(x: str) -> str:
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for pair in constraints.co_located:
        root_a, root_b = find(pair.a), find(pair.b)
        if root_a == root_b:
            yield ALR013.diagnostic(
                f"Co-Located({pair.a}, {pair.b}) is already implied by "
                f"the transitive closure of the preceding pairs",
                location=f"constraint:CoLocated({pair.a}, {pair.b})",
                suggestion="drop the redundant pair")
        else:
            parent[root_a] = root_b

    # ALR014: movement-budget feasibility.
    if movement is not None:
        yield from _check_movement(constraints, farm, known)


def _check_movement(constraints: ConstraintSet, farm: DiskFarm,
                    known: set[str]) -> Iterator[Diagnostic]:
    """ALR014: can any constraint-satisfying layout fit the budget?"""
    movement = constraints.movement
    assert movement is not None
    baseline = movement.baseline
    budget = movement.max_blocks
    if budget < 0:
        yield ALR014.diagnostic(
            f"data-movement budget is negative ({budget:.0f} blocks)",
            location="constraint:MaxDataMovement",
            suggestion="use a budget >= 0")
        return
    in_baseline = set(baseline.object_names)

    # Blocks the availability requirements force off their current
    # disks: a sound lower bound on mandatory movement.
    forced = 0.0
    for req in constraints.availability:
        if req.obj not in in_baseline:
            continue
        allowed = set(req.allowed_disks(farm))
        row = baseline.fractions_of(req.obj)
        stranded = sum(f for j, f in enumerate(row)
                       if j not in allowed and f > EPS_ZERO)
        forced += stranded * baseline.size_of(req.obj)
    if forced > budget + EPS_CAPACITY:
        yield ALR014.diagnostic(
            f"availability requirements force moving at least "
            f"{forced:.0f} blocks off disallowed disks, but the budget "
            f"is {budget:.0f} blocks",
            location="constraint:MaxDataMovement",
            suggestion=f"raise the budget to at least {forced:.0f} "
                       f"blocks or relax the availability requirements")
        return

    # A zero budget pins the layout to the baseline; if the baseline
    # itself violates a co-location pair, nothing feasible exists.
    mismatched = [
        pair for pair in constraints.co_located
        if pair.a in in_baseline and pair.b in in_baseline
        and baseline.disks_of(pair.a) != baseline.disks_of(pair.b)]
    if budget <= EPS_CAPACITY:
        if mismatched:
            pairs = ", ".join(f"Co-Located({p.a}, {p.b})"
                              for p in mismatched)
            yield ALR014.diagnostic(
                f"budget of 0 blocks pins the layout to the baseline, "
                f"but the baseline violates {pairs}; no layout can "
                f"satisfy both",
                location="constraint:MaxDataMovement",
                suggestion="raise the budget or drop the co-location "
                           "constraint(s)")
        else:
            yield ALR014.diagnostic(
                "budget of 0 blocks pins the layout to the baseline; "
                "the advisor can only re-confirm the current layout",
                location="constraint:MaxDataMovement",
                severity=Severity.WARNING,
                suggestion="raise the budget to let the advisor "
                           "propose changes")
