"""repro.analysis — rule-based static diagnostics for advisor inputs.

A lint pass for the paper's declarative inputs: before the search runs
(and after it returns), every invariant the pipeline silently assumes —
fraction rows summing to 1, satisfiable Section-2.3 constraints, plans
that decompose, access-graph edges backed by real subplans — is checked
by a registered rule with a stable ``ALR0xx`` ID, a severity, a located
message and a suggested fix.

Three entry points (see :mod:`repro.analysis.engine`):

* :func:`analyze_inputs` — ``repro-advisor lint``'s engine; reports
  everything, raises on nothing;
* :func:`preflight` — the advisor's gate; raises
  :class:`~repro.errors.AnalysisError` on error-level diagnostics;
* :func:`audit_recommendation` — post-search audit of a finished
  layout against the workload's co-access structure.

Every rule is documented with a minimal triggering example in
``docs/static-analysis.md``.

A second rule set lints the advisor's *source* rather than its inputs:
:mod:`repro.analysis.code` (``RPC0xx`` — determinism, concurrency,
telemetry-contract and numeric-hygiene rules over the AST), run as
``repro-advisor selfcheck``.  Both rule sets share the
Rule/Diagnostic/AnalysisReport primitives and both render to SARIF via
:mod:`repro.analysis.sarif`.
"""

from repro.analysis.diagnostics import (
    REGISTRY,
    AnalysisReport,
    Diagnostic,
    Rule,
    Severity,
    register,
    rules_by_category,
)
from repro.analysis.engine import (
    analyze_inputs,
    audit_journal,
    audit_migration,
    audit_recommendation,
    constraint_construction_diagnostic,
    preflight,
)
from repro.analysis.layout_rules import check_layout
from repro.analysis.constraint_rules import check_constraints
from repro.analysis.workload_rules import check_workload
from repro.analysis.audit_rules import (
    check_journal,
    check_migration,
    check_recommendation,
    check_rollback,
)
from repro.analysis.code import CodeReport, analyze_paths, code_rules
from repro.analysis.sarif import to_sarif, validate_sarif

__all__ = [
    "REGISTRY",
    "AnalysisReport",
    "Diagnostic",
    "Rule",
    "Severity",
    "register",
    "rules_by_category",
    "analyze_inputs",
    "audit_journal",
    "audit_migration",
    "audit_recommendation",
    "constraint_construction_diagnostic",
    "preflight",
    "check_layout",
    "check_constraints",
    "check_workload",
    "check_journal",
    "check_migration",
    "check_recommendation",
    "check_rollback",
    "CodeReport",
    "analyze_paths",
    "code_rules",
    "to_sarif",
    "validate_sarif",
]
