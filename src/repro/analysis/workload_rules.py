"""Plan/workload rules (ALR020–ALR024): analyzed-workload sanity.

The decomposition into non-blocking subplans (Section 4.2) and the
access graph built from it (Figure 6) both assume well-formed inputs: a
plan is a finite operator tree, every co-access edge is witnessed by a
subplan, and statements carry meaningful weights.  Hand-built plans and
synthetic workloads (the concurrency extension, test fixtures) can break
each of those; these rules catch it before the search optimizes a graph
that doesn't describe the workload.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.diagnostics import Diagnostic, Severity, register
from repro.catalog.schema import Database
from repro.workload.access import AnalyzedWorkload
from repro.workload.access_graph import AccessGraph

ALR020 = register(
    "ALR020", Severity.ERROR, "workload",
    "Execution plan is not a finite operator tree (cycle or shared "
    "subtree)")
ALR021 = register(
    "ALR021", Severity.WARNING, "workload",
    "Access-graph edge not backed by any non-blocking subplan")
ALR022 = register(
    "ALR022", Severity.WARNING, "workload",
    "Statement has a non-positive effective weight")
ALR023 = register(
    "ALR023", Severity.INFO, "workload",
    "Catalog object is never accessed by the workload")
ALR024 = register(
    "ALR024", Severity.WARNING, "workload",
    "Statement's plan accesses no stored objects")


def _statement_name(analyzed: AnalyzedWorkload, index: int) -> str:
    stmt = analyzed.statements[index]
    return stmt.statement.name or f"stmt{index + 1}"


def _plan_shape_problem(plan) -> str | None:
    """``"cycle"`` / ``"shared"`` / ``None`` for an operator graph.

    Iterative DFS so a cyclic plan cannot blow the recursion limit
    (plan cycles would otherwise hang :func:`repro.workload.access
    .decompose` itself).
    """
    WHITE, GREY, BLACK = 0, 1, 2
    state: dict[int, int] = {}
    shared = False
    stack = [(plan, False)]
    while stack:
        node, leaving = stack.pop()
        key = id(node)
        if leaving:
            state[key] = BLACK
            continue
        mark = state.get(key, WHITE)
        if mark == GREY:
            return "cycle"
        if mark == BLACK:
            shared = True
            continue
        state[key] = GREY
        stack.append((node, True))
        for child in node.children:
            stack.append((child, False))
    return "shared" if shared else None


def check_workload(analyzed: AnalyzedWorkload,
                   db: Database | None = None,
                   graph: AccessGraph | None = None,
                   ) -> Iterator[Diagnostic]:
    """Run every plan/workload rule over an analyzed workload.

    Args:
        analyzed: The planned-and-decomposed workload.
        db: Optional catalog; enables the never-accessed-object rule.
        graph: Optional access graph to audit against the workload's
            subplans (when omitted, edge-witness checking is skipped —
            a graph built by :func:`build_access_graph` from the same
            workload is consistent by construction).
    """
    accessed: set[str] = set()
    witnessed: set[tuple[str, str]] = set()
    for index, item in enumerate(analyzed):
        name = _statement_name(analyzed, index)

        # ALR020: plan shape.
        problem = _plan_shape_problem(item.plan)
        if problem == "cycle":
            yield ALR020.diagnostic(
                f"statement {name}'s plan contains an operator cycle; "
                f"subplan decomposition would not terminate",
                location=f"statement:{name}",
                suggestion="plans must be trees; rebuild the plan "
                           "without back-edges")
        elif problem == "shared":
            yield ALR020.diagnostic(
                f"statement {name}'s plan shares an operator subtree "
                f"between parents; its accesses are counted once per "
                f"parent",
                location=f"statement:{name}",
                severity=Severity.WARNING,
                suggestion="duplicate the shared subtree (or plan with "
                           "a spool) so each access is attributed once")
            # Shared subtrees still decompose; fall through to the
            # remaining per-statement rules.
        if problem == "cycle":
            continue

        # ALR022: non-positive effective weights (only synthetic
        # entries can carry them; real Statement weights are > 0).
        if item.weight <= 0:
            yield ALR022.diagnostic(
                f"statement {name} has effective weight {item.weight:g}"
                f"; it contributes nothing (or negatively) to every "
                f"cost and graph weight",
                location=f"statement:{name}",
                suggestion="drop the statement or give it a positive "
                           "weight")

        # ALR024: statements that touch no stored object.
        objects = {obj for subplan in item.subplans
                   for obj in subplan.objects()}
        if not objects:
            yield ALR024.diagnostic(
                f"statement {name}'s plan accesses no stored objects; "
                f"it cannot influence the layout",
                location=f"statement:{name}",
                suggestion="check that the statement references "
                           "catalog tables")
        accessed |= objects
        for subplan in item.subplans:
            names = sorted(subplan.objects())
            for i, u in enumerate(names):
                for v in names[i + 1:]:
                    witnessed.add((u, v))

    # ALR021: graph edges with no witnessing subplan.
    if graph is not None:
        for (u, v), weight in sorted(graph.edges.items()):
            if (u, v) not in witnessed:
                yield ALR021.diagnostic(
                    f"access-graph edge {u} -- {v} (weight {weight:.0f})"
                    f" is not backed by any non-blocking subplan of the "
                    f"workload",
                    location=f"graph:{u}--{v}",
                    suggestion="rebuild the graph from the analyzed "
                               "workload, or remove the stale edge")

    # ALR023: catalog objects the workload never touches.
    if db is not None:
        for obj in db.objects():
            if obj.name not in accessed:
                yield ALR023.diagnostic(
                    f"object {obj.name!r} ({obj.size_blocks} blocks) is "
                    f"never accessed by any statement; it will be "
                    f"placed without workload evidence",
                    location=f"object:{obj.name}",
                    suggestion="drop unused physical structures from "
                               "the catalog, or extend the workload")
