"""Layout rules (ALR001–ALR006): Definition-2 validity and layout smells.

These rules re-check the paper's Definition 2 — non-negative fractions,
full allocation, capacity — *without* constructing a
:class:`~repro.core.layout.Layout` (whose constructor raises on the
first violation), so a single lint pass can report every problem in a
malformed fraction matrix at once.  The full-allocation check is shared
with the materializer via
:func:`repro.storage.allocation.validate_fractions`, so the analyzer and
the storage engine can never disagree about what is valid.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.analysis.diagnostics import Diagnostic, Severity, register
from repro.core.tolerance import EPS_CAPACITY, EPS_ZERO
from repro.errors import LayoutError
from repro.storage.allocation import validate_fractions
from repro.storage.disk import DiskFarm

ALR001 = register(
    "ALR001", Severity.ERROR, "layout",
    "Object's fractions do not sum to 1 (not fully allocated)")
ALR002 = register(
    "ALR002", Severity.ERROR, "layout",
    "Object has a negative disk fraction")
ALR003 = register(
    "ALR003", Severity.ERROR, "layout",
    "Disk over capacity under this layout")
ALR004 = register(
    "ALR004", Severity.WARNING, "layout",
    "Disk holds no data under this layout (idle spindle)")
ALR005 = register(
    "ALR005", Severity.WARNING, "layout",
    "Object striped over disks with mixed availability levels")
ALR006 = register(
    "ALR006", Severity.ERROR, "layout",
    "Layout row set does not match the catalog's object set")


def check_layout(farm: DiskFarm,
                 object_sizes: Mapping[str, int],
                 fractions: Mapping[str, Sequence[float]],
                 catalog_objects: Sequence[str] | None = None,
                 ) -> Iterator[Diagnostic]:
    """Run every layout rule over a raw fraction matrix.

    Args:
        farm: The disk farm the fractions refer to.
        object_sizes: Object name -> size in blocks.
        fractions: Object name -> per-disk fraction row.
        catalog_objects: When given, the catalog's object names; rows
            missing from or extra to this set trigger ALR006.
    """
    # ALR006: row set vs catalog object set.
    if catalog_objects is not None:
        catalog = set(catalog_objects)
        missing = sorted(catalog - set(fractions))
        extra = sorted(set(fractions) - catalog)
        for name in missing:
            yield ALR006.diagnostic(
                f"catalog object {name!r} has no fraction row",
                location=f"layout:{name}",
                suggestion="add a row for the object or drop it from "
                           "the catalog")
        for name in extra:
            yield ALR006.diagnostic(
                f"fraction row for unknown object {name!r}",
                location=f"layout:{name}",
                suggestion="remove the row or add the object to the "
                           "catalog")

    # ALR001/ALR002: per-row invariants, via the shared storage check.
    valid_rows: dict[str, Sequence[float]] = {}
    for name in sorted(fractions):
        row = fractions[name]
        if any(f < -EPS_ZERO for f in row):
            yield ALR002.diagnostic(
                f"object {name!r} has negative fraction(s) "
                f"{[f for f in row if f < -EPS_ZERO]}",
                location=f"layout:{name}",
                suggestion="fractions are shares of the object; clamp "
                           "to [0, 1]")
            continue
        try:
            validate_fractions(row, obj=name, n_disks=len(farm))
        except LayoutError as bad:
            yield ALR001.diagnostic(
                str(bad), location=f"layout:{name}",
                suggestion="rescale the row so the fractions sum to "
                           "exactly 1")
            continue
        valid_rows[name] = row

    # ALR003/ALR004: per-disk roll-ups over the valid rows.
    for j, disk in enumerate(farm):
        used = sum(float(object_sizes.get(name, 0)) * row[j]
                   for name, row in valid_rows.items())
        if used > disk.capacity_blocks + EPS_CAPACITY:
            yield ALR003.diagnostic(
                f"disk {disk.name} needs {used:.0f} blocks but has "
                f"capacity {disk.capacity_blocks}",
                location=f"disk:{disk.name}",
                suggestion="spread the largest objects over more disks "
                           "or add capacity")
        elif used <= EPS_ZERO and valid_rows:
            yield ALR004.diagnostic(
                f"disk {disk.name} ({disk.capacity_blocks} blocks) "
                f"holds no data",
                location=f"disk:{disk.name}",
                suggestion="an idle spindle adds no bandwidth; stripe "
                           "a hot object onto it or remove it from the "
                           "farm description")

    # ALR005: availability-heterogeneous stripe sets.
    for name, row in valid_rows.items():
        levels = {farm[j].availability
                  for j, f in enumerate(row) if f > EPS_ZERO}
        if len(levels) > 1:
            names = ", ".join(sorted(level.value for level in levels))
            yield ALR005.diagnostic(
                f"object {name!r} is striped over disks with mixed "
                f"availability levels ({names}); its effective "
                f"availability is the weakest level",
                location=f"layout:{name}",
                suggestion="restrict the object to disks of one "
                           "availability level, or add an "
                           "Avail-Requirement constraint")
