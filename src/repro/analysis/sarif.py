"""SARIF 2.1.0 rendering for analysis reports.

Both linters — ``repro-advisor lint`` (data-level ``ALR0xx`` rules) and
``repro-advisor selfcheck`` (code-level ``RPC0xx`` rules) — can emit
their findings as a SARIF log (``--format sarif``), the interchange
format code-scanning UIs ingest.  CI uploads the ``selfcheck`` log as
an artifact on every run.

Location mapping: code diagnostics carry ``path.py:line`` locations and
become SARIF *physical* locations (file + region); data diagnostics
carry ``kind:name`` locations (``"constraint:CoLocated(a, b)"``) and
become *logical* locations, which SARIF defines for exactly this
"not-a-file" case.

:func:`validate_sarif` is a dependency-free shape validator (the
container has no ``jsonschema``): it checks the structural subset of
the SARIF schema this module produces — required keys, value types,
level vocabulary, rule-index consistency — and is what the round-trip
test and CI assert against.
"""

from __future__ import annotations

import re
from typing import Any

from repro.analysis.diagnostics import (
    REGISTRY,
    AnalysisReport,
    Diagnostic,
)

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

#: Diagnostic severity -> SARIF result level.
_LEVELS = {"info": "note", "warning": "warning", "error": "error"}

#: ``path.py:42`` locations become physical locations.
_FILE_LINE = re.compile(r"^(?P<uri>[^:]+\.py):(?P<line>\d+)$")


def _location(diagnostic: Diagnostic) -> dict[str, Any]:
    match = _FILE_LINE.match(diagnostic.location)
    if match is not None:
        return {"physicalLocation": {
            "artifactLocation": {"uri": match.group("uri")},
            "region": {"startLine": int(match.group("line"))},
        }}
    return {"logicalLocations": [
        {"fullyQualifiedName": diagnostic.location or "input"}]}


def to_sarif(report: AnalysisReport,
             tool_name: str = "repro-advisor") -> dict[str, Any]:
    """One SARIF run for ``report``.

    The driver's rule table lists exactly the rules that produced
    results (titles and default levels from the registry), and each
    result carries ``ruleIndex`` into it, as scanners expect.
    """
    fired = sorted({d.rule_id for d in report.diagnostics})
    rule_index = {rule_id: i for i, rule_id in enumerate(fired)}
    rules = []
    for rule_id in fired:
        registered = REGISTRY.get(rule_id)
        rules.append({
            "id": rule_id,
            "shortDescription": {
                "text": registered.title if registered else rule_id},
            "defaultConfiguration": {
                "level": _LEVELS[registered.severity.value]
                if registered else "warning"},
        })
    results = []
    for diagnostic in report.diagnostics:
        message = diagnostic.message
        if diagnostic.suggestion:
            message = f"{message} (fix: {diagnostic.suggestion})"
        results.append({
            "ruleId": diagnostic.rule_id,
            "ruleIndex": rule_index[diagnostic.rule_id],
            "level": _LEVELS[diagnostic.severity.value],
            "message": {"text": message},
            "locations": [_location(diagnostic)],
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": tool_name,
                "informationUri":
                    "https://example.invalid/repro/docs/"
                    "static-analysis.md",
                "rules": rules,
            }},
            "results": results,
        }],
    }


def _expect(problems: list[str], condition: bool, where: str,
            what: str) -> bool:
    if not condition:
        problems.append(f"{where}: {what}")
    return condition


def validate_sarif(document: Any) -> list[str]:
    """Shape-validate a SARIF log; returns problems (empty = valid)."""
    problems: list[str] = []
    if not _expect(problems, isinstance(document, dict), "$",
                   "log must be an object"):
        return problems
    _expect(problems, document.get("version") == SARIF_VERSION,
            "$.version", f"must be {SARIF_VERSION!r}")
    _expect(problems, isinstance(document.get("$schema"), str),
            "$.$schema", "must be a string URI")
    runs = document.get("runs")
    if not _expect(problems, isinstance(runs, list) and runs,
                   "$.runs", "must be a non-empty array"):
        return problems
    for run_index, run in enumerate(runs):
        where = f"$.runs[{run_index}]"
        if not _expect(problems, isinstance(run, dict), where,
                       "run must be an object"):
            continue
        driver = run.get("tool", {}).get("driver") \
            if isinstance(run.get("tool"), dict) else None
        if _expect(problems, isinstance(driver, dict),
                   f"{where}.tool.driver", "must be an object"):
            _expect(problems,
                    isinstance(driver.get("name"), str)
                    and driver["name"],
                    f"{where}.tool.driver.name",
                    "must be a non-empty string")
            rules = driver.get("rules", [])
            _expect(problems, isinstance(rules, list),
                    f"{where}.tool.driver.rules", "must be an array")
        else:
            rules = []
        rule_ids = [rule.get("id") for rule in rules
                    if isinstance(rule, dict)]
        results = run.get("results")
        if not _expect(problems, isinstance(results, list),
                       f"{where}.results", "must be an array"):
            continue
        for result_index, result in enumerate(results):
            rwhere = f"{where}.results[{result_index}]"
            if not _expect(problems, isinstance(result, dict), rwhere,
                           "result must be an object"):
                continue
            _expect(problems,
                    isinstance(result.get("ruleId"), str),
                    f"{rwhere}.ruleId", "must be a string")
            _expect(problems,
                    result.get("level") in ("note", "warning", "error"),
                    f"{rwhere}.level",
                    "must be note/warning/error")
            message = result.get("message")
            _expect(problems,
                    isinstance(message, dict)
                    and isinstance(message.get("text"), str),
                    f"{rwhere}.message.text", "must be a string")
            index = result.get("ruleIndex")
            if index is not None:
                _expect(problems,
                        isinstance(index, int)
                        and 0 <= index < len(rule_ids)
                        and rule_ids[index] == result.get("ruleId"),
                        f"{rwhere}.ruleIndex",
                        "must index the matching driver rule")
            locations = result.get("locations")
            if not _expect(problems,
                           isinstance(locations, list) and locations,
                           f"{rwhere}.locations",
                           "must be a non-empty array"):
                continue
            location = locations[0]
            physical = location.get("physicalLocation") \
                if isinstance(location, dict) else None
            logical = location.get("logicalLocations") \
                if isinstance(location, dict) else None
            if physical is not None:
                artifact = physical.get("artifactLocation", {}) \
                    if isinstance(physical, dict) else {}
                region = physical.get("region", {}) \
                    if isinstance(physical, dict) else {}
                _expect(problems,
                        isinstance(artifact, dict)
                        and isinstance(artifact.get("uri"), str),
                        f"{rwhere}..artifactLocation.uri",
                        "must be a string")
                _expect(problems,
                        isinstance(region, dict)
                        and isinstance(region.get("startLine"), int)
                        and region["startLine"] >= 1,
                        f"{rwhere}..region.startLine",
                        "must be a positive integer")
            else:
                _expect(problems,
                        isinstance(logical, list) and logical
                        and isinstance(logical[0], dict)
                        and isinstance(
                            logical[0].get("fullyQualifiedName"), str),
                        f"{rwhere}.locations[0]",
                        "needs physicalLocation or logicalLocations")
    return problems


__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "to_sarif",
           "validate_sarif"]
