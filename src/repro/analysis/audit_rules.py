"""Recommendation-audit rules (ALR030–ALR031): post-search smells.

A layout can be perfectly *valid* and still be a bad idea.  The Fig.-7
cost model charges ``k * SEEK_j * min-stream`` whenever ``k > 1``
co-accessed streams share a disk — the seek blowup that made the paper
separate `lineitem` from `orders` — and it credits parallelism only to
disks that actually carry load.  These rules re-read a finished
recommendation (or any layout) against the workload's access graph and
flag placements the cost model itself says are expensive.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.diagnostics import Diagnostic, Severity, register
from repro.core.layout import Layout
from repro.core.tolerance import EPS_CAPACITY, EPS_FRACTION, EPS_ZERO
from repro.storage.migration import MigrationPlan
from repro.workload.access_graph import AccessGraph

#: An object is "large" on a disk once it exceeds this share of the
#: disk's capacity; seek interleaving between two such objects is no
#: longer noise.
LARGE_OBJECT_CAPACITY_SHARE = 0.05

#: A disk is "hot" when its referenced-block load exceeds this multiple
#: of the farm-wide mean.
HOT_DISK_LOAD_FACTOR = 3.0

ALR030 = register(
    "ALR030", Severity.WARNING, "audit",
    "Co-accessed large objects packed on one disk (seek blowup)")
ALR031 = register(
    "ALR031", Severity.INFO, "audit",
    "Workload load is heavily skewed across disks")
ALR032 = register(
    "ALR032", Severity.ERROR, "audit",
    "Incremental recommendation exceeds its data-movement budget")
ALR033 = register(
    "ALR033", Severity.ERROR, "audit",
    "Migration plan overflows a disk at an intermediate step")
ALR034 = register(
    "ALR034", Severity.ERROR, "audit",
    "Migration journal disagrees with its plan or source layout")
ALR035 = register(
    "ALR035", Severity.ERROR, "audit",
    "Rollback from the journaled state is not capacity-safe")


def check_recommendation(layout: Layout,
                         graph: AccessGraph,
                         ) -> Iterator[Diagnostic]:
    """Audit a layout against the workload's co-access structure.

    Args:
        layout: The recommended (or any candidate) layout.
        graph: The workload's access graph; co-access edges and
            referenced-block node weights drive both rules.
    """
    farm = layout.farm

    # ALR030: k > 1 co-accessed large objects on one disk.
    reported: set[tuple[str, ...]] = set()
    for j, disk in enumerate(farm):
        threshold = LARGE_OBJECT_CAPACITY_SHARE * disk.capacity_blocks
        large_here = [
            name for name in layout.object_names
            if layout.fraction(name, j) > EPS_ZERO
            and layout.size_of(name) * layout.fraction(name, j)
            >= threshold
            and name in graph and graph.node_weight(name) > 0]
        coaccessed = sorted(
            name for name in large_here
            if any(graph.edge_weight(name, other) > 0
                   for other in large_here if other != name))
        if len(coaccessed) > 1 and tuple(coaccessed) not in reported:
            reported.add(tuple(coaccessed))
            disks = sorted(
                {farm[d].name for name in coaccessed
                 for d in layout.disks_of(name)})
            yield ALR030.diagnostic(
                f"{len(coaccessed)} co-accessed large objects "
                f"({', '.join(coaccessed)}) share disk {disk.name}; "
                f"interleaved streams pay k seeks per stripe pass "
                f"(Fig. 7's k>1 seek term)",
                location=f"disk:{disk.name}",
                suggestion="place co-accessed large objects on "
                           "disjoint disk sets "
                           f"(currently spanning {', '.join(disks)})")

    # ALR031: referenced-block load skew across the farm.
    loads = []
    for j in range(len(farm)):
        load = sum(graph.node_weight(name) * layout.fraction(name, j)
                   for name in layout.object_names if name in graph)
        loads.append(load)
    total = sum(loads)
    if total > 0 and len(loads) > 1:
        mean = total / len(loads)
        hottest = max(range(len(loads)), key=lambda j: loads[j])
        if loads[hottest] > HOT_DISK_LOAD_FACTOR * mean:
            yield ALR031.diagnostic(
                f"disk {farm[hottest].name} carries "
                f"{loads[hottest]:.0f} referenced blocks, "
                f"{loads[hottest] / mean:.1f}x the farm mean "
                f"({mean:.0f}); the farm's aggregate bandwidth is "
                f"underused",
                location=f"disk:{farm[hottest].name}",
                suggestion="spread the hottest objects over more "
                           "disks, or check the workload weights")


def check_migration(plan: MigrationPlan, current: Layout,
                    movement_budget: float | None = None,
                    ) -> Iterator[Diagnostic]:
    """Audit an incremental run's migration plan.

    ALR032: the plan's net moved fraction must stay within the Δ
    movement budget the search ran under (plus the shared fraction
    tolerance).  ALR033: replaying the plan's steps against the current
    layout must keep every disk within capacity at every intermediate
    point.  Both firing means the incremental engine has a bug — they
    are the post-search proof that the Section-2.3 guarantees hold.

    Args:
        plan: The migration plan attached to the recommendation.
        current: The layout the data is in now (the replay baseline).
        movement_budget: Δ as a fraction of total blocks; ``None``
            skips the budget check (ALR032).
    """
    if movement_budget is not None \
            and plan.moved_fraction > movement_budget + EPS_FRACTION:
        yield ALR032.diagnostic(
            f"plan moves {plan.moved_fraction:.1%} of the database "
            f"({plan.moved_blocks:.0f} blocks) but the movement budget "
            f"was {movement_budget:.1%}",
            location="migration:budget",
            suggestion="re-run the incremental advisor; this indicates "
                       "a search bug worth reporting")
    farm = current.farm
    used = [current.disk_used_blocks(j) for j in range(len(farm))]
    for index, step in enumerate(plan.steps):
        if used[step.dst] + step.blocks \
                > farm[step.dst].capacity_blocks + EPS_CAPACITY:
            yield ALR033.diagnostic(
                f"step {index + 1} ({step.blocks:.0f} blocks of "
                f"{step.obj} onto {farm[step.dst].name}) overflows the "
                f"disk: {used[step.dst] + step.blocks:.0f} blocks "
                f"needed, {farm[step.dst].capacity_blocks} available",
                location=f"migration:step{index + 1}",
                suggestion="re-run the incremental advisor; the planner "
                           "should have staged this move")
            return
        used[step.dst] += step.blocks
        used[step.src] -= step.blocks


def check_journal(records: list[dict], plan: MigrationPlan | None = None,
                  source: Layout | None = None) -> Iterator[Diagnostic]:
    """ALR034: audit an execution journal against its plan and source.

    Wraps :func:`repro.storage.executor.validate_journal`: structural
    problems (grammar, sequencing, intent/done pairing) and semantic
    ones (digest binding to the plan and source layout, per-step field
    agreement, replayed state digests) each become one finding.

    Args:
        records: Parsed journal records
            (:func:`repro.storage.executor.read_journal` output).
        plan: The plan the journal claims to execute; ``None`` limits
            the audit to structure and internal digests.
        source: The layout the journal's replay starts from.
    """
    from repro.storage.executor import validate_journal
    for problem in validate_journal(records, plan=plan, source=source):
        yield ALR034.diagnostic(
            f"journal inconsistency: {problem}",
            location="migration:journal",
            suggestion="re-check that the journal belongs to this "
                       "plan and source layout; a tampered or mixed-up "
                       "journal must not be resumed")


def check_rollback(records: list[dict], plan: MigrationPlan,
                   source: Layout) -> Iterator[Diagnostic]:
    """ALR035: prove the journaled state can roll back to the source.

    Replays the journal to its proven intermediate state, plans the
    reverse migration back to ``source``, and verifies the reverse plan
    is capacity-safe against the intermediate layout — i.e. a
    ``rollback()`` started now cannot overflow any disk at any step.

    Args:
        records: Parsed journal records.
        plan: The forward plan the journal executes.
        source: The layout rollback must restore.
    """
    from repro.errors import LayoutError, MigrationExecutionError
    from repro.storage.executor import replay_journal
    from repro.storage.migration import plan_migration
    try:
        replay = replay_journal(records, plan=plan, source=source)
    except MigrationExecutionError as bad:
        yield ALR035.diagnostic(
            f"journal cannot be replayed for rollback analysis: {bad}",
            location="migration:journal",
            suggestion="fix the journal/plan/source mismatch first "
                       "(see ALR034)")
        return
    if replay.closed == "complete":
        return
    intermediate = replay.state.to_layout()
    try:
        reverse = plan_migration(intermediate, source)
    except LayoutError as blocked:
        yield ALR035.diagnostic(
            f"no capacity-safe reverse path from the journaled state "
            f"back to the source: {blocked}",
            location="migration:rollback",
            suggestion="free scratch space (or add a staging disk) "
                       "before attempting rollback")
        return
    if not reverse.is_capacity_safe(intermediate):
        yield ALR035.diagnostic(
            "the planned reverse path overflows a disk at an "
            "intermediate step",
            location="migration:rollback",
            suggestion="this is a reverse-planner bug; do not run "
                       "rollback() until it is fixed")
