"""repro.resilience — deadlines, retries and fault injection.

The resilience layer makes every search entry point survive worker
failure, respect a wall-clock budget, and always return the best
layout found so far:

* :class:`Deadline` / :class:`Budget` — wall-clock cutoffs polled by
  the portfolio engine between trajectories and while draining worker
  futures.
* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  deterministic jitter (seeded from the trajectory index, so resilient
  runs stay reproducible).
* :class:`FaultPlan` — deterministic fault injection (kill a worker,
  delay a trajectory, raise in cost evaluation, fail the shared-memory
  attach), enabled via the ``REPRO_FAULTS`` environment variable or the
  CLI ``--faults`` flag; used by the test suite and the chaos CI job.

See ``docs/resilience.md`` for deadline semantics, the degradation
contract and the fault-injection cookbook.
"""

from repro.resilience.faults import ENV_VAR, FAULT_KINDS, FaultPlan
from repro.resilience.policy import Budget, Deadline, RetryPolicy

__all__ = [
    "Budget",
    "Deadline",
    "ENV_VAR",
    "FAULT_KINDS",
    "FaultPlan",
    "RetryPolicy",
]
