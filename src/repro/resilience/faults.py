"""Deterministic fault injection for the search stack.

A :class:`FaultPlan` names the failures to inject into a portfolio run
— kill the worker running trajectory *N*, delay trajectory *M* by *T*
seconds, raise from trajectory *N*'s cost evaluation, or fail the
shared-memory attach — so resilience behavior is testable without
flaky sleeps or real crashes.  Plans are plain frozen dataclasses:
picklable (they ride the process-pool initializer into workers) and
parseable from a compact spec string used by the ``REPRO_FAULTS``
environment variable and the CLI ``--faults`` flag::

    kill_worker=1                 # trajectory 1's process dies hard
    delay=2:0.75                  # trajectory 2 sleeps 0.75s first
    fail_eval=0:2                 # trajectory 0 raises on its first
                                  # 2 attempts (then succeeds)
    fail_shm_attach               # attach_evaluator raises
    kill_worker=1,delay=2:0.5     # faults compose with commas

Migration-executor faults (see ``docs/migration.md``) target a *step
index* of the plan being executed instead of a trajectory::

    fail_step=3                   # step 3's transfer raises on its
                                  # first attempt (then succeeds)
    fail_step=3:0                 # ... on every attempt
    crash_after_intent=2          # die right after step 2's intent
                                  # record hits the journal
    crash_before_done=2           # die after the transfer, before the
                                  # done record is journaled
    stall_step=1:0.5              # step 1's transfer hangs 0.5s
                                  # (exercises the deadline path)

Injection points call the ``fire_*`` hooks below.  ``fire_kill`` only
hard-exits when running inside a *worker* process
(``multiprocessing.parent_process()`` is not ``None``); in the parent
— e.g. during the serial fallback that re-runs a crashed trajectory —
it raises :class:`~repro.errors.WorkerCrash` instead, so an injected
crash stays a crash across retries and the run degrades honestly.

Everything here is deterministic: the same plan fires the same faults
at the same points on every run.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from dataclasses import dataclass, replace
from typing import Mapping

from repro.errors import (
    FaultSpecError,
    MigrationInterrupted,
    SharedStateError,
    WorkerCrash,
)

logger = logging.getLogger("repro.resilience.faults")

#: Environment variable holding the active fault spec.
ENV_VAR = "REPRO_FAULTS"

#: Process-exit code used by an injected worker kill (diagnosable in
#: logs; any non-zero code breaks the pool identically).
KILL_EXIT_CODE = 86

#: Every fault kind :meth:`FaultPlan.from_spec` accepts; unknown-kind
#: errors list exactly this tuple.
FAULT_KINDS = ("kill_worker", "delay", "fail_eval", "fail_shm_attach",
               "fail_step", "crash_after_intent", "crash_before_done",
               "stall_step")


@dataclass(frozen=True)
class FaultPlan:
    """Which failures to inject, keyed by trajectory index.

    Attributes:
        kill_worker: Trajectory whose executing process dies hard
            (``os._exit``) — in the parent process the same fault
            raises :class:`WorkerCrash` instead of exiting.
        delay_trajectory: Trajectory that sleeps before searching.
        delay_s: Sleep length for ``delay_trajectory``.
        fail_eval: Trajectory whose cost evaluation raises
            :class:`WorkerCrash`.
        fail_eval_times: How many attempts of ``fail_eval`` fail before
            it succeeds; ``0`` means every attempt fails.
        fail_shm_attach: Make :func:`repro.parallel.shared.attach_evaluator`
            raise :class:`SharedStateError` (exercises the
            broken-pool -> serial-fallback path).
        fail_step: Migration step whose transfer raises
            :class:`WorkerCrash` (a transient, retryable failure).
        fail_step_times: How many attempts of ``fail_step`` fail before
            it succeeds; ``0`` means every attempt fails.
        crash_after_intent: Migration step at which execution dies
            immediately after the intent record is journaled (raises
            :class:`~repro.errors.MigrationInterrupted`).
        crash_before_done: Migration step at which execution dies after
            the transfer but before the done record is journaled.
        stall_step: Migration step whose transfer sleeps ``stall_s``
            first (exercises the executor's deadline path).
        stall_s: Sleep length for ``stall_step``.
    """

    kill_worker: int | None = None
    delay_trajectory: int | None = None
    delay_s: float = 0.0
    fail_eval: int | None = None
    fail_eval_times: int = 0
    fail_shm_attach: bool = False
    fail_step: int | None = None
    fail_step_times: int = 1
    crash_after_intent: int | None = None
    crash_before_done: int | None = None
    stall_step: int | None = None
    stall_s: float = 0.0

    @property
    def empty(self) -> bool:
        return (self.kill_worker is None
                and self.delay_trajectory is None
                and self.fail_eval is None
                and not self.fail_shm_attach
                and self.fail_step is None
                and self.crash_after_intent is None
                and self.crash_before_done is None
                and self.stall_step is None)

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a compact fault spec (see the module docstring)."""
        plan = cls()
        for raw in spec.split(","):
            entry = raw.strip()
            if not entry:
                continue
            name, _, value = entry.partition("=")
            name = name.strip()
            value = value.strip()
            try:
                if name == "kill_worker":
                    plan = replace(plan, kill_worker=int(value))
                elif name == "delay":
                    index, _, seconds = value.partition(":")
                    plan = replace(plan, delay_trajectory=int(index),
                                   delay_s=float(seconds or 1.0))
                elif name == "fail_eval":
                    index, _, times = value.partition(":")
                    plan = replace(plan, fail_eval=int(index),
                                   fail_eval_times=int(times or 0))
                elif name == "fail_shm_attach":
                    plan = replace(
                        plan,
                        fail_shm_attach=value.lower()
                        not in ("0", "false", "no") if value else True)
                elif name == "fail_step":
                    index, _, times = value.partition(":")
                    plan = replace(plan, fail_step=int(index),
                                   fail_step_times=int(times)
                                   if times else 1)
                elif name == "crash_after_intent":
                    plan = replace(plan, crash_after_intent=int(value))
                elif name == "crash_before_done":
                    plan = replace(plan, crash_before_done=int(value))
                elif name == "stall_step":
                    index, _, seconds = value.partition(":")
                    plan = replace(plan, stall_step=int(index),
                                   stall_s=float(seconds or 1.0))
                else:
                    raise FaultSpecError(
                        f"unknown fault {name!r} in spec {spec!r}; "
                        f"valid kinds: {', '.join(FAULT_KINDS)}")
            except (ValueError, TypeError) as bad:
                raise FaultSpecError(
                    f"malformed fault entry {entry!r} in spec "
                    f"{spec!r}: {bad}") from None
        return plan

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None,
                 ) -> "FaultPlan | None":
        """The plan named by ``REPRO_FAULTS``, or ``None`` when unset."""
        spec = (environ if environ is not None else os.environ).get(
            ENV_VAR, "").strip()
        if not spec:
            return None
        plan = cls.from_spec(spec)
        return None if plan.empty else plan


# -- process-global plan (needed where no context object reaches) ------------

_ACTIVE: FaultPlan | None = None
#: Per-process count of fail_eval firings (supports fail_eval_times).
_EVAL_FIRED: dict[int, int] = {}


def install(plan: FaultPlan | None) -> None:
    """Set the process-global plan (used by the shm-attach hook)."""
    global _ACTIVE
    _ACTIVE = None if plan is None or plan.empty else plan
    _EVAL_FIRED.clear()


def active() -> FaultPlan | None:
    """The installed plan, or ``None``."""
    return _ACTIVE


def _in_worker_process() -> bool:
    return multiprocessing.parent_process() is not None


# -- injection hooks ----------------------------------------------------------


def fire_kill(plan: FaultPlan | None, index: int) -> None:
    """Kill the current worker if the plan targets trajectory ``index``.

    In a worker process this hard-exits (no cleanup — exactly what a
    SIGKILLed or OOM-killed worker looks like to the parent pool).  In
    the parent it raises :class:`WorkerCrash`, so serial fallback
    attempts of the same doomed trajectory keep failing and the run
    degrades instead of silently un-crashing.
    """
    if plan is None or plan.kill_worker != index:
        return
    if _in_worker_process():
        logger.warning("fault injection: killing worker running "
                       "trajectory %d", index)
        os._exit(KILL_EXIT_CODE)
    raise WorkerCrash(
        f"fault injection: trajectory {index} worker killed")


def fire_delay(plan: FaultPlan | None, index: int,
               sleep=time.sleep) -> None:
    """Sleep if the plan delays trajectory ``index``."""
    if plan is None or plan.delay_trajectory != index:
        return
    logger.warning("fault injection: delaying trajectory %d by %.3fs",
                   index, plan.delay_s)
    sleep(plan.delay_s)


def fire_eval(plan: FaultPlan | None, index: int) -> None:
    """Raise from trajectory ``index``'s cost evaluation.

    Honors ``fail_eval_times``: with a positive limit the fault fires
    only on the first N attempts *in this process*, letting retry
    policies demonstrate recovery deterministically.
    """
    if plan is None or plan.fail_eval != index:
        return
    fired = _EVAL_FIRED.get(index, 0)
    if plan.fail_eval_times and fired >= plan.fail_eval_times:
        return
    _EVAL_FIRED[index] = fired + 1
    raise WorkerCrash(
        f"fault injection: cost evaluation failed for trajectory "
        f"{index} (attempt {fired + 1})")


def fire_shm_attach(segment_name: str) -> None:
    """Fail a shared-memory attach when the installed plan says so."""
    plan = _ACTIVE
    if plan is None or not plan.fail_shm_attach:
        return
    raise SharedStateError(
        f"fault injection: refusing to attach shared segment "
        f"{segment_name!r}")


# -- migration-executor hooks --------------------------------------------------

#: Fallback per-process count of fail_step firings; the executor passes
#: its own per-run counter so repeated runs in one process stay
#: independent and deterministic.
_STEP_FIRED: dict[int, int] = {}


def fire_step_fail(plan: FaultPlan | None, index: int,
                   fired: dict[int, int] | None = None) -> None:
    """Fail migration step ``index``'s transfer (a transient error).

    Honors ``fail_step_times`` via the ``fired`` counter (the
    executor's per-run attempt ledger): with a positive limit the fault
    fires only on the first N attempts, letting a
    :class:`~repro.resilience.policy.RetryPolicy` demonstrate recovery
    deterministically.
    """
    if plan is None or plan.fail_step != index:
        return
    counter = fired if fired is not None else _STEP_FIRED
    count = counter.get(index, 0)
    if plan.fail_step_times and count >= plan.fail_step_times:
        return
    counter[index] = count + 1
    raise WorkerCrash(
        f"fault injection: transfer failed for migration step "
        f"{index} (attempt {count + 1})")


def fire_step_crash(plan: FaultPlan | None, index: int,
                    when: str, journal: str | None = None) -> None:
    """Crash migration execution at a journaled step boundary.

    ``when`` is ``"after_intent"`` (the intent record is durable, the
    transfer has not run) or ``"before_done"`` (the transfer ran, the
    done record was never written).  Both leave the journal ending in a
    dangling intent — exactly what a SIGKILLed executor leaves behind —
    so resume re-executes the step idempotently.
    """
    if plan is None:
        return
    target = plan.crash_after_intent if when == "after_intent" \
        else plan.crash_before_done
    if target != index:
        return
    logger.warning("fault injection: crashing migration executor at "
                   "step %d (%s)", index, when)
    raise MigrationInterrupted(
        f"fault injection: executor crashed {when.replace('_', ' ')} "
        f"at step {index}; the journal is a valid prefix — resume "
        f"with 'repro-advisor migrate --resume'",
        step=index, journal=journal)


def fire_step_stall(plan: FaultPlan | None, index: int,
                    sleep=time.sleep) -> None:
    """Stall migration step ``index``'s transfer for ``stall_s``."""
    if plan is None or plan.stall_step != index:
        return
    logger.warning("fault injection: stalling migration step %d "
                   "by %.3fs", index, plan.stall_s)
    sleep(plan.stall_s)
