"""Deterministic fault injection for the search stack.

A :class:`FaultPlan` names the failures to inject into a portfolio run
— kill the worker running trajectory *N*, delay trajectory *M* by *T*
seconds, raise from trajectory *N*'s cost evaluation, or fail the
shared-memory attach — so resilience behavior is testable without
flaky sleeps or real crashes.  Plans are plain frozen dataclasses:
picklable (they ride the process-pool initializer into workers) and
parseable from a compact spec string used by the ``REPRO_FAULTS``
environment variable and the CLI ``--faults`` flag::

    kill_worker=1                 # trajectory 1's process dies hard
    delay=2:0.75                  # trajectory 2 sleeps 0.75s first
    fail_eval=0:2                 # trajectory 0 raises on its first
                                  # 2 attempts (then succeeds)
    fail_shm_attach               # attach_evaluator raises
    kill_worker=1,delay=2:0.5     # faults compose with commas

Injection points call the ``fire_*`` hooks below.  ``fire_kill`` only
hard-exits when running inside a *worker* process
(``multiprocessing.parent_process()`` is not ``None``); in the parent
— e.g. during the serial fallback that re-runs a crashed trajectory —
it raises :class:`~repro.errors.WorkerCrash` instead, so an injected
crash stays a crash across retries and the run degrades honestly.

Everything here is deterministic: the same plan fires the same faults
at the same points on every run.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from dataclasses import dataclass, replace
from typing import Mapping

from repro.errors import FaultSpecError, SharedStateError, WorkerCrash

logger = logging.getLogger("repro.resilience.faults")

#: Environment variable holding the active fault spec.
ENV_VAR = "REPRO_FAULTS"

#: Process-exit code used by an injected worker kill (diagnosable in
#: logs; any non-zero code breaks the pool identically).
KILL_EXIT_CODE = 86


@dataclass(frozen=True)
class FaultPlan:
    """Which failures to inject, keyed by trajectory index.

    Attributes:
        kill_worker: Trajectory whose executing process dies hard
            (``os._exit``) — in the parent process the same fault
            raises :class:`WorkerCrash` instead of exiting.
        delay_trajectory: Trajectory that sleeps before searching.
        delay_s: Sleep length for ``delay_trajectory``.
        fail_eval: Trajectory whose cost evaluation raises
            :class:`WorkerCrash`.
        fail_eval_times: How many attempts of ``fail_eval`` fail before
            it succeeds; ``0`` means every attempt fails.
        fail_shm_attach: Make :func:`repro.parallel.shared.attach_evaluator`
            raise :class:`SharedStateError` (exercises the
            broken-pool -> serial-fallback path).
    """

    kill_worker: int | None = None
    delay_trajectory: int | None = None
    delay_s: float = 0.0
    fail_eval: int | None = None
    fail_eval_times: int = 0
    fail_shm_attach: bool = False

    @property
    def empty(self) -> bool:
        return (self.kill_worker is None
                and self.delay_trajectory is None
                and self.fail_eval is None
                and not self.fail_shm_attach)

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a compact fault spec (see the module docstring)."""
        plan = cls()
        for raw in spec.split(","):
            entry = raw.strip()
            if not entry:
                continue
            name, _, value = entry.partition("=")
            name = name.strip()
            value = value.strip()
            try:
                if name == "kill_worker":
                    plan = replace(plan, kill_worker=int(value))
                elif name == "delay":
                    index, _, seconds = value.partition(":")
                    plan = replace(plan, delay_trajectory=int(index),
                                   delay_s=float(seconds or 1.0))
                elif name == "fail_eval":
                    index, _, times = value.partition(":")
                    plan = replace(plan, fail_eval=int(index),
                                   fail_eval_times=int(times or 0))
                elif name == "fail_shm_attach":
                    plan = replace(
                        plan,
                        fail_shm_attach=value.lower()
                        not in ("0", "false", "no") if value else True)
                else:
                    raise FaultSpecError(
                        f"unknown fault {name!r} in spec {spec!r}")
            except (ValueError, TypeError) as bad:
                raise FaultSpecError(
                    f"malformed fault entry {entry!r} in spec "
                    f"{spec!r}: {bad}") from None
        return plan

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None,
                 ) -> "FaultPlan | None":
        """The plan named by ``REPRO_FAULTS``, or ``None`` when unset."""
        spec = (environ if environ is not None else os.environ).get(
            ENV_VAR, "").strip()
        if not spec:
            return None
        plan = cls.from_spec(spec)
        return None if plan.empty else plan


# -- process-global plan (needed where no context object reaches) ------------

_ACTIVE: FaultPlan | None = None
#: Per-process count of fail_eval firings (supports fail_eval_times).
_EVAL_FIRED: dict[int, int] = {}


def install(plan: FaultPlan | None) -> None:
    """Set the process-global plan (used by the shm-attach hook)."""
    global _ACTIVE
    _ACTIVE = None if plan is None or plan.empty else plan
    _EVAL_FIRED.clear()


def active() -> FaultPlan | None:
    """The installed plan, or ``None``."""
    return _ACTIVE


def _in_worker_process() -> bool:
    return multiprocessing.parent_process() is not None


# -- injection hooks ----------------------------------------------------------


def fire_kill(plan: FaultPlan | None, index: int) -> None:
    """Kill the current worker if the plan targets trajectory ``index``.

    In a worker process this hard-exits (no cleanup — exactly what a
    SIGKILLed or OOM-killed worker looks like to the parent pool).  In
    the parent it raises :class:`WorkerCrash`, so serial fallback
    attempts of the same doomed trajectory keep failing and the run
    degrades instead of silently un-crashing.
    """
    if plan is None or plan.kill_worker != index:
        return
    if _in_worker_process():
        logger.warning("fault injection: killing worker running "
                       "trajectory %d", index)
        os._exit(KILL_EXIT_CODE)
    raise WorkerCrash(
        f"fault injection: trajectory {index} worker killed")


def fire_delay(plan: FaultPlan | None, index: int,
               sleep=time.sleep) -> None:
    """Sleep if the plan delays trajectory ``index``."""
    if plan is None or plan.delay_trajectory != index:
        return
    logger.warning("fault injection: delaying trajectory %d by %.3fs",
                   index, plan.delay_s)
    sleep(plan.delay_s)


def fire_eval(plan: FaultPlan | None, index: int) -> None:
    """Raise from trajectory ``index``'s cost evaluation.

    Honors ``fail_eval_times``: with a positive limit the fault fires
    only on the first N attempts *in this process*, letting retry
    policies demonstrate recovery deterministically.
    """
    if plan is None or plan.fail_eval != index:
        return
    fired = _EVAL_FIRED.get(index, 0)
    if plan.fail_eval_times and fired >= plan.fail_eval_times:
        return
    _EVAL_FIRED[index] = fired + 1
    raise WorkerCrash(
        f"fault injection: cost evaluation failed for trajectory "
        f"{index} (attempt {fired + 1})")


def fire_shm_attach(segment_name: str) -> None:
    """Fail a shared-memory attach when the installed plan says so."""
    plan = _ACTIVE
    if plan is None or not plan.fail_shm_attach:
        return
    raise SharedStateError(
        f"fault injection: refusing to attach shared segment "
        f"{segment_name!r}")
