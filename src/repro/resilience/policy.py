"""Deadlines, budgets and retry policies for unattended search runs.

The advisor is meant to run inside a tuning service where a hung or
crashed recommendation is worse than a slightly suboptimal one.  This
module provides the primitives every resilient caller composes:

* :class:`Deadline` — an absolute point on the monotonic clock; cheap
  to poll (``expired()``/``remaining()``) and to assert
  (``check()`` raises :class:`~repro.errors.SearchTimeout`).
* :class:`Budget` — a portable wall-clock allowance that becomes a
  :class:`Deadline` when work actually starts.
* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  **deterministic** jitter: the jitter stream is seeded from the
  caller-supplied seed (the portfolio engine passes the trajectory
  index), so two runs of the same failing trajectory sleep the exact
  same schedule and results stay reproducible.

Determinism note: retrying a trajectory never changes *what* it
computes — trajectories are pure functions of their spec — so retries
affect only wall-clock time and the ``attempts`` count recorded in
:class:`~repro.core.greedy.TrajectoryFailure`.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import LayoutError, SearchTimeout


class Deadline:
    """A wall-clock cutoff on the monotonic clock.

    Args:
        seconds: Allowance from *now*; ``None`` means unlimited.
        clock: Injectable clock (monotonic seconds) for testing.
    """

    __slots__ = ("_clock", "_expires_at", "_started_at")

    def __init__(self, seconds: float | None = None, *,
                 clock: Callable[[], float] = time.monotonic):
        if seconds is not None and seconds < 0:
            raise LayoutError("deadline seconds must be >= 0")
        self._clock = clock
        self._started_at = clock()
        self._expires_at = None if seconds is None \
            else self._started_at + seconds

    @classmethod
    def never(cls) -> "Deadline":
        """A deadline that never expires."""
        return cls(None)

    @classmethod
    def after(cls, seconds: float, *,
              clock: Callable[[], float] = time.monotonic) -> "Deadline":
        """A deadline ``seconds`` from now."""
        return cls(seconds, clock=clock)

    @classmethod
    def coerce(cls, value) -> "Deadline":
        """Normalize ``None`` / seconds / :class:`Budget` / ``Deadline``.

        ``None`` becomes an unlimited deadline, a number starts counting
        now, a :class:`Budget` is started, and an existing ``Deadline``
        passes through unchanged.
        """
        if value is None:
            return cls.never()
        if isinstance(value, Deadline):
            return value
        if isinstance(value, Budget):
            return value.start()
        if isinstance(value, (int, float)):
            return cls.after(float(value))
        raise LayoutError(
            f"cannot interpret {value!r} as a deadline "
            "(want None, seconds, Budget or Deadline)")

    @property
    def unlimited(self) -> bool:
        return self._expires_at is None

    def elapsed(self) -> float:
        """Seconds since this deadline started counting."""
        return self._clock() - self._started_at

    def remaining(self) -> float:
        """Seconds left (never negative); ``inf`` when unlimited."""
        if self._expires_at is None:
            return math.inf
        return max(0.0, self._expires_at - self._clock())

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, label: str = "search") -> None:
        """Raise :class:`SearchTimeout` if the deadline has expired."""
        if self.expired():
            raise SearchTimeout(f"{label} deadline expired",
                                elapsed_s=self.elapsed())

    def __repr__(self) -> str:
        if self.unlimited:
            return "Deadline(unlimited)"
        return f"Deadline(remaining={self.remaining():.3f}s)"


@dataclass(frozen=True)
class Budget:
    """A wall-clock allowance that has not started counting yet.

    Unlike a :class:`Deadline` (an absolute point in time), a budget is
    portable: it can be created at configuration time, stored on an
    engine, and started (:meth:`start`) when the work actually begins.
    """

    seconds: float | None = None

    def __post_init__(self) -> None:
        if self.seconds is not None and self.seconds < 0:
            raise LayoutError("budget seconds must be >= 0")

    def start(self, *, clock: Callable[[], float] = time.monotonic,
              ) -> Deadline:
        """Begin counting: returns a live :class:`Deadline`."""
        return Deadline(self.seconds, clock=clock)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    Attributes:
        attempts: Total attempts (1 = no retries).
        base_delay_s: Sleep before the first retry.
        multiplier: Backoff factor between consecutive retries.
        max_delay_s: Cap on any single sleep.
        jitter: Fractional jitter in ``[0, 1]``: each sleep is scaled by
            a factor drawn uniformly from ``[1, 1 + jitter]`` using a
            PRNG seeded from the caller's ``seed`` — the schedule for a
            given seed is identical across runs, keeping resilient runs
            reproducible.
    """

    attempts: int = 2
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise LayoutError("RetryPolicy needs attempts >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise LayoutError("RetryPolicy delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise LayoutError("RetryPolicy jitter must be in [0, 1]")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """A single-attempt policy (fail fast, no retries)."""
        return cls(attempts=1)

    def delays(self, seed: int = 0) -> Iterator[float]:
        """Pre-attempt sleeps: ``0.0`` first, then jittered backoffs.

        Yields exactly :attr:`attempts` values.  The jitter stream is a
        pure function of ``seed`` (use e.g. the trajectory index), so
        the schedule is deterministic.
        """
        # Integer seed derivation only: seeding from a tuple would go
        # through hash(), which PYTHONHASHSEED salts across runs.
        rng = random.Random(0x5EED_CAFE ^ (int(seed) * 1_000_003))
        yield 0.0
        delay = self.base_delay_s
        for _ in range(self.attempts - 1):
            scale = 1.0 + self.jitter * rng.random()
            yield min(delay * scale, self.max_delay_s)
            delay *= self.multiplier

    def run(self, fn: Callable[[], object], *, seed: int = 0,
            retry_on: tuple[type[BaseException], ...] = (Exception,),
            deadline: Deadline | None = None,
            sleep: Callable[[float], None] = time.sleep,
            on_retry: Callable[[int, BaseException], None] | None = None):
        """Call ``fn`` under this policy; return ``(value, attempts)``.

        Retries on ``retry_on`` exceptions, sleeping the deterministic
        backoff schedule between attempts.  Stops early (re-raising the
        last error) when ``deadline`` expires — a sleep is never allowed
        to overshoot the deadline.  ``on_retry(attempt, error)`` is
        called after each failed attempt that will be retried.
        """
        last_error: BaseException | None = None
        attempt = 0
        for pause in self.delays(seed):
            if last_error is not None and deadline is not None \
                    and deadline.expired():
                break
            if pause > 0.0:
                if deadline is not None:
                    pause = min(pause, deadline.remaining())
                if pause > 0.0:
                    sleep(pause)
            attempt += 1
            try:
                return fn(), attempt
            except retry_on as error:
                last_error = error
                if attempt < self.attempts and on_retry is not None:
                    on_retry(attempt, error)
        assert last_error is not None
        raise last_error
