"""Profiler-trace ingestion.

The paper gathers workloads "using profiling tools available in modern
commercial database systems, e.g., the SQL Server Profiler", and names
"exploiting sequence and execution overlap information in the workload"
as the way to bring concurrency into the model.  This module does both:
it reads a profiler-style trace — one record per executed statement with
start/end timestamps — and derives

* a :class:`~repro.workload.workload.Workload` whose statement weights
  are the statements' multiplicities (identical SQL collapses into one
  weighted statement), and
* a :class:`~repro.workload.concurrency.ConcurrencySpec` whose groups
  are the sets of statements observed running at the same time, with
  the overlap factor estimated from the measured interval overlaps.

Trace format (CSV, header required)::

    start,end,sql
    0.0,4.2,SELECT COUNT(*) FROM big b
    1.0,5.0,"SELECT SUM(m.w) FROM mid m"

Timestamps are seconds (any epoch); quoting per Python's ``csv`` module.
"""

from __future__ import annotations

import csv
import itertools
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.errors import WorkloadError
from repro.workload.concurrency import ConcurrencySpec
from repro.workload.workload import Workload


@dataclass(frozen=True)
class TraceRecord:
    """One executed statement in a trace."""

    start: float
    end: float
    sql: str

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise WorkloadError(
                f"trace record ends before it starts: {self.sql[:40]!r}")
        if not self.sql.strip():
            raise WorkloadError("trace record has empty SQL")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlap_with(self, other: "TraceRecord") -> float:
        """Seconds the two executions coincide."""
        return max(0.0, min(self.end, other.end)
                   - max(self.start, other.start))


def read_trace(path: str | Path) -> list[TraceRecord]:
    """Parse a CSV trace file into records (in file order)."""
    records: list[TraceRecord] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"start", "end", "sql"}
        if reader.fieldnames is None \
                or not required <= set(reader.fieldnames):
            raise WorkloadError(
                f"trace file needs columns {sorted(required)}")
        for line_number, row in enumerate(reader, start=2):
            try:
                records.append(TraceRecord(start=float(row["start"]),
                                           end=float(row["end"]),
                                           sql=row["sql"]))
            except (TypeError, ValueError) as error:
                raise WorkloadError(
                    f"trace line {line_number}: {error}") from None
    if not records:
        raise WorkloadError("trace file has no records")
    return records


def workload_from_trace(records: Sequence[TraceRecord],
                        name: str = "trace") -> Workload:
    """Collapse a trace into a weighted workload.

    Statements with identical SQL become one workload entry whose
    weight is the execution count — the paper's "weight may indicate
    the multiplicity of that statement in the workload".
    """
    counts: dict[str, int] = {}
    order: list[str] = []
    for record in records:
        sql = record.sql.strip()
        if sql not in counts:
            order.append(sql)
        counts[sql] = counts.get(sql, 0) + 1
    workload = Workload(name=name)
    for index, sql in enumerate(order):
        workload.add(sql, weight=float(counts[sql]),
                     name=f"T{index + 1}")
    return workload


def concurrency_from_trace(records: Sequence[TraceRecord],
                           min_overlap_fraction: float = 0.05
                           ) -> ConcurrencySpec:
    """Derive overlap groups from trace timestamps.

    Two *workload statements* (distinct SQL texts) are grouped when any
    of their executions overlap by at least ``min_overlap_fraction`` of
    the shorter execution.  The spec's overlap factor is the mean
    observed overlap fraction across all overlapping execution pairs —
    a single scalar, matching :class:`ConcurrencySpec`'s model.

    The statement indices in the returned groups refer to the workload
    produced by :func:`workload_from_trace` on the same records.
    """
    if not 0.0 <= min_overlap_fraction <= 1.0:
        raise WorkloadError("min_overlap_fraction must be in [0, 1]")
    index_of: dict[str, int] = {}
    for record in records:
        sql = record.sql.strip()
        if sql not in index_of:
            index_of[sql] = len(index_of)
    pair_fractions: dict[tuple[int, int], list[float]] = {}
    for a, b in itertools.combinations(records, 2):
        overlap = a.overlap_with(b)
        if overlap <= 0:
            continue
        shorter = max(min(a.duration, b.duration), 1e-12)
        fraction = min(1.0, overlap / shorter)
        if fraction < min_overlap_fraction:
            continue
        i, j = index_of[a.sql.strip()], index_of[b.sql.strip()]
        if i == j:
            continue
        pair_fractions.setdefault((min(i, j), max(i, j)),
                                  []).append(fraction)
    if not pair_fractions:
        return ConcurrencySpec((), overlap_factor=1.0)
    groups = [frozenset(pair) for pair in pair_fractions]
    all_fractions = [f for fractions in pair_fractions.values()
                     for f in fractions]
    factor = sum(all_fractions) / len(all_fractions)
    return ConcurrencySpec(tuple(groups),
                           overlap_factor=max(0.01, min(1.0, factor)))


def load_trace(path: str | Path,
               min_overlap_fraction: float = 0.05
               ) -> tuple[Workload, ConcurrencySpec]:
    """One-call ingestion: trace file -> (workload, concurrency spec).

    Feed the results straight into
    :meth:`~repro.core.advisor.LayoutAdvisor.recommend_concurrent`.
    """
    records = read_trace(path)
    return (workload_from_trace(records, name=Path(path).stem),
            concurrency_from_trace(
                records, min_overlap_fraction=min_overlap_fraction))
