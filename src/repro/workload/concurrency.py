"""Concurrency-aware workload analysis (the paper's stated future work).

Section 2.2: "Since we model the workload as a *set* of statements, we
do not take into account the impact on database layout by statements
that execute concurrently with one another.  In particular, this has
the effect of underestimating the amount of co-access between objects.
Incorporating effects of concurrent query execution into the workload
model by exploiting sequence and execution overlap information in the
workload is part of our ongoing work."

This module implements that extension.  Overlap information is given as
a :class:`ConcurrencySpec` — either explicit groups of statements known
to run together (e.g. from profiler trace timestamps) or a uniform
multiprogramming level.  Two statements that overlap co-access each
other's objects *across statement boundaries*: every pair of their
non-blocking subplans contributes inter-statement edges to the access
graph, scaled by an overlap factor (the expected fraction of their
executions that actually coincide).

The search consumes the enriched graph unchanged, so the effect is that
TS-GREEDY also separates objects that are only ever co-accessed by
*different*, concurrently-running statements.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable

from repro.catalog.schema import Database
from repro.errors import WorkloadError
from repro.workload.access import AnalyzedWorkload
from repro.workload.access_graph import AccessGraph, build_access_graph


@dataclass(frozen=True)
class ConcurrencySpec:
    """Which statements overlap in time, and how much.

    Attributes:
        groups: Sets of statement indices (into the workload) that
            execute concurrently with each other.  A statement may
            appear in several groups.
        overlap_factor: Expected fraction of two grouped statements'
            executions that actually coincide (scales the
            inter-statement edge weights).
    """

    groups: tuple[frozenset[int], ...]
    overlap_factor: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.overlap_factor <= 1.0:
            raise WorkloadError("overlap_factor must be in (0, 1]")
        for group in self.groups:
            if any(index < 0 for index in group):
                raise WorkloadError("negative statement index")

    @classmethod
    def from_groups(cls, groups: Iterable[Iterable[int]],
                    overlap_factor: float = 0.5) -> "ConcurrencySpec":
        """Build from explicit statement-index groups."""
        return cls(tuple(frozenset(g) for g in groups),
                   overlap_factor=overlap_factor)

    @classmethod
    def uniform(cls, n_statements: int, multiprogramming_level: int,
                overlap_factor: float | None = None) -> "ConcurrencySpec":
        """A uniform model: consecutive windows of MPL statements run
        together (the shape a profiler trace with a fixed worker pool
        produces).

        ``overlap_factor`` defaults to ``1 / MPL`` — with MPL streams
        drawing from the same window, each pair coincides for roughly
        that fraction of the time.
        """
        if multiprogramming_level < 1:
            raise WorkloadError("multiprogramming level must be >= 1")
        if multiprogramming_level == 1 or n_statements <= 1:
            return cls((), overlap_factor=1.0)
        groups = []
        window = multiprogramming_level
        for start in range(0, n_statements, window):
            group = frozenset(range(start,
                                    min(start + window, n_statements)))
            if len(group) > 1:
                groups.append(group)
        factor = overlap_factor if overlap_factor is not None \
            else 1.0 / multiprogramming_level
        return cls(tuple(groups), overlap_factor=factor)

    def concurrent_pairs(self) -> set[tuple[int, int]]:
        """All distinct (i, j) statement pairs that may overlap."""
        pairs: set[tuple[int, int]] = set()
        for group in self.groups:
            for a, b in itertools.combinations(sorted(group), 2):
                pairs.add((a, b))
        return pairs


def build_access_graph_concurrent(
        analyzed: AnalyzedWorkload,
        spec: ConcurrencySpec,
        db: Database | None = None) -> AccessGraph:
    """The Figure-6 access graph enriched with inter-statement edges.

    Starts from the standard (intra-statement) graph, then for every
    concurrent statement pair adds edges between each object of one
    statement's subplans and each object of the other's, weighted by
    ``overlap_factor * min(w_i, w_j) * (B_u + B_v)`` — the same
    block-sum rule as intra-statement edges, discounted by how often
    the executions actually coincide.
    """
    graph = build_access_graph(analyzed, db)
    statements = analyzed.statements
    for i, j in spec.concurrent_pairs():
        if i >= len(statements) or j >= len(statements):
            raise WorkloadError(
                f"concurrency group references statement {max(i, j)} "
                f"but the workload has {len(statements)}")
        weight = spec.overlap_factor * min(statements[i].weight,
                                           statements[j].weight)
        for subplan_a in statements[i].subplans:
            blocks_a = _per_object(subplan_a)
            for subplan_b in statements[j].subplans:
                blocks_b = _per_object(subplan_b)
                for u, b_u in blocks_a.items():
                    for v, b_v in blocks_b.items():
                        if u == v:
                            continue
                        graph.add_edge_weight(u, v,
                                              weight * (b_u + b_v))
    return graph


def _per_object(subplan) -> dict[str, float]:
    totals: dict[str, float] = {}
    for (name, _write), blocks in subplan.blocks_by_object().items():
        totals[name] = totals.get(name, 0.0) + blocks
    return totals


def concurrent_cost_workload(analyzed: AnalyzedWorkload,
                             spec: ConcurrencySpec) -> AnalyzedWorkload:
    """An expanded workload whose Figure-7 cost models concurrency.

    The sequential model charges ``sum_Q w_Q Cost(Q, L)``.  When
    statements i and j overlap for an expected fraction ``q`` of their
    executions, the expected cost changes by
    ``q * (Cost(i||j) - Cost(i) - Cost(j))`` per overlapping subplan
    pair, where ``Cost(i||j)`` evaluates the two subplans' streams
    *together* (they contend on shared disks — extra seeks — but also
    overlap in time on disjoint disks — a parallelism credit).

    This expansion is expressed with the existing machinery: for each
    concurrent subplan pair we append one synthetic statement carrying
    the merged subplan with weight ``+q*min(w_i, w_j)`` and one carrying
    the two original subplans with weight ``-q*min(w_i, w_j)``.  Any
    cost evaluator then prices concurrency with no further changes.

    The result is for *costing only* — do not simulate or re-plan it.
    """
    from repro.optimizer.operators import PlanOp
    from repro.workload.access import AnalyzedStatement, SubplanAccess
    from repro.workload.workload import Statement

    statements = list(analyzed.statements)
    extras: list[AnalyzedStatement] = []
    placeholder_plan = PlanOp()
    for i, j in spec.concurrent_pairs():
        if i >= len(statements) or j >= len(statements):
            raise WorkloadError(
                f"concurrency group references statement {max(i, j)} "
                f"but the workload has {len(statements)}")
        q = spec.overlap_factor * min(statements[i].weight,
                                      statements[j].weight)
        for subplan_a in statements[i].subplans:
            for subplan_b in statements[j].subplans:
                merged = SubplanAccess(list(subplan_a.accesses)
                                       + list(subplan_b.accesses))
                marker = Statement(f"-- concurrent({i},{j})",
                                   name=f"||({i},{j})")
                extras.append(AnalyzedStatement(
                    statement=marker, plan=placeholder_plan,
                    subplans=[merged], weight_override=q))
                extras.append(AnalyzedStatement(
                    statement=marker, plan=placeholder_plan,
                    subplans=[subplan_a, subplan_b],
                    weight_override=-q))
    return AnalyzedWorkload(statements + extras,
                            name=f"{analyzed.name}||concurrent")
