"""Workload drift detection (the incremental-redesign trigger).

The paper's Section 2.3 motivates the data-movement bound with the
observation that workloads change over time and the advisor should be
re-runnable against the *current* layout.  This module supplies the
trigger for that loop: compare two workload windows through their
access graphs — per-object referenced-block deltas and co-access
edge-weight deltas — and reduce the comparison to a scalar drift score
with a "re-layout recommended" threshold.

The score is a normalized L1 distance in ``[0, 1]``: 0 means the two
windows reference the same objects in the same proportions with the
same co-access structure; 1 means they share nothing.  Both the node
term (what is read, and how much) and the edge term (what is read
*together*) contribute, because either alone can invalidate a layout:
a pure hot-set shift changes which disks should be widest, while a pure
co-access shift changes which objects must be separated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs import NULL_METRICS, NULL_RECORDER, NULL_TRACER
from repro.workload.access_graph import AccessGraph

#: Default drift score above which a re-layout run is recommended.
#: Calibrated on the TPC-H example windows: statement-weight noise of a
#: few percent scores well under 0.05, while doubling the weight of one
#: heavy query scores above 0.1.
RELAYOUT_THRESHOLD = 0.1


@dataclass(frozen=True)
class ObjectDrift:
    """Referenced-block change of one object between two windows.

    Attributes:
        name: The database object.
        blocks_before: Node weight in the earlier window's access graph.
        blocks_after: Node weight in the later window's access graph.
    """

    name: str
    blocks_before: float
    blocks_after: float

    @property
    def delta(self) -> float:
        """Signed block-count change (positive = hotter)."""
        return self.blocks_after - self.blocks_before

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name,
                "blocks_before": float(self.blocks_before),
                "blocks_after": float(self.blocks_after)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ObjectDrift":
        """Inverse of :meth:`to_dict`."""
        return cls(name=str(data["name"]),
                   blocks_before=float(data["blocks_before"]),
                   blocks_after=float(data["blocks_after"]))


@dataclass(frozen=True)
class EdgeDrift:
    """Co-access weight change of one object pair between two windows."""

    u: str
    v: str
    weight_before: float
    weight_after: float

    @property
    def delta(self) -> float:
        """Signed edge-weight change."""
        return self.weight_after - self.weight_before

    def to_dict(self) -> dict[str, Any]:
        return {"u": self.u, "v": self.v,
                "weight_before": float(self.weight_before),
                "weight_after": float(self.weight_after)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "EdgeDrift":
        """Inverse of :meth:`to_dict`."""
        return cls(u=str(data["u"]), v=str(data["v"]),
                   weight_before=float(data["weight_before"]),
                   weight_after=float(data["weight_after"]))


@dataclass
class DriftReport:
    """Outcome of comparing two workload windows.

    Attributes:
        score: Scalar drift in ``[0, 1]`` —
            ``0.5 * node_drift + 0.5 * edge_drift``.
        node_drift: Normalized L1 distance between the windows'
            per-object referenced-block weights.
        edge_drift: Normalized L1 distance between the windows'
            co-access edge weights.
        threshold: The re-layout threshold the report was built with.
        objects: Per-object deltas, largest absolute change first
            (objects with zero delta are omitted).
        edges: Per-edge deltas, largest absolute change first (edges
            with zero delta are omitted).
        run_id: Flight-recorder run identifier of the run that produced
            the report, when saved with provenance (see
            :func:`repro.catalog.io.save_drift_report`).
    """

    score: float
    node_drift: float
    edge_drift: float
    threshold: float = RELAYOUT_THRESHOLD
    objects: list[ObjectDrift] = field(default_factory=list)
    edges: list[EdgeDrift] = field(default_factory=list)
    run_id: str | None = None

    @property
    def relayout_recommended(self) -> bool:
        """Whether the drift warrants re-running the advisor."""
        return self.score >= self.threshold

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (inverse: :meth:`from_dict`)."""
        out: dict[str, Any] = {
            "score": float(self.score),
            "node_drift": float(self.node_drift),
            "edge_drift": float(self.edge_drift),
            "threshold": float(self.threshold),
            "relayout_recommended": self.relayout_recommended,
            "objects": [o.to_dict() for o in self.objects],
            "edges": [e.to_dict() for e in self.edges],
        }
        if self.run_id:
            out["run_id"] = str(self.run_id)
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DriftReport":
        """Rebuild a report from :meth:`to_dict` output."""
        run_id = data.get("run_id")
        return cls(
            score=float(data["score"]),
            node_drift=float(data["node_drift"]),
            edge_drift=float(data["edge_drift"]),
            threshold=float(data.get("threshold", RELAYOUT_THRESHOLD)),
            objects=[ObjectDrift.from_dict(o)
                     for o in data.get("objects", ())],
            edges=[EdgeDrift.from_dict(e)
                   for e in data.get("edges", ())],
            run_id=str(run_id) if run_id else None)

    def describe(self, top: int = 8) -> str:
        """Human-readable rendering for the CLI and logs."""
        verdict = "re-layout recommended" if self.relayout_recommended \
            else "layout still fits"
        lines = [
            "=== workload drift report ===",
            f"drift score:  {self.score:.3f}  "
            f"(threshold {self.threshold:.3f} -> {verdict})",
            f"  node drift: {self.node_drift:.3f}  "
            f"(referenced-block shift)",
            f"  edge drift: {self.edge_drift:.3f}  "
            f"(co-access shift)",
        ]
        if self.objects:
            lines.append("")
            lines.append("--- largest object shifts ---")
            for obj in self.objects[:top]:
                sign = "+" if obj.delta >= 0 else ""
                lines.append(f"{obj.name:30s} {obj.blocks_before:12.0f} "
                             f"-> {obj.blocks_after:12.0f}  "
                             f"({sign}{obj.delta:.0f} blk)")
        if self.edges:
            lines.append("")
            lines.append("--- largest co-access shifts ---")
            for edge in self.edges[:top]:
                sign = "+" if edge.delta >= 0 else ""
                lines.append(f"{edge.u + ' -- ' + edge.v:40s} "
                             f"{edge.weight_before:10.0f} -> "
                             f"{edge.weight_after:10.0f}  "
                             f"({sign}{edge.delta:.0f})")
        return "\n".join(lines)


def _normalized_l1(before: dict, after: dict) -> float:
    """L1 distance over the key union, normalized to ``[0, 1]``."""
    keys = set(before) | set(after)
    distance = sum(abs(after.get(k, 0.0) - before.get(k, 0.0))
                   for k in keys)
    total = sum(before.values()) + sum(after.values())
    if total <= 0:
        return 0.0
    return distance / total


def detect_drift(before: AccessGraph, after: AccessGraph,
                 threshold: float = RELAYOUT_THRESHOLD,
                 tracer=None, metrics=None,
                 recorder=None) -> DriftReport:
    """Compare two workload windows via their access graphs.

    Args:
        before: Access graph of the earlier window (the one the current
            layout was designed for).
        after: Access graph of the later (observed) window.
        threshold: Drift score at which re-layout is recommended.
        tracer: Optional :class:`repro.obs.Tracer`; emits one
            ``detect-drift`` span.
        metrics: Optional :class:`repro.obs.MetricsRegistry`; records
            ``drift.score`` / ``drift.node_drift`` / ``drift.edge_drift``
            gauges and the ``drift.relayout_recommended`` counter.
        recorder: Optional :class:`repro.obs.EventRecorder`; emits one
            ``drift-score`` event with the report's headline numbers.

    Returns:
        A :class:`DriftReport`; ``report.relayout_recommended`` is the
        re-run trigger, ``report.objects`` / ``report.edges`` explain
        what moved.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    metrics = metrics if metrics is not None else NULL_METRICS
    recorder = recorder if recorder is not None else NULL_RECORDER
    with tracer.span("detect-drift") as span:
        nodes_before = {n: before.node_weight(n) for n in before.nodes}
        nodes_after = {n: after.node_weight(n) for n in after.nodes}
        edges_before = before.edges
        edges_after = after.edges
        node_drift = _normalized_l1(nodes_before, nodes_after)
        edge_drift = _normalized_l1(edges_before, edges_after)
        score = 0.5 * node_drift + 0.5 * edge_drift
        objects = sorted(
            (ObjectDrift(name, nodes_before.get(name, 0.0),
                         nodes_after.get(name, 0.0))
             for name in set(nodes_before) | set(nodes_after)),
            key=lambda o: (-abs(o.delta), o.name))
        edges = sorted(
            (EdgeDrift(u, v, edges_before.get((u, v), 0.0),
                       edges_after.get((u, v), 0.0))
             for u, v in set(edges_before) | set(edges_after)),
            key=lambda e: (-abs(e.delta), e.u, e.v))
        report = DriftReport(
            score=score, node_drift=node_drift, edge_drift=edge_drift,
            threshold=threshold,
            objects=[o for o in objects if o.delta != 0.0],
            edges=[e for e in edges if e.delta != 0.0])
        span.set("score", round(score, 6))
        span.set("relayout_recommended", report.relayout_recommended)
        metrics.set_gauge("drift.score", score)
        metrics.set_gauge("drift.node_drift", node_drift)
        metrics.set_gauge("drift.edge_drift", edge_drift)
        if report.relayout_recommended:
            metrics.inc("drift.relayout_recommended")
        recorder.emit("drift-score", score=round(score, 6),
                      node_drift=round(node_drift, 6),
                      edge_drift=round(edge_drift, 6),
                      relayout_recommended=report.relayout_recommended)
    return report
