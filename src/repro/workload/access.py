"""Plan decomposition into non-blocking subplans (Section 4.2).

"Our method first decomposes the execution plan into sub-plans, each of
which consists only of non-blocking (i.e., pipelined) operators.  This
decomposition is achieved by introducing a 'cut' in the execution plan at
each blocking operator."

Objects accessed within the same non-blocking subplan are *co-accessed*;
objects in different subplans are not, no matter how many of them appear
in the full plan (the paper's Example 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.catalog.schema import Database
from repro.obs import NULL_METRICS, NULL_TRACER
from repro.optimizer.operators import ObjectAccess, PlanOp
from repro.optimizer.planner import Planner, TEMPDB
from repro.sql import parse_statement
from repro.workload.workload import Statement, Workload


@dataclass
class SubplanAccess:
    """Aggregated object accesses of one non-blocking subplan.

    Attributes:
        accesses: The raw per-operator accesses in this subplan.
    """

    accesses: list[ObjectAccess] = field(default_factory=list)

    def blocks_by_object(self, include_temp: bool = False) -> dict[
            tuple[str, bool], float]:
        """Blocks per ``(object, is_write)``, summed over the subplan."""
        totals: dict[tuple[str, bool], float] = {}
        for access in self.accesses:
            if not include_temp and access.object_name == TEMPDB:
                continue
            key = (access.object_name, access.write)
            totals[key] = totals.get(key, 0.0) + access.blocks
        return totals

    def objects(self, include_temp: bool = False) -> set[str]:
        """Distinct objects accessed in this subplan."""
        return {a.object_name for a in self.accesses
                if include_temp or a.object_name != TEMPDB}

    @property
    def is_empty(self) -> bool:
        return not self.accesses


def decompose(plan: PlanOp) -> list[SubplanAccess]:
    """Cut ``plan`` at blocking edges into non-blocking subplans.

    Returns only subplans that access at least one stored object, in
    deterministic pre-order discovery order.
    """
    subplans: list[SubplanAccess] = []

    def visit(node: PlanOp, current: SubplanAccess) -> None:
        current.accesses.extend(node.accesses)
        for child, blocking in zip(node.children, node.blocking_edges):
            if blocking:
                fresh = SubplanAccess()
                subplans.append(fresh)
                visit(child, fresh)
            else:
                visit(child, current)

    root = SubplanAccess()
    subplans.append(root)
    visit(plan, root)
    return [s for s in subplans if not s.is_empty]


@dataclass
class AnalyzedStatement:
    """One statement together with its plan and subplan decomposition.

    ``weight_override`` exists for *synthetic* costing entries (the
    concurrency extension's expected-cost expansion uses negative
    correction weights, which real statements cannot have).
    """

    statement: Statement
    plan: PlanOp
    subplans: list[SubplanAccess]
    weight_override: float | None = None

    @property
    def weight(self) -> float:
        if self.weight_override is not None:
            return self.weight_override
        return self.statement.weight


class AnalyzedWorkload:
    """A workload whose statements have all been planned and decomposed.

    This is the unit of work shared between the access-graph builder, the
    analytical cost model and the I/O simulator: planning happens once,
    layouts are evaluated many times against the cached decomposition.
    """

    def __init__(self, statements: Sequence[AnalyzedStatement],
                 name: str = "workload"):
        self.statements = list(statements)
        self.name = name

    def __len__(self) -> int:
        return len(self.statements)

    def __iter__(self):
        return iter(self.statements)

    def referenced_objects(self) -> set[str]:
        """Every stored object (tempdb excluded) the workload touches."""
        out: set[str] = set()
        for analyzed in self.statements:
            for subplan in analyzed.subplans:
                out |= subplan.objects()
        return out


def analyze_workload(workload: Workload, db: Database,
                     planner: Planner | None = None,
                     tracer=None, metrics=None) -> AnalyzedWorkload:
    """Plan and decompose every statement of a workload.

    This is the paper's *Analyze Workload* component: statements are
    optimized in "no-execute" mode (our planner), never run.

    Args:
        workload: The SQL workload to analyze.
        db: The database catalog to plan against.
        planner: Optional custom planner (defaults to one over ``db``).
        tracer: Optional :class:`repro.obs.Tracer`; emits one
            ``analyze-workload`` span covering the whole analysis.
        metrics: Optional :class:`repro.obs.MetricsRegistry`; records
            ``analyze.statements`` and the per-statement subplan
            distribution ``analyze.subplans_per_statement``.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    metrics = metrics if metrics is not None else NULL_METRICS
    planner = planner or Planner(db)
    analyzed = []
    with tracer.span("analyze-workload",
                     statements=len(workload)) as span:
        for stmt in workload:
            plan = planner.plan(parse_statement(stmt.sql))
            subplans = decompose(plan)
            analyzed.append(AnalyzedStatement(statement=stmt, plan=plan,
                                              subplans=subplans))
            metrics.inc("analyze.statements")
            metrics.observe("analyze.subplans_per_statement",
                            len(subplans))
        span.set("subplans",
                 sum(len(a.subplans) for a in analyzed))
    return AnalyzedWorkload(analyzed, name=workload.name)
