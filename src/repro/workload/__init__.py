"""Workload model and analysis (Sections 2.2 and 4 of the paper).

A workload is a weighted set of SQL DML statements.  The *Analyze
Workload* component plans each statement (without executing it), cuts
the plan at blocking operators into non-blocking subplans, and summarizes
the result two ways:

* an :class:`AnalyzedWorkload` — per-statement subplan access lists,
  which the cost model consumes directly; and
* an :class:`AccessGraph` — the paper's weighted co-access graph, which
  the search's partitioning step consumes.
"""

from repro.workload.workload import Statement, Workload
from repro.workload.access import (
    AnalyzedStatement,
    AnalyzedWorkload,
    SubplanAccess,
    analyze_workload,
    decompose,
)
from repro.workload.access_graph import AccessGraph, build_access_graph
from repro.workload.drift import (
    RELAYOUT_THRESHOLD,
    DriftReport,
    EdgeDrift,
    ObjectDrift,
    detect_drift,
)
from repro.workload.concurrency import (
    ConcurrencySpec,
    build_access_graph_concurrent,
    concurrent_cost_workload,
)
from repro.workload.profiler import (
    TraceRecord,
    concurrency_from_trace,
    load_trace,
    read_trace,
    workload_from_trace,
)

__all__ = [
    "ConcurrencySpec",
    "build_access_graph_concurrent",
    "concurrent_cost_workload",
    "TraceRecord",
    "concurrency_from_trace",
    "load_trace",
    "read_trace",
    "workload_from_trace",
    "Statement",
    "Workload",
    "AnalyzedStatement",
    "AnalyzedWorkload",
    "SubplanAccess",
    "analyze_workload",
    "decompose",
    "AccessGraph",
    "build_access_graph",
    "RELAYOUT_THRESHOLD",
    "DriftReport",
    "EdgeDrift",
    "ObjectDrift",
    "detect_drift",
]
