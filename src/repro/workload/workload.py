"""Workload representation: weighted SQL statements.

Matches the paper's input model: "a set of SQL DML statements …
optionally, each statement Q in the workload may have associated with it
a weight w_Q that signifies the importance of that statement".
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import WorkloadError

_WEIGHT_RE = re.compile(r"^--\s*weight\s*[:=]\s*([0-9.]+)\s*$",
                        re.IGNORECASE)
_NAME_RE = re.compile(r"^--\s*name\s*[:=]\s*(\S+)\s*$", re.IGNORECASE)


@dataclass(frozen=True)
class Statement:
    """One workload statement.

    Attributes:
        sql: The statement text.
        weight: Importance / multiplicity ``w_Q`` (default 1).
        name: Optional label used in reports, e.g. ``"Q3"``.
    """

    sql: str
    weight: float = 1.0
    name: str | None = None

    def __post_init__(self) -> None:
        if not self.sql.strip():
            raise WorkloadError("statement text is empty")
        if self.weight <= 0:
            raise WorkloadError("statement weight must be positive")


class Workload:
    """An ordered collection of weighted statements."""

    def __init__(self, statements: Iterable[Statement] = (),
                 name: str = "workload"):
        self._statements = list(statements)
        self.name = name

    def add(self, sql: str, weight: float = 1.0,
            name: str | None = None) -> None:
        """Append a statement."""
        self._statements.append(Statement(sql=sql, weight=weight, name=name))

    def __len__(self) -> int:
        return len(self._statements)

    def __iter__(self) -> Iterator[Statement]:
        return iter(self._statements)

    def __getitem__(self, index: int) -> Statement:
        return self._statements[index]

    @property
    def statements(self) -> tuple[Statement, ...]:
        return tuple(self._statements)

    @property
    def total_weight(self) -> float:
        return sum(s.weight for s in self._statements)

    def scaled(self, factor: float) -> "Workload":
        """A copy with every weight multiplied by ``factor``."""
        return Workload(
            (Statement(s.sql, s.weight * factor, s.name)
             for s in self._statements),
            name=self.name)

    # -- file round trip -----------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the workload as a ``;``-separated SQL file.

        Each statement may be preceded by ``-- name: X`` and
        ``-- weight: N`` comment annotations.
        """
        lines: list[str] = []
        for stmt in self._statements:
            if stmt.name:
                lines.append(f"-- name: {stmt.name}")
            if stmt.weight != 1.0:
                lines.append(f"-- weight: {stmt.weight:g}")
            lines.append(stmt.sql.strip().rstrip(";") + ";")
            lines.append("")
        Path(path).write_text("\n".join(lines))

    @classmethod
    def load(cls, path: str | Path, name: str | None = None) -> "Workload":
        """Read a workload file written by :meth:`save` (or by hand)."""
        path = Path(path)
        try:
            return cls.loads(path.read_text(), name=name or path.stem)
        except WorkloadError as exc:
            raise WorkloadError(f"{exc} (file {path})") from None

    @classmethod
    def loads(cls, text: str, name: str = "workload") -> "Workload":
        """Parse workload text (the :meth:`save` format) from a string.

        The advisor service accepts workload uploads as raw SQL text;
        this is the path-free twin of :meth:`load`.
        """
        workload = cls(name=name)
        weight = 1.0
        stmt_name: str | None = None
        buffer: list[str] = []

        def flush() -> None:
            nonlocal weight, stmt_name
            sql = "\n".join(buffer).strip()
            if sql:
                workload.add(sql, weight=weight, name=stmt_name)
            buffer.clear()
            weight = 1.0
            stmt_name = None

        for line in text.splitlines():
            stripped = line.strip()
            weight_match = _WEIGHT_RE.match(stripped)
            if weight_match:
                weight = float(weight_match.group(1))
                continue
            name_match = _NAME_RE.match(stripped)
            if name_match:
                stmt_name = name_match.group(1)
                continue
            if stripped.startswith("--"):
                continue
            if stripped.endswith(";"):
                buffer.append(stripped[:-1])
                flush()
            elif stripped:
                buffer.append(stripped)
        flush()
        if len(workload) == 0:
            raise WorkloadError(f"workload {name!r} has no statements")
        return workload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Workload({self.name!r}, {len(self)} statements)"
