"""The access graph (Section 4.1, Figure 6).

A weighted undirected graph over database objects.  A node's weight is
the total number of blocks of that object referenced by the workload
(scaled by statement weights); an edge ``(u, v)`` exists when some
statement co-accesses ``u`` and ``v`` in one non-blocking subplan, and
its weight is the summed ``B_u + B_v`` block counts of those subplans.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.catalog.schema import Database
from repro.errors import WorkloadError
from repro.obs import NULL_METRICS, NULL_TRACER
from repro.workload.access import AnalyzedWorkload


def _edge(u: str, v: str) -> tuple[str, str]:
    """Canonical (sorted) edge key."""
    return (u, v) if u <= v else (v, u)


class AccessGraph:
    """Weighted undirected co-access graph over database objects."""

    def __init__(self, objects: Iterable[str] = ()):
        self._nodes: dict[str, float] = {name: 0.0 for name in objects}
        self._edges: dict[tuple[str, str], float] = {}
        self._adjacency: dict[str, set[str]] = {
            name: set() for name in self._nodes}

    # -- construction --------------------------------------------------------

    def add_object(self, name: str) -> None:
        """Ensure a node exists for the object (weight 0 if new)."""
        if name not in self._nodes:
            self._nodes[name] = 0.0
            self._adjacency[name] = set()

    def add_node_weight(self, name: str, blocks: float) -> None:
        """Increment a node's referenced-blocks weight."""
        self.add_object(name)
        self._nodes[name] += blocks

    def add_edge_weight(self, u: str, v: str, blocks: float) -> None:
        """Increment (creating if needed) the co-access edge weight."""
        if u == v:
            raise WorkloadError("access graph cannot have self-edges")
        self.add_object(u)
        self.add_object(v)
        key = _edge(u, v)
        self._edges[key] = self._edges.get(key, 0.0) + blocks
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)

    # -- queries ---------------------------------------------------------------

    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(self._nodes)

    @property
    def edges(self) -> dict[tuple[str, str], float]:
        return dict(self._edges)

    def node_weight(self, name: str) -> float:
        """Total blocks of the object referenced by the workload."""
        try:
            return self._nodes[name]
        except KeyError:
            raise WorkloadError(f"no object {name!r} in access graph") \
                from None

    def edge_weight(self, u: str, v: str) -> float:
        """Edge weight, 0 if the objects are never co-accessed."""
        return self._edges.get(_edge(u, v), 0.0)

    def neighbors(self, name: str) -> set[str]:
        """Objects ever co-accessed with ``name``."""
        return set(self._adjacency.get(name, ()))

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def total_edge_weight(self) -> float:
        """Sum of all co-access edge weights."""
        return sum(self._edges.values())

    def cut_weight(self, partition_of: Mapping[str, int]) -> float:
        """Total weight of edges whose endpoints lie in different parts."""
        return sum(w for (u, v), w in self._edges.items()
                   if partition_of.get(u) != partition_of.get(v))

    def group_edge_weight(self, group_a: Iterable[str],
                          group_b: Iterable[str]) -> float:
        """Total edge weight between two disjoint sets of objects."""
        set_b = set(group_b)
        return sum(self.edge_weight(u, v) for u in group_a for v in set_b)

    def to_dot(self, include_isolated: bool = False) -> str:
        """Render the graph in Graphviz DOT format.

        Node labels carry the referenced-blocks weight, edge labels the
        co-access weight; useful for eyeballing why the search separated
        what it separated (``dot -Tsvg graph.dot``).
        """
        lines = ["graph access_graph {", "  node [shape=box];"]
        for name in sorted(self._nodes):
            if not include_isolated and not self._adjacency[name] \
                    and self._nodes[name] == 0:
                continue
            lines.append(
                f'  "{name}" [label="{name}\\n'
                f'{self._nodes[name]:.0f} blk"];')
        for (u, v), weight in sorted(self._edges.items()):
            lines.append(f'  "{u}" -- "{v}" [label="{weight:.0f}"];')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AccessGraph({len(self._nodes)} nodes, " \
               f"{len(self._edges)} edges)"


def build_access_graph(analyzed: AnalyzedWorkload,
                       db: Database | None = None,
                       tracer=None, metrics=None) -> AccessGraph:
    """Construct the access graph per the paper's Figure 6 algorithm.

    Steps (with statement weights ``w_Q`` applied to both node and edge
    increments):

    1. one node per database object, weight 0;
    2. for each statement, for each object accessed in its plan,
       increment the node weight by the blocks of that object accessed;
    3. for each non-blocking subplan, add/increment an edge between each
       pair of distinct objects accessed in it by the sum of the two
       objects' block counts in that subplan.

    Args:
        analyzed: A planned-and-decomposed workload.
        db: Optional catalog; when given, every catalog object gets a
            node even if the workload never touches it (as in Fig. 6
            step 1).
        tracer: Optional :class:`repro.obs.Tracer`; emits one
            ``build-access-graph`` span.
        metrics: Optional :class:`repro.obs.MetricsRegistry`; records
            ``graph.nodes`` / ``graph.edges`` /
            ``graph.total_edge_weight`` gauges.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    metrics = metrics if metrics is not None else NULL_METRICS
    with tracer.span("build-access-graph") as span:
        graph = AccessGraph(
            o.name for o in (db.objects() if db is not None else ()))
        for item in analyzed:
            w = item.weight
            for subplan in item.subplans:
                blocks = subplan.blocks_by_object(include_temp=False)
                per_object: dict[str, float] = {}
                for (name, _write), b in blocks.items():
                    per_object[name] = per_object.get(name, 0.0) + b
                for name, b in per_object.items():
                    graph.add_node_weight(name, w * b)
                names = sorted(per_object)
                for i, u in enumerate(names):
                    for v in names[i + 1:]:
                        graph.add_edge_weight(
                            u, v, w * (per_object[u] + per_object[v]))
        span.set("nodes", len(graph))
        span.set("edges", len(graph.edges))
        metrics.set_gauge("graph.nodes", len(graph))
        metrics.set_gauge("graph.edges", len(graph.edges))
        metrics.set_gauge("graph.total_edge_weight",
                          graph.total_edge_weight())
    return graph
