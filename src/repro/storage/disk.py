"""Disk-drive model (Section 2.1 of the paper).

A *disk drive* is a single addressable entity — possibly itself a RAID
array — characterized by its capacity ``C_j``, average seek time ``S_j``,
average read transfer rate ``TR_j``, average write transfer rate ``TW_j``
and an availability property (None / Parity / Mirroring).

Sizes are expressed in *blocks*: the allocation granularity used both by
the layout (the paper notes SQL Server 2000 allocates in units of 8 pages)
and by the I/O simulator.  One block is 8 pages of 8 KiB = 64 KiB.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import CatalogError

#: Pages per allocation block (a SQL Server 2000 extent).
PAGES_PER_BLOCK = 8

#: Bytes per 8 KiB page.
PAGE_BYTES = 8 * 1024

#: Bytes per allocation block.
BLOCK_BYTES = PAGES_PER_BLOCK * PAGE_BYTES

_MB = 1024 * 1024


class Availability(enum.Enum):
    """Availability property of a disk drive (paper Section 2.1).

    ``NONE`` corresponds to a stand-alone disk or RAID 0, ``PARITY`` to
    RAID 5 and ``MIRRORING`` to RAID 1.
    """

    NONE = "none"
    PARITY = "parity"
    MIRRORING = "mirroring"

    @property
    def write_penalty(self) -> float:
        """Effective write-throughput divisor of the RAID level.

        The paper treats availability purely as a placement constraint;
        real arrays also pay for redundancy on writes — RAID 1 writes
        both mirrors (2x), RAID 5 does a read-modify-write cycle (4
        I/Os per logical write).  The cost model and simulator apply
        this divisor to write transfer rates automatically.
        """
        if self is Availability.MIRRORING:
            return 2.0
        if self is Availability.PARITY:
            return 4.0
        return 1.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class DiskSpec:
    """Static characteristics of one disk drive.

    Attributes:
        name: Human-readable identifier, e.g. ``"D1"``.
        capacity_blocks: Capacity ``C_j`` in 64 KiB blocks.
        avg_seek_s: Average seek time ``S_j`` in seconds (includes the
            rotational settle the paper folds into "seek").
        read_mb_s: Average sequential read transfer rate ``TR_j`` in MB/s.
        write_mb_s: Average sequential write transfer rate ``TW_j`` in MB/s.
        availability: Availability property ``AVAIL_j``.
    """

    name: str
    capacity_blocks: int
    avg_seek_s: float
    read_mb_s: float
    write_mb_s: float
    availability: Availability = Availability.NONE

    def __post_init__(self) -> None:
        if self.capacity_blocks <= 0:
            raise CatalogError(f"disk {self.name}: capacity must be positive")
        if self.avg_seek_s <= 0:
            raise CatalogError(f"disk {self.name}: seek time must be positive")
        if self.read_mb_s <= 0 or self.write_mb_s <= 0:
            raise CatalogError(
                f"disk {self.name}: transfer rates must be positive")

    @property
    def capacity_bytes(self) -> int:
        """Capacity in bytes."""
        return self.capacity_blocks * BLOCK_BYTES

    @property
    def read_blocks_s(self) -> float:
        """Sequential read rate in blocks per second."""
        return self.read_mb_s * _MB / BLOCK_BYTES

    @property
    def write_blocks_s(self) -> float:
        """Effective sequential write rate in blocks per second.

        Includes the availability level's redundancy write penalty
        (RAID 1 halves, RAID 5 quarters the raw drive rate).
        """
        return self.write_mb_s * _MB / BLOCK_BYTES \
            / self.availability.write_penalty

    def transfer_blocks_s(self, write: bool = False) -> float:
        """Transfer rate in blocks/s for reads or writes."""
        return self.write_blocks_s if write else self.read_blocks_s

    def transfer_seconds(self, blocks: float, write: bool = False) -> float:
        """Time to sequentially transfer ``blocks`` blocks."""
        return blocks / self.transfer_blocks_s(write)


class DiskFarm:
    """An ordered collection of disk drives available for layout.

    The farm is the paper's ``{D_1, ..., D_m}``; disk indices used in
    layout matrices refer to positions in this sequence.
    """

    def __init__(self, disks: Sequence[DiskSpec]):
        if not disks:
            raise CatalogError("a disk farm needs at least one disk")
        names = [d.name for d in disks]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate disk names in farm: {names}")
        self._disks = tuple(disks)
        self._by_name = {d.name: i for i, d in enumerate(self._disks)}

    def __len__(self) -> int:
        return len(self._disks)

    def __iter__(self) -> Iterator[DiskSpec]:
        return iter(self._disks)

    def __getitem__(self, index: int) -> DiskSpec:
        return self._disks[index]

    @property
    def disks(self) -> tuple[DiskSpec, ...]:
        return self._disks

    def index_of(self, name: str) -> int:
        """Return the farm index of the disk called ``name``."""
        try:
            return self._by_name[name]
        except KeyError:
            raise CatalogError(f"no disk named {name!r} in farm") from None

    @property
    def total_capacity_blocks(self) -> int:
        return sum(d.capacity_blocks for d in self._disks)

    def indices_by_read_rate(self) -> list[int]:
        """Disk indices ordered by decreasing read transfer rate.

        Ties are broken by farm order, which keeps every algorithm in the
        package deterministic.
        """
        return sorted(range(len(self._disks)),
                      key=lambda j: (-self._disks[j].read_mb_s, j))

    def subset(self, indices: Iterable[int]) -> "DiskFarm":
        """A new farm containing only the given disk indices (in order)."""
        return DiskFarm([self._disks[j] for j in sorted(set(indices))])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiskFarm({len(self._disks)} disks, " \
               f"{self.total_capacity_blocks} blocks)"


def uniform_farm(m: int,
                 capacity_gb: float = 6.0,
                 seek_ms: float = 9.0,
                 read_mb_s: float = 20.0,
                 write_mb_s: float | None = None,
                 availability: Availability = Availability.NONE,
                 name_prefix: str = "D") -> DiskFarm:
    """Build a farm of ``m`` identical disks.

    Args:
        m: Number of disk drives.
        capacity_gb: Per-disk capacity in GB.
        seek_ms: Average seek time in milliseconds.
        read_mb_s: Sequential read rate in MB/s.
        write_mb_s: Sequential write rate in MB/s; defaults to 90% of the
            read rate, the typical read/write asymmetry of the era's disks.
        availability: Availability property applied to every drive.
        name_prefix: Prefix for the generated drive names ``D1..Dm``.
    """
    if write_mb_s is None:
        write_mb_s = 0.9 * read_mb_s
    capacity_blocks = int(capacity_gb * 1024 * _MB / BLOCK_BYTES)
    disks = [
        DiskSpec(name=f"{name_prefix}{j + 1}",
                 capacity_blocks=capacity_blocks,
                 avg_seek_s=seek_ms / 1000.0,
                 read_mb_s=read_mb_s,
                 write_mb_s=write_mb_s,
                 availability=availability)
        for j in range(m)
    ]
    return DiskFarm(disks)


def winbench_farm(m: int = 8,
                  capacity_gb: float = 6.0,
                  base_seek_ms: float = 6.0,
                  base_read_mb_s: float = 40.0,
                  spread: float = 0.30,
                  seed: int = 1729,
                  availability: Availability = Availability.NONE) -> DiskFarm:
    """Build a heterogeneous farm like the paper's calibrated testbed.

    The paper's 8 external disks were calibrated with the WinBench tool and
    showed ~30% difference between the fastest and slowest disks in both
    average transfer rate and seek time.  This factory reproduces that
    spread deterministically: rates are drawn uniformly from
    ``[base, base * (1 + spread)]`` and seeks from
    ``[base, base * (1 + spread)]`` with a fixed seed, then the fastest
    and slowest drives are pinned to the interval endpoints so the spread
    is exact for any ``m >= 2``.

    Args:
        m: Number of disk drives (the paper used 8).
        capacity_gb: Per-disk capacity (8 drives x 6 GB = 48 GB aggregate,
            matching the paper's testbed).
        base_seek_ms: Seek time of the *fastest* drive, in ms
            (era-realistic short-stroke average; the paper's definition
            folds rotational settle into "seek").
        base_read_mb_s: Read rate of the *slowest* drive, in MB/s.
        spread: Fractional fast/slow difference (0.30 in the paper).
        seed: Seed for the deterministic draw.
        availability: Availability property applied to every drive.
    """
    rng = random.Random(seed)
    capacity_blocks = int(capacity_gb * 1024 * _MB / BLOCK_BYTES)
    rate_factors = [rng.uniform(0.0, 1.0) for _ in range(m)]
    if m >= 2:
        rate_factors[0] = 1.0   # fastest drive pinned
        rate_factors[-1] = 0.0  # slowest drive pinned
    disks = []
    for j, f in enumerate(rate_factors):
        read = base_read_mb_s * (1.0 + spread * f)
        # Faster transfer correlates with faster (smaller) seek.
        seek = base_seek_ms * (1.0 + spread * (1.0 - f))
        disks.append(DiskSpec(name=f"D{j + 1}",
                              capacity_blocks=capacity_blocks,
                              avg_seek_s=seek / 1000.0,
                              read_mb_s=read,
                              write_mb_s=0.9 * read,
                              availability=availability))
    return DiskFarm(disks)
