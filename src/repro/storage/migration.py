"""Migration planning: turning a ``(current, target)`` layout pair into
an ordered, capacity-safe sequence of block moves.

A layout recommendation is only half the story — the DBA still has to
*get there*.  This module converts the difference between two valid
layouts into a :class:`MigrationPlan` of per-object, per-disk moves such
that no disk ever exceeds its capacity at any intermediate step.

Ordering works like a topological sort over freed space: a move is
*executable* when its destination disk currently has room for the
blocks; executing it frees space on the source, which can unblock
further moves.  When every pending move is blocked (a cycle of full
disks), the planner falls back to *temporary staging*: part of one
blocked move is parked on any disk with free space, breaking the cycle,
and forwarded to its real destination once room opens up.  Staged
blocks are counted separately — they move twice.

Per-move time estimates come from the paper's Fig. 7 transfer model:
one average seek on each participating disk plus the sequential
transfer time at the source's read rate and the destination's
(availability-penalized) write rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import LayoutError
from repro.obs import NULL_METRICS, NULL_RECORDER, NULL_TRACER
from repro.storage.disk import BLOCK_BYTES, DiskFarm

if TYPE_CHECKING:
    from repro.core.layout import Layout

# repro.storage is a lower layer than repro.core (core imports storage),
# so the shared capacity tolerance cannot be imported at module load;
# mirror repro.core.tolerance.EPS_CAPACITY here (test-asserted equal).
EPS_CAPACITY = 1e-9  # repro: noqa RPC401 -- layering: storage cannot import core/tolerance; mirrored value is test-asserted equal

#: Block deltas below this are treated as zero (float-fraction noise).
EPS_BLOCKS = 1e-6  # repro: noqa RPC401 -- storage-local rounding unit (block-count noise floor), not a core tolerance


@dataclass(frozen=True)
class MigrationStep:
    """One move: ``blocks`` of ``obj`` from disk ``src`` to disk ``dst``.

    Attributes:
        obj: The database object being (partially) moved.
        src: Farm index of the source disk.
        dst: Farm index of the destination disk.
        blocks: Blocks transferred by this step.
        est_seconds: Estimated wall time of the step (Fig. 7 transfer
            model: seek on both disks + read at the source's rate +
            write at the destination's penalized rate).
        staged: ``True`` when the destination is a temporary staging
            disk rather than the blocks' final home.
    """

    obj: str
    src: int
    dst: int
    blocks: float
    est_seconds: float
    staged: bool = False

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "obj": self.obj, "src": self.src, "dst": self.dst,
            "blocks": float(self.blocks),
            "est_seconds": float(self.est_seconds)}
        if self.staged:
            out["staged"] = True
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MigrationStep":
        """Inverse of :meth:`to_dict`."""
        return cls(obj=str(data["obj"]), src=int(data["src"]),
                   dst=int(data["dst"]), blocks=float(data["blocks"]),
                   est_seconds=float(data["est_seconds"]),
                   staged=bool(data.get("staged", False)))


@dataclass
class MigrationPlan:
    """An ordered, capacity-safe realization of a layout change.

    Attributes:
        steps: The moves, in execution order.
        moved_blocks: Net blocks that change disks (equals
            ``current.data_movement_blocks(target)`` up to float noise).
        staged_blocks: Blocks that had to be parked on a staging disk
            first (these transfer twice; 0 in the common case).
        est_seconds: Total estimated migration wall time, assuming the
            steps run sequentially.
        moved_fraction: ``moved_blocks`` over the database's total
            blocks.
        run_id: Flight-recorder run identifier of the run that produced
            the plan, when saved with provenance (see
            :func:`repro.catalog.io.save_migration_plan`).
    """

    steps: list[MigrationStep] = field(default_factory=list)
    moved_blocks: float = 0.0
    staged_blocks: float = 0.0
    est_seconds: float = 0.0
    moved_fraction: float = 0.0
    run_id: str | None = None

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    @property
    def moved_bytes(self) -> float:
        """Net bytes changing disks."""
        return self.moved_blocks * BLOCK_BYTES

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (inverse: :meth:`from_dict`)."""
        out: dict[str, Any] = {
            "steps": [s.to_dict() for s in self.steps],
            "moved_blocks": float(self.moved_blocks),
            "staged_blocks": float(self.staged_blocks),
            "est_seconds": float(self.est_seconds),
            "moved_fraction": float(self.moved_fraction),
        }
        if self.run_id:
            out["run_id"] = str(self.run_id)
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MigrationPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        run_id = data.get("run_id")
        return cls(
            steps=[MigrationStep.from_dict(s)
                   for s in data.get("steps", ())],
            moved_blocks=float(data["moved_blocks"]),
            staged_blocks=float(data.get("staged_blocks", 0.0)),
            est_seconds=float(data["est_seconds"]),
            moved_fraction=float(data.get("moved_fraction", 0.0)),
            run_id=str(run_id) if run_id else None)

    def is_capacity_safe(self, current: "Layout") -> bool:
        """Whether no disk overflows at any point while executing.

        Replays the steps against the ``current`` layout's per-disk
        usage, checking each destination *before* the step lands.
        """
        farm = current.farm
        used = [current.disk_used_blocks(j) for j in range(len(farm))]
        for step in self.steps:
            if used[step.dst] + step.blocks \
                    > farm[step.dst].capacity_blocks + EPS_CAPACITY:
                return False
            used[step.dst] += step.blocks
            used[step.src] -= step.blocks
        return True


def _step_seconds(farm: DiskFarm, src: int, dst: int,
                  blocks: float) -> float:
    """Fig.-7-style move time: seeks plus read/write transfers."""
    return (farm[src].avg_seek_s + farm[dst].avg_seek_s
            + blocks / farm[src].read_blocks_s
            + blocks / farm[dst].write_blocks_s)


def _object_transfers(current: "Layout", target: "Layout",
                      ) -> list[list[float]]:
    """Per-object (src, dst, blocks) demands, deterministically matched.

    For each object, disks losing blocks (outflows) are paired with
    disks gaining blocks (inflows) in ascending disk order — the
    classic transportation matching, kept deterministic so plans are
    reproducible.
    """
    transfers: list[list[float]] = []
    for name in current.object_names:
        size = current.size_of(name)
        row_now = current.fractions_of(name)
        row_new = target.fractions_of(name)
        outflows = [[j, size * (row_now[j] - row_new[j])]
                    for j in range(len(row_now))
                    if size * (row_now[j] - row_new[j]) > EPS_BLOCKS]
        inflows = [[j, size * (row_new[j] - row_now[j])]
                   for j in range(len(row_now))
                   if size * (row_new[j] - row_now[j]) > EPS_BLOCKS]
        oi = ii = 0
        while oi < len(outflows) and ii < len(inflows):
            src, available = outflows[oi]
            dst, needed = inflows[ii]
            amount = min(available, needed)
            transfers.append([name, src, dst, amount])
            outflows[oi][1] -= amount
            inflows[ii][1] -= amount
            if outflows[oi][1] <= EPS_BLOCKS:
                oi += 1
            if inflows[ii][1] <= EPS_BLOCKS:
                ii += 1
    return transfers


def plan_migration(current: "Layout", target: "Layout",
                   tracer=None, metrics=None,
                   recorder=None) -> MigrationPlan:
    """Build a capacity-safe ordered migration plan between two layouts.

    Args:
        current: The layout the data is in now.
        target: The layout the advisor recommended.
        tracer: Optional :class:`repro.obs.Tracer`; emits one
            ``plan-migration`` span.
        metrics: Optional :class:`repro.obs.MetricsRegistry`; records
            ``incremental.migration_steps`` /
            ``incremental.staged_blocks`` / ``incremental.moved_blocks``.
        recorder: Optional :class:`repro.obs.EventRecorder`; emits one
            ``migration-plan`` summary event plus one
            ``migration-step`` event per planned move.

    Returns:
        A :class:`MigrationPlan` whose steps never overflow any disk at
        any intermediate point (verifiable via
        :meth:`MigrationPlan.is_capacity_safe`).

    Raises:
        LayoutError: If the layouts cover different objects/farms, or no
            disk has any free space to stage through when every pending
            move is blocked (migration is then impossible without a
            scratch disk).
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    metrics = metrics if metrics is not None else NULL_METRICS
    recorder = recorder if recorder is not None else NULL_RECORDER
    farm = current.farm
    if len(target.farm) != len(farm):
        raise LayoutError("cannot plan a migration across different "
                          "disk farms")
    with tracer.span("plan-migration") as span:
        # data_movement_blocks also validates the object sets match.
        net_moved = current.data_movement_blocks(target)
        pending = _object_transfers(current, target)
        free = [farm[j].capacity_blocks - current.disk_used_blocks(j)
                for j in range(len(farm))]
        steps: list[MigrationStep] = []
        staged_total = 0.0
        # Each round either executes (part of) a pending move into real
        # free space or stages one to break a full-disk cycle; both
        # strictly shrink the pending volume or strictly advance staged
        # blocks toward their destination, so the loop terminates.  The
        # cap is a defense against float-noise livelock only.
        max_rounds = 4 * (len(pending) + 1) * (len(farm) + 1)
        for _ in range(max_rounds):
            if not pending:
                break
            progressed = False
            # Full moves first (fewest steps), then partial moves.
            for entry in pending:
                name, src, dst, blocks = entry
                if free[dst] + EPS_CAPACITY >= blocks:
                    steps.append(MigrationStep(
                        name, src, dst, blocks,
                        _step_seconds(farm, src, dst, blocks)))
                    free[dst] -= blocks
                    free[src] += blocks
                    pending.remove(entry)
                    progressed = True
                    break
            if progressed:
                continue
            for entry in pending:
                name, src, dst, blocks = entry
                amount = min(blocks, free[dst])
                if amount > EPS_BLOCKS:
                    steps.append(MigrationStep(
                        name, src, dst, amount,
                        _step_seconds(farm, src, dst, amount)))
                    free[dst] -= amount
                    free[src] += amount
                    entry[3] -= amount
                    progressed = True
                    break
            if progressed:
                continue
            # Every destination is full: stage part of the first pending
            # move on any disk with room, and forward it later.
            name, src, dst, blocks = pending[0]
            stage = max(range(len(farm)), key=lambda j: free[j])
            amount = min(blocks, free[stage])
            if amount <= EPS_BLOCKS:
                raise LayoutError(
                    "migration is blocked: every disk is full, nothing "
                    "can be staged (add a scratch disk or loosen the "
                    "target layout)")
            steps.append(MigrationStep(
                name, src, stage, amount,
                _step_seconds(farm, src, stage, amount),
                staged=True))
            free[stage] -= amount
            free[src] += amount
            staged_total += amount
            pending[0][3] -= amount
            if pending[0][3] <= EPS_BLOCKS:
                pending.pop(0)
            pending.append([name, stage, dst, amount])
        else:
            raise LayoutError(
                "migration planner failed to converge (float-noise "
                "livelock); this is a bug")
        total_blocks = sum(current.object_sizes.values())
        plan = MigrationPlan(
            steps=steps,
            moved_blocks=net_moved,
            staged_blocks=staged_total,
            est_seconds=sum(s.est_seconds for s in steps),
            moved_fraction=net_moved / total_blocks if total_blocks
            else 0.0)
        span.set("steps", len(steps))
        span.set("moved_blocks", round(net_moved, 3))
        span.set("staged_blocks", round(staged_total, 3))
        metrics.inc("incremental.migration_steps", len(steps))
        metrics.set_gauge("incremental.moved_blocks", net_moved)
        metrics.set_gauge("incremental.staged_blocks", staged_total)
        recorder.emit("migration-plan", steps=len(steps),
                      moved_blocks=round(float(net_moved), 3),
                      staged_blocks=round(float(staged_total), 3),
                      est_seconds=round(float(plan.est_seconds), 6))
        for index, step in enumerate(steps):
            recorder.emit("migration-step", step=index,
                          obj=step.obj, src=step.src, dst=step.dst,
                          blocks=round(float(step.blocks), 3),
                          staged=step.staged)
    return plan
